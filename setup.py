"""Legacy setup shim: enables `pip install -e .` on environments whose
setuptools predates PEP 660 editable wheels (metadata lives in pyproject.toml).

Optional AOT kernel build: set ``REPRO_BUILD_KERNEL=1`` (with the
``[compiled]`` extra installed — cffi plus a C toolchain) to compile the
batch-evaluation hot loop during install.  Without the flag, or without a
toolchain, the install is pure Python and the runtime falls back to the
reference kernel (see ``repro/core/kernelreg.py``).  The extension can
also be built after the fact with ``python -m repro.core.kernel_build``.
"""

import os

from setuptools import setup

kwargs = {}
if os.environ.get("REPRO_BUILD_KERNEL"):
    kwargs["cffi_modules"] = ["src/repro/core/kernel_build.py:ffibuilder"]
    kwargs["setup_requires"] = ["cffi>=1.15"]

setup(**kwargs)
