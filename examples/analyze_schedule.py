#!/usr/bin/env python
"""Post-mortem analysis and rich exports for one schedule.

Schedules a Cholesky factorization on a WAN, then demonstrates the analysis
toolkit: why is the makespan what it is (critical chain), where do messages
queue (contention hotspots), how busy is each processor — and writes SVG /
Chrome-trace / JSON exports next to this script.

Run:  python examples/analyze_schedule.py
"""

import pathlib

from repro import (
    OIHSAScheduler,
    contention_hotspots,
    kernels,
    processor_breakdown,
    random_wan,
    resimulate,
    scale_to_ccr,
    schedule_critical_chain,
    schedule_to_json,
    validate_schedule,
)
from repro.viz import schedule_to_svg, schedule_to_trace


def main() -> None:
    graph = scale_to_ccr(kernels.cholesky(5, rng=1), 2.0)
    net = random_wan(10, rng=2)
    schedule = OIHSAScheduler().schedule(graph, net)
    validate_schedule(schedule)
    resimulate(schedule)  # independent event-driven cross-check
    print(schedule.summary(), "\n")

    print("processor breakdown:")
    for load in processor_breakdown(schedule):
        bar = "#" * int(load.utilization * 30)
        print(
            f"  P{load.processor}: {load.n_tasks:3d} tasks  "
            f"busy {load.busy:9.1f}  util {load.utilization:6.1%}  {bar}"
        )

    print("\ncritical chain (what the makespan is made of):")
    for link in schedule_critical_chain(schedule):
        if link.kind == "task":
            print(f"  task {link.task:<4} [{link.start:9.1f} .. {link.finish:9.1f}]")
        else:
            print(
                f"  comm {link.edge[0]}->{link.edge[1]:<3}"
                f" [{link.start:9.1f} .. {link.finish:9.1f}]"
            )

    print("\ncontention hotspots (queueing imposed per link):")
    for spot in contention_hotspots(schedule)[:5]:
        print(
            f"  L{spot.lid}: {spot.n_transfers} transfers, busy {spot.busy_time:.1f}, "
            f"total wait {spot.total_wait:.1f}"
        )

    out = pathlib.Path(__file__).parent
    (out / "schedule.svg").write_text(schedule_to_svg(schedule))
    (out / "schedule.trace.json").write_text(schedule_to_trace(schedule))
    (out / "schedule.json").write_text(schedule_to_json(schedule))
    print(
        "\nwrote schedule.svg (open in a browser), schedule.trace.json "
        "(chrome://tracing / Perfetto), schedule.json (full document)"
    )


if __name__ == "__main__":
    main()
