#!/usr/bin/env python
"""Regenerate all four figures of the paper (scaled-down by default).

Usage:
    python examples/reproduce_figures.py            # scaled sweep, ~minutes
    python examples/reproduce_figures.py --smoke    # tiny sweep, seconds
    python examples/reproduce_figures.py --paper    # published parameters (hours!)
    python examples/reproduce_figures.py --only figure2

Prints, for each figure, the measured improvement series next to the values
digitized from the published plot, plus the qualitative shape checks recorded
in EXPERIMENTS.md.
"""

import argparse
import sys
import time

from repro.experiments import ALL_FIGURES, ExperimentConfig


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny sweep (seconds)")
    parser.add_argument("--paper", action="store_true", help="published parameters (hours)")
    parser.add_argument("--plot", action="store_true", help="append ASCII plots")
    parser.add_argument(
        "--only",
        choices=sorted(ALL_FIGURES),
        default=None,
        help="run a single figure",
    )
    args = parser.parse_args(argv)

    names = [args.only] if args.only else sorted(ALL_FIGURES)
    for name in names:
        hetero = name in ("figure3", "figure4")
        if args.paper:
            config = ExperimentConfig.paper_scale(heterogeneous=hetero)
        elif args.smoke:
            config = ExperimentConfig.smoke(heterogeneous=hetero)
        else:
            config = ExperimentConfig.default(heterogeneous=hetero)
        t0 = time.time()
        result = ALL_FIGURES[name](config)
        print(result.to_text(plot=args.plot))
        print(f"({time.time() - t0:.1f}s)\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
