#!/usr/bin/env python
"""Scheduling onto a heterogeneous cluster with mixed-speed links.

Heterogeneity is where the paper's algorithms shine brightest (Figures 3-4):
the modified routing steers transfers over fast links, and BBSA soaks up the
leftover bandwidth of fast links that slot-exclusive scheduling wastes.

The platform here is a two-tier fat-tree whose leaf links are slow and whose
uplinks are fat, plus processors spanning a 10x speed range — a typical
"old nodes + new nodes" cluster.

Run:  python examples/heterogeneous_cluster.py
"""

from repro import (
    BAScheduler,
    BBSAScheduler,
    OIHSAScheduler,
    fat_tree,
    kernels,
    scale_to_ccr,
    validate_schedule,
)
from repro.utils.tables import format_table
from repro.viz import processor_gantt


def main() -> None:
    net = fat_tree(
        12,
        procs_per_leaf=4,
        proc_speed=(1, 10),
        link_speed=(1, 4),
        uplink_factor=4.0,
        rng=11,
    )
    speeds = sorted(p.speed for p in net.processors())
    print(f"cluster: 12 processors, speeds {speeds}")
    print(f"         {len(net.switches())} switches, uplinks 4x leaf speed\n")

    rows = []
    for name, graph in [
        ("cholesky-5", kernels.cholesky(5, rng=2)),
        ("fft-8", kernels.fft(8, rng=3)),
        ("stencil-6x4", kernels.stencil(6, 4, rng=4)),
    ]:
        graph = scale_to_ccr(graph, 1.5)
        makespans = {}
        for scheduler in (BAScheduler(), OIHSAScheduler(), BBSAScheduler()):
            schedule = scheduler.schedule(graph, net)
            validate_schedule(schedule)
            makespans[schedule.algorithm] = schedule.makespan
        rows.append([name, makespans["ba"], makespans["oihsa"], makespans["bbsa"]])
    print(format_table(["workload", "BA", "OIHSA", "BBSA"], rows))

    # Gantt of BBSA on the Cholesky factorization: heavy tasks should land on
    # the fast processors.
    graph = scale_to_ccr(kernels.cholesky(5, rng=2), 1.5)
    schedule = BBSAScheduler().schedule(graph, net)
    print("\nBBSA schedule of cholesky-5 (fastest processors fill first):\n")
    print(processor_gantt(schedule, width=76))


if __name__ == "__main__":
    main()
