#!/usr/bin/env python
"""Where do OIHSA's wins come from?  Routing vs insertion vs edge order.

Reruns the same workload with each OIHSA ingredient toggled individually —
the ablation behind DESIGN.md's "ablation benches" section — and prints the
contribution of each on a contended WAN.

Run:  python examples/routing_comparison.py
"""

from repro import OIHSAScheduler, BBSAScheduler, random_layered_dag, random_wan, scale_to_ccr
from repro.core.metrics import improvement_ratio
from repro.utils.tables import format_table

VARIANTS = [
    ("BFS routing + basic insertion", dict(modified_routing=False, optimal_insertion=False, edge_priority=False)),
    ("+ modified routing", dict(modified_routing=True, optimal_insertion=False, edge_priority=False)),
    ("+ edge priority", dict(modified_routing=True, optimal_insertion=False, edge_priority=True)),
    ("+ optimal insertion (= OIHSA)", dict(modified_routing=True, optimal_insertion=True, edge_priority=True)),
]


def main() -> None:
    import numpy as np

    seeds = (1, 2, 3, 4, 5)
    print("workload: 5 random layered DAGs (60 tasks, CCR 2) on a 16-processor WAN\n")
    base_means = []
    rows = []
    results: dict[str, list[float]] = {label: [] for label, _ in VARIANTS}
    results["BBSA (fluid bandwidth)"] = []
    for seed in seeds:
        graph = scale_to_ccr(random_layered_dag(60, rng=seed, density=0.05), 2.0)
        net = random_wan(16, rng=100 + seed)
        for label, kwargs in VARIANTS:
            results[label].append(OIHSAScheduler(**kwargs).schedule(graph, net).makespan)
        results["BBSA (fluid bandwidth)"].append(
            BBSAScheduler().schedule(graph, net).makespan
        )
    base = float(np.mean(results[VARIANTS[0][0]]))
    for label, values in results.items():
        mean = float(np.mean(values))
        rows.append([label, mean, f"{improvement_ratio(base, mean):+.1f}%"])
    print(format_table(["engine", "mean makespan", "vs BFS+basic"], rows))
    print(
        "\nReading: each added ingredient should push makespan down; the gap\n"
        "between the last two rows is what bandwidth sharing buys on top of\n"
        "optimal insertion."
    )


if __name__ == "__main__":
    main()
