#!/usr/bin/env python
"""Scientific-workflow scheduling across a wide-area grid.

The scenario the paper's introduction motivates: a data-parallel map-reduce
style workflow (think distributed analysis over grid sites) must run across
processors scattered behind WAN switches.  Naive contention-free scheduling
("classic") underestimates every transfer; BA accounts for contention but
routes blindly; OIHSA/BBSA adapt routes and packing to live link load.

The example sweeps CCR to show where contention-awareness pays off most.

Run:  python examples/wan_workflow.py
"""

from repro import (
    BAScheduler,
    BBSAScheduler,
    ClassicScheduler,
    OIHSAScheduler,
    kernels,
    random_wan,
    scale_to_ccr,
    validate_schedule,
)
from repro.core.metrics import improvement_ratio, link_utilization
from repro.utils.tables import format_table


def main() -> None:
    net = random_wan(24, rng=3, procs_per_switch=(4, 8))
    print(
        f"grid: {len(net.processors())} processors across "
        f"{len(net.switches())} sites, {net.num_links} links\n"
    )

    base_graph = kernels.map_reduce(mappers=10, reducers=6, rng=5)
    rows = []
    for ccr in (0.2, 1.0, 3.0, 8.0):
        graph = scale_to_ccr(base_graph, ccr)
        makespans = {}
        for scheduler in (
            ClassicScheduler(),
            BAScheduler(),
            OIHSAScheduler(),
            BBSAScheduler(),
        ):
            schedule = scheduler.schedule(graph, net)
            validate_schedule(schedule)
            makespans[schedule.algorithm] = schedule.makespan
        rows.append(
            [
                ccr,
                makespans["classic"],
                makespans["ba"],
                makespans["oihsa"],
                makespans["bbsa"],
                f"{improvement_ratio(makespans['ba'], makespans['bbsa']):+.1f}%",
            ]
        )
    print(
        format_table(
            ["CCR", "classic*", "BA", "OIHSA", "BBSA", "BBSA vs BA"],
            rows,
        )
    )
    print(
        "\n* classic ignores contention entirely: its makespan is an estimate\n"
        "  that a real contended network would not honour.\n"
    )

    # Show how busy the WAN backbone actually is under BBSA at high CCR.
    schedule = BBSAScheduler().schedule(scale_to_ccr(base_graph, 3.0), net)
    util = link_utilization(schedule)
    busiest = sorted(util.items(), key=lambda kv: -kv[1])[:5]
    print("busiest links under BBSA at CCR=3:")
    for lid, u in busiest:
        print(f"  {net.link(lid).name}: {u:.0%} of the makespan busy")


if __name__ == "__main__":
    main()
