#!/usr/bin/env python
"""What does ignoring contention actually cost?

The paper's motivating claim is that the classic contention-free model
produces schedules whose promised makespans real networks cannot honour.
This example quantifies it: a classic (contention-free) schedule is
*replayed* under the real edge-scheduling model — same task-to-processor
mapping, but communications must now queue on shared links — and compared
against schedules that were contention-aware from the start.

Run:  python examples/contention_cost.py
"""

from repro import (
    BBSAScheduler,
    ClassicScheduler,
    OIHSAScheduler,
    contention_penalty,
    random_layered_dag,
    random_wan,
    replay_under_contention,
    scale_to_ccr,
    validate_schedule,
)
from repro.utils.tables import format_table


def main() -> None:
    net = random_wan(16, rng=21)
    print(f"platform: {net.name} ({len(net.switches())} switches)\n")

    rows = []
    for ccr in (0.5, 2.0, 5.0):
        graph = scale_to_ccr(random_layered_dag(50, rng=9, density=0.05), ccr)

        classic = ClassicScheduler().schedule(graph, net)
        replayed = replay_under_contention(classic)
        validate_schedule(replayed)
        oihsa = OIHSAScheduler().schedule(graph, net)
        bbsa = BBSAScheduler().schedule(graph, net)

        rows.append(
            [
                ccr,
                classic.makespan,
                replayed.makespan,
                f"{contention_penalty(classic):.2f}x",
                oihsa.makespan,
                bbsa.makespan,
            ]
        )

    print(
        format_table(
            [
                "CCR",
                "classic (promised)",
                "classic (real)",
                "penalty",
                "OIHSA",
                "BBSA",
            ],
            rows,
        )
    )
    print(
        "\nReading: 'promised' is the contention-free estimate; 'real' is the\n"
        "same placement replayed on contended links.  The penalty grows with\n"
        "CCR: at CCR 5 the classic schedule takes ~4x longer than it claimed,\n"
        "which is the paper's core motivation.  Note the replayed classic\n"
        "mapping can still be competitive with OIHSA/BBSA — placement quality\n"
        "matters as much as edge scheduling, and the classic EFT placement is\n"
        "a strong clusterer at high CCR (see DESIGN.md Section 5 on baseline\n"
        "strength)."
    )


if __name__ == "__main__":
    main()
