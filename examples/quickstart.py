#!/usr/bin/env python
"""Quickstart: schedule a task DAG onto a contended network, three ways.

Builds a Gaussian-elimination task graph, a paper-style random WAN, runs the
BA baseline and both of the paper's algorithms (OIHSA, BBSA), validates every
schedule against the full model, and prints a comparison plus Gantt charts.

Run:  python examples/quickstart.py
"""

from repro import (
    BAScheduler,
    BBSAScheduler,
    OIHSAScheduler,
    kernels,
    random_wan,
    scale_to_ccr,
    validate_schedule,
)
from repro.viz import comparison_report, schedule_report


def main() -> None:
    # 1. A workload: Gaussian elimination on a 6x6 matrix, with communication
    #    costs scaled so the graph is communication-heavy (CCR = 2).
    graph = kernels.gaussian_elimination(6, rng=1)
    graph = scale_to_ccr(graph, 2.0)
    print(f"workload: {graph.name}, {graph.num_tasks} tasks, {graph.num_edges} edges")

    # 2. A platform: a random WAN of 12 processors hanging off interconnected
    #    switches (the paper's Section 6 topology).
    net = random_wan(12, rng=7)
    print(f"platform: {net.name}, {len(net.switches())} switches, {net.num_links} links\n")

    # 3. Schedule with the baseline and both contention-aware algorithms.
    schedules = []
    for scheduler in (BAScheduler(), OIHSAScheduler(), BBSAScheduler()):
        schedule = scheduler.schedule(graph, net)
        validate_schedule(schedule)  # every model invariant, or an exception
        schedules.append(schedule)

    print(comparison_report(schedules))
    print()

    # 4. Inspect the winner in detail.
    best = min(schedules, key=lambda s: s.makespan)
    print(schedule_report(best))


if __name__ == "__main__":
    main()
