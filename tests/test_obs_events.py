"""Tests for the observability event bus: taxonomy, sinks, JSONL round-trip,
disabled-by-default behavior, and BA-vs-OIHSA decision divergence."""

import pytest

from repro import obs
from repro.core.ba import BAScheduler
from repro.core.oihsa import OIHSAScheduler
from repro.network.builders import switched_cluster
from repro.obs import EVENT_KINDS, Event, JsonlSink, ListSink, read_jsonl
from repro.taskgraph.ccr import scale_to_ccr
from repro.taskgraph.kernels import fork_join


@pytest.fixture(autouse=True)
def clean_obs():
    """Leave the process-wide instruments exactly as found: off and empty."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


@pytest.fixture
def contended():
    """Fork-join whose 16 results all cross one switch: heavy link contention."""
    return scale_to_ccr(fork_join(16, rng=1), 8.0), switched_cluster(4)


class TestDisabledByDefault:
    def test_off_by_default(self):
        assert not obs.is_enabled()

    def test_disabled_run_records_nothing(self, contended):
        graph, net = contended
        schedule = OIHSAScheduler().schedule(graph, net)
        assert schedule.stats is None
        assert obs.METRICS.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        assert obs.PROFILER.snapshot() == {}
        assert list(obs.BUS.iter_events()) == []

    def test_emit_while_disabled_is_dropped(self):
        sink = ListSink()
        obs.BUS.sink = sink
        obs.BUS.emit("task_placed", t=1.0, task=0)
        assert sink.events == []


class TestEnabledRun:
    def test_stats_attached_with_decision_log(self, contended):
        graph, net = contended
        obs.enable()
        schedule = OIHSAScheduler().schedule(graph, net)
        obs.disable()
        stats = schedule.stats
        assert stats is not None
        assert {e.kind for e in stats.events} <= EVENT_KINDS
        assert len(stats.events_of("task_placed")) == graph.num_tasks
        assert stats.events_of("edge_scheduled")
        assert stats.counter("procsched.tasks_placed") == graph.num_tasks

    def test_quiet_suppresses_tentative_probe_events(self, contended):
        graph, net = contended
        obs.enable()
        schedule = BAScheduler(processor_choice="tentative").schedule(graph, net)
        obs.disable()
        stats = schedule.stats
        # Probing books and rolls back edges on every candidate processor;
        # only the committed bookings may appear in the decision log.
        committed = stats.counter("insertion.edges_scheduled")
        probed = stats.counter("scheduler.processors_probed")
        assert probed >= len(net.processors()) > 0
        assert len(stats.events_of("edge_scheduled")) < committed
        assert len(stats.events_of("task_placed")) == graph.num_tasks

    def test_consecutive_runs_diff_cleanly(self, contended):
        graph, net = contended
        obs.enable()
        first = OIHSAScheduler().schedule(graph, net)
        second = OIHSAScheduler().schedule(graph, net)
        obs.disable()
        # Deterministic scheduler, identical input: identical per-run deltas
        # even though the process-wide counters kept accumulating.
        assert first.stats.metrics["counters"] == second.stats.metrics["counters"]
        assert len(first.stats.events) == len(second.stats.events)


class TestQuietReentrancy:
    def test_nested_quiet_blocks_suppress_until_the_outermost_exit(self):
        obs.enable(ListSink())
        bus = obs.BUS
        with bus.quiet():
            bus.emit("task_placed", task=0)
            with bus.quiet():
                bus.emit("task_placed", task=1)
            # inner exit must NOT resume emission — the outer block still holds
            assert bus.quieted
            bus.emit("task_placed", task=2)
        assert not bus.quieted
        bus.emit("task_placed", task=3)
        events = list(bus.iter_events())
        assert [e.data["task"] for e in events] == [3]

    def test_quiet_survives_exceptions(self):
        obs.enable(ListSink())
        bus = obs.BUS
        with pytest.raises(ValueError):
            with bus.quiet():
                raise ValueError("probe blew up")
        assert not bus.quieted
        bus.emit("task_placed", task=7)
        assert len(list(bus.iter_events())) == 1

    def test_quiet_block_is_reusable(self):
        # A probe loop re-enters the same bus's quiet() many times; the
        # suspension depth must return to zero every iteration.
        obs.enable(ListSink())
        bus = obs.BUS
        for _ in range(5):
            with bus.quiet():
                bus.emit("task_placed", task=0)
            assert not bus.quieted
        assert list(bus.iter_events()) == []


class TestBackToBackStats:
    def test_stats_diff_isolates_runs_without_reset(self):
        """Snapshot-diff stats are per-run even as global counters grow.

        Each run gets a *fresh* workload (route tables and probe caches live
        on the topology), so the second run's capture must equal a clean
        single-run capture — no leakage from the BA run before it, and no
        reset() in between.
        """

        def workload():
            return scale_to_ccr(fork_join(16, rng=1), 8.0), switched_cluster(4)

        obs.enable(ListSink())
        g, net = workload()
        alone = OIHSAScheduler().schedule(g, net)
        obs.disable()
        obs.reset()

        obs.enable(ListSink())
        g, net = workload()
        BAScheduler().schedule(g, net)
        g, net = workload()
        stacked = OIHSAScheduler().schedule(g, net)
        obs.disable()

        assert stacked.stats.metrics["counters"] == alone.stats.metrics["counters"]
        assert len(stacked.stats.events) == len(alone.stats.events)
        assert [e.kind for e in stacked.stats.events] == [
            e.kind for e in alone.stats.events
        ]


class TestBAvsOIHSA:
    def test_decision_counts_diverge_under_contention(self, contended):
        graph, net = contended
        obs.enable()
        ba = BAScheduler().schedule(graph, net)
        oihsa = OIHSAScheduler().schedule(graph, net)
        obs.disable()
        # BA never defers booked slots; OIHSA's optimal insertion does.
        assert ba.stats.counter("optimal.deferrals") == 0
        assert not ba.stats.events_of("slot_deferred")
        assert oihsa.stats.counter("optimal.deferrals") > 0
        assert oihsa.stats.events_of("slot_deferred")
        # BFS-routing BA does no Dijkstra relaxation work; OIHSA does.
        assert ba.stats.counter("routing.relaxations") == 0
        assert oihsa.stats.counter("routing.relaxations") > 0
        # Both log their routes, through different policies.
        ba_routes = ba.stats.events_of("route_probed")
        oi_routes = oihsa.stats.events_of("route_probed")
        assert {e.data["policy"] for e in ba_routes} == {"bfs"}
        assert {e.data["policy"] for e in oi_routes} == {"dijkstra"}
        assert len(ba_routes) != len(oi_routes)


class TestJsonl:
    def test_event_round_trip(self):
        ev = Event("slot_deferred", t=3.25, data={"lid": 4, "edge": [1, 7]})
        assert Event.from_json(ev.to_json()) == ev

    def test_no_timestamp_round_trip(self):
        ev = Event("processor_chosen", data={"task": 3, "proc": 0})
        assert Event.from_json(ev.to_json()) == ev

    def test_sink_file_round_trip(self, tmp_path, contended):
        graph, net = contended
        path = str(tmp_path / "events.jsonl")
        obs.enable(JsonlSink(path))
        OIHSAScheduler().schedule(graph, net)
        obs.disable()

        obs.enable(ListSink())
        OIHSAScheduler().schedule(graph, net)
        recorded = list(obs.BUS.iter_events())
        obs.disable()

        loaded = read_jsonl(path)
        assert loaded == recorded
        assert {e.kind for e in loaded} <= EVENT_KINDS

    def test_jsonl_stats_has_no_events(self, tmp_path, contended):
        graph, net = contended
        obs.enable(JsonlSink(str(tmp_path / "events.jsonl")))
        schedule = OIHSAScheduler().schedule(graph, net)
        obs.disable()
        # Streaming sink: the decision log lives on disk, not in memory.
        assert schedule.stats.events == []
        assert schedule.stats.counter("insertion.edges_scheduled") > 0
