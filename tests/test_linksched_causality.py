"""Unit tests for repro.linksched.causality."""

import pytest

from repro.exceptions import ValidationError
from repro.linksched.causality import check_route_causality, check_route_connectivity
from repro.linksched.slots import TimeSlot
from repro.linksched.state import LinkScheduleState
from repro.network.builders import linear_array, shared_bus
from repro.network.routing import bfs_route


def booked_state(net, route, *, shift_second=0.0):
    state = LinkScheduleState()
    state.record_route((0, 1), tuple(l.lid for l in route))
    state.insert(route[0].lid, 0, TimeSlot((0, 1), 1.0, 3.0))
    state.insert(route[1].lid, 0, TimeSlot((0, 1), 1.0 + shift_second, 3.0 + shift_second))
    return state


class TestRouteCausality:
    def _net(self):
        net = linear_array(3, link_speed=1.0)
        ps = [p.vid for p in net.processors()]
        return net, bfs_route(net, ps[0], ps[2])

    def test_valid_booking_passes(self):
        net, route = self._net()
        state = booked_state(net, route, shift_second=1.0)
        check_route_causality(state, net, (0, 1), 2.0, ready_time=1.0)

    def test_wrong_duration_rejected(self):
        net, route = self._net()
        state = booked_state(net, route)
        with pytest.raises(ValidationError, match="duration"):
            check_route_causality(state, net, (0, 1), 5.0)

    def test_start_regression_rejected(self):
        net, route = self._net()
        state = booked_state(net, route, shift_second=-0.5)
        with pytest.raises(ValidationError, match="causality bound"):
            check_route_causality(state, net, (0, 1), 2.0)

    def test_start_before_ready_rejected(self):
        net, route = self._net()
        state = booked_state(net, route)
        with pytest.raises(ValidationError, match="before"):
            check_route_causality(state, net, (0, 1), 2.0, ready_time=2.0)

    def test_empty_route_passes(self):
        net, _ = self._net()
        state = LinkScheduleState()
        state.record_route((0, 1), ())
        check_route_causality(state, net, (0, 1), 2.0, ready_time=0.0)


class TestRouteConnectivity:
    def test_empty_route_same_processor(self):
        net = linear_array(2)
        p = net.processors()[0].vid
        check_route_connectivity(net, (), p, p)

    def test_empty_route_distinct_rejected(self):
        net = linear_array(2)
        a, b = (p.vid for p in net.processors())
        with pytest.raises(ValidationError):
            check_route_connectivity(net, (), a, b)

    def test_valid_route(self):
        net = linear_array(3)
        ps = [p.vid for p in net.processors()]
        route = tuple(l.lid for l in bfs_route(net, ps[0], ps[2]))
        check_route_connectivity(net, route, ps[0], ps[2])

    def test_wrong_destination_rejected(self):
        net = linear_array(3)
        ps = [p.vid for p in net.processors()]
        route = tuple(l.lid for l in bfs_route(net, ps[0], ps[1]))
        with pytest.raises(ValidationError):
            check_route_connectivity(net, route, ps[0], ps[2])

    def test_unreachable_hop_rejected(self):
        net = linear_array(3)
        ps = [p.vid for p in net.processors()]
        far = tuple(l.lid for l in bfs_route(net, ps[1], ps[2]))
        with pytest.raises(ValidationError):
            check_route_connectivity(net, far, ps[0], ps[2])

    def test_bus_route(self):
        net = shared_bus(4)
        ps = [p.vid for p in net.processors()]
        (bus,) = list(net.links())
        check_route_connectivity(net, (bus.lid,), ps[0], ps[2])
