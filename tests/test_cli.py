"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestInfo:
    def test_lists_registries(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "oihsa" in out
        assert "random_wan" in out
        assert "gaussian_elimination" in out


class TestSchedule:
    def test_random_workload(self, capsys):
        assert main(["schedule", "--tasks", "10", "--procs", "4", "--no-gantt"]) == 0
        assert "makespan" in capsys.readouterr().out

    def test_kernel_workload(self, capsys):
        assert (
            main(
                [
                    "schedule", "--kernel", "fork_join", "--size", "4",
                    "--algorithm", "ba", "--procs", "4", "--ccr", "1.5",
                    "--no-gantt",
                ]
            )
            == 0
        )
        assert "ba:" in capsys.readouterr().out

    def test_gantt_included_by_default(self, capsys):
        main(["schedule", "--tasks", "6", "--procs", "2"])
        assert "processors:" in capsys.readouterr().out

    def test_every_algorithm(self, capsys):
        for algo in ("classic", "ba", "oihsa", "bbsa"):
            assert main(["schedule", "--tasks", "8", "--algorithm", algo, "--no-gantt"]) == 0


class TestAblation:
    def test_named(self, capsys):
        assert main(["ablation", "edge_order", "--procs", "4"]) == 0
        assert "descending-cost" in capsys.readouterr().out


class TestFigures:
    def test_smoke_single_figure(self, capsys):
        assert main(["figures", "--scale", "smoke", "--only", "figure1"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out and "shape checks" in out


class TestExport:
    @pytest.mark.parametrize("fmt", ["svg", "trace", "json"])
    def test_export_formats(self, tmp_path, capsys, fmt):
        out = tmp_path / f"schedule.{fmt}"
        assert (
            main(
                [
                    "export", str(out), "--format", fmt, "--tasks", "8",
                    "--procs", "4", "--ccr", "1.0",
                ]
            )
            == 0
        )
        assert out.exists() and out.stat().st_size > 0
        assert "wrote" in capsys.readouterr().out

    def test_exported_json_reloads(self, tmp_path):
        from repro.core.io import schedule_from_json
        from repro.core.validate import validate_schedule

        out = tmp_path / "s.json"
        main(["export", str(out), "--format", "json", "--tasks", "6", "--procs", "3"])
        validate_schedule(schedule_from_json(out.read_text()))
