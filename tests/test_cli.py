"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestInfo:
    def test_lists_registries(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "oihsa" in out
        assert "random_wan" in out
        assert "gaussian_elimination" in out


class TestSchedule:
    def test_random_workload(self, capsys):
        assert main(["schedule", "--tasks", "10", "--procs", "4", "--no-gantt"]) == 0
        assert "makespan" in capsys.readouterr().out

    def test_kernel_workload(self, capsys):
        assert (
            main(
                [
                    "schedule", "--kernel", "fork_join", "--size", "4",
                    "--algorithm", "ba", "--procs", "4", "--ccr", "1.5",
                    "--no-gantt",
                ]
            )
            == 0
        )
        assert "ba:" in capsys.readouterr().out

    def test_gantt_included_by_default(self, capsys):
        main(["schedule", "--tasks", "6", "--procs", "2"])
        assert "processors:" in capsys.readouterr().out

    def test_every_algorithm(self, capsys):
        for algo in ("classic", "ba", "oihsa", "bbsa"):
            assert main(["schedule", "--tasks", "8", "--algorithm", algo, "--no-gantt"]) == 0


class TestScheduleStats:
    def test_stats_prints_instrumentation(self, capsys):
        assert (
            main(
                [
                    "schedule", "--algorithm", "oihsa", "--tasks", "12",
                    "--procs", "4", "--ccr", "2.0", "--stats", "--no-gantt",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "instrumentation:" in out
        assert "insertion.probes" in out
        assert "routing.relaxations" in out

    def test_obs_left_disabled(self, capsys):
        from repro import obs

        main(["schedule", "--tasks", "8", "--procs", "4", "--stats", "--no-gantt"])
        assert not obs.is_enabled()
        obs.reset()

    def test_trace_out_round_trips(self, tmp_path, capsys):
        from repro.obs import EVENT_KINDS, read_jsonl

        path = tmp_path / "events.jsonl"
        assert (
            main(
                [
                    "schedule", "--algorithm", "oihsa", "--tasks", "12",
                    "--procs", "4", "--ccr", "2.0", "--no-gantt",
                    "--trace-out", str(path),
                ]
            )
            == 0
        )
        events = read_jsonl(str(path))
        assert events
        assert {e.kind for e in events} <= EVENT_KINDS
        assert "wrote decision-event log" in capsys.readouterr().out


class TestEvalKernel:
    """The ``--eval-kernel`` switch: selection, stats surface, and guards."""

    def test_python_kernel_shown_in_stats(self, capsys):
        assert (
            main(
                [
                    "schedule", "--algorithm", "annealing", "--tasks", "8",
                    "--procs", "4", "--eval-kernel", "python", "--stats",
                    "--no-gantt",
                ]
            )
            == 0
        )
        assert "evaluation backend: array, kernel: python" in capsys.readouterr().out

    def test_auto_resolution_shown_in_stats(self, capsys):
        from repro.core.kernelreg import active_kernel

        assert (
            main(
                [
                    "schedule", "--algorithm", "annealing", "--tasks", "8",
                    "--procs", "4", "--stats", "--no-gantt",
                ]
            )
            == 0
        )
        expected = f"kernel: {active_kernel('auto')}"
        assert expected in capsys.readouterr().out

    def test_rejected_for_non_search_algorithms(self, capsys):
        assert (
            main(
                [
                    "schedule", "--algorithm", "oihsa", "--tasks", "8",
                    "--eval-kernel", "python", "--no-gantt",
                ]
            )
            == 2
        )
        assert "mapping-search" in capsys.readouterr().out

    def test_rejected_for_object_backend(self, capsys):
        assert (
            main(
                [
                    "schedule", "--algorithm", "annealing", "--tasks", "8",
                    "--backend", "object", "--eval-kernel", "python",
                    "--no-gantt",
                ]
            )
            == 2
        )
        assert "array backend" in capsys.readouterr().out

    def test_profile_shows_kernel_in_backend_column(self, capsys):
        assert (
            main(
                [
                    "profile", "--scale", "smoke", "--algorithms", "annealing",
                    "--eval-kernel", "python",
                ]
            )
            == 0
        )
        assert "array/python" in capsys.readouterr().out


class TestProfile:
    def test_smoke_breakdown_table(self, capsys):
        assert (
            main(["profile", "--scale", "smoke", "--algorithms", "ba", "oihsa"])
            == 0
        )
        out = capsys.readouterr().out
        assert "routing" in out and "insertion" in out and "proc-select" in out
        assert "ba" in out and "oihsa" in out

    def test_unknown_algorithm_fails(self, capsys):
        assert main(["profile", "--scale", "smoke", "--algorithms", "nope"]) == 2
        assert "unknown algorithm" in capsys.readouterr().out

    def test_obs_left_disabled(self, capsys):
        from repro import obs

        main(["profile", "--scale", "smoke", "--algorithms", "classic"])
        assert not obs.is_enabled()
        obs.reset()


class TestAblation:
    def test_named(self, capsys):
        assert main(["ablation", "edge_order", "--procs", "4"]) == 0
        assert "descending-cost" in capsys.readouterr().out


class TestFigures:
    def test_smoke_single_figure(self, tmp_path, capsys):
        assert (
            main(
                [
                    "figures", "--scale", "smoke", "--only", "figure1",
                    "--cache-dir", str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "figure1" in out and "shape checks" in out


class TestFiguresParallelCache:
    ARGS = ["figures", "--scale", "smoke", "--only", "figure1"]

    def test_jobs_2_matches_jobs_1(self, tmp_path, capsys):
        argv = self.ARGS + ["--cache-dir", str(tmp_path)]
        assert main(argv + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_cache_dir_populated_and_reported(self, tmp_path, capsys):
        assert main(self.ARGS + ["--cache-dir", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert list(tmp_path.glob("*/*.json")), "cache dir should hold records"
        assert "[cache]" in captured.err
        assert "[cache]" not in captured.out  # stdout stays cache-agnostic

    def test_no_cache_leaves_dir_untouched(self, tmp_path, capsys):
        assert (
            main(self.ARGS + ["--no-cache", "--cache-dir", str(tmp_path)]) == 0
        )
        captured = capsys.readouterr()
        assert not list(tmp_path.rglob("*.json"))
        assert "[cache]" not in captured.err

    def test_warm_cache_rerun_matches_cold(self, tmp_path, capsys):
        argv = self.ARGS + ["--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert captured.out == cold
        assert "0 misses" in captured.err

    def test_bad_jobs_rejected(self, capsys):
        assert main(self.ARGS + ["--jobs", "0"]) == 2
        assert "--jobs must be >= 1" in capsys.readouterr().err


class TestExport:
    @pytest.mark.parametrize("fmt", ["svg", "trace", "json"])
    def test_export_formats(self, tmp_path, capsys, fmt):
        out = tmp_path / f"schedule.{fmt}"
        assert (
            main(
                [
                    "export", str(out), "--format", fmt, "--tasks", "8",
                    "--procs", "4", "--ccr", "1.0",
                ]
            )
            == 0
        )
        assert out.exists() and out.stat().st_size > 0
        assert "wrote" in capsys.readouterr().out

    def test_exported_json_reloads(self, tmp_path):
        from repro.core.io import schedule_from_json
        from repro.core.validate import validate_schedule

        out = tmp_path / "s.json"
        main(["export", str(out), "--format", "json", "--tasks", "6", "--procs", "3"])
        validate_schedule(schedule_from_json(out.read_text()))


class TestExplainCli:
    def test_text_report(self, capsys):
        assert main(["explain", "--tasks", "10", "--procs", "4",
                     "--algorithm", "ba"]) == 0
        out = capsys.readouterr().out
        assert "attributed along the binding chain" in out
        assert "binding resources" in out
        assert "utilization over the whole schedule" in out
        assert "binding chain" in out

    def test_no_chain_hides_the_segment_table(self, capsys):
        assert main(["explain", "--tasks", "10", "--procs", "4",
                     "--no-chain"]) == 0
        out = capsys.readouterr().out
        assert "binding resources" in out
        assert "binding chain:" not in out

    def test_json_attribution_sums_to_makespan(self, capsys):
        import json

        assert main(["explain", "--tasks", "12", "--procs", "4",
                     "--algorithm", "oihsa", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["segments"]
        assert sum(doc["by_category"].values()) == pytest.approx(
            doc["makespan"], abs=1e-9
        )

    def test_trace_out_writes_critical_path_track(self, tmp_path, capsys):
        import json

        path = tmp_path / "explain.trace.json"
        assert main(["explain", "--tasks", "10", "--procs", "4",
                     "--trace-out", str(path)]) == 0
        doc = json.loads(path.read_text())
        names = [
            ev["args"]["name"]
            for ev in doc["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "process_name"
        ]
        assert "critical path" in names


def _ledger_run_id(err: str) -> str:
    for line in err.splitlines():
        if line.startswith("[ledger] run "):
            return line.split()[-1]
    raise AssertionError(f"no ledger line in stderr: {err!r}")


class TestRunsCli:
    def _schedule(self, capsys, *extra) -> str:
        assert main(["schedule", "--tasks", "8", "--procs", "4",
                     "--no-gantt", *extra]) == 0
        return _ledger_run_id(capsys.readouterr().err)

    def test_schedule_appends_and_list_shows_it(self, capsys):
        run_id = self._schedule(capsys)
        assert main(["runs", "list"]) == 0
        out = capsys.readouterr().out
        assert run_id in out
        assert "schedule" in out

    def test_no_runlog_leaves_the_ledger_empty(self, capsys):
        assert main(["schedule", "--tasks", "8", "--no-gantt",
                     "--no-runlog"]) == 0
        captured = capsys.readouterr()
        assert "[ledger]" not in captured.err
        assert main(["runs", "list"]) == 0
        assert "(no runs recorded" in capsys.readouterr().out

    def test_stdout_is_identical_with_and_without_runlog(self, capsys):
        assert main(["schedule", "--tasks", "8", "--no-gantt"]) == 0
        with_ledger = capsys.readouterr().out
        assert main(["schedule", "--tasks", "8", "--no-gantt",
                     "--no-runlog"]) == 0
        assert capsys.readouterr().out == with_ledger

    def test_show_prints_the_record(self, capsys):
        run_id = self._schedule(capsys, "--algorithm", "ba")
        assert main(["runs", "show", run_id[:6]]) == 0
        out = capsys.readouterr().out
        assert f"run {run_id}" in out
        assert "makespan[ba]" in out

    def test_diff_two_runs(self, capsys):
        a = self._schedule(capsys, "--algorithm", "ba")
        b = self._schedule(capsys, "--algorithm", "oihsa", "--seed", "2")
        assert main(["runs", "diff", a, b]) == 0
        out = capsys.readouterr().out
        assert f"a: run {a}" in out
        assert "note: configs differ" in out
        assert "makespan[ba]" in out and "makespan[oihsa]" in out

    def test_unknown_run_id_fails_cleanly(self, capsys):
        assert main(["runs", "show", "zzzz"]) == 1
        assert "no ledger record" in capsys.readouterr().err

    def test_compare_regression_then_ok_from_ledger(self, tmp_path, capsys):
        import json

        # A deliberately wrong baseline: the fresh bench run (ba only, to
        # stay fast) regresses against it and exits non-zero...
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps({"algorithms": {"ba": {"makespan": 1.0}}}))
        assert main(["runs", "compare", "--baseline", str(bad)]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "running the bench workload fresh" in captured.err
        # ...and appended its record; a corrected baseline then compares OK
        # straight from the ledger (no fresh run, nothing on stderr).
        from repro.obs.runlog import RunLedger

        record = RunLedger().latest(kind="bench")
        good = tmp_path / "BENCH_good.json"
        good.write_text(json.dumps(
            {"algorithms": {"ba": {
                "makespan": record.makespans["ba"],
                "counters": record.meta["counters"]["ba"],
            }}}
        ))
        assert main(["runs", "compare", "--baseline", str(good)]) == 0
        captured = capsys.readouterr()
        assert "OK: 1 algorithms within tolerance" in captured.out
        assert "fresh" not in captured.err


class TestTopoCli:
    """The ``repro topo build / info / validate`` fabric verbs."""

    def test_build_emits_topology_json(self, capsys):
        assert main(["topo", "build", "fat_tree", "--k", "4"]) == 0
        out = capsys.readouterr().out
        import json

        doc = json.loads(out)
        assert doc["format"] == "repro.network/v1"
        assert doc["name"] == "fat_tree-k4-16p"
        kinds = [v["kind"] for v in doc["vertices"]]
        assert kinds.count("processor") == 16
        assert kinds.count("switch") == 20

    def test_build_is_deterministic(self, capsys):
        argv = ["topo", "build", "torus", "--dims", "3", "3"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_build_writes_file(self, tmp_path, capsys):
        out_path = tmp_path / "fabric.json"
        assert main(["topo", "build", "leaf_spine", "--leaves", "2",
                     "--spines", "2", "--hosts-per-leaf", "3",
                     "-o", str(out_path)]) == 0
        assert "wrote leaf_spine-2x2-6p" in capsys.readouterr().out
        from repro.network.io import topology_from_json

        net = topology_from_json(out_path.read_text())
        assert len(net.processors()) == 6

    def test_info_prints_closed_form_structure(self, capsys):
        assert main(["topo", "info", "fat_tree", "--k", "4"]) == 0
        out = capsys.readouterr().out
        assert "fabric:     fat_tree" in out
        assert "processors: 16" in out
        assert "switches:   20" in out
        assert "diameter:   <= 6 hops" in out
        assert "ecmp width: up to 4" in out

    def test_info_sizes_fabric_from_procs(self, capsys):
        assert main(["topo", "info", "leaf_spine", "--procs", "40"]) == 0
        out = capsys.readouterr().out
        assert "processors: 40" in out

    def test_validate_ok(self, capsys):
        assert main(["topo", "validate", "torus", "--dims", "2", "3",
                     "--hosts-per-node", "2"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("OK: torus-2x3-12p valid")
        assert "identical to flat BFS" in out

    def test_validate_checks_file_round_trip(self, tmp_path, capsys):
        out_path = tmp_path / "ls.json"
        assert main(["topo", "build", "leaf_spine", "--procs", "10",
                     "-o", str(out_path)]) == 0
        capsys.readouterr()
        assert main(["topo", "validate", "leaf_spine", "--procs", "10",
                     "--file", str(out_path)]) == 0
        assert "matches" in capsys.readouterr().out

    def test_validate_flags_tampered_file(self, tmp_path, capsys):
        out_path = tmp_path / "ls.json"
        assert main(["topo", "build", "leaf_spine", "--procs", "10",
                     "-o", str(out_path)]) == 0
        capsys.readouterr()
        out_path.write_text(out_path.read_text().replace('"speed": 1.0',
                                                         '"speed": 2.0', 1))
        assert main(["topo", "validate", "leaf_spine", "--procs", "10",
                     "--file", str(out_path)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_bad_parameters_exit_2(self, capsys):
        assert main(["topo", "build", "fat_tree", "--k", "3"]) == 2
        assert "even" in capsys.readouterr().err

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["topo"])

    def test_figures_accepts_fabric_topology(self, capsys):
        assert main(["figures", "--scale", "smoke", "--only", "figure2",
                     "--topology", "torus", "--no-cache", "--no-runlog",
                     "--jobs", "2"]) == 0
        assert "figure2" in capsys.readouterr().out
