"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestInfo:
    def test_lists_registries(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "oihsa" in out
        assert "random_wan" in out
        assert "gaussian_elimination" in out


class TestSchedule:
    def test_random_workload(self, capsys):
        assert main(["schedule", "--tasks", "10", "--procs", "4", "--no-gantt"]) == 0
        assert "makespan" in capsys.readouterr().out

    def test_kernel_workload(self, capsys):
        assert (
            main(
                [
                    "schedule", "--kernel", "fork_join", "--size", "4",
                    "--algorithm", "ba", "--procs", "4", "--ccr", "1.5",
                    "--no-gantt",
                ]
            )
            == 0
        )
        assert "ba:" in capsys.readouterr().out

    def test_gantt_included_by_default(self, capsys):
        main(["schedule", "--tasks", "6", "--procs", "2"])
        assert "processors:" in capsys.readouterr().out

    def test_every_algorithm(self, capsys):
        for algo in ("classic", "ba", "oihsa", "bbsa"):
            assert main(["schedule", "--tasks", "8", "--algorithm", algo, "--no-gantt"]) == 0


class TestScheduleStats:
    def test_stats_prints_instrumentation(self, capsys):
        assert (
            main(
                [
                    "schedule", "--algorithm", "oihsa", "--tasks", "12",
                    "--procs", "4", "--ccr", "2.0", "--stats", "--no-gantt",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "instrumentation:" in out
        assert "insertion.probes" in out
        assert "routing.relaxations" in out

    def test_obs_left_disabled(self, capsys):
        from repro import obs

        main(["schedule", "--tasks", "8", "--procs", "4", "--stats", "--no-gantt"])
        assert not obs.is_enabled()
        obs.reset()

    def test_trace_out_round_trips(self, tmp_path, capsys):
        from repro.obs import EVENT_KINDS, read_jsonl

        path = tmp_path / "events.jsonl"
        assert (
            main(
                [
                    "schedule", "--algorithm", "oihsa", "--tasks", "12",
                    "--procs", "4", "--ccr", "2.0", "--no-gantt",
                    "--trace-out", str(path),
                ]
            )
            == 0
        )
        events = read_jsonl(str(path))
        assert events
        assert {e.kind for e in events} <= EVENT_KINDS
        assert "wrote decision-event log" in capsys.readouterr().out


class TestProfile:
    def test_smoke_breakdown_table(self, capsys):
        assert (
            main(["profile", "--scale", "smoke", "--algorithms", "ba", "oihsa"])
            == 0
        )
        out = capsys.readouterr().out
        assert "routing" in out and "insertion" in out and "proc-select" in out
        assert "ba" in out and "oihsa" in out

    def test_unknown_algorithm_fails(self, capsys):
        assert main(["profile", "--scale", "smoke", "--algorithms", "nope"]) == 2
        assert "unknown algorithm" in capsys.readouterr().out

    def test_obs_left_disabled(self, capsys):
        from repro import obs

        main(["profile", "--scale", "smoke", "--algorithms", "classic"])
        assert not obs.is_enabled()
        obs.reset()


class TestAblation:
    def test_named(self, capsys):
        assert main(["ablation", "edge_order", "--procs", "4"]) == 0
        assert "descending-cost" in capsys.readouterr().out


class TestFigures:
    def test_smoke_single_figure(self, tmp_path, capsys):
        assert (
            main(
                [
                    "figures", "--scale", "smoke", "--only", "figure1",
                    "--cache-dir", str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "figure1" in out and "shape checks" in out


class TestFiguresParallelCache:
    ARGS = ["figures", "--scale", "smoke", "--only", "figure1"]

    def test_jobs_2_matches_jobs_1(self, tmp_path, capsys):
        argv = self.ARGS + ["--cache-dir", str(tmp_path)]
        assert main(argv + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_cache_dir_populated_and_reported(self, tmp_path, capsys):
        assert main(self.ARGS + ["--cache-dir", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert list(tmp_path.glob("*/*.json")), "cache dir should hold records"
        assert "[cache]" in captured.err
        assert "[cache]" not in captured.out  # stdout stays cache-agnostic

    def test_no_cache_leaves_dir_untouched(self, tmp_path, capsys):
        assert (
            main(self.ARGS + ["--no-cache", "--cache-dir", str(tmp_path)]) == 0
        )
        captured = capsys.readouterr()
        assert not list(tmp_path.rglob("*.json"))
        assert "[cache]" not in captured.err

    def test_warm_cache_rerun_matches_cold(self, tmp_path, capsys):
        argv = self.ARGS + ["--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert captured.out == cold
        assert "0 misses" in captured.err

    def test_bad_jobs_rejected(self, capsys):
        assert main(self.ARGS + ["--jobs", "0"]) == 2
        assert "--jobs must be >= 1" in capsys.readouterr().err


class TestExport:
    @pytest.mark.parametrize("fmt", ["svg", "trace", "json"])
    def test_export_formats(self, tmp_path, capsys, fmt):
        out = tmp_path / f"schedule.{fmt}"
        assert (
            main(
                [
                    "export", str(out), "--format", fmt, "--tasks", "8",
                    "--procs", "4", "--ccr", "1.0",
                ]
            )
            == 0
        )
        assert out.exists() and out.stat().st_size > 0
        assert "wrote" in capsys.readouterr().out

    def test_exported_json_reloads(self, tmp_path):
        from repro.core.io import schedule_from_json
        from repro.core.validate import validate_schedule

        out = tmp_path / "s.json"
        main(["export", str(out), "--format", "json", "--tasks", "6", "--procs", "3"])
        validate_schedule(schedule_from_json(out.read_text()))
