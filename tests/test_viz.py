"""Tests for repro.viz (gantt charts and reports)."""

import pytest

from repro.core.ba import BAScheduler
from repro.core.bbsa import BBSAScheduler
from repro.core.classic import ClassicScheduler
from repro.viz.gantt import link_gantt, processor_gantt
from repro.viz.report import comparison_report, schedule_report


@pytest.fixture
def schedules(diamond4, net4):
    return [
        cls().schedule(diamond4, net4)
        for cls in (BAScheduler, BBSAScheduler, ClassicScheduler)
    ]


class TestGantt:
    def test_processor_gantt_rows(self, schedules, net4):
        out = processor_gantt(schedules[0])
        assert out.count("|") >= len(net4.processors())
        assert "t0" in out

    def test_all_tasks_appear(self, schedules, diamond4):
        out = processor_gantt(schedules[0], width=120)
        for tid in diamond4.task_ids():
            assert f"t{tid}" in out

    def test_link_gantt_slot_based(self, schedules):
        out = link_gantt(schedules[0])
        assert "L" in out

    def test_link_gantt_bandwidth(self, schedules):
        out = link_gantt(schedules[1])
        assert "%" in out or "no links used" in out

    def test_link_gantt_classic(self, schedules):
        assert "contention-free" in link_gantt(schedules[2])

    def test_width_respected(self, schedules):
        narrow = processor_gantt(schedules[0], width=30)
        assert max(len(line) for line in narrow.splitlines()) <= 30 + 20


class TestReports:
    def test_schedule_report_sections(self, schedules):
        out = schedule_report(schedules[0])
        assert "makespan" in out
        assert "processors:" in out

    def test_schedule_report_no_gantt(self, schedules):
        out = schedule_report(schedules[0], gantt=False)
        assert "processors:" not in out

    def test_comparison_report(self, schedules):
        out = comparison_report(schedules)
        assert "ba" in out and "bbsa" in out and "classic" in out
        assert "+0.0%" in out  # first row compares to itself

    def test_comparison_empty(self):
        assert comparison_report([]) == "(no schedules)"
