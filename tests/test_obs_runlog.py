"""Run-ledger tests: record round-trips, atomic sharded appends, lookup
semantics, and the ``compare_to_baseline`` regression verdict."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ObsError
from repro.obs import runlog
from repro.obs.runlog import (
    RUNLOG_SCHEMA,
    RunLedger,
    RunRecord,
    compare_to_baseline,
    fingerprint,
    new_record,
)


def _record(**kwargs) -> RunRecord:
    defaults = dict(fingerprint_doc={"workload": "chain3"})
    defaults.update(kwargs)
    return new_record("schedule", **defaults)


class TestRecordAssembly:
    def test_new_record_stamps_identity_fields(self):
        rec = _record(makespans={"ba": 12.5}, wall_s=0.25)
        assert rec.kind == "schedule"
        assert len(rec.run_id) == 12
        assert rec.schema == RUNLOG_SCHEMA
        assert rec.fingerprint == fingerprint({"workload": "chain3"})
        assert rec.makespans == {"ba": 12.5}
        assert set(rec.env) == {"python", "platform", "repro"}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ObsError, match="kind"):
            new_record("banana", fingerprint_doc={})

    def test_exactly_one_fingerprint_source(self):
        with pytest.raises(ObsError, match="exactly one"):
            new_record("schedule")
        with pytest.raises(ObsError, match="exactly one"):
            new_record("schedule", fingerprint_doc={}, config_fingerprint="ab")

    def test_fingerprint_is_canonical(self):
        # key order must not matter; any value change must.
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})
        assert fingerprint({"a": 1}) != fingerprint({"a": 2})

    def test_json_round_trip(self):
        rec = _record(
            makespans={"oihsa": 9.0},
            metrics={"counters": {"routing.bfs_routes": 4.0}},
            timings={"schedule.total": {"total": 0.5, "count": 1.0}},
            meta={"n_tasks": 3},
        )
        back = RunRecord.from_dict(json.loads(rec.to_json()))
        assert back == rec

    def test_from_dict_ignores_unknown_fields(self):
        rec = _record()
        doc = json.loads(rec.to_json())
        doc["added_in_schema_9"] = {"x": 1}
        assert RunRecord.from_dict(doc) == rec

    def test_to_text_mentions_the_essentials(self):
        rec = _record(makespans={"ba": 12.5}, meta={"figure": "figure1"})
        text = rec.to_text()
        assert rec.run_id in text
        assert "makespan[ba] = 12.5" in text
        assert "figure1" in text


class TestLedgerStore:
    def test_append_creates_shard_named_after_run_id(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        rec = ledger.append(_record())
        shard = tmp_path / "runs" / f"ledger-{rec.run_id[:2]}.jsonl"
        assert shard.is_file()
        assert json.loads(shard.read_text())["run_id"] == rec.run_id

    def test_append_is_append_only(self, tmp_path):
        ledger = RunLedger(tmp_path)
        first = ledger.append(_record())
        # force the second record into the same shard
        second = _record()
        second.run_id = first.run_id[:2] + "0000000000"
        ledger.append(second)
        lines = ledger._shard_path(first.run_id).read_text().splitlines()
        assert [json.loads(ln)["run_id"] for ln in lines] == [
            first.run_id,
            second.run_id,
        ]

    def test_records_sorted_and_filtered_by_kind(self, tmp_path):
        ledger = RunLedger(tmp_path)
        a = ledger.append(_record())
        b = ledger.append(new_record("bench", fingerprint_doc={"bench": 1}))
        assert [r.run_id for r in ledger.records()] == sorted(
            [a.run_id, b.run_id],
            key=lambda rid: next(
                (r.created_at, r.run_id) for r in (a, b) if r.run_id == rid
            ),
        )
        assert [r.run_id for r in ledger.records(kind="bench")] == [b.run_id]
        assert ledger.latest(kind="bench").run_id == b.run_id
        assert ledger.latest(kind="sweep") is None

    def test_get_by_unique_prefix_and_ambiguity(self, tmp_path):
        ledger = RunLedger(tmp_path)
        rec = ledger.append(_record())
        twin = _record()
        twin.run_id = rec.run_id[:6] + "ffffff"
        ledger.append(twin)
        assert ledger.get(rec.run_id).run_id == rec.run_id
        with pytest.raises(ObsError, match="ambiguous"):
            ledger.get(rec.run_id[:6])
        with pytest.raises(ObsError, match="no ledger record"):
            ledger.get("zzzz")

    def test_newer_schema_records_are_skipped(self, tmp_path):
        ledger = RunLedger(tmp_path)
        rec = _record()
        rec.schema = RUNLOG_SCHEMA + 1
        ledger.append(rec)
        assert ledger.records() == []

    def test_malformed_line_reports_path_and_lineno(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(_record())
        shard = next((tmp_path).glob("ledger-*.jsonl"))
        with open(shard, "a") as fh:
            fh.write("{not json\n")
        with pytest.raises(ObsError, match=rf"{shard.name}:2"):
            ledger.records()

    def test_module_level_append_respects_env_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "env-runs"))
        rec = runlog.append(_record())
        assert RunLedger().get(rec.run_id).run_id == rec.run_id
        assert (tmp_path / "env-runs").is_dir()

    def test_concurrent_style_appends_interleave_whole_lines(self, tmp_path):
        # Two ledgers on the same root (as parallel CI jobs would be): every
        # line must parse — O_APPEND + single write means no torn lines.
        a, b = RunLedger(tmp_path), RunLedger(tmp_path)
        for i in range(10):
            (a if i % 2 else b).append(_record(meta={"i": i}))
        recs = RunLedger(tmp_path).records()
        assert sorted(r.meta["i"] for r in recs) == list(range(10))


def _bench_baseline() -> dict:
    return {
        "algorithms": {
            "ba": {
                "makespan": 100.0,
                "counters": {"routing.bfs_routes": 50.0},
                "wall_s": 0.10,
            },
            "oihsa": {
                "makespan": 80.0,
                "counters": {"routing.bfs_routes": 60.0},
                "wall_s": 0.20,
            },
        }
    }


def _bench_record(makespans, counters=None, wall=None) -> RunRecord:
    return new_record(
        "bench",
        fingerprint_doc={"bench": "x"},
        makespans=makespans,
        meta={"counters": counters or {}, "wall_s": wall or {}},
    )


class TestCompareToBaseline:
    def test_matching_run_produces_no_findings(self):
        rec = _bench_record(
            {"ba": 100.0, "oihsa": 80.0},
            counters={
                "ba": {"routing.bfs_routes": 50.0},
                "oihsa": {"routing.bfs_routes": 60.0},
            },
        )
        assert compare_to_baseline(rec, _bench_baseline()) == []

    def test_makespan_drift_fails_at_zero_tolerance(self):
        rec = _bench_record({"ba": 100.0, "oihsa": 80.0001})
        findings = compare_to_baseline(rec, _bench_baseline())
        assert [f.field for f in findings] == ["makespan"]
        assert findings[0].algorithm == "oihsa"

    def test_rel_tol_absorbs_small_drift(self):
        rec = _bench_record({"ba": 100.0, "oihsa": 80.0001})
        assert compare_to_baseline(rec, _bench_baseline(), rel_tol=1e-3) == []

    def test_missing_algorithm_is_a_coverage_finding(self):
        rec = _bench_record({"ba": 100.0})
        findings = compare_to_baseline(rec, _bench_baseline())
        assert [(f.algorithm, f.field) for f in findings] == [
            ("oihsa", "coverage")
        ]

    def test_counter_drift_detected(self):
        rec = _bench_record(
            {"ba": 100.0, "oihsa": 80.0},
            counters={
                "ba": {"routing.bfs_routes": 51.0},
                "oihsa": {"routing.bfs_routes": 60.0},
            },
        )
        findings = compare_to_baseline(rec, _bench_baseline())
        assert [f.field for f in findings] == ["counter:routing.bfs_routes"]
        assert findings[0].algorithm == "ba"

    def test_wall_gated_only_when_tolerance_given(self):
        rec = _bench_record(
            {"ba": 100.0, "oihsa": 80.0},
            counters={
                "ba": {"routing.bfs_routes": 50.0},
                "oihsa": {"routing.bfs_routes": 60.0},
            },
            wall={"ba": 0.50, "oihsa": 0.20},
        )
        assert compare_to_baseline(rec, _bench_baseline()) == []
        findings = compare_to_baseline(rec, _bench_baseline(), wall_tol=2.0)
        assert [f.field for f in findings] == ["wall_s"]

    def test_non_bench_baseline_rejected(self):
        with pytest.raises(ObsError, match="algorithms"):
            compare_to_baseline(_bench_record({}), {"makespans": {}})
