"""Unit tests for repro.taskgraph.priorities."""

import pytest

from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.kernels import fork_join, pipeline
from repro.taskgraph.priorities import (
    bottom_levels,
    critical_path,
    critical_path_length,
    priority_list,
    top_levels,
)


class TestBottomLevels:
    def test_chain(self, chain3):
        bl = bottom_levels(chain3)
        # bl(t2)=4, bl(t1)=3+6+4=13, bl(t0)=2+5+13=20
        assert bl == {2: 4.0, 1: 13.0, 0: 20.0}

    def test_diamond_takes_max_branch(self, diamond4):
        bl = bottom_levels(diamond4)
        assert bl[3] == 1.0
        assert bl[1] == 4.0 + 30.0  # w1 + c(1,3) + bl(3)
        assert bl[2] == 45.0
        assert bl[0] == 2.0 + max(10 + 34, 20 + 45)

    def test_sink_bl_is_weight(self, diamond4):
        assert bottom_levels(diamond4)[3] == diamond4.task(3).weight


class TestTopLevels:
    def test_source_is_zero(self, diamond4):
        assert top_levels(diamond4)[0] == 0.0

    def test_chain(self, chain3):
        tl = top_levels(chain3)
        assert tl == {0: 0.0, 1: 7.0, 2: 16.0}

    def test_tl_plus_bl_bounded_by_cp(self, diamond4):
        tl, bl = top_levels(diamond4), bottom_levels(diamond4)
        cp = critical_path_length(diamond4)
        for t in diamond4.task_ids():
            assert tl[t] + bl[t] <= cp + 1e-9


class TestCriticalPath:
    def test_chain_is_whole_path(self, chain3):
        assert critical_path(chain3) == [0, 1, 2]

    def test_diamond_picks_heavier_branch(self, diamond4):
        assert critical_path(diamond4) == [0, 2, 3]

    def test_length_matches_path(self, diamond4):
        path = critical_path(diamond4)
        total = sum(diamond4.task(t).weight for t in path) + sum(
            diamond4.edge(a, b).cost for a, b in zip(path, path[1:])
        )
        assert total == critical_path_length(diamond4)

    def test_empty_graph(self):
        assert critical_path(TaskGraph()) == []
        assert critical_path_length(TaskGraph()) == 0.0

    def test_single_task(self):
        g = TaskGraph()
        g.add_task(0, 5.0)
        assert critical_path(g) == [0]
        assert critical_path_length(g) == 5.0


class TestPriorityList:
    def test_is_topological(self, diamond4):
        order = priority_list(diamond4)
        pos = {t: i for i, t in enumerate(order)}
        for e in diamond4.edges():
            assert pos[e.src] < pos[e.dst]

    def test_descending_bl_within_ready_set(self, diamond4):
        # t2 has higher bl than t1, so it is released first.
        order = priority_list(diamond4)
        assert order.index(2) < order.index(1)

    def test_covers_all_tasks(self):
        g = fork_join(10, rng=3)
        assert sorted(priority_list(g)) == sorted(g.task_ids())

    def test_pipeline_is_chain_order(self):
        g = pipeline(6, rng=1)
        assert priority_list(g) == list(range(6))

    def test_cycle_raises(self):
        from repro.exceptions import CycleError

        g = TaskGraph()
        g.add_task(0, 1)
        g.add_task(1, 1)
        g.add_edge(0, 1, 1)
        g.add_edge(1, 0, 1)
        with pytest.raises(CycleError):
            priority_list(g)
