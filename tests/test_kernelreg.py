"""Kernel registry: resolution, fallback observability, and provenance.

The differential suite (``test_batch_equivalence``) proves the kernels
bit-identical; this module covers the *selection* machinery of
:mod:`repro.core.kernelreg` — the three ``kernel=`` values, the observable
auto-fallback, and the provenance surfaced to ledgers and benches.  Tests
simulate both extension states (built / absent) by monkeypatching the
probe cache, so the whole module runs on toolchain-free machines.
"""

from __future__ import annotations

import hashlib

import pytest

from repro import obs
from repro.core import kernelreg
from repro.core._kernel import PyKernel
from repro.core.annealing import AnnealingScheduler
from repro.core.batch import BatchMappingEvaluator
from repro.core.genetic import GeneticScheduler
from repro.core.kernelreg import (
    KERNEL_CHOICES,
    active_kernel,
    compiled_available,
    kernel_provenance,
    resolve_kernel,
)
from repro.exceptions import SchedulingError
from repro.network.builders import fully_connected
from repro.obs import OBS
from repro.taskgraph.generators import random_layered_dag


@pytest.fixture
def no_extension(monkeypatch):
    """Simulate a toolchain-free machine: the probe finds no extension."""
    monkeypatch.setattr(kernelreg, "_probed", True)
    monkeypatch.setattr(kernelreg, "_compiled_factory", None)


@pytest.fixture
def fake_extension(monkeypatch):
    """Simulate a built extension (the reference kernel stands in for it)."""
    monkeypatch.setattr(kernelreg, "_probed", True)
    monkeypatch.setattr(kernelreg, "_compiled_factory", PyKernel)


def _workload():
    return random_layered_dag(8, rng=3, density=0.4), fully_connected(3, rng=3)


class TestResolution:
    def test_unknown_kernel_rejected_everywhere(self):
        for call in (resolve_kernel, active_kernel):
            with pytest.raises(SchedulingError, match="unknown kernel"):
                call("columnar")
        graph, net = _workload()
        with pytest.raises(SchedulingError, match="unknown kernel"):
            BatchMappingEvaluator(graph, net, kernel="columnar")
        with pytest.raises(SchedulingError, match="unknown kernel"):
            AnnealingScheduler(kernel="columnar")
        with pytest.raises(SchedulingError, match="unknown kernel"):
            GeneticScheduler(kernel="columnar")

    def test_python_always_resolves(self, no_extension):
        factory, info = resolve_kernel("python")
        assert factory is PyKernel
        assert (info.requested, info.active, info.fallback) == ("python", "python", False)
        assert not info.compiled_available

    def test_explicit_compiled_raises_when_absent(self, no_extension):
        with pytest.raises(SchedulingError, match="not built"):
            resolve_kernel("compiled")
        assert active_kernel("compiled") == "compiled"  # names, not availability

    def test_auto_prefers_compiled_when_available(self, fake_extension):
        factory, info = resolve_kernel("auto")
        assert factory is PyKernel  # the stand-in
        assert (info.active, info.fallback) == ("compiled", False)
        assert compiled_available()
        assert active_kernel("auto") == "compiled"

    def test_auto_falls_back_when_absent(self, no_extension):
        factory, info = resolve_kernel("auto")
        assert factory is PyKernel
        assert (info.requested, info.active, info.fallback) == ("auto", "python", True)
        assert active_kernel("auto") == "python"

    def test_choices_are_cli_surface(self):
        assert KERNEL_CHOICES == ("auto", "python", "compiled")


class TestFallbackObservability:
    def test_auto_fallback_bumps_counter(self, no_extension):
        obs.enable()
        obs.reset()
        try:
            resolve_kernel("auto")
            assert OBS.metrics.counter("kernel.auto_fallbacks").value == 1
            # Explicit python is not a fallback: no bump.
            resolve_kernel("python")
            assert OBS.metrics.counter("kernel.auto_fallbacks").value == 1
        finally:
            obs.disable()

    def test_evaluator_fallback_recorded_in_stats(self, no_extension):
        graph, net = _workload()
        procs = sorted(p.vid for p in net.processors())
        obs.enable()
        obs.reset()
        try:
            evaluator = BatchMappingEvaluator(graph, net, kernel="auto")
            evaluator.evaluate({t.tid: procs[0] for t in graph.tasks()})
            assert evaluator.kernel == "python"
            assert evaluator.kernel_info.fallback
            counters = obs.METRICS.snapshot()["counters"]
            assert counters.get("kernel.auto_fallbacks") == 1
        finally:
            obs.disable()


class TestProvenance:
    def test_provenance_shape(self, no_extension):
        doc = kernel_provenance("auto")
        assert doc == {
            "requested": "auto",
            "active": "python",
            "compiled_available": False,
        }

    def test_provenance_carries_build_meta_when_compiled(self):
        if not compiled_available():
            pytest.skip("repro.core._kernel_c extension not built")
        doc = kernel_provenance("auto")
        assert doc["active"] == "compiled"
        meta = doc.get("build")
        # The sidecar is written by kernel_build; an extension built some
        # other way legitimately has none.
        if meta is not None:
            assert meta["variant"] == "compiled"
            assert "source_sha256" in meta

    def test_evaluator_records_kernel(self):
        graph, net = _workload()
        evaluator = BatchMappingEvaluator(graph, net, kernel="python")
        assert evaluator.kernel == "python"
        assert evaluator.kernel_info.requested == "python"


class TestBitIdentity:
    """Checksum-level identity of the score streams (the bench's CI gate)."""

    def test_score_stream_checksums_match(self):
        if not compiled_available():
            pytest.skip("repro.core._kernel_c extension not built")
        graph, net = _workload()
        procs = sorted(p.vid for p in net.processors())
        tasks = sorted(t.tid for t in graph.tasks())
        stream = [
            {tid: procs[(seed + i) % len(procs)] for i, tid in enumerate(tasks)}
            for seed in range(12)
        ]

        def digest(kernel: str) -> str:
            evaluator = BatchMappingEvaluator(graph, net, kernel=kernel)
            scores = [evaluator.evaluate(m) for m in stream]
            return hashlib.sha256(
                "\n".join(repr(s) for s in scores).encode()
            ).hexdigest()

        assert digest("python") == digest("compiled")
