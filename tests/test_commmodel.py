"""Tests for the switching-mode / hop-delay communication model."""

import pytest

from repro.core.ba import BAScheduler
from repro.core.bbsa import BBSAScheduler
from repro.core.oihsa import OIHSAScheduler
from repro.core.validate import validate_schedule
from repro.exceptions import SchedulingError
from repro.linksched.commmodel import (
    CUT_THROUGH,
    STORE_AND_FORWARD,
    CommModel,
)
from repro.linksched.insertion import schedule_edge_basic
from repro.linksched.optimal_insertion import schedule_edge_optimal
from repro.linksched.state import LinkScheduleState
from repro.network.builders import linear_array, random_wan
from repro.network.routing import bfs_route
from repro.taskgraph.ccr import scale_to_ccr
from repro.taskgraph.kernels import fork_join


def route3(speed=1.0):
    net = linear_array(3, link_speed=speed)
    ps = [p.vid for p in net.processors()]
    return net, bfs_route(net, ps[0], ps[2])


class TestCommModel:
    def test_defaults(self):
        assert CUT_THROUGH.mode == "cut-through"
        assert CUT_THROUGH.hop_delay == 0.0
        assert STORE_AND_FORWARD.mode == "store-and-forward"

    def test_bad_mode_rejected(self):
        with pytest.raises(SchedulingError):
            CommModel(mode="telepathy")

    def test_negative_delay_rejected(self):
        with pytest.raises(SchedulingError):
            CommModel(hop_delay=-1.0)

    def test_next_constraints_cut_through(self):
        comm = CommModel(hop_delay=2.0)
        assert comm.next_constraints(10.0, 15.0) == (12.0, 17.0)

    def test_next_constraints_store_and_forward(self):
        comm = CommModel("store-and-forward", 2.0)
        assert comm.next_constraints(10.0, 15.0) == (17.0, 0.0)


class TestBasicInsertionModes:
    def test_store_and_forward_serializes_hops(self):
        net, route = route3()
        state = LinkScheduleState()
        arrival = schedule_edge_basic(
            state, (0, 1), route, 10.0, 0.0, STORE_AND_FORWARD
        )
        assert arrival == 20.0  # two full 10-long hops back to back
        s0 = state.slot_of((0, 1), route[0].lid)
        s1 = state.slot_of((0, 1), route[1].lid)
        assert s1.start == s0.finish

    def test_cut_through_overlaps_hops(self):
        net, route = route3()
        state = LinkScheduleState()
        arrival = schedule_edge_basic(state, (0, 1), route, 10.0, 0.0, CUT_THROUGH)
        assert arrival == 10.0

    def test_hop_delay_adds_per_hop(self):
        net, route = route3()
        state = LinkScheduleState()
        arrival = schedule_edge_basic(
            state, (0, 1), route, 10.0, 0.0, CommModel(hop_delay=3.0)
        )
        assert arrival == 13.0  # second hop shifted by one hop delay

    def test_store_and_forward_with_delay(self):
        net, route = route3()
        state = LinkScheduleState()
        arrival = schedule_edge_basic(
            state, (0, 1), route, 10.0, 0.0, CommModel("store-and-forward", 3.0)
        )
        assert arrival == 23.0


class TestOptimalInsertionModes:
    def test_matches_basic_on_empty_links(self):
        for comm in (CUT_THROUGH, STORE_AND_FORWARD, CommModel(hop_delay=2.0)):
            net, route = route3()
            s1, s2 = LinkScheduleState(), LinkScheduleState()
            a_b = schedule_edge_basic(s1, (0, 1), route, 8.0, 1.0, comm)
            a_o = schedule_edge_optimal(s2, (0, 1), route, 8.0, 1.0, comm)
            assert a_o == a_b

    def test_store_and_forward_deferral_respects_slack(self):
        # Under store-and-forward the first-hop slot may slip until it abuts
        # the next hop's start.
        from repro.linksched.optimal_insertion import deferrable_time

        net, route = route3()
        state = LinkScheduleState()
        schedule_edge_basic(state, (9, 9), [route[1]], 10.0, 30.0, STORE_AND_FORWARD)
        schedule_edge_basic(state, (0, 1), route, 10.0, 0.0, STORE_AND_FORWARD)
        slot0 = state.slot_of((0, 1), route[0].lid)
        slot1 = state.slot_of((0, 1), route[1].lid)
        slack = deferrable_time(state, route[0].lid, slot0, STORE_AND_FORWARD)
        assert slack == pytest.approx(slot1.start - slot0.finish)


class TestSchedulersUnderModes:
    @pytest.mark.parametrize(
        "comm",
        [
            CUT_THROUGH,
            STORE_AND_FORWARD,
            CommModel(hop_delay=4.0),
            CommModel("store-and-forward", 4.0),
        ],
        ids=["ct", "sf", "ct+delay", "sf+delay"],
    )
    @pytest.mark.parametrize("cls", [BAScheduler, OIHSAScheduler, BBSAScheduler])
    def test_schedules_validate(self, cls, comm):
        graph = scale_to_ccr(fork_join(6, rng=1), 2.0)
        net = random_wan(8, rng=3)
        schedule = cls(comm=comm).schedule(graph, net)
        validate_schedule(schedule)
        assert schedule.comm == comm

    def test_store_and_forward_never_faster(self):
        graph = scale_to_ccr(fork_join(6, rng=2), 3.0)
        net = random_wan(8, rng=5)
        ct = OIHSAScheduler(comm=CUT_THROUGH).schedule(graph, net).makespan
        sf = OIHSAScheduler(comm=STORE_AND_FORWARD).schedule(graph, net).makespan
        assert sf >= ct - 1e-9

    def test_hop_delay_never_speeds_up(self):
        graph = scale_to_ccr(fork_join(6, rng=2), 3.0)
        net = random_wan(8, rng=5)
        fast = BBSAScheduler(comm=CUT_THROUGH).schedule(graph, net).makespan
        slow = BBSAScheduler(comm=CommModel(hop_delay=10.0)).schedule(graph, net).makespan
        assert slow >= fast - 1e-9
