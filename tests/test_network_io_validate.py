"""Unit tests for repro.network.io and repro.network.validate."""

import json

import pytest

from repro.exceptions import SerializationError, TopologyError
from repro.network.builders import random_wan, shared_bus, switched_cluster
from repro.network.io import topology_from_json, topology_to_dot, topology_to_json
from repro.network.routing import bfs_route
from repro.network.topology import NetworkTopology
from repro.network.validate import validate_topology


class TestJson:
    def test_round_trip_preserves_ids(self):
        net = random_wan(12, rng=1, link_speed=(1, 10))
        back = topology_from_json(topology_to_json(net))
        assert back.num_vertices == net.num_vertices
        assert back.num_links == net.num_links
        for l in net.links():
            assert back.link(l.lid).speed == l.speed

    def test_round_trip_preserves_routing(self):
        net = random_wan(12, rng=2)
        back = topology_from_json(topology_to_json(net))
        ps = [p.vid for p in net.processors()]
        assert [l.lid for l in bfs_route(net, ps[0], ps[5])] == [
            l.lid for l in bfs_route(back, ps[0], ps[5])
        ]

    def test_round_trip_bus(self):
        net = shared_bus(3)
        back = topology_from_json(topology_to_json(net))
        (bus,) = list(back.links())
        assert bus.kind == "bus"
        assert len(bus.members) == 3

    def test_new_ids_continue_after_load(self):
        net = switched_cluster(3)
        back = topology_from_json(topology_to_json(net))
        p = back.add_processor()
        assert p.vid == net.num_vertices  # no collision

    def test_invalid_json_rejected(self):
        with pytest.raises(SerializationError):
            topology_from_json("oops")

    def test_wrong_format_rejected(self):
        with pytest.raises(SerializationError):
            topology_from_json(json.dumps({"format": "nope"}))

    def test_bad_adjacency_rejected(self):
        doc = {
            "format": "repro.network/v1",
            "name": "x",
            "vertices": [{"id": 0, "kind": "processor", "speed": 1.0, "name": ""}],
            "links": [],
            "adjacency": {"7": []},
        }
        with pytest.raises(SerializationError):
            topology_from_json(json.dumps(doc))


class TestDot:
    def test_shapes(self, net4):
        dot = topology_to_dot(net4)
        assert "box" in dot and "ellipse" in dot

    def test_bus_rendered_as_hub(self):
        dot = topology_to_dot(shared_bus(3))
        assert "bus0" in dot


class TestValidate:
    def test_builders_pass(self, wan16, net2, net4):
        for net in (wan16, net2, net4):
            validate_topology(net)

    def test_no_processors_rejected(self):
        net = NetworkTopology()
        net.add_switch()
        with pytest.raises(TopologyError):
            validate_topology(net)

    def test_disconnected_rejected(self):
        net = NetworkTopology()
        net.add_processor()
        net.add_processor()
        with pytest.raises(TopologyError):
            validate_topology(net)

    def test_disconnected_allowed_when_not_required(self):
        net = NetworkTopology()
        net.add_processor()
        net.add_processor()
        validate_topology(net, require_connected=False)

    def test_single_processor_ok(self):
        net = NetworkTopology()
        net.add_processor()
        validate_topology(net)
