"""Unit tests for repro.taskgraph.ccr."""

import pytest

from repro.exceptions import GraphError
from repro.taskgraph.ccr import ccr_of, scale_to_ccr
from repro.taskgraph.generators import random_layered_dag
from repro.taskgraph.graph import TaskGraph


class TestCcrOf:
    def test_known_value(self, chain3):
        # mean comm = 5.5, mean comp = 3 -> ccr = 11/6
        assert ccr_of(chain3) == pytest.approx(5.5 / 3.0)

    def test_no_edges_is_zero(self):
        g = TaskGraph()
        g.add_task(0, 1.0)
        assert ccr_of(g) == 0.0

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            ccr_of(TaskGraph())

    def test_zero_computation_rejected(self):
        g = TaskGraph()
        g.add_task(0, 0.0)
        g.add_task(1, 0.0)
        g.add_edge(0, 1, 1.0)
        with pytest.raises(GraphError):
            ccr_of(g)


class TestScaleToCcr:
    @pytest.mark.parametrize("target", [0.1, 1.0, 5.0, 10.0])
    def test_hits_target(self, target):
        g = random_layered_dag(40, rng=5)
        scaled = scale_to_ccr(g, target)
        assert ccr_of(scaled) == pytest.approx(target)

    def test_structure_preserved(self, diamond4):
        scaled = scale_to_ccr(diamond4, 3.0)
        assert scaled.num_tasks == diamond4.num_tasks
        assert {e.key for e in scaled.edges()} == {e.key for e in diamond4.edges()}

    def test_weights_untouched(self, diamond4):
        scaled = scale_to_ccr(diamond4, 3.0)
        for t in diamond4.tasks():
            assert scaled.task(t.tid).weight == t.weight

    def test_relative_edge_costs_preserved(self, diamond4):
        scaled = scale_to_ccr(diamond4, 3.0)
        assert scaled.edge(0, 2).cost / scaled.edge(0, 1).cost == pytest.approx(2.0)

    def test_negative_target_rejected(self, diamond4):
        with pytest.raises(GraphError):
            scale_to_ccr(diamond4, -1.0)

    def test_edgeless_to_zero_is_copy(self):
        g = TaskGraph()
        g.add_task(0, 1.0)
        assert scale_to_ccr(g, 0.0).num_tasks == 1

    def test_edgeless_to_positive_rejected(self):
        g = TaskGraph()
        g.add_task(0, 1.0)
        with pytest.raises(GraphError):
            scale_to_ccr(g, 1.0)

    def test_zero_cost_edges_rejected(self):
        g = TaskGraph()
        g.add_task(0, 1.0)
        g.add_task(1, 1.0)
        g.add_edge(0, 1, 0.0)
        with pytest.raises(GraphError):
            scale_to_ccr(g, 1.0)

    def test_name_default(self, diamond4):
        assert "ccr=3" in scale_to_ccr(diamond4, 3.0).name
