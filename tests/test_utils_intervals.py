"""Unit tests for repro.utils.intervals."""

import math

import pytest

from repro.utils.intervals import Interval, gaps_between, merge_intervals, total_length


class TestInterval:
    def test_length(self):
        assert Interval(1.0, 3.5).length == 2.5

    def test_zero_length_is_empty(self):
        assert Interval(2.0, 2.0).is_empty()

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            Interval(3.0, 2.0)

    def test_contains_is_half_open(self):
        iv = Interval(1.0, 2.0)
        assert iv.contains(1.0)
        assert iv.contains(1.5)
        assert not iv.contains(2.0)

    def test_abutting_intervals_do_not_overlap(self):
        assert not Interval(0, 1).overlaps(Interval(1, 2))

    def test_overlapping(self):
        assert Interval(0, 2).overlaps(Interval(1, 3))

    def test_intersection(self):
        assert Interval(0, 2).intersection(Interval(1, 3)) == Interval(1, 2)

    def test_intersection_empty(self):
        assert Interval(0, 1).intersection(Interval(2, 3)) is None

    def test_shift(self):
        assert Interval(1, 2).shift(2.5) == Interval(3.5, 4.5)

    def test_infinite_finish_allowed(self):
        iv = Interval(0.0, math.inf)
        assert iv.contains(1e12)


class TestMerge:
    def test_merge_disjoint(self):
        ivs = [Interval(3, 4), Interval(0, 1)]
        assert merge_intervals(ivs) == [Interval(0, 1), Interval(3, 4)]

    def test_merge_overlapping(self):
        ivs = [Interval(0, 2), Interval(1, 3)]
        assert merge_intervals(ivs) == [Interval(0, 3)]

    def test_merge_abutting(self):
        ivs = [Interval(0, 1), Interval(1, 2)]
        assert merge_intervals(ivs) == [Interval(0, 2)]

    def test_merge_drops_empty(self):
        assert merge_intervals([Interval(1, 1)]) == []

    def test_merge_nested(self):
        assert merge_intervals([Interval(0, 10), Interval(2, 3)]) == [Interval(0, 10)]

    def test_total_length_counts_union_once(self):
        assert total_length([Interval(0, 2), Interval(1, 3), Interval(5, 6)]) == 4.0


class TestGaps:
    def test_gaps_empty_busy(self):
        assert gaps_between([], 0.0, 5.0) == [Interval(0.0, 5.0)]

    def test_gaps_middle(self):
        gaps = gaps_between([Interval(1, 2)], 0.0, 5.0)
        assert gaps == [Interval(0, 1), Interval(2, 5)]

    def test_gaps_busy_covers_window(self):
        assert gaps_between([Interval(0, 5)], 1.0, 4.0) == []

    def test_gaps_busy_outside_window(self):
        assert gaps_between([Interval(10, 12)], 0.0, 5.0) == [Interval(0, 5)]

    def test_gaps_invalid_window(self):
        with pytest.raises(ValueError):
            gaps_between([], 5.0, 1.0)
