"""Tests for repro.core.analysis (post-mortem analysis)."""

import pytest

from repro.core.analysis import (
    contention_hotspots,
    processor_breakdown,
    schedule_critical_chain,
)
from repro.core.ba import BAScheduler
from repro.core.bbsa import BBSAScheduler
from repro.core.oihsa import OIHSAScheduler
from repro.network.builders import switched_cluster
from repro.taskgraph.ccr import scale_to_ccr
from repro.taskgraph.graph import TaskGraph


@pytest.fixture
def schedule(fork8, wan16):
    return OIHSAScheduler().schedule(scale_to_ccr(fork8, 2.0), wan16)


class TestProcessorBreakdown:
    def test_covers_all_processors(self, schedule, wan16):
        loads = processor_breakdown(schedule)
        assert {l.processor for l in loads} == {p.vid for p in wan16.processors()}

    def test_busy_plus_idle_is_makespan(self, schedule):
        for load in processor_breakdown(schedule):
            assert load.busy + load.idle == pytest.approx(schedule.makespan)

    def test_busy_matches_placements(self, schedule):
        loads = {l.processor: l for l in processor_breakdown(schedule)}
        for pl in schedule.placements.values():
            assert loads[pl.processor].busy >= pl.finish - pl.start - 1e-9

    def test_utilization_in_range(self, schedule):
        for load in processor_breakdown(schedule):
            assert 0.0 <= load.utilization <= 1.0

    def test_task_counts_sum(self, schedule):
        assert sum(l.n_tasks for l in processor_breakdown(schedule)) == len(
            schedule.placements
        )


class TestCriticalChain:
    def test_ends_at_makespan(self, schedule):
        chain = schedule_critical_chain(schedule)
        assert chain[-1].finish == pytest.approx(schedule.makespan)

    def test_starts_at_zero(self, schedule):
        chain = schedule_critical_chain(schedule)
        assert chain[0].start == pytest.approx(0.0)

    def test_links_are_contiguous_backward(self, schedule):
        chain = schedule_critical_chain(schedule)
        for a, b in zip(chain, chain[1:]):
            # Each step begins no later than its successor starts.
            assert a.start <= b.start + 1e-6

    def test_alternates_tasks_and_comms_sanely(self, schedule):
        chain = schedule_critical_chain(schedule)
        kinds = {c.kind for c in chain}
        assert kinds <= {"task", "comm"}
        assert chain[-1].kind == "task"

    def test_serial_chain_is_whole_graph(self, chain3):
        from repro.network.builders import fully_connected

        net = fully_connected(1)
        s = BAScheduler().schedule(chain3, net)
        chain = schedule_critical_chain(s)
        tasks = [c.task for c in chain if c.kind == "task"]
        assert tasks == [0, 1, 2]

    def test_single_task(self):
        from repro.network.builders import fully_connected

        g = TaskGraph()
        g.add_task(0, 5.0)
        s = BAScheduler().schedule(g, fully_connected(1))
        chain = schedule_critical_chain(s)
        assert len(chain) == 1 and chain[0].task == 0


class TestHotspots:
    def test_contended_star_has_hotspots(self, fork8):
        net = switched_cluster(8)
        s = BAScheduler().schedule(scale_to_ccr(fork8, 4.0), net)
        spots = contention_hotspots(s)
        assert spots
        assert spots[0].total_wait > 0
        assert spots == sorted(spots, key=lambda h: -h.total_wait)

    def test_bandwidth_schedule_returns_empty(self, fork8, wan16):
        s = BBSAScheduler().schedule(fork8, wan16)
        assert contention_hotspots(s) == []

    def test_counts_match_route_usage(self, schedule):
        spots = {h.lid: h for h in contention_hotspots(schedule)}
        state = schedule.link_state
        for lid, h in spots.items():
            assert h.n_transfers == len(state.slots(lid))
