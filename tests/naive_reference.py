"""Naive reference implementations retained for differential testing.

PR "scheduler hot-path overhaul" replaced three substrate pieces with faster
equivalents that must be *bit-identical* in behavior:

- the linear ``find_gap`` scan      -> bisecting ``find_gap_indexed``,
- copy-on-write transactions        -> undo-log transactions,
- dict-labeled BFS/Dijkstra search  -> flat-array search with lower-bound
  pruning and inlined probes.

This module keeps the original (seed) algorithms alive so Hypothesis can
drive both implementations through identical call sequences and compare
results exactly.  The code is intentionally the straightforward version —
clarity over speed — and must not be "optimized": it *is* the oracle.

``NaiveLinkScheduleState`` mirrors :class:`repro.linksched.state
.LinkScheduleState`'s full surface (including the ``_queues`` internals the
hot paths read), so it can be monkeypatched into any scheduler as a drop-in
replacement.  Its queues still expose ``starts``/``finishes``/``version``,
but maintained naively: the arrays are rebuilt from scratch on every write
and versions come from a state-wide clock (monotone even across rollback,
which restores pre-transaction queue objects).
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush

from repro.exceptions import RoutingError, SchedulingError
from repro.linksched.slots import TimeSlot, insert_slot
from repro.linksched.slots import find_gap as linear_find_gap
from repro.network.routing import LinkProbe, _check_endpoints
from repro.network.topology import Link, NetworkTopology, Route
from repro.obs import OBS
from repro.types import EdgeKey, LinkId, VertexId

__all__ = [
    "NaiveLinkScheduleState",
    "linear_find_gap",
    "naive_bfs_route",
    "naive_dijkstra_route",
]


# ---------------------------------------------------------------------------
# Routing: the seed's dict-labeled searches (no pruning, no inlined probes).
# ---------------------------------------------------------------------------


def naive_bfs_route(net: NetworkTopology, src: VertexId, dst: VertexId) -> Route:
    """The seed's BFS: dict parents, per-pop ``sorted(net.out_links(u))``."""
    _check_endpoints(net, src, dst)
    if src == dst:
        return []
    parent: dict[VertexId, tuple[VertexId, Link]] = {}
    seen = {src}
    frontier = deque([src])
    while frontier:
        u = frontier.popleft()
        for link, v in sorted(net.out_links(u), key=lambda lv: lv[0].lid):
            if v in seen:
                continue
            seen.add(v)
            parent[v] = (u, link)
            if v == dst:
                frontier.clear()
                break
            frontier.append(v)
    if dst not in parent:
        raise RoutingError(
            f"no route from processor {src} to {dst} in topology {net.name!r}"
        )
    route: Route = []
    cur = dst
    while cur != src:
        prev, link = parent[cur]
        route.append(link)
        cur = prev
    route.reverse()
    if OBS.on:
        OBS.metrics.counter("routing.bfs_routes").inc()
        OBS.metrics.histogram("routing.route_length").observe(float(len(route)))
    return route


def naive_dijkstra_route(
    net: NetworkTopology,
    src: VertexId,
    dst: VertexId,
    ready_time: float,
    probe: LinkProbe,
    lower_bound: LinkProbe | None = None,
) -> Route:
    """The seed's Dijkstra: every relaxation calls ``probe``, no cutoffs.

    ``lower_bound`` is accepted for signature compatibility but ignored —
    the reference never prunes, which is exactly what makes it an oracle
    for the pruned search.
    """
    _check_endpoints(net, src, dst)
    if src == dst:
        return []
    if ready_time < 0:
        raise RoutingError(f"negative ready time {ready_time}")
    dist: dict[VertexId, tuple[float, int]] = {src: (ready_time, 0)}
    parent: dict[VertexId, tuple[VertexId, Link]] = {}
    done: set[VertexId] = set()
    heap: list[tuple[float, int, VertexId]] = [(ready_time, 0, src)]
    relaxations = 0
    while heap:
        d, hops, u = heappop(heap)
        if u in done:
            continue
        done.add(u)
        if u == dst:
            break
        for link, v in sorted(net.out_links(u), key=lambda lv: lv[0].lid):
            if v in done:
                continue
            relaxations += 1
            arrival = probe(link, d)
            if arrival < d:
                raise RoutingError(
                    f"probe on link {link.lid} returned arrival {arrival} earlier "
                    f"than availability {d}"
                )
            label = (arrival, hops + 1)
            if label < dist.get(v, (float("inf"), 0)):
                dist[v] = label
                parent[v] = (u, link)
                heappush(heap, (arrival, hops + 1, v))
    if dst not in parent:
        raise RoutingError(
            f"no route from processor {src} to {dst} in topology {net.name!r}"
        )
    route: Route = []
    cur = dst
    while cur != src:
        prev, link = parent[cur]
        route.append(link)
        cur = prev
    route.reverse()
    if OBS.on:
        OBS.metrics.counter("routing.dijkstra_routes").inc()
        OBS.metrics.counter("routing.relaxations").inc(relaxations)
        OBS.metrics.histogram("routing.route_length").observe(float(len(route)))
    return route


# ---------------------------------------------------------------------------
# Link-schedule state: the seed's copy-on-write transaction scheme.
# ---------------------------------------------------------------------------


class _NaiveQueue:
    """One link's bookings with the derived arrays rebuilt on every write."""

    __slots__ = ("slots", "by_edge", "starts", "finishes", "version")

    def __init__(
        self,
        slots: list[TimeSlot] | None = None,
        by_edge: dict[EdgeKey, TimeSlot] | None = None,
        version: int = 0,
    ) -> None:
        self.slots = slots if slots is not None else []
        self.by_edge = by_edge if by_edge is not None else {}
        self.starts: list[float] = [s.start for s in self.slots]
        self.finishes: list[float] = [s.finish for s in self.slots]
        self.version = version

    def rebuild(self) -> None:
        self.starts = [s.start for s in self.slots]
        self.finishes = [s.finish for s in self.slots]

    def copy(self) -> "_NaiveQueue":
        return _NaiveQueue(list(self.slots), dict(self.by_edge), self.version)


_EMPTY_ARRAYS: tuple[list[TimeSlot], list[float], list[float]] = ([], [], [])


class NaiveLinkScheduleState:
    """Seed-style state: first write inside a transaction copies the queue.

    Rollback restores the stashed originals — O(links touched) with a full
    queue copy per touched link, which is what the undo log replaced.
    Versions are drawn from a state-wide clock so ``(lid, version)`` never
    repeats even though rollback swaps queue objects back in.
    """

    def __init__(self) -> None:
        self._queues: dict[LinkId, _NaiveQueue] = {}
        self._routes: dict[EdgeKey, tuple[LinkId, ...]] = {}
        #: present so hot paths that read ``state._next_link`` fall through
        #: their ``except KeyError`` branch into ``next_link_of`` (which the
        #: naive state answers with the seed's ``route.index`` scan).
        self._next_link: dict[tuple[EdgeKey, LinkId], LinkId | None] = {}
        self._txn_queues: dict[LinkId, _NaiveQueue] | None = None
        self._txn_routes: list[EdgeKey] | None = None
        self._vclock = 0

    # -- transactions --------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self._txn_queues is not None

    def begin(self) -> None:
        if self._txn_queues is not None:
            raise SchedulingError("link-schedule transaction already open")
        self._txn_queues = {}
        self._txn_routes = []

    def commit(self) -> None:
        if self._txn_queues is None:
            raise SchedulingError("no open link-schedule transaction")
        self._txn_queues = None
        self._txn_routes = None

    def rollback(self) -> None:
        if self._txn_queues is None or self._txn_routes is None:
            raise SchedulingError("no open link-schedule transaction")
        for lid, original in self._txn_queues.items():
            self._vclock += 1
            original.version = self._vclock
            self._queues[lid] = original
        for edge in self._txn_routes:
            del self._routes[edge]
        self._txn_queues = None
        self._txn_routes = None

    def _writable(self, lid: LinkId) -> _NaiveQueue:
        queue = self._queues.get(lid)
        if queue is None:
            queue = _NaiveQueue()
            self._queues[lid] = queue
            if self._txn_queues is not None and lid not in self._txn_queues:
                # Remember the link was empty before the transaction.
                self._txn_queues[lid] = _NaiveQueue()
            return queue
        if self._txn_queues is not None and lid not in self._txn_queues:
            self._txn_queues[lid] = queue
            queue = queue.copy()
            self._queues[lid] = queue
        return queue

    # -- reads ----------------------------------------------------------------

    def slots(self, lid: LinkId) -> list[TimeSlot]:
        queue = self._queues.get(lid)
        return queue.slots if queue is not None else []

    def queue_arrays(
        self, lid: LinkId
    ) -> tuple[list[TimeSlot], list[float], list[float]]:
        queue = self._queues.get(lid)
        if queue is None:
            return _EMPTY_ARRAYS
        return queue.slots, queue.starts, queue.finishes

    def version(self, lid: LinkId) -> int:
        queue = self._queues.get(lid)
        return queue.version if queue is not None else 0

    def find_gap(
        self, lid: LinkId, duration: float, est: float, min_finish: float = 0.0
    ) -> tuple[int, float, float]:
        """The linear reference scan — the oracle for ``find_gap_indexed``."""
        return linear_find_gap(self.slots(lid), duration, est, min_finish)

    def slot_of(self, edge: EdgeKey, lid: LinkId) -> TimeSlot:
        queue = self._queues.get(lid)
        if queue is None or edge not in queue.by_edge:
            raise SchedulingError(f"edge {edge} has no slot on link {lid}")
        return queue.by_edge[edge]

    def has_slot(self, edge: EdgeKey, lid: LinkId) -> bool:
        queue = self._queues.get(lid)
        return queue is not None and edge in queue.by_edge

    def route_of(self, edge: EdgeKey) -> tuple[LinkId, ...]:
        try:
            return self._routes[edge]
        except KeyError:
            raise SchedulingError(f"edge {edge} has no recorded route") from None

    def has_route(self, edge: EdgeKey) -> bool:
        return edge in self._routes

    def routes(self) -> dict[EdgeKey, tuple[LinkId, ...]]:
        return dict(self._routes)

    def next_link_of(self, edge: EdgeKey, lid: LinkId) -> LinkId | None:
        """The seed's O(route length) ``route.index`` scan."""
        route = self.route_of(edge)
        try:
            i = route.index(lid)
        except ValueError:
            raise SchedulingError(
                f"link {lid} is not on the route of edge {edge}"
            ) from None
        return route[i + 1] if i + 1 < len(route) else None

    def used_links(self) -> list[LinkId]:
        return [lid for lid, q in self._queues.items() if q.slots]

    # -- writes ---------------------------------------------------------------

    def record_route(self, edge: EdgeKey, route: tuple[LinkId, ...]) -> None:
        if edge in self._routes:
            raise SchedulingError(f"edge {edge} already has a recorded route")
        self._routes[edge] = route
        if self._txn_routes is not None:
            self._txn_routes.append(edge)

    def insert(self, lid: LinkId, index: int, slot: TimeSlot) -> None:
        queue = self._writable(lid)
        if slot.edge in queue.by_edge:
            raise SchedulingError(f"edge {slot.edge} already booked on link {lid}")
        insert_slot(queue.slots, index, slot)
        queue.by_edge[slot.edge] = slot
        queue.rebuild()
        self._vclock += 1
        queue.version = self._vclock

    def replace_suffix(
        self, lid: LinkId, index: int, new_suffix: list[TimeSlot]
    ) -> None:
        queue = self._writable(lid)
        old_suffix = queue.slots[index:]
        for s in old_suffix:
            del queue.by_edge[s.edge]
        for s in new_suffix:
            if s.edge in queue.by_edge:
                raise SchedulingError(f"edge {s.edge} booked twice on link {lid}")
            queue.by_edge[s.edge] = s
        queue.slots[index:] = new_suffix
        queue.rebuild()
        self._vclock += 1
        queue.version = self._vclock
