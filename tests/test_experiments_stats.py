"""Tests for repro.experiments.stats (paired comparison statistics)."""

import numpy as np
import pytest

from repro.exceptions import ReproError
from repro.experiments.stats import (
    PairedSummary,
    bootstrap_ci,
    paired_summary,
    sign_test_p,
)


class TestBootstrap:
    def test_ci_contains_mean_of_tight_sample(self):
        lo, hi = bootstrap_ci([10.0] * 50)
        assert lo == hi == 10.0

    def test_ci_brackets_true_mean(self):
        gen = np.random.default_rng(1)
        data = gen.normal(5.0, 2.0, size=200)
        lo, hi = bootstrap_ci(data, rng=2)
        assert lo < data.mean() < hi
        assert lo < 5.5 and hi > 4.5

    def test_deterministic(self):
        data = list(range(20))
        assert bootstrap_ci(data, rng=7) == bootstrap_ci(data, rng=7)

    def test_wider_confidence_is_wider(self):
        gen = np.random.default_rng(3)
        data = gen.normal(0, 1, size=50)
        lo90, hi90 = bootstrap_ci(data, confidence=0.90, rng=1)
        lo99, hi99 = bootstrap_ci(data, confidence=0.99, rng=1)
        assert hi99 - lo99 >= hi90 - lo90

    def test_errors(self):
        with pytest.raises(ReproError):
            bootstrap_ci([])
        with pytest.raises(ReproError):
            bootstrap_ci([1.0], confidence=1.5)


class TestSignTest:
    def test_balanced_is_one(self):
        assert sign_test_p(5, 5) == 1.0

    def test_no_data_is_one(self):
        assert sign_test_p(0, 0) == 1.0

    def test_lopsided_is_small(self):
        assert sign_test_p(15, 0) < 0.001

    def test_symmetric(self):
        assert sign_test_p(12, 3) == sign_test_p(3, 12)

    def test_matches_binomial(self):
        # 9 wins, 1 loss: p = 2 * P(X >= 9), X ~ Bin(10, .5)
        expected = 2 * (10 + 1) / 2**10
        assert sign_test_p(9, 1) == pytest.approx(expected)


class TestPairedSummary:
    def test_counts(self):
        base = [100.0, 100.0, 100.0, 100.0]
        cand = [90.0, 110.0, 100.0, 80.0]
        s = paired_summary(base, cand)
        assert (s.wins, s.ties, s.losses) == (2, 1, 1)
        assert s.n == 4
        assert s.mean_improvement == pytest.approx((10 - 10 + 0 + 20) / 4)

    def test_all_wins(self):
        s = paired_summary([100.0] * 10, [50.0] * 10)
        assert s.wins == 10 and s.losses == 0
        assert s.p_value < 0.01
        assert s.ci_low == s.ci_high == pytest.approx(50.0)

    def test_errors(self):
        with pytest.raises(ReproError):
            paired_summary([1.0], [1.0, 2.0])
        with pytest.raises(ReproError):
            paired_summary([], [])
        with pytest.raises(ReproError):
            paired_summary([0.0], [1.0])

    def test_str_mentions_key_numbers(self):
        s = paired_summary([100.0, 100.0], [90.0, 95.0])
        text = str(s)
        assert "W/T/L 2/0/0" in text

    def test_end_to_end_with_schedulers(self):
        """OIHSA vs BA over several paper instances: summary is coherent."""
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import compare_once
        from repro.experiments.workloads import paper_workload
        from repro.utils.rng import as_rng, spawn_rng

        cfg = ExperimentConfig.smoke()
        base, cand = [], []
        for r in spawn_rng(as_rng(11), 6):
            inst = paper_workload(cfg, 2.0, 8, r)
            res = compare_once(inst, ("ba", "oihsa"))
            base.append(res.makespans["ba"])
            cand.append(res.makespans["oihsa"])
        s = paired_summary(base, cand)
        assert isinstance(s, PairedSummary)
        assert s.n == 6
        assert s.ci_low <= s.mean_improvement <= s.ci_high
