"""Unit tests for repro.procsched (timelines + processor state)."""

import pytest

from repro.exceptions import SchedulingError
from repro.procsched.state import ProcessorState
from repro.procsched.timeline import TaskSlot, find_task_gap, insert_task_slot


class TestTaskSlot:
    def test_duration(self):
        assert TaskSlot(0, 1.0, 4.0).duration == 3.0

    def test_invalid_rejected(self):
        with pytest.raises(SchedulingError):
            TaskSlot(0, -1.0, 2.0)
        with pytest.raises(SchedulingError):
            TaskSlot(0, 3.0, 2.0)


class TestFindTaskGap:
    def test_empty(self):
        assert find_task_gap([], 2.0, 1.0) == (0, 1.0, 3.0)

    def test_insertion_uses_gap(self):
        slots = [TaskSlot(0, 0.0, 1.0), TaskSlot(1, 5.0, 6.0)]
        assert find_task_gap(slots, 2.0, 0.0) == (1, 1.0, 3.0)

    def test_end_technique_appends(self):
        slots = [TaskSlot(0, 0.0, 1.0), TaskSlot(1, 5.0, 6.0)]
        assert find_task_gap(slots, 2.0, 0.0, insertion=False) == (2, 6.0, 8.0)

    def test_est_respected(self):
        slots = [TaskSlot(0, 0.0, 1.0), TaskSlot(1, 5.0, 6.0)]
        assert find_task_gap(slots, 2.0, 2.0) == (1, 2.0, 4.0)

    def test_gap_too_small(self):
        slots = [TaskSlot(0, 0.0, 1.0), TaskSlot(1, 2.0, 3.0)]
        assert find_task_gap(slots, 2.0, 0.0) == (2, 3.0, 5.0)

    def test_negative_args_rejected(self):
        with pytest.raises(SchedulingError):
            find_task_gap([], -1.0, 0.0)
        with pytest.raises(SchedulingError):
            find_task_gap([], 1.0, -1.0)

    def test_insert_overlap_rejected(self):
        slots = [TaskSlot(0, 0.0, 2.0)]
        with pytest.raises(SchedulingError):
            insert_task_slot(slots, 1, TaskSlot(1, 1.0, 3.0))
        with pytest.raises(SchedulingError):
            insert_task_slot(slots, 0, TaskSlot(1, 0.0, 1.0))


class TestProcessorState:
    def test_place_and_lookup(self):
        state = ProcessorState()
        pl = state.place(7, 2, 3.0, 1.0)
        assert (pl.processor, pl.start, pl.finish) == (2, 1.0, 4.0)
        assert state.placement(7) is pl
        assert state.is_placed(7)
        assert state.finish_time(2) == 4.0

    def test_end_technique_queues(self):
        state = ProcessorState()
        state.place(0, 1, 2.0, 0.0, insertion=False)
        state.place(1, 1, 2.0, 0.0, insertion=False)
        assert state.placement(1).start == 2.0

    def test_insertion_fills_gap(self):
        state = ProcessorState()
        state.place(0, 1, 1.0, 0.0)
        state.place(1, 1, 1.0, 5.0)
        state.place(2, 1, 2.0, 0.0, insertion=True)
        assert state.placement(2).start == 1.0

    def test_double_place_rejected(self):
        state = ProcessorState()
        state.place(0, 1, 1.0, 0.0)
        with pytest.raises(SchedulingError):
            state.place(0, 2, 1.0, 0.0)

    def test_unplaced_lookup_rejected(self):
        with pytest.raises(SchedulingError):
            ProcessorState().placement(3)

    def test_probe_does_not_commit(self):
        state = ProcessorState()
        index, start, finish = state.probe(4, 2.0, 1.0)
        assert (start, finish) == (1.0, 3.0)
        assert state.timeline(4) == []

    def test_finish_time_empty(self):
        assert ProcessorState().finish_time(9) == 0.0

    def test_transaction_rollback(self):
        state = ProcessorState()
        state.place(0, 1, 1.0, 0.0)
        state.begin()
        state.place(1, 1, 1.0, 0.0)
        state.place(2, 2, 1.0, 0.0)
        state.rollback()
        assert not state.is_placed(1)
        assert not state.is_placed(2)
        assert state.finish_time(1) == 1.0
        assert state.timeline(2) == []

    def test_transaction_commit(self):
        state = ProcessorState()
        state.begin()
        state.place(0, 1, 1.0, 0.0)
        state.commit()
        assert state.is_placed(0)

    def test_no_nested_transaction(self):
        state = ProcessorState()
        state.begin()
        with pytest.raises(SchedulingError):
            state.begin()

    def test_placements_snapshot(self):
        state = ProcessorState()
        state.place(0, 1, 1.0, 0.0)
        snap = state.placements()
        state.place(1, 1, 1.0, 0.0)
        assert set(snap) == {0}
