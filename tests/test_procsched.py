"""Unit tests for repro.procsched (timelines + processor state)."""

import pytest

from repro.exceptions import SchedulingError
from repro.procsched.state import ProcessorState
from repro.procsched.timeline import TaskSlot, find_task_gap, insert_task_slot


class TestTaskSlot:
    def test_duration(self):
        assert TaskSlot(0, 1.0, 4.0).duration == 3.0

    def test_invalid_rejected(self):
        with pytest.raises(SchedulingError):
            TaskSlot(0, -1.0, 2.0)
        with pytest.raises(SchedulingError):
            TaskSlot(0, 3.0, 2.0)


class TestFindTaskGap:
    def test_empty(self):
        assert find_task_gap([], 2.0, 1.0) == (0, 1.0, 3.0)

    def test_insertion_uses_gap(self):
        slots = [TaskSlot(0, 0.0, 1.0), TaskSlot(1, 5.0, 6.0)]
        assert find_task_gap(slots, 2.0, 0.0) == (1, 1.0, 3.0)

    def test_end_technique_appends(self):
        slots = [TaskSlot(0, 0.0, 1.0), TaskSlot(1, 5.0, 6.0)]
        assert find_task_gap(slots, 2.0, 0.0, insertion=False) == (2, 6.0, 8.0)

    def test_est_respected(self):
        slots = [TaskSlot(0, 0.0, 1.0), TaskSlot(1, 5.0, 6.0)]
        assert find_task_gap(slots, 2.0, 2.0) == (1, 2.0, 4.0)

    def test_gap_too_small(self):
        slots = [TaskSlot(0, 0.0, 1.0), TaskSlot(1, 2.0, 3.0)]
        assert find_task_gap(slots, 2.0, 0.0) == (2, 3.0, 5.0)

    def test_negative_args_rejected(self):
        with pytest.raises(SchedulingError):
            find_task_gap([], -1.0, 0.0)
        with pytest.raises(SchedulingError):
            find_task_gap([], 1.0, -1.0)

    def test_insert_overlap_rejected(self):
        slots = [TaskSlot(0, 0.0, 2.0)]
        with pytest.raises(SchedulingError):
            insert_task_slot(slots, 1, TaskSlot(1, 1.0, 3.0))
        with pytest.raises(SchedulingError):
            insert_task_slot(slots, 0, TaskSlot(1, 0.0, 1.0))


class TestProcessorState:
    def test_place_and_lookup(self):
        state = ProcessorState()
        pl = state.place(7, 2, 3.0, 1.0)
        assert (pl.processor, pl.start, pl.finish) == (2, 1.0, 4.0)
        assert state.placement(7) is pl
        assert state.is_placed(7)
        assert state.finish_time(2) == 4.0

    def test_end_technique_queues(self):
        state = ProcessorState()
        state.place(0, 1, 2.0, 0.0, insertion=False)
        state.place(1, 1, 2.0, 0.0, insertion=False)
        assert state.placement(1).start == 2.0

    def test_insertion_fills_gap(self):
        state = ProcessorState()
        state.place(0, 1, 1.0, 0.0)
        state.place(1, 1, 1.0, 5.0)
        state.place(2, 1, 2.0, 0.0, insertion=True)
        assert state.placement(2).start == 1.0

    def test_double_place_rejected(self):
        state = ProcessorState()
        state.place(0, 1, 1.0, 0.0)
        with pytest.raises(SchedulingError):
            state.place(0, 2, 1.0, 0.0)

    def test_unplaced_lookup_rejected(self):
        with pytest.raises(SchedulingError):
            ProcessorState().placement(3)

    def test_probe_does_not_commit(self):
        state = ProcessorState()
        index, start, finish = state.probe(4, 2.0, 1.0)
        assert (start, finish) == (1.0, 3.0)
        assert state.timeline(4) == []

    def test_finish_time_empty(self):
        assert ProcessorState().finish_time(9) == 0.0

    def test_transaction_rollback(self):
        state = ProcessorState()
        state.place(0, 1, 1.0, 0.0)
        state.begin()
        state.place(1, 1, 1.0, 0.0)
        state.place(2, 2, 1.0, 0.0)
        state.rollback()
        assert not state.is_placed(1)
        assert not state.is_placed(2)
        assert state.finish_time(1) == 1.0
        assert state.timeline(2) == []

    def test_transaction_commit(self):
        state = ProcessorState()
        state.begin()
        state.place(0, 1, 1.0, 0.0)
        state.commit()
        assert state.is_placed(0)

    def test_no_nested_transaction(self):
        state = ProcessorState()
        state.begin()
        with pytest.raises(SchedulingError):
            state.begin()

    def test_placements_snapshot(self):
        state = ProcessorState()
        state.place(0, 1, 1.0, 0.0)
        snap = state.placements()
        state.place(1, 1, 1.0, 0.0)
        assert set(snap) == {0}


class TestJournalMode:
    def test_mark_and_rollback_restores_placements(self):
        state = ProcessorState()
        state.enable_journal()
        state.place(0, 100, 2.0, 0.0, insertion=False)
        mark = state.journal_mark()
        state.place(1, 100, 3.0, 0.0, insertion=False)
        state.place(2, 101, 1.0, 0.0, insertion=False)
        state.rollback_to(mark)
        assert state.is_placed(0)
        assert not state.is_placed(1)
        assert not state.is_placed(2)
        assert state.finish_time(100) == 2.0
        assert state.finish_time(101) == 0.0

    def test_nested_marks(self):
        state = ProcessorState()
        state.enable_journal()
        marks = []
        for tid in range(3):
            marks.append(state.journal_mark())
            state.place(tid, 100, 1.0, 0.0, insertion=False)
        state.rollback_to(marks[2])
        assert state.finish_time(100) == 2.0
        state.rollback_to(marks[0])
        assert state.finish_time(100) == 0.0

    def test_transactions_unavailable_in_journal_mode(self):
        state = ProcessorState()
        state.enable_journal()
        with pytest.raises(SchedulingError):
            state.begin()

    def test_enable_journal_with_open_transaction_rejected(self):
        state = ProcessorState()
        state.begin()
        with pytest.raises(SchedulingError):
            state.enable_journal()
        state.rollback()

    def test_double_enable_rejected(self):
        state = ProcessorState()
        state.enable_journal()
        with pytest.raises(SchedulingError):
            state.enable_journal()

    def test_mark_and_rollback_require_journal(self):
        state = ProcessorState()
        with pytest.raises(SchedulingError):
            state.journal_mark()
        with pytest.raises(SchedulingError):
            state.rollback_to(0)

    def test_rollback_mark_out_of_range(self):
        state = ProcessorState()
        state.enable_journal()
        with pytest.raises(SchedulingError):
            state.rollback_to(5)
        with pytest.raises(SchedulingError):
            state.rollback_to(-1)

    def test_journaling_property(self):
        state = ProcessorState()
        assert not state.journaling
        state.enable_journal()
        assert state.journaling


class TestPlaceAppend:
    """The fused append-mode booking must match place(insertion=False)."""

    def test_matches_place_end_technique(self):
        fused = ProcessorState()
        layered = ProcessorState()
        bookings = [(0, 100, 2.0, 0.0), (1, 100, 3.0, 1.0), (2, 101, 1.0, 7.5),
                    (3, 100, 0.5, 0.0)]
        for task, vid, duration, est in bookings:
            p1 = fused.place_append(task, vid, duration, est)
            p2 = layered.place(task, vid, duration, est, insertion=False)
            assert p1 == p2
        assert fused.placements() == layered.placements()
        for vid in (100, 101):
            assert fused.timeline(vid) == layered.timeline(vid)

    def test_duplicate_placement_rejected(self):
        state = ProcessorState()
        state.place_append(0, 100, 1.0, 0.0)
        with pytest.raises(SchedulingError):
            state.place_append(0, 101, 1.0, 0.0)

    def test_journaled_append_rewinds(self):
        state = ProcessorState()
        state.enable_journal()
        mark = state.journal_mark()
        state.place_append(0, 100, 2.0, 0.0)
        state.rollback_to(mark)
        assert not state.is_placed(0)
        assert state.timeline(100) == []
