"""Property-based invariants for the datacenter fabric generators.

For Hypothesis-generated fat-tree / leaf-spine / torus instances:

- every route the attached hierarchical router emits is a valid connected
  path over links that exist in the topology;
- ECMP path sets are truly equal-cost, duplicate-free, contain the
  canonical route, and match the closed-form multiplicity;
- path lengths match the fabric's closed form (2/4/6 hops in a fat-tree,
  2/4 in a leaf-spine, wrap-Manhattan + 2 in a torus);
- degree / port counts match the spec (via ``validate_fabric``);
- generation is byte-identical across two calls with the same parameters.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.exceptions import TopologyError
from repro.linksched.causality import check_route_connectivity
from repro.network.fabrics import (
    FatTreePlan,
    LeafSpinePlan,
    TorusPlan,
    fabric_for_procs,
    fabric_plan,
    kary_fat_tree,
    leaf_spine,
    torus_fabric,
    validate_fabric,
)
from repro.network.io import topology_to_json
from repro.network.routing import bfs_route, equal_cost_routes

import pytest

FABRIC = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

# -- strategies --------------------------------------------------------------

fat_tree_params = st.builds(
    dict,
    k=st.sampled_from([2, 4, 6]),
    hosts_per_edge=st.integers(1, 3),
    cap_frac=st.floats(0.1, 1.0),
)

leaf_spine_params = st.builds(
    dict,
    leaves=st.integers(1, 5),
    spines=st.integers(1, 4),
    hosts_per_leaf=st.integers(1, 4),
    cap_frac=st.floats(0.1, 1.0),
)

torus_params = st.builds(
    dict,
    dims=st.one_of(
        st.tuples(st.integers(2, 4), st.integers(2, 4)),
        st.tuples(st.integers(2, 3), st.integers(2, 3), st.integers(2, 3)),
    ),
    hosts_per_node=st.integers(1, 2),
    cap_frac=st.floats(0.1, 1.0),
)


def _cap(total: int, frac: float) -> int:
    return max(1, min(total, round(total * frac)))


def _build_fat_tree(params):
    total = params["k"] * (params["k"] // 2) * params["hosts_per_edge"]
    return kary_fat_tree(
        params["k"],
        hosts_per_edge=params["hosts_per_edge"],
        n_procs=_cap(total, params["cap_frac"]),
    )


def _build_leaf_spine(params):
    total = params["leaves"] * params["hosts_per_leaf"]
    return leaf_spine(
        params["leaves"],
        params["spines"],
        params["hosts_per_leaf"],
        n_procs=_cap(total, params["cap_frac"]),
    )


def _build_torus(params):
    nodes = 1
    for size in params["dims"]:
        nodes *= size
    total = nodes * params["hosts_per_node"]
    return torus_fabric(
        params["dims"],
        hosts_per_node=params["hosts_per_node"],
        n_procs=_cap(total, params["cap_frac"]),
    )


def _pairs(net, limit=60):
    """A deterministic sample of distinct processor pairs."""
    procs = [p.vid for p in net.processors()]
    pairs = [(s, d) for s in procs for d in procs if s != d]
    step = max(1, len(pairs) // limit)
    return pairs[::step]


def _check_fabric(net, expected_hops):
    """The shared invariant bundle: structure, routes, ECMP sets."""
    validate_fabric(net)
    plan = fabric_plan(net)
    router = net.attached_router
    for s, d in _pairs(net):
        route = bfs_route(net, s, d)
        # Valid connected path over links registered in the topology.
        check_route_connectivity(net, tuple(l.lid for l in route), s, d)
        for link in route:
            assert net.link(link.lid) is link
        assert len(route) == expected_hops(plan, s, d)
        # ECMP set: equal-cost, duplicate-free, canonical route included,
        # closed-form multiplicity (cap chosen to never truncate here).
        ecmp = router.ecmp_routes(s, d, max_paths=4096)
        assert all(len(r) == len(route) for r in ecmp)
        ids = [tuple(l.lid for l in r) for r in ecmp]
        assert len(set(ids)) == len(ids)
        assert tuple(l.lid for l in route) in ids
        for r in ecmp:
            check_route_connectivity(net, tuple(l.lid for l in r), s, d)
        if isinstance(plan, TorusPlan):
            assert len(ecmp) == plan.path_multiplicity(s, d)
    stats = router.stats()
    assert stats["materialized_entries"] <= stats["cross_product_entries"]
    assert stats["shards"] >= 1 or len(net.processors()) < 2


def _fat_tree_hops(plan, s, d):
    ps, es, _ = plan.host_loc[s]
    pd, ed, _ = plan.host_loc[d]
    if (ps, es) == (pd, ed):
        return 2
    return 4 if ps == pd else 6


def _leaf_spine_hops(plan, s, d):
    return 2 if plan.host_loc[s][0] == plan.host_loc[d][0] else 4


class TestFatTreeProperties:
    @FABRIC
    @given(params=fat_tree_params)
    def test_invariants(self, params):
        net = _build_fat_tree(params)
        plan = fabric_plan(net)
        assert isinstance(plan, FatTreePlan)
        _check_fabric(net, _fat_tree_hops)
        counts = plan.expected_counts()
        assert counts.diameter == 6
        assert counts.ecmp_width == (params["k"] // 2) ** 2

    @FABRIC
    @given(params=fat_tree_params)
    def test_byte_identical_generation(self, params):
        assert topology_to_json(_build_fat_tree(params)) == topology_to_json(
            _build_fat_tree(params)
        )

    def test_ecmp_set_matches_core_count(self):
        net = kary_fat_tree(4)
        plan = fabric_plan(net)
        procs = [p.vid for p in net.processors()]
        # First host of pod 0 to first host of pod 1: one path per core.
        s = next(p for p in procs if plan.host_loc[p][0] == 0)
        d = next(p for p in procs if plan.host_loc[p][0] == 1)
        ecmp = net.attached_router.ecmp_routes(s, d)
        assert len(ecmp) == 4  # (k/2)^2 cores
        # Intra-pod, cross-edge: one path per aggregation switch.
        d2 = next(
            p
            for p in procs
            if plan.host_loc[p][0] == 0 and plan.host_loc[p][1] == 1
        )
        assert len(net.attached_router.ecmp_routes(s, d2)) == 2

    def test_port_counts(self):
        net = kary_fat_tree(4)
        plan = fabric_plan(net)
        k = 4
        for row in plan.edge_sw:
            for sw in row:
                assert len(net.out_links(sw)) == k  # k/2 hosts + k/2 aggs
        for row in plan.agg_sw:
            for sw in row:
                assert len(net.out_links(sw)) == k  # k/2 edges + k/2 cores
        for sw in plan.core_sw:
            assert len(net.out_links(sw)) == k  # one per pod... times k


class TestLeafSpineProperties:
    @FABRIC
    @given(params=leaf_spine_params)
    def test_invariants(self, params):
        net = _build_leaf_spine(params)
        plan = fabric_plan(net)
        assert isinstance(plan, LeafSpinePlan)
        _check_fabric(net, _leaf_spine_hops)

    @FABRIC
    @given(params=leaf_spine_params)
    def test_byte_identical_generation(self, params):
        assert topology_to_json(_build_leaf_spine(params)) == topology_to_json(
            _build_leaf_spine(params)
        )

    def test_cross_leaf_ecmp_one_route_per_spine(self):
        net = leaf_spine(3, 4, 2)
        plan = fabric_plan(net)
        procs = [p.vid for p in net.processors()]
        s = next(p for p in procs if plan.host_loc[p][0] == 0)
        d = next(p for p in procs if plan.host_loc[p][0] == 2)
        ecmp = net.attached_router.ecmp_routes(s, d)
        assert len(ecmp) == 4
        # Routes are ordered by spine index: middle hop climbs spine 0, 1, ...
        spine_hops = [r[1].dst for r in ecmp]
        assert spine_hops == plan.spine_sw

    def test_port_counts(self):
        net = leaf_spine(3, 2, 4)
        plan = fabric_plan(net)
        for sw in plan.leaf_sw:
            assert len(net.out_links(sw)) == 4 + 2
        for sw in plan.spine_sw:
            assert len(net.out_links(sw)) == 3


class TestTorusProperties:
    @FABRIC
    @given(params=torus_params)
    def test_invariants(self, params):
        net = _build_torus(params)
        plan = fabric_plan(net)
        assert isinstance(plan, TorusPlan)
        _check_fabric(net, lambda p, s, d: p.min_hops(s, d))

    @FABRIC
    @given(params=torus_params)
    def test_byte_identical_generation(self, params):
        assert topology_to_json(_build_torus(params)) == topology_to_json(
            _build_torus(params)
        )

    def test_wrap_links_present(self):
        net = torus_fabric((4, 3))
        plan = fabric_plan(net)
        # (0, y) and (3, y) are wrap neighbours: 1 switch hop, 3 total.
        procs = [p.vid for p in net.processors()]
        s = next(p for p in procs if plan.host_loc[p][0] == (0, 0))
        d = next(p for p in procs if plan.host_loc[p][0] == (3, 0))
        assert len(bfs_route(net, s, d)) == 3
        assert plan.min_hops(s, d) == 3

    def test_size_two_dim_has_single_cable(self):
        # Both "directions" around a size-2 ring are the same cable: the
        # ECMP multiplicity must not double.
        net = torus_fabric((2, 3))
        plan = fabric_plan(net)
        procs = [p.vid for p in net.processors()]
        s = next(p for p in procs if plan.host_loc[p][0] == (0, 0))
        d = next(p for p in procs if plan.host_loc[p][0] == (1, 0))
        assert plan.path_multiplicity(s, d) == 1
        assert len(equal_cost_routes(net, s, d)) == 1


class TestSizedFabrics:
    @FABRIC
    @given(
        kind=st.sampled_from(["fat_tree", "leaf_spine", "torus"]),
        n_procs=st.integers(1, 70),
    )
    def test_exact_processor_count(self, kind, n_procs):
        net = fabric_for_procs(kind, n_procs)
        assert len(net.processors()) == n_procs
        validate_fabric(net)

    def test_registered_in_topology_builders(self):
        from repro.network.builders import TOPOLOGY_BUILDERS

        for kind in ("fat_tree", "leaf_spine", "torus"):
            builder = TOPOLOGY_BUILDERS[f"fabric_{kind}"]
            net = builder(9, rng=3)
            assert len(net.processors()) == 9
            assert net.attached_router is not None


class TestParameterValidation:
    def test_fat_tree_rejects_odd_arity(self):
        with pytest.raises(TopologyError):
            kary_fat_tree(3)

    def test_fat_tree_rejects_oversized_cap(self):
        with pytest.raises(TopologyError):
            kary_fat_tree(4, n_procs=17)

    def test_leaf_spine_rejects_empty_tiers(self):
        with pytest.raises(TopologyError):
            leaf_spine(0, 2, 4)

    def test_torus_rejects_one_dimension(self):
        with pytest.raises(TopologyError):
            torus_fabric((8,))

    def test_torus_rejects_single_node(self):
        with pytest.raises(TopologyError):
            torus_fabric((1, 1))

    def test_heterogeneous_speeds_are_seed_deterministic(self):
        a = leaf_spine(2, 2, 3, proc_speed=(1, 10), link_speed=(1, 10), rng=7)
        b = leaf_spine(2, 2, 3, proc_speed=(1, 10), link_speed=(1, 10), rng=7)
        assert topology_to_json(a) == topology_to_json(b)
