"""Failure injection: malformed inputs must produce precise, typed errors."""

import pytest

from repro.core.ba import BAScheduler
from repro.core.oihsa import OIHSAScheduler
from repro.exceptions import (
    CycleError,
    GraphError,
    ReproError,
    RoutingError,
    SchedulingError,
    TopologyError,
)
from repro.network.builders import fully_connected
from repro.network.routing import bfs_route
from repro.network.topology import NetworkTopology
from repro.taskgraph.graph import TaskGraph


def cyclic_graph():
    g = TaskGraph()
    g.add_task(0, 1.0)
    g.add_task(1, 1.0)
    g.add_edge(0, 1, 1.0)
    g.add_edge(1, 0, 1.0)
    return g


def island_net():
    net = NetworkTopology()
    a, b = net.add_processor(), net.add_processor()
    c, d = net.add_processor(), net.add_processor()
    net.connect(a, b)
    net.connect(c, d)
    return net


class TestSchedulerInputErrors:
    def test_cyclic_graph_rejected(self, net2):
        with pytest.raises(CycleError):
            BAScheduler().schedule(cyclic_graph(), net2)

    def test_island_topology_rejected(self, chain3):
        with pytest.raises(TopologyError, match="disconnected"):
            OIHSAScheduler().schedule(chain3, island_net())

    def test_no_processor_topology_rejected(self, chain3):
        net = NetworkTopology()
        net.add_switch()
        with pytest.raises(TopologyError):
            BAScheduler().schedule(chain3, net)

    def test_error_hierarchy(self):
        # Every library error is catchable as ReproError.
        for exc in (CycleError, GraphError, RoutingError, SchedulingError, TopologyError):
            assert issubclass(exc, ReproError)

    def test_cycle_is_graph_error(self):
        assert issubclass(CycleError, GraphError)

    def test_routing_is_topology_error(self):
        assert issubclass(RoutingError, TopologyError)


class TestRoutingFailures:
    def test_island_route_fails_with_names(self):
        net = island_net()
        procs = [p.vid for p in net.processors()]
        with pytest.raises(RoutingError, match="no route"):
            bfs_route(net, procs[0], procs[2])


class TestStateMisuse:
    def test_rollback_without_begin(self):
        from repro.linksched.state import LinkScheduleState

        with pytest.raises(SchedulingError):
            LinkScheduleState().rollback()

    def test_bandwidth_rollback_without_begin(self):
        from repro.linksched.bandwidth import BandwidthLinkState

        with pytest.raises(SchedulingError):
            BandwidthLinkState().rollback()

    def test_processor_rollback_without_begin(self):
        from repro.procsched.state import ProcessorState

        with pytest.raises(SchedulingError):
            ProcessorState().rollback()


class TestDegenerateWorkloads:
    def test_zero_weight_tasks_schedule(self, net2):
        g = TaskGraph()
        g.add_task(0, 0.0)
        g.add_task(1, 0.0)
        g.add_edge(0, 1, 5.0)
        from repro.core.validate import validate_schedule

        s = BAScheduler().schedule(g, net2)
        validate_schedule(s)

    def test_all_zero_cost_edges(self, net4):
        g = TaskGraph()
        for i in range(4):
            g.add_task(i, 2.0)
        for i in range(3):
            g.add_edge(i, i + 1, 0.0)
        from repro.core.validate import validate_schedule

        for cls in (BAScheduler, OIHSAScheduler):
            validate_schedule(cls().schedule(g, net4))

    def test_single_task_single_processor(self):
        g = TaskGraph()
        g.add_task(0, 3.0)
        net = fully_connected(1)
        s = BAScheduler().schedule(g, net)
        assert s.makespan == 3.0

    def test_wide_independent_tasks(self, net4):
        g = TaskGraph()
        for i in range(12):
            g.add_task(i, 4.0)
        from repro.core.validate import validate_schedule

        s = OIHSAScheduler().schedule(g, net4)
        validate_schedule(s)
        # Independent equal tasks spread over all 4 processors.
        assert len(s.processors_used()) == 4
