"""Tests for the genetic-algorithm mapping search."""

import pytest

from repro.core.ba import BAScheduler
from repro.core.genetic import GeneticScheduler
from repro.core.validate import validate_schedule
from repro.exceptions import SchedulingError
from repro.network.builders import random_wan
from repro.taskgraph.ccr import scale_to_ccr
from repro.taskgraph.generators import random_layered_dag


class TestGenetic:
    def test_validates(self):
        g = scale_to_ccr(random_layered_dag(15, rng=1), 2.0)
        net = random_wan(4, rng=2)
        s = GeneticScheduler(population=6, generations=4, rng=3).schedule(g, net)
        validate_schedule(s)
        assert s.algorithm == "genetic"

    def test_deterministic_given_seed(self):
        g = random_layered_dag(12, rng=4)
        net = random_wan(4, rng=5)
        m1 = GeneticScheduler(population=6, generations=3, rng=7).schedule(g, net).makespan
        m2 = GeneticScheduler(population=6, generations=3, rng=7).schedule(g, net).makespan
        assert m1 == m2

    def test_seeded_with_ba_never_much_worse(self):
        g = scale_to_ccr(random_layered_dag(20, rng=6), 2.0)
        net = random_wan(6, rng=8)
        ba = BAScheduler().schedule(g, net).makespan
        ga = GeneticScheduler(population=8, generations=6, rng=9).schedule(g, net).makespan
        assert ga <= ba * 1.05

    def test_random_start(self):
        g = random_layered_dag(10, rng=10)
        net = random_wan(4, rng=11)
        s = GeneticScheduler(
            population=4, generations=2, seed_with_ba=False, rng=12
        ).schedule(g, net)
        validate_schedule(s)

    def test_more_generations_never_hurt(self):
        g = scale_to_ccr(random_layered_dag(15, rng=13), 3.0)
        net = random_wan(4, rng=14)
        short = GeneticScheduler(population=6, generations=1, rng=15).schedule(g, net)
        long = GeneticScheduler(population=6, generations=10, rng=15).schedule(g, net)
        assert long.makespan <= short.makespan + 1e-9

    def test_bad_params_rejected(self):
        with pytest.raises(SchedulingError):
            GeneticScheduler(population=1)
        with pytest.raises(SchedulingError):
            GeneticScheduler(generations=0)
        with pytest.raises(SchedulingError):
            GeneticScheduler(mutation_rate=1.5)
        with pytest.raises(SchedulingError):
            GeneticScheduler(elite=16, population=16)
