"""Tests for the metrics registry (snapshot/diff arithmetic, rendering) and
the phase profiler."""

import json
import math

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry, diff_snapshots
from repro.obs.profile import PhaseProfiler, diff_timings, span


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("insertion.probes")
        c.inc()
        c.inc(3)
        assert reg.counter("insertion.probes").value == 4

    def test_instruments_are_memoized(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        g = reg.gauge("schedule.makespan")
        g.set(10.0)
        g.set(7.5)
        assert g.value == 7.5

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("routing.route_length")
        for v in (2.0, 3.0, 7.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 12.0
        assert h.min == 2.0
        assert h.max == 7.0
        assert h.mean == 4.0

    def test_reset_drops_everything(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestSnapshotDiff:
    def test_counter_delta(self):
        reg = MetricsRegistry()
        reg.counter("probes").inc(5)
        before = reg.snapshot()
        reg.counter("probes").inc(3)
        reg.counter("fresh").inc(2)
        diff = diff_snapshots(before, reg.snapshot())
        assert diff["counters"] == {"probes": 3, "fresh": 2}

    def test_untouched_counters_are_omitted(self):
        reg = MetricsRegistry()
        reg.counter("idle").inc(4)
        before = reg.snapshot()
        diff = diff_snapshots(before, reg.snapshot())
        assert diff["counters"] == {}

    def test_gauges_keep_after_value_only_when_moved(self):
        reg = MetricsRegistry()
        reg.gauge("stale").set(1.0)
        before = reg.snapshot()
        reg.gauge("moved").set(4.0)
        diff = diff_snapshots(before, reg.snapshot())
        assert diff["gauges"] == {"moved": 4.0}

    def test_histogram_diff_subtracts_count_and_sum(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.observe(1.0)
        before = reg.snapshot()
        h.observe(5.0)
        h.observe(2.0)
        diff = diff_snapshots(before, reg.snapshot())
        assert diff["histograms"]["h"]["count"] == 2
        assert diff["histograms"]["h"]["sum"] == 7.0

    def test_snapshot_is_detached(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        snap = reg.snapshot()
        reg.counter("c").inc(10)
        assert snap["counters"]["c"] == 1


class TestRendering:
    def test_text_lists_nonzero_instruments(self):
        reg = MetricsRegistry()
        reg.counter("optimal.deferrals").inc(2)
        reg.histogram("optimal.deferral_amount").observe(1.5)
        text = reg.to_text()
        assert "optimal.deferrals = 2" in text
        assert "optimal.deferral_amount" in text

    def test_json_is_loadable_and_finite(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.histogram("empty")  # min/max are +/-inf until observed
        doc = json.loads(reg.to_json())
        assert doc["counters"]["c"] == 1
        assert doc["histograms"]["empty"]["min"] is None

    def test_empty_registry_text(self):
        assert MetricsRegistry().to_text() == "(no metrics recorded)"


class TestProfiler:
    def test_span_noop_while_disabled(self):
        prof = obs.PROFILER
        assert not prof.enabled
        with span("routing"):
            pass
        assert prof.snapshot() == {}

    def test_span_accumulates_when_enabled(self):
        obs.enable(obs.NullSink())
        with span("routing"):
            math.sqrt(2.0)
        with span("routing"):
            pass
        obs.disable()
        snap = obs.PROFILER.snapshot()
        assert snap["routing"]["count"] == 2
        assert snap["routing"]["total"] >= 0.0

    def test_diff_timings(self):
        prof = PhaseProfiler()
        prof.add("insertion", 0.5)
        before = prof.snapshot()
        prof.add("insertion", 0.25)
        prof.add("routing", 1.0)
        delta = diff_timings(before, prof.snapshot())
        assert delta["insertion"]["count"] == 1
        assert delta["insertion"]["total"] == pytest.approx(0.25)
        assert delta["routing"]["count"] == 1
        assert "task_placement" not in delta

    def test_to_text(self):
        prof = PhaseProfiler()
        prof.add("routing", 0.001)
        assert "routing" in prof.to_text()
