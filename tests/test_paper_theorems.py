"""The paper's lemmas and theorems as executable checks.

Each test encodes one formal statement from Han & Wang (ICPP 2006) and
verifies the implementation satisfies it — including an independent
brute-force check of Theorem 1 (optimal insertion) against
:func:`repro.linksched.optimal_insertion.probe_optimal`.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.linksched.insertion import schedule_edge_basic
from repro.linksched.optimal_insertion import deferrable_time, probe_optimal
from repro.linksched.slots import TimeSlot
from repro.linksched.state import LinkScheduleState
from repro.network.builders import linear_array
from repro.network.routing import bfs_route

FAST = settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])


def route3(speed=1.0):
    net = linear_array(3, link_speed=speed)
    ps = [p.vid for p in net.processors()]
    return net, bfs_route(net, ps[0], ps[2])


class TestLemma1:
    """t_f(e, L_{m+1}) = max(t_f(e, L_m), t_es(e, L_{m+1}) + int(e, L_{m+1}))."""

    @FAST
    @given(cost=st.floats(0.5, 30), ready=st.floats(0, 20), s2=st.floats(0.5, 8))
    def test_finish_recurrence_on_idle_links(self, cost, ready, s2):
        net, route = route3()
        object.__setattr__(route[1], "speed", s2)
        state = LinkScheduleState()
        schedule_edge_basic(state, (0, 1), route, cost, ready)
        slot1 = state.slot_of((0, 1), route[0].lid)
        slot2 = state.slot_of((0, 1), route[1].lid)
        # On idle links t_es(L2) = t_s(L1); Lemma 1's recurrence:
        expected = max(slot1.finish, slot1.start + cost / s2)
        assert slot2.finish == pytest.approx(expected)


class TestLemma2:
    """The deferral slack is exactly the slack to the next link's slot."""

    def test_slack_formula(self):
        net, route = route3()
        lid0, lid1 = route[0].lid, route[1].lid
        state = LinkScheduleState()
        edge = (0, 1)
        state.record_route(edge, (lid0, lid1))
        state.insert(lid0, 0, TimeSlot(edge, 2.0, 6.0))
        state.insert(lid1, 0, TimeSlot(edge, 5.0, 9.0))
        slot = state.slot_of(edge, lid0)
        assert deferrable_time(state, lid0, slot) == pytest.approx(
            min(5.0 - 2.0, 9.0 - 6.0)
        )

    def test_deferring_by_slack_keeps_causality(self):
        from repro.linksched.causality import check_route_causality

        net, route = route3()
        lid0, lid1 = route[0].lid, route[1].lid
        state = LinkScheduleState()
        edge = (0, 1)
        state.record_route(edge, (lid0, lid1))
        state.insert(lid0, 0, TimeSlot(edge, 2.0, 6.0))
        state.insert(lid1, 0, TimeSlot(edge, 5.0, 9.0))
        dt = deferrable_time(state, lid0, state.slot_of(edge, lid0))
        moved = TimeSlot(edge, 2.0 + dt, 6.0 + dt)
        state.replace_suffix(lid0, 0, [moved])
        check_route_causality(state, net, edge, 4.0)

    def test_deferring_beyond_slack_breaks_causality(self):
        from repro.exceptions import ValidationError
        from repro.linksched.causality import check_route_causality

        net, route = route3()
        lid0, lid1 = route[0].lid, route[1].lid
        state = LinkScheduleState()
        edge = (0, 1)
        state.record_route(edge, (lid0, lid1))
        state.insert(lid0, 0, TimeSlot(edge, 2.0, 6.0))
        state.insert(lid1, 0, TimeSlot(edge, 5.0, 9.0))
        dt = deferrable_time(state, lid0, state.slot_of(edge, lid0))
        moved = TimeSlot(edge, 2.0 + dt + 0.5, 6.0 + dt + 0.5)
        state.replace_suffix(lid0, 0, [moved])
        with pytest.raises(ValidationError):
            check_route_causality(state, net, edge, 4.0)


def brute_force_earliest_start(state, link, duration, est, min_finish):
    """Independent check of Theorem 1: earliest feasible start by direct
    simulation of every insertion position and its deferral cascade."""
    slots = state.slots(link.lid)
    best = None
    for pos in range(len(slots) + 1):
        prev_finish = slots[pos - 1].finish if pos > 0 else 0.0
        start = max(prev_finish, est, min_finish - duration)
        finish = start + duration
        # Cascade: push slots[pos:] and verify each stays within its slack.
        feasible = True
        cursor = finish
        for s in slots[pos:]:
            if s.start >= cursor:
                break
            delta = cursor - s.start
            if delta > deferrable_time(state, link.lid, s) + 1e-9:
                feasible = False
                break
            cursor = s.finish + delta
        if feasible and (best is None or start < best):
            best = start
    return best


class TestTheorem1:
    """probe_optimal finds the earliest feasible start (optimal insertion)."""

    @FAST
    @given(
        plans=st.lists(
            st.tuples(st.floats(0.5, 15.0), st.floats(0.0, 25.0)),
            min_size=1,
            max_size=10,
        ),
        new_cost=st.floats(0.5, 12.0),
        new_est=st.floats(0.0, 30.0),
    )
    def test_matches_brute_force(self, plans, new_cost, new_est):
        from repro.linksched.optimal_insertion import schedule_edge_optimal

        net, route = route3()
        state = LinkScheduleState()
        for i, (cost, ready) in enumerate(plans):
            schedule_edge_optimal(state, (i, 100 + i), route, cost, ready)
        link = route[0]
        placement = probe_optimal(state, link, new_cost, new_est)
        expected = brute_force_earliest_start(
            state, link, new_cost / link.speed, new_est, 0.0
        )
        assert placement.start == pytest.approx(expected)

    def test_example_from_construction(self):
        # Hand-built queue where only deferral opens the early gap.
        net, route = route3()
        lid0, lid1 = route[0].lid, route[1].lid
        state = LinkScheduleState()
        edge = (9, 9)
        state.record_route(edge, (lid0, lid1))
        state.insert(lid0, 0, TimeSlot(edge, 0.0, 5.0))
        state.insert(lid1, 0, TimeSlot(edge, 20.0, 25.0))  # 20 units of slack
        placement = probe_optimal(state, route[0], 4.0, est=0.0)
        assert placement.start == 0.0  # basic insertion would start at 5.0


class TestTheorems3and4:
    """BBSA's bandwidth sharing never violates cut-through causality."""

    @FAST
    @given(
        volumes=st.lists(st.floats(0.5, 10.0), min_size=1, max_size=6),
        s1=st.floats(0.5, 4.0),
        s2=st.floats(0.5, 4.0),
    )
    def test_downstream_never_outruns_upstream(self, volumes, s1, s2):
        from repro.linksched.bandwidth import BandwidthLinkState

        net, route = route3()
        object.__setattr__(route[0], "speed", s1)
        object.__setattr__(route[1], "speed", s2)
        state = BandwidthLinkState()
        for i, v in enumerate(volumes):
            state.schedule_edge((i, 100 + i), route, v, 0.0)
            first, second = state.bookings_of((i, 100 + i))
            # Theorem 3: at every instant the volume sent on link 2 is at
            # most the volume received from link 1.
            for t, fwd in second.departure.points:
                assert fwd <= first.departure.value(t) + 1e-6
