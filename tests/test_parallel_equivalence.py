"""Equivalence suite: the parallel fan-out and the result cache are
bit-for-bit identical to the serial sweep path.

The determinism contract (docs/parallel_experiments.md): for any jobs count
and any cache temperature, ``improvement_series`` returns *exactly* the same
dict — values, SEMs, and counter series — because instance seeds are spawned
up front in serial order and results merge in unit-index order.
"""

import pytest

from repro import obs
from repro.exceptions import ReproError
from repro.experiments import (
    ExperimentConfig,
    ResultCache,
    UnitResult,
    execute_units,
    improvement_series,
    merge_unit_results,
    plan_sweep,
    run_unit,
)

#: Small but non-trivial: 2 sweep points x 2 inner values x 2 repetitions.
CFG = ExperimentConfig(
    ccrs=(0.5, 2.0),
    proc_counts=(2, 4),
    task_range=(10, 22),
    repetitions=2,
)


@pytest.fixture(scope="module")
def serial_series():
    return improvement_series(
        CFG, sweep="ccr", with_sem=True, with_metrics=True
    )


class TestJobsEquivalence:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_ccr_sweep_identical(self, serial_series, jobs):
        parallel = improvement_series(
            CFG, sweep="ccr", with_sem=True, with_metrics=True, jobs=jobs
        )
        assert parallel == serial_series
        assert list(parallel) == list(serial_series)  # same key order too

    def test_procs_sweep_identical(self):
        serial = improvement_series(CFG, sweep="procs", with_sem=True)
        parallel = improvement_series(
            CFG, sweep="procs", with_sem=True, jobs=2
        )
        assert parallel == serial

    def test_counter_series_present_and_full_length(self, serial_series):
        counter_keys = [k for k in serial_series if ":" in k]
        assert counter_keys, "with_metrics should emit counter series"
        n_points = len(serial_series["_x"])
        for key in counter_keys:
            assert len(serial_series[key]) == n_points

    def test_bad_jobs_rejected(self):
        with pytest.raises(ReproError):
            improvement_series(CFG, sweep="ccr", jobs=0)

    def test_obs_left_disabled(self, serial_series):
        assert not obs.is_enabled()


class TestPlan:
    def test_plan_is_reproducible(self):
        _, a = plan_sweep(CFG, "ccr")
        _, b = plan_sweep(CFG, "ccr")
        assert [u.seed_key for u in a] == [u.seed_key for u in b]

    def test_units_cover_grid_in_serial_order(self):
        x_values, units = plan_sweep(CFG, "ccr")
        assert x_values == [0.5, 2.0]
        assert [u.index for u in units] == list(range(len(units)))
        assert len(units) == len(CFG.ccrs) * len(CFG.proc_counts) * CFG.repetitions
        # serial order: sweep point major, inner grid, then repetition
        assert [u.point_idx for u in units] == [0] * 4 + [1] * 4
        assert [u.n_procs for u in units[:4]] == [2, 2, 4, 4]

    def test_seed_keys_are_unique(self):
        _, units = plan_sweep(CFG, "ccr")
        assert len({u.seed_key for u in units}) == len(units)

    def test_bad_sweep(self):
        with pytest.raises(ReproError):
            plan_sweep(CFG, "speed")

    def test_run_unit_is_pure(self):
        _, units = plan_sweep(CFG, "ccr")
        a = run_unit(CFG, units[0], CFG.algorithms)
        b = run_unit(CFG, units[0], CFG.algorithms)
        assert a.makespans == b.makespans


class TestCacheEquivalence:
    def test_warm_rerun_reproduces_cold_exactly(self, tmp_path, serial_series):
        cold_cache = ResultCache(tmp_path)
        cold = improvement_series(
            CFG, sweep="ccr", with_sem=True, with_metrics=True,
            cache=cold_cache,
        )
        assert cold == serial_series
        assert cold_cache.stats.hits == 0
        assert cold_cache.stats.writes > 0
        warm_cache = ResultCache(tmp_path)
        warm = improvement_series(
            CFG, sweep="ccr", with_sem=True, with_metrics=True,
            cache=warm_cache,
        )
        assert warm == cold
        assert warm_cache.stats.misses == 0
        assert warm_cache.stats.hits == cold_cache.stats.writes

    def test_warm_parallel_matches(self, tmp_path, serial_series):
        improvement_series(
            CFG, sweep="ccr", with_sem=True, with_metrics=True,
            cache=ResultCache(tmp_path),
        )
        warm = improvement_series(
            CFG, sweep="ccr", with_sem=True, with_metrics=True,
            cache=ResultCache(tmp_path), jobs=2,
        )
        assert warm == serial_series

    def test_cache_accepts_path(self, tmp_path):
        a = improvement_series(CFG, sweep="procs", cache=tmp_path)
        b = improvement_series(CFG, sweep="procs", cache=str(tmp_path))
        assert a == b

    def test_metricless_records_do_not_satisfy_metrics_request(
        self, tmp_path, serial_series
    ):
        # A sweep without metrics writes counter-less records ...
        improvement_series(CFG, sweep="ccr", cache=ResultCache(tmp_path))
        # ... which must not be replayed into a with_metrics sweep.
        cache = ResultCache(tmp_path)
        series = improvement_series(
            CFG, sweep="ccr", with_sem=True, with_metrics=True, cache=cache,
        )
        assert cache.stats.misses > 0
        assert series == serial_series

    def test_metrics_records_satisfy_metricless_request(self, tmp_path):
        improvement_series(
            CFG, sweep="ccr", with_metrics=True, cache=ResultCache(tmp_path)
        )
        cache = ResultCache(tmp_path)
        series = improvement_series(CFG, sweep="ccr", cache=cache)
        assert cache.stats.misses == 0
        assert series == improvement_series(CFG, sweep="ccr")

    def test_corrupt_record_recomputed(self, tmp_path):
        improvement_series(CFG, sweep="procs", cache=ResultCache(tmp_path))
        victim = next(tmp_path.glob("*/*.json"))
        victim.write_text("{not json")
        cache = ResultCache(tmp_path)
        series = improvement_series(CFG, sweep="procs", cache=cache)
        assert series == improvement_series(CFG, sweep="procs")
        assert cache.stats.misses >= 1


def _unit(index, point_idx, counters):
    return UnitResult(
        index=index,
        point_idx=point_idx,
        makespans={"ba": 10.0, "oihsa": 8.0},
        counters=counters,
    )


class TestCounterPadding:
    """Regression tests for the counter zero-padding in the point merge.

    Every ``"<algorithm>:<counter>"`` series must span every sweep point:
    counters first observed late are back-filled with zeros, counters that
    stop being observed are forward-filled.
    """

    CFG3 = ExperimentConfig(
        ccrs=(0.5, 1.0, 2.0),
        proc_counts=(4,),
        repetitions=1,
        algorithms=("ba", "oihsa"),
    )
    X = [0.5, 1.0, 2.0]

    def merge(self, results):
        return merge_unit_results(
            self.CFG3, self.X, results, with_metrics=True
        )

    def test_counter_appearing_only_at_final_point(self):
        results = [
            _unit(0, 0, {"oihsa": {}}),
            _unit(1, 1, {"oihsa": {}}),
            _unit(2, 2, {"oihsa": {"late.counter": 4.0}}),
        ]
        series = self.merge(results)
        assert series["oihsa:late.counter"] == [0.0, 0.0, 4.0]

    def test_counter_disappearing_mid_sweep(self):
        results = [
            _unit(0, 0, {"oihsa": {"early.counter": 2.0}}),
            _unit(1, 1, {"oihsa": {}}),
            _unit(2, 2, {"oihsa": {}}),
        ]
        series = self.merge(results)
        assert series["oihsa:early.counter"] == [2.0, 0.0, 0.0]

    def test_counter_with_gap_in_the_middle(self):
        results = [
            _unit(0, 0, {"oihsa": {"gappy": 1.0}}),
            _unit(1, 1, {"oihsa": {}}),
            _unit(2, 2, {"oihsa": {"gappy": 3.0}}),
        ]
        series = self.merge(results)
        assert series["oihsa:gappy"] == [1.0, 0.0, 3.0]

    def test_all_counter_series_span_all_points(self):
        results = [
            _unit(0, 0, {"oihsa": {"a": 1.0}, "ba": {"b": 2.0}}),
            _unit(1, 1, {"oihsa": {"c": 5.0}}),
            _unit(2, 2, {"ba": {"a": 7.0}}),
        ]
        series = self.merge(results)
        for key in ("oihsa:a", "ba:b", "oihsa:c", "ba:a"):
            assert len(series[key]) == 3

    def test_point_mean_divides_by_instances_with_stats(self):
        # Two instances at the point, only one incremented the counter: the
        # per-point value is the mean over *instances with captures*, so the
        # silent instance counts as zero.
        cfg = ExperimentConfig(
            ccrs=(1.0,),
            proc_counts=(4,),
            repetitions=2,
            algorithms=("ba", "oihsa"),
        )
        results = [
            _unit(0, 0, {"oihsa": {"probes": 6.0}}),
            _unit(1, 0, {"oihsa": {}}),
        ]
        series = merge_unit_results(cfg, [1.0], results, with_metrics=True)
        assert series["oihsa:probes"] == [3.0]

    def test_missing_point_raises(self):
        with pytest.raises(ReproError):
            self.merge([_unit(0, 0, None), _unit(2, 2, None)])


class TestExecuteUnits:
    def test_partial_cache_merges_missing_algorithms(self, tmp_path):
        # Warm the cache with a 2-algorithm config, then sweep a 3-algorithm
        # superset: only the new algorithm should be computed fresh, and the
        # merged output must equal an uncached run of the full config.
        small = CFG.with_(algorithms=("ba", "oihsa"))
        improvement_series(small, sweep="ccr", cache=ResultCache(tmp_path))
        # different algorithms tuple -> different fingerprint -> full recompute
        cache = ResultCache(tmp_path)
        full = improvement_series(CFG, sweep="ccr", cache=cache)
        assert cache.stats.hits == 0  # fingerprint isolation, no reuse
        assert full == improvement_series(CFG, sweep="ccr")

    def test_results_in_unit_order(self):
        _, units = plan_sweep(CFG, "ccr")
        results = execute_units(CFG, units, jobs=2)
        assert [r.index for r in results] == [u.index for u in units]


class TestTelemetryEquivalence:
    """The deterministic telemetry subset is worker-count invariant."""

    def _telemetry(self, *, jobs, cache=None):
        out: list = []
        improvement_series(
            CFG,
            sweep="ccr",
            with_metrics=True,
            jobs=jobs,
            cache=cache,
            telemetry_out=out,
        )
        assert len(out) == 1
        return out[0]

    def test_deterministic_form_byte_identical_jobs_1_vs_4(self):
        import json

        serial = self._telemetry(jobs=1)
        fanned = self._telemetry(jobs=4)
        as_bytes = lambda t: json.dumps(  # noqa: E731
            t.to_dict(deterministic_only=True), sort_keys=True
        ).encode()
        assert as_bytes(serial) == as_bytes(fanned)

    def test_units_carry_counters_and_span_counts(self):
        telemetry = self._telemetry(jobs=2)
        doc = telemetry.to_dict(deterministic_only=True)
        assert [u["index"] for u in doc["units"]] == list(range(len(doc["units"])))
        unit = doc["units"][0]
        assert unit["fresh_algorithms"] == sorted(CFG.algorithms)
        assert unit["counters"]  # workers shipped their counter deltas back
        assert unit["span_counts"]  # ...and their phase spans
        for algo in CFG.algorithms:
            assert unit["span_counts"][algo]["task_placement"] >= 1

    def test_wall_clock_fields_excluded_from_deterministic_form(self):
        telemetry = self._telemetry(jobs=2)
        full = telemetry.to_dict()["units"][0]
        deterministic = telemetry.to_dict(deterministic_only=True)["units"][0]
        for key in ("wall_s", "worker", "t_start", "t_end", "timings"):
            assert key in full
            assert key not in deterministic

    def test_cache_attribution_sees_warm_cache(self, tmp_path):
        cold = self._telemetry(jobs=1, cache=ResultCache(tmp_path))
        warm = self._telemetry(jobs=2, cache=ResultCache(tmp_path))
        n = len(cold.units)
        assert cold.cache_attribution()["units_fresh"] == n
        attribution = warm.cache_attribution()
        assert attribution["units_cached"] == n
        assert attribution["algorithm_runs_fresh"] == 0

    def test_worker_utilization_covers_every_fresh_unit(self):
        telemetry = self._telemetry(jobs=2)
        workers = telemetry.worker_utilization()
        assert workers
        assert sum(w["units"] for w in workers) == len(telemetry.units)
        for w in workers:
            assert w["busy_s"] > 0.0
            assert 0.0 < w["utilization"] <= 1.0 + 1e-9
        summary = telemetry.summary_dict()
        assert summary["workers"] == len(workers)
        text = telemetry.to_text(prefix="[sweep] ")
        assert text.startswith("[sweep] ")
        assert "units" in text and "worker" in text
