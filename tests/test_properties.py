"""Property-based tests (hypothesis) for the core invariants.

Strategies generate random DAGs and random topologies; every scheduler must
produce a schedule that passes the full validator, and the link-engine
primitives must maintain their local invariants under arbitrary call
sequences.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import SCHEDULERS
from repro.core.validate import validate_schedule
from repro.linksched.insertion import schedule_edge_basic
from repro.linksched.optimal_insertion import schedule_edge_optimal
from repro.linksched.slots import check_queue_invariants, find_gap
from repro.linksched.state import LinkScheduleState
from repro.network.builders import (
    fully_connected,
    linear_array,
    random_wan,
    shared_bus,
    switched_cluster,
)
from repro.network.routing import bfs_route
from repro.taskgraph.ccr import ccr_of, scale_to_ccr
from repro.taskgraph.generators import random_layered_dag
from repro.taskgraph.priorities import bottom_levels, priority_list, top_levels

# Scheduling a graph takes ~10ms; keep example counts moderate.
FAST = settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
SLOW = settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])


graphs = st.builds(
    lambda n, seed, density: random_layered_dag(n, rng=seed, density=density),
    n=st.integers(2, 25),
    seed=st.integers(0, 10_000),
    density=st.floats(0.0, 0.5),
)

topologies = st.one_of(
    st.builds(lambda n, seed: fully_connected(n, rng=seed), st.integers(1, 6), st.integers(0, 100)),
    st.builds(lambda n, seed: switched_cluster(n, rng=seed), st.integers(2, 8), st.integers(0, 100)),
    st.builds(lambda n, seed: linear_array(n, rng=seed), st.integers(2, 6), st.integers(0, 100)),
    st.builds(lambda n, seed: shared_bus(n, rng=seed), st.integers(2, 6), st.integers(0, 100)),
    st.builds(
        lambda n, seed: random_wan(n, rng=seed, proc_speed=(1, 10), link_speed=(1, 10)),
        st.integers(2, 12),
        st.integers(0, 100),
    ),
)


class TestGraphProperties:
    @FAST
    @given(g=graphs)
    def test_priority_list_is_topological_permutation(self, g):
        order = priority_list(g)
        assert sorted(order) == sorted(g.task_ids())
        pos = {t: i for i, t in enumerate(order)}
        for e in g.edges():
            assert pos[e.src] < pos[e.dst]

    @FAST
    @given(g=graphs)
    def test_bottom_levels_dominate_successors(self, g):
        bl = bottom_levels(g)
        for e in g.edges():
            assert bl[e.src] >= g.task(e.src).weight + e.cost + bl[e.dst] - 1e-9

    @FAST
    @given(g=graphs)
    def test_top_plus_bottom_bounded_by_cp(self, g):
        from repro.taskgraph.priorities import critical_path_length

        tl, bl = top_levels(g), bottom_levels(g)
        cp = critical_path_length(g)
        for t in g.task_ids():
            assert tl[t] + bl[t] <= cp + 1e-6

    @FAST
    @given(g=graphs, target=st.floats(0.05, 20.0))
    def test_ccr_rescaling_hits_target(self, g, target):
        if g.num_edges == 0:
            return
        assert ccr_of(scale_to_ccr(g, target)) == pytest.approx(target)


class TestGapProperties:
    slots_strategy = st.lists(
        st.tuples(st.floats(0, 100), st.floats(0.1, 20)), min_size=0, max_size=10
    )

    @FAST
    @given(
        raw=slots_strategy,
        duration=st.floats(0.0, 15.0),
        est=st.floats(0.0, 120.0),
        min_finish=st.floats(0.0, 150.0),
    )
    def test_find_gap_result_is_insertable(self, raw, duration, est, min_finish):
        from repro.linksched.slots import TimeSlot, insert_slot

        # Build a disjoint queue from the raw (start, length) pairs.
        queue = []
        cursor = 0.0
        for offset, length in sorted(raw):
            start = max(cursor, offset)
            queue.append(TimeSlot((len(queue), 999), start, start + length))
            cursor = start + length
        index, start, finish = find_gap(queue, duration, est, min_finish)
        assert start >= est
        assert finish >= min_finish - 1e-9
        assert finish - start == pytest.approx(duration)
        insert_slot(queue, index, TimeSlot((999, 999), start, finish))
        check_queue_invariants(queue)


class TestEngineProperties:
    edge_plans = st.lists(
        st.tuples(st.floats(0.5, 50.0), st.floats(0.0, 30.0)),  # (cost, ready)
        min_size=1,
        max_size=12,
    )

    @FAST
    @given(plans=edge_plans, seed=st.integers(0, 50))
    def test_optimal_never_later_than_basic_per_arrival(self, plans, seed):
        """On an identical call sequence, each edge's arrival under optimal
        insertion is never later than under basic insertion."""
        net = linear_array(3, link_speed=2.0)
        ps = [p.vid for p in net.processors()]
        route = bfs_route(net, ps[0], ps[2])
        s_basic, s_opt = LinkScheduleState(), LinkScheduleState()
        for i, (cost, ready) in enumerate(plans):
            a_b = schedule_edge_basic(s_basic, (i, 100 + i), route, cost, ready)
            a_o = schedule_edge_optimal(s_opt, (i, 100 + i), route, cost, ready)
            assert a_o <= a_b + 1e-6
            for lid in (route[0].lid, route[1].lid):
                check_queue_invariants(s_opt.slots(lid))

    @FAST
    @given(plans=edge_plans)
    def test_optimal_preserves_causality_of_all_edges(self, plans):
        from repro.linksched.causality import check_route_causality

        net = linear_array(3)
        ps = [p.vid for p in net.processors()]
        route = bfs_route(net, ps[0], ps[2])
        state = LinkScheduleState()
        costs = {}
        readys = {}
        for i, (cost, ready) in enumerate(plans):
            key = (i, 100 + i)
            schedule_edge_optimal(state, key, route, cost, ready)
            costs[key], readys[key] = cost, ready
        for key in costs:
            check_route_causality(state, net, key, costs[key], readys[key])

    @FAST
    @given(plans=edge_plans)
    def test_bandwidth_conserves_volume_and_capacity(self, plans):
        from repro.linksched.bandwidth import BandwidthLinkState

        net = linear_array(3, link_speed=3.0)
        ps = [p.vid for p in net.processors()]
        route = bfs_route(net, ps[0], ps[2])
        state = BandwidthLinkState()
        for i, (cost, ready) in enumerate(plans):
            key = (i, 100 + i)
            arrival = state.schedule_edge(key, route, cost, ready)
            bookings = state.bookings_of(key)
            assert bookings[-1].departure.final_volume == pytest.approx(cost, rel=1e-6)
            assert arrival >= ready
        for link in route:
            assert state.profile(link.lid).max_used() <= 1.0 + 1e-6


class TestSchedulerProperties:
    @SLOW
    @given(g=graphs, net=topologies, ccr=st.floats(0.1, 10.0), algo=st.sampled_from(sorted(SCHEDULERS)))
    def test_every_schedule_validates(self, g, net, ccr, algo):
        if g.num_edges:
            g = scale_to_ccr(g, ccr)
        schedule = SCHEDULERS[algo]().schedule(g, net)
        validate_schedule(schedule)

    @SLOW
    @given(g=graphs, net=topologies, algo=st.sampled_from(["ba", "oihsa", "bbsa"]))
    def test_every_schedule_resimulates(self, g, net, algo):
        """The independent event-driven re-execution reproduces every finish."""
        from repro.core.eventsim import resimulate

        schedule = SCHEDULERS[algo]().schedule(g, net)
        report = resimulate(schedule)
        assert report.makespan == pytest.approx(schedule.makespan)

    @SLOW
    @given(g=graphs, net=topologies)
    def test_makespan_lower_bound(self, g, net):
        """No schedule beats total work spread over all processors at max speed."""
        schedule = SCHEDULERS["oihsa"]().schedule(g, net)
        total_speed = sum(p.speed for p in net.processors())
        assert schedule.makespan >= g.total_work() / total_speed - 1e-6

    @SLOW
    @given(g=graphs, net=topologies)
    def test_makespan_upper_bound_serial(self, g, net):
        """List scheduling never exceeds fully-serial execution on the slowest
        processor plus all communication serialized over the slowest link."""
        schedule = SCHEDULERS["ba"]().schedule(g, net)
        slowest_proc = min(p.speed for p in net.processors())
        slowest_link = min((l.speed for l in net.links()), default=1.0)
        diameter = max(1, len(net.processors()))
        bound = g.total_work() / slowest_proc + (
            g.total_comm() / slowest_link
        ) * diameter
        assert schedule.makespan <= bound + 1e-6
