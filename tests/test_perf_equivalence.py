"""Differential suite: the optimized hot paths vs the retained naive reference.

The hot-path overhaul (indexed queues, undo-log transactions, pruned/inlined
routing, fused obs-off booking) claims *bit-identical* behavior.  This module
proves it by driving both implementations — the optimized substrate and the
seed algorithms kept in :mod:`tests.naive_reference` — through identical
inputs and comparing results exactly:

1. ``find_gap_indexed`` vs the linear ``find_gap`` scan on random queues,
2. undo-log vs copy-on-write transactions across random
   begin/insert/replace_suffix/commit/rollback sequences,
3. whole schedulers (ba / oihsa / bbsa / packet-ba, both comm models) on
   Hypothesis-generated workloads: same makespan, per-task placements, link
   slot lists, edge arrivals, and ScheduleStats counters (modulo the new
   cache-introspection counters), with the naive reference monkeypatched in,
4. the obs-off fast paths change nothing observable and leave the metrics
   registry untouched.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

import repro.core.ba as ba_mod
import repro.core.bbsa as bbsa_mod
import repro.core.oihsa as oihsa_mod
import repro.core.packetba as packetba_mod
from repro import obs
from repro.core import SCHEDULERS
from repro.linksched.commmodel import CUT_THROUGH, STORE_AND_FORWARD
from repro.linksched.insertion import schedule_edge_basic
from repro.linksched.optimal_insertion import schedule_edge_optimal
from repro.linksched.slots import TimeSlot, find_gap, find_gap_indexed
from repro.linksched.state import LinkScheduleState
from repro.network.builders import (
    fully_connected,
    linear_array,
    random_wan,
    switched_cluster,
)
from repro.network.routing import bfs_route
from repro.obs import OBS
from repro.taskgraph.generators import random_layered_dag
from tests.naive_reference import (
    NaiveLinkScheduleState,
    naive_bfs_route,
    naive_dijkstra_route,
)

# Differential checks are exact (==), never approximate: the acceptance bar
# is bit-identical behavior, so any drift must fail loudly.

FAST = settings(
    max_examples=100, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
SCHED = settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

times = st.floats(min_value=0.0, max_value=50.0)
durations = st.floats(min_value=0.0, max_value=10.0)


@st.composite
def slot_queues(draw) -> list[TimeSlot]:
    """Sorted, pairwise-disjoint queues built from (gap, duration) pairs."""
    pairs = draw(st.lists(st.tuples(times, durations), max_size=12))
    t = 0.0
    slots: list[TimeSlot] = []
    for i, (gap, dur) in enumerate(pairs):
        start = t + gap
        slots.append(TimeSlot((i, 1000 + i), start, start + dur))
        t = start + dur
    return slots


class TestFindGapDifferential:
    @FAST
    @given(slots=slot_queues(), duration=durations, est=times, min_finish=times)
    def test_indexed_matches_linear(self, slots, duration, est, min_finish):
        starts = [s.start for s in slots]
        finishes = [s.finish for s in slots]
        assert find_gap_indexed(
            starts, finishes, duration, est, min_finish
        ) == find_gap(slots, duration, est, min_finish)

    @FAST
    @given(slots=slot_queues(), duration=durations, est=times, min_finish=times)
    def test_state_find_gap_matches_linear(self, slots, duration, est, min_finish):
        state = LinkScheduleState()
        if slots:
            state.replace_suffix(7, 0, slots)
        assert state.find_gap(7, duration, est, min_finish) == find_gap(
            slots, duration, est, min_finish
        )


# ---------------------------------------------------------------------------
# Transactions: undo log vs copy-on-write.
# ---------------------------------------------------------------------------

_TXN_NETS = [fully_connected(3, rng=3), switched_cluster(4, rng=5)]
_TXN_PROCS = [sorted(v.vid for v in net.processors()) for net in _TXN_NETS]

booking_ops = st.lists(
    st.tuples(
        st.booleans(),  # optimal insertion (replace_suffix) vs basic (insert)
        st.integers(min_value=0, max_value=10**6),  # src/dst selector
        st.floats(min_value=0.0, max_value=30.0),  # cost
        times,  # ready time
        st.sampled_from(["none", "commit", "rollback"]),
    ),
    min_size=1,
    max_size=12,
)


def _assert_states_equal(real: LinkScheduleState, naive: NaiveLinkScheduleState):
    assert real.routes() == naive.routes()
    assert real.in_transaction == naive.in_transaction
    for lid in set(real._queues) | set(naive._queues):
        assert real.slots(lid) == naive.slots(lid), f"link {lid} queues differ"
        r_slots, r_starts, r_finishes = real.queue_arrays(lid)
        assert r_starts == [s.start for s in r_slots]
        assert r_finishes == [s.finish for s in r_slots]
        for s in r_slots:
            assert real.slot_of(s.edge, lid) == naive.slot_of(s.edge, lid)
    for edge, route in real.routes().items():
        for lid in route:
            assert real.next_link_of(edge, lid) == naive.next_link_of(edge, lid)


class TestTransactionDifferential:
    @FAST
    @given(
        ops=booking_ops,
        net_idx=st.integers(0, len(_TXN_NETS) - 1),
        comm=st.sampled_from([CUT_THROUGH, STORE_AND_FORWARD]),
    )
    def test_undo_log_matches_copy_on_write(self, ops, net_idx, comm):
        net = _TXN_NETS[net_idx]
        procs = _TXN_PROCS[net_idx]
        n = len(procs)
        real = LinkScheduleState()
        naive = NaiveLinkScheduleState()
        for i, (use_optimal, sel, cost, ready, txn) in enumerate(ops):
            src = procs[sel % n]
            dst = procs[(sel // n) % n]
            if dst == src:
                dst = procs[(procs.index(src) + 1) % n]
            route = bfs_route(net, src, dst)
            edge = (i, 1000 + i)
            book = schedule_edge_optimal if use_optimal else schedule_edge_basic
            if txn != "none":
                real.begin()
                naive.begin()
            a_real = book(real, edge, route, cost, ready, comm)
            a_naive = book(naive, edge, route, cost, ready, comm)
            assert a_real == a_naive
            if txn == "commit":
                real.commit()
                naive.commit()
            elif txn == "rollback":
                real.rollback()
                naive.rollback()
            _assert_states_equal(real, naive)

    def test_version_counters_are_strictly_monotone(self):
        state = LinkScheduleState()
        seen: list[int] = []
        state.insert(1, 0, TimeSlot((0, 1), 0.0, 1.0))
        seen.append(state.version(1))
        state.begin()
        state.insert(1, 1, TimeSlot((1, 2), 2.0, 3.0))
        seen.append(state.version(1))
        state.rollback()  # undo replay must bump, not rewind, the version
        seen.append(state.version(1))
        state.replace_suffix(1, 1, [TimeSlot((2, 3), 4.0, 5.0)])
        seen.append(state.version(1))
        assert seen == sorted(set(seen)), f"versions repeated or rewound: {seen}"
        assert state.version(99) == 0  # never-booked links read version 0


# ---------------------------------------------------------------------------
# Whole schedulers vs the naive reference.
# ---------------------------------------------------------------------------

graphs = st.builds(
    lambda n, seed, density: random_layered_dag(n, rng=seed, density=density),
    n=st.integers(2, 18),
    seed=st.integers(0, 10_000),
    density=st.floats(0.0, 0.5),
)

topologies = st.one_of(
    st.builds(lambda n, s: fully_connected(n, rng=s), st.integers(2, 5), st.integers(0, 99)),
    st.builds(lambda n, s: switched_cluster(n, rng=s), st.integers(2, 6), st.integers(0, 99)),
    st.builds(lambda n, s: linear_array(n, rng=s), st.integers(2, 5), st.integers(0, 99)),
    st.builds(
        lambda n, s: random_wan(n, rng=s, proc_speed=(1, 10), link_speed=(1, 10)),
        st.integers(2, 8),
        st.integers(0, 99),
    ),
)

#: counters introduced by this PR's cache introspection — the only allowed
#: difference between the optimized and reference runs
_NEW_COUNTERS = {
    "routing.probe_cache_hits",
    "routing.probe_cache_misses",
    "routing.probe_cutoffs",
}

# (scheduler name, optimized kwargs, naive kwargs, [(module, attr, naive impl)])
_CASES = [
    (
        "ba",
        {},
        {},
        [("LinkScheduleState", NaiveLinkScheduleState), ("bfs_route", naive_bfs_route)],
        ba_mod,
    ),
    (
        "oihsa",
        {},
        {"probe_cache": False},
        [
            ("LinkScheduleState", NaiveLinkScheduleState),
            ("dijkstra_route", naive_dijkstra_route),
            ("bfs_route", naive_bfs_route),
        ],
        oihsa_mod,
    ),
    (
        "bbsa",
        {},
        {"probe_cache": False},
        [("dijkstra_route", naive_dijkstra_route), ("bfs_route", naive_bfs_route)],
        bbsa_mod,
    ),
    ("packet-ba", {}, {}, [("bfs_route", naive_bfs_route)], packetba_mod),
]


def _comm_kwargs(name: str, comm) -> dict:
    return {} if name == "packet-ba" else {"comm": comm}


def _filtered_counters(stats) -> dict:
    counters = {
        k: v
        for k, v in stats.metrics.get("counters", {}).items()
        if k not in _NEW_COUNTERS
    }
    # The topology route table turns repeat BFS calls into table hits; the
    # naive reference recomputes every call.  Folding hits back into
    # ``bfs_routes`` recovers the invocation count, which must match exactly.
    hits = counters.pop("routing.table_hits", 0)
    if hits:
        counters["routing.bfs_routes"] = counters.get("routing.bfs_routes", 0) + hits
    return counters


def _link_slot_lists(schedule) -> dict:
    state = getattr(schedule, "link_state", None)
    if state is None:
        state = getattr(schedule, "packet_state", None)
    if state is None:  # bbsa's fluid model has no slot queues
        return {}
    return {lid: list(q) for lid, q in
            ((lid, state.slots(lid)) for lid in state.used_links())}


@pytest.mark.parametrize(
    "name,comm",
    [
        ("ba", CUT_THROUGH),
        ("ba", STORE_AND_FORWARD),
        ("oihsa", CUT_THROUGH),
        ("oihsa", STORE_AND_FORWARD),
        ("bbsa", CUT_THROUGH),
        ("bbsa", STORE_AND_FORWARD),
        ("packet-ba", CUT_THROUGH),
    ],
)
class TestSchedulerDifferential:
    """7 cases x 15 examples = 105 generated instances, each run three ways."""

    @SCHED
    @given(graph=graphs, net=topologies)
    def test_optimized_matches_naive_reference(self, name, comm, graph, net):
        case = next(c for c in _CASES if c[0] == name)
        _, opt_kwargs, naive_kwargs, patches, module = case
        cls = SCHEDULERS[name]
        comm_kw = _comm_kwargs(name, comm)

        # 1. Optimized, obs off: exercises the fused fast paths.
        obs.disable()
        fast = cls(**opt_kwargs, **comm_kw).schedule(graph, net)

        # 2. Optimized, obs on: exercises the counting paths + probe memo.
        obs.enable(obs.NullSink())
        obs.reset()
        try:
            instrumented = cls(**opt_kwargs, **comm_kw).schedule(graph, net)

            # 3. Naive reference, obs on, seed algorithms monkeypatched in.
            saved = [(attr, getattr(module, attr)) for attr, _ in patches]
            try:
                for attr, impl in patches:
                    setattr(module, attr, impl)
                obs.reset()
                reference = cls(**naive_kwargs, **comm_kw).schedule(graph, net)
            finally:
                for attr, impl in saved:
                    setattr(module, attr, impl)
        finally:
            obs.disable()

        for other in (instrumented, reference):
            assert fast.makespan == other.makespan
            assert fast.placements == other.placements
            assert fast.edge_arrivals == other.edge_arrivals
            assert _link_slot_lists(fast) == _link_slot_lists(other)
        assert _filtered_counters(instrumented.stats) == _filtered_counters(
            reference.stats
        )


# ---------------------------------------------------------------------------
# Obs-off paths must not touch the instruments at all.
# ---------------------------------------------------------------------------

class TestObsOffIsInert:
    def test_disabled_run_mutates_no_metrics_or_events(self, diamond4, net4):
        obs.disable()
        obs.METRICS.reset()
        obs.PROFILER.reset()
        mark = OBS.bus.mark()
        empty_metrics = obs.METRICS.snapshot()
        empty_timings = obs.PROFILER.snapshot()
        for name in ("ba", "oihsa", "bbsa", "packet-ba"):
            result = SCHEDULERS[name]().schedule(diamond4, net4)
            assert result.stats is None
        assert obs.METRICS.snapshot() == empty_metrics
        assert obs.METRICS._counters == {}  # not even zero-valued instruments
        assert obs.PROFILER.snapshot() == empty_timings
        assert OBS.bus.mark() == mark
        assert OBS.bus.since(mark) == []

    def test_probe_cache_counters_appear_when_observing(self, fork8, wan16):
        obs.enable(obs.NullSink())
        obs.reset()
        try:
            result = SCHEDULERS["oihsa"]().schedule(fork8, wan16)
            counters = result.stats.metrics.get("counters", {})
            assert "routing.probe_cache_misses" in counters
            # Hits can legitimately be zero (the stats diff drops zero deltas),
            # but the instrument itself must be registered.
            assert "routing.probe_cache_hits" in obs.METRICS.snapshot()["counters"]
        finally:
            obs.disable()


# ---------------------------------------------------------------------------
# Topology adjacency cache.
# ---------------------------------------------------------------------------

class TestAdjacencyCache:
    def test_cache_matches_sorted_scan_and_invalidates(self):
        net = switched_cluster(4, rng=11)
        for v in net.vertices():
            assert net.sorted_out_links(v.vid) == sorted(
                net.out_links(v.vid), key=lambda lv: lv[0].lid
            )
        # Mutation must invalidate: add a link and re-check every vertex.
        procs = [v.vid for v in net.processors()]
        net.connect(procs[0], procs[1], speed=2.0)
        for v in net.vertices():
            assert net.sorted_out_links(v.vid) == sorted(
                net.out_links(v.vid), key=lambda lv: lv[0].lid
            )
