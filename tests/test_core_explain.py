"""Explainability tests: the makespan attribution must tile ``[0, makespan]``
exactly for every scheduler, and the binding/non-binding resource split must
be causally real — perturbing a binding resource moves the makespan,
perturbing a resource absent from the explanation does not."""

from __future__ import annotations

import json

import pytest

from repro.core import SCHEDULERS, explain, utilization_timelines
from repro.core.explain import SEGMENT_KINDS
from repro.core.validate import validate_schedule
from repro.network.topology import NetworkTopology
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.kernels import fork_join

ALL_ALGOS = sorted(SCHEDULERS)


def detour_net(
    fast: float = 4.0,
    cross: float = 1.0,
    detour: float = 1.0,
    p0: float = 2.0,
    p1: float = 1.0,
    p2: float = 1.0,
) -> NetworkTopology:
    """Three processors with a 2-hop switch detour no hop-count route takes.

    ``P0`` is strictly fastest, so compute-bound chains bind to it; the
    detour links exist only to be provably non-binding (they appear on no
    route, no booking, no explanation segment).
    """
    n = NetworkTopology()
    a = n.add_processor(p0)
    b = n.add_processor(p1)
    c = n.add_processor(p2)
    s = n.add_switch()
    n.connect(a, b, speed=fast)
    n.connect(a, c, speed=cross)
    n.connect(b, c, speed=cross)
    n.connect(a, s, speed=detour)
    n.connect(s, b, speed=detour)
    return n


@pytest.mark.parametrize("algo", ALL_ALGOS)
class TestAttributionExactness:
    """100%-of-makespan tiling, for every scheduler on tier-1 workloads."""

    def _check(self, algo, graph, net):
        schedule = SCHEDULERS[algo]().schedule(graph, net)
        validate_schedule(schedule)
        ex = explain(schedule)
        assert ex.algorithm == schedule.algorithm
        assert ex.makespan == schedule.makespan
        # bit-exact: boundary floats are shared, so durations telescope
        assert ex.attributed_total() == schedule.makespan
        assert sum(ex.by_category().values()) == pytest.approx(
            schedule.makespan, abs=1e-9
        )
        # the segments tile [0, makespan] with no gap and no overlap
        assert ex.segments, "non-empty schedule must have a binding chain"
        assert ex.segments[0].start == 0.0
        assert ex.segments[-1].finish == schedule.makespan
        for prev, nxt in zip(ex.segments, ex.segments[1:]):
            assert prev.finish == nxt.start
        for seg in ex.segments:
            assert seg.kind in SEGMENT_KINDS
            assert seg.duration > 0.0
        return ex

    def test_chain(self, algo, chain3, net2):
        self._check(algo, chain3, net2)

    def test_diamond(self, algo, diamond4, net4):
        self._check(algo, diamond4, net4)

    def test_fork_join_wan(self, algo, fork8, wan16):
        ex = self._check(algo, fork8, wan16)
        # the binding chain must name real resources, largest share first
        shares = list(ex.by_resource().values())
        assert shares == sorted(shares, reverse=True)

    def test_single_task(self, algo, net2):
        g = TaskGraph()
        g.add_task(0, 6.0)
        schedule = SCHEDULERS[algo]().schedule(g, net2)
        ex = explain(schedule)
        assert [s.kind for s in ex.segments] == ["compute"]
        assert ex.by_category() == {"compute": schedule.makespan}


def _chain3() -> TaskGraph:
    g = TaskGraph(name="chain3")
    g.add_task(0, 2.0)
    g.add_task(1, 3.0)
    g.add_task(2, 4.0)
    g.add_edge(0, 1, 5.0)
    g.add_edge(1, 2, 6.0)
    return g


@pytest.mark.parametrize("algo", ALL_ALGOS)
class TestPerturbation:
    """The explanation's binding set is causal, not cosmetic."""

    def test_chain_binds_to_the_fast_processor(self, algo):
        schedule = SCHEDULERS[algo]().schedule(_chain3(), detour_net())
        ex = explain(schedule)
        assert ex.binding_resources() == ["P0"]

    def test_slowing_the_binding_processor_moves_the_makespan(self, algo):
        base = SCHEDULERS[algo]().schedule(_chain3(), detour_net()).makespan
        perturbed = SCHEDULERS[algo]().schedule(
            _chain3(), detour_net(p0=1.0)
        ).makespan
        assert perturbed != base
        assert perturbed > base  # the binding resource got slower

    def test_slowing_a_non_binding_link_changes_nothing(self, algo):
        base = SCHEDULERS[algo]().schedule(_chain3(), detour_net()).makespan
        perturbed = SCHEDULERS[algo]().schedule(
            _chain3(), detour_net(detour=0.25)
        ).makespan
        assert perturbed == base


@pytest.mark.parametrize("algo", ["ba", "packet-ba"])
class TestLinkBindingPerturbation:
    """Contention-bound schedules name links, and those links are causal.

    Restricted to the hop-count routers whose placement decisions don't read
    unused link speeds (MLS-based priorities make the detour observable to
    the lookahead heuristics, so only routing-pure algorithms qualify).
    """

    def test_fork_join_explanation_names_links(self, algo):
        g = fork_join(8, rng=7)
        ex = explain(SCHEDULERS[algo]().schedule(g, detour_net()))
        assert any(r.startswith("L") for r in ex.binding_resources())
        assert "transfer" in ex.by_category()

    def test_slowing_binding_links_moves_the_makespan(self, algo):
        g = fork_join(8, rng=7)
        base = SCHEDULERS[algo]().schedule(g, detour_net()).makespan
        perturbed = SCHEDULERS[algo]().schedule(
            g, detour_net(cross=0.5)
        ).makespan
        assert perturbed != base

    def test_slowing_the_detour_still_changes_nothing(self, algo):
        g = fork_join(8, rng=7)
        base = SCHEDULERS[algo]().schedule(g, detour_net()).makespan
        perturbed = SCHEDULERS[algo]().schedule(
            g, detour_net(detour=0.25)
        ).makespan
        assert perturbed == base


class TestExplanationApi:
    @pytest.fixture
    def explanation(self, fork8, wan16):
        return explain(SCHEDULERS["ba"]().schedule(fork8, wan16))

    def test_timelines_cover_processors_then_links(self, explanation):
        names = [tl.resource for tl in explanation.timelines]
        kinds = [n[0] for n in names]
        assert "P" in kinds
        assert kinds == sorted(kinds, key=lambda k: k != "P")  # P block first

    def test_processor_utilization_is_a_fraction(self, explanation):
        for tl in explanation.timelines:
            if not tl.resource.startswith("P"):
                continue
            u = tl.utilization(explanation.makespan)
            assert 0.0 < u <= 1.0 + 1e-12
            # merged intervals are disjoint and ordered
            for (s1, f1), (s2, f2) in zip(tl.busy, tl.busy[1:]):
                assert f1 < s2 or (f1 <= s2)
                assert s1 < f1 and s2 < f2

    def test_timeline_lookup(self, explanation):
        first = explanation.timelines[0]
        assert explanation.timeline(first.resource) == first
        assert explanation.timeline("P999") is None

    def test_to_dict_is_json_ready(self, explanation):
        doc = json.loads(json.dumps(explanation.to_dict()))
        assert doc["algorithm"] == explanation.algorithm
        assert doc["makespan"] == explanation.makespan
        assert sum(doc["by_category"].values()) == pytest.approx(
            explanation.makespan, abs=1e-9
        )
        assert len(doc["segments"]) == len(explanation.segments)
        for seg in doc["segments"]:
            assert seg["kind"] in SEGMENT_KINDS

    def test_utilization_timelines_standalone(self, chain3, net2):
        schedule = SCHEDULERS["classic"]().schedule(chain3, net2)
        timelines = utilization_timelines(schedule)
        procs = [tl for tl in timelines if tl.resource.startswith("P")]
        assert procs
        total_busy = sum(tl.busy_time for tl in procs)
        assert total_busy == pytest.approx(chain3.total_work(), abs=1e-9)
