"""Differential suite: incremental mapping evaluation vs full re-simulation.

:class:`repro.core.incremental.IncrementalMappingEvaluator` claims
**bit-identical** results to :func:`repro.core.mapping.simulate_mapping`
while re-simulating only the suffix past each candidate's divergence point.
This module proves the claim the same way ``test_perf_equivalence`` does for
the PR 3 hot paths — exact (``==``, never approximate) comparison against
the naive path on Hypothesis-generated inputs:

1. random candidate *streams* (walks of single-task moves, full remaps, and
   repeats) scored through one live evaluator vs a fresh full simulation per
   candidate: every makespan equal, both comm models;
2. the worst case — consecutive candidates diverging at order position 0,
   so the entire prefix is rewound and nothing is reused;
3. materialized schedules (:meth:`IncrementalMappingEvaluator.schedule`)
   vs ``simulate_mapping``: placements, edge arrivals, per-link slot lists,
   recorded routes and makespan, slot by slot;
4. the search schedulers themselves: ``AnnealingScheduler`` /
   ``GeneticScheduler`` with ``incremental=True`` vs ``incremental=False``
   produce equal schedules (same RNG draws, same trajectory);
5. validation parity on broken mappings, and the prefix-reuse counters.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro import obs
from repro.core.annealing import AnnealingScheduler
from repro.core.genetic import GeneticScheduler
from repro.core.incremental import IncrementalMappingEvaluator
from repro.core.mapping import simulate_mapping
from repro.exceptions import SchedulingError
from repro.linksched.commmodel import CUT_THROUGH, STORE_AND_FORWARD
from repro.network.builders import (
    fully_connected,
    linear_array,
    random_wan,
    switched_cluster,
)
from repro.obs import OBS
from repro.taskgraph.generators import random_layered_dag
from repro.taskgraph.priorities import priority_list

DIFF = settings(
    max_examples=120, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
WORST = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
SCHED = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

graphs = st.builds(
    lambda n, seed, density: random_layered_dag(n, rng=seed, density=density),
    n=st.integers(2, 18),
    seed=st.integers(0, 10_000),
    density=st.floats(0.0, 0.5),
)

topologies = st.one_of(
    st.builds(lambda n, s: fully_connected(n, rng=s), st.integers(2, 5), st.integers(0, 99)),
    st.builds(lambda n, s: switched_cluster(n, rng=s), st.integers(2, 6), st.integers(0, 99)),
    st.builds(lambda n, s: linear_array(n, rng=s), st.integers(2, 5), st.integers(0, 99)),
    st.builds(
        lambda n, s: random_wan(n, rng=s, proc_speed=(1, 10), link_speed=(1, 10)),
        st.integers(2, 8),
        st.integers(0, 99),
    ),
)

comm_models = st.sampled_from([CUT_THROUGH, STORE_AND_FORWARD])

#: a candidate stream: the initial assignment plus a walk of edits.
#: Each step either moves one task ((pos, proc) selectors) or, when the
#: ``remap`` flag is set, rebases the whole mapping from the step's selectors
#: — the divergence point then lands anywhere, including position 0.
walks = st.lists(
    st.tuples(
        st.booleans(),  # full remap instead of a single move
        st.integers(0, 10**6),  # order-position selector
        st.integers(0, 10**6),  # processor selector
    ),
    min_size=1,
    max_size=6,
)


def _mappings_for(graph, net, init_sel, walk):
    """Deterministic candidate stream from Hypothesis-drawn selectors."""
    order = priority_list(graph)
    procs = sorted(p.vid for p in net.processors())
    mapping = {tid: procs[(init_sel + i) % len(procs)] for i, tid in enumerate(order)}
    stream = [dict(mapping)]
    for remap, pos_sel, proc_sel in walk:
        if remap:
            mapping = {
                tid: procs[(pos_sel + proc_sel * i) % len(procs)]
                for i, tid in enumerate(order)
            }
        else:
            mapping = dict(mapping)
            mapping[order[pos_sel % len(order)]] = procs[proc_sel % len(procs)]
        stream.append(dict(mapping))
    return stream


def _assert_schedules_equal(inc, ref):
    assert inc.makespan == ref.makespan
    assert inc.placements == ref.placements
    assert inc.edge_arrivals == ref.edge_arrivals
    assert inc.link_state.routes() == ref.link_state.routes()
    lids = set(inc.link_state.used_links()) | set(ref.link_state.used_links())
    for lid in lids:
        assert inc.link_state.slots(lid) == ref.link_state.slots(lid)


class TestEvaluateDifferential:
    @DIFF
    @given(
        graph=graphs,
        net=topologies,
        comm=comm_models,
        init_sel=st.integers(0, 10**6),
        walk=walks,
    )
    def test_candidate_stream_matches_full_resimulation(
        self, graph, net, comm, init_sel, walk
    ):
        evaluator = IncrementalMappingEvaluator(graph, net, comm=comm)
        for mapping in _mappings_for(graph, net, init_sel, walk):
            expected = simulate_mapping(graph, net, mapping, comm=comm).makespan
            assert evaluator.evaluate(mapping) == expected

    @WORST
    @given(graph=graphs, net=topologies, comm=comm_models, seed=st.integers(0, 10**6))
    def test_divergence_at_position_zero(self, graph, net, comm, seed):
        """Worst case: every candidate invalidates the whole prefix."""
        order = priority_list(graph)
        procs = sorted(p.vid for p in net.processors())
        base = {tid: procs[(seed + i) % len(procs)] for i, tid in enumerate(order)}
        moved = dict(base)
        moved[order[0]] = procs[(procs.index(base[order[0]]) + 1) % len(procs)]
        evaluator = IncrementalMappingEvaluator(graph, net, comm=comm)
        for mapping in (base, moved, base, moved):
            expected = simulate_mapping(graph, net, mapping, comm=comm).makespan
            assert evaluator.evaluate(mapping) == expected

    @WORST
    @given(
        graph=graphs,
        net=topologies,
        comm=comm_models,
        init_sel=st.integers(0, 10**6),
        walk=walks,
    )
    def test_materialized_schedule_matches_slot_by_slot(
        self, graph, net, comm, init_sel, walk
    ):
        stream = _mappings_for(graph, net, init_sel, walk)
        evaluator = IncrementalMappingEvaluator(graph, net, comm=comm)
        for mapping in stream:
            evaluator.evaluate(mapping)
        final = stream[len(walk) // 2]  # rewind mid-stream, not just the last
        _assert_schedules_equal(
            evaluator.schedule(final), simulate_mapping(graph, net, final, comm=comm)
        )


class TestSchedulerEquivalence:
    @SCHED
    @given(graph=graphs, net=topologies, seed=st.integers(0, 500))
    def test_annealing_incremental_matches_full(self, graph, net, seed):
        kwargs = dict(iterations=40, rng=seed)
        inc = AnnealingScheduler(incremental=True, **kwargs).schedule(graph, net)
        ref = AnnealingScheduler(incremental=False, **kwargs).schedule(graph, net)
        _assert_schedules_equal(inc, ref)

    @SCHED
    @given(graph=graphs, net=topologies, seed=st.integers(0, 500))
    def test_genetic_incremental_matches_full(self, graph, net, seed):
        kwargs = dict(population=6, generations=3, rng=seed)
        inc = GeneticScheduler(incremental=True, **kwargs).schedule(graph, net)
        ref = GeneticScheduler(incremental=False, **kwargs).schedule(graph, net)
        _assert_schedules_equal(inc, ref)


class TestValidationAndCounters:
    def _workload(self):
        graph = random_layered_dag(10, rng=7, density=0.4)
        net = fully_connected(3, rng=7)
        return graph, net

    def test_missing_task_raises(self):
        graph, net = self._workload()
        order = priority_list(graph)
        procs = sorted(p.vid for p in net.processors())
        mapping = {tid: procs[0] for tid in order}
        del mapping[order[len(order) // 2]]
        evaluator = IncrementalMappingEvaluator(graph, net)
        with pytest.raises(SchedulingError, match="misses tasks"):
            evaluator.evaluate(mapping)

    def test_non_processor_target_raises(self):
        graph, net = self._workload()
        switch = net.add_switch()
        net.connect(net.processors()[0], switch)
        mapping = {t.tid: switch.vid for t in graph.tasks()}
        with pytest.raises(SchedulingError, match="non-processor"):
            IncrementalMappingEvaluator(graph, net).evaluate(mapping)

    def test_bad_order_rejected(self):
        graph, net = self._workload()
        order = priority_list(graph)
        with pytest.raises(SchedulingError, match="permutation"):
            IncrementalMappingEvaluator(graph, net, order=order[:-1])

    def test_prefix_counters(self):
        graph, net = self._workload()
        order = priority_list(graph)
        procs = sorted(p.vid for p in net.processors())
        base = {tid: procs[0] for tid in order}
        moved = dict(base)
        moved[order[-1]] = procs[1]  # diverges at the last order position
        obs.enable()
        obs.reset()  # the metrics registry is process-wide
        try:
            evaluator = IncrementalMappingEvaluator(graph, net)
            evaluator.evaluate(base)
            evaluator.evaluate(moved)
            metrics = OBS.metrics
            assert metrics.counter("mapping.evaluations").value == 2
            assert metrics.counter("mapping.prefix_hits").value == 1
            # Full first pass (n tasks) + a one-task suffix for the move.
            expected = len(order) + 1
            assert (
                metrics.counter("mapping.suffix_tasks_resimulated").value == expected
            )
        finally:
            obs.disable()

    def test_evaluate_emits_no_events(self):
        graph, net = self._workload()
        procs = sorted(p.vid for p in net.processors())
        mapping = {t.tid: procs[0] for t in graph.tasks()}
        obs.enable()
        try:
            IncrementalMappingEvaluator(graph, net).evaluate(mapping)
            assert list(OBS.bus.iter_events()) == []
        finally:
            obs.disable()
