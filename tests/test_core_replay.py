"""Tests for repro.core.replay (re-simulating placements under contention)."""

import pytest

from repro.core.ba import BAScheduler
from repro.core.classic import ClassicScheduler
from repro.core.replay import contention_penalty, replay_under_contention
from repro.core.validate import validate_schedule
from repro.exceptions import SchedulingError
from repro.network.builders import random_wan, switched_cluster
from repro.taskgraph.ccr import scale_to_ccr
from repro.taskgraph.kernels import fork_join


@pytest.fixture
def classic_schedule(fork8):
    net = switched_cluster(8)
    graph = scale_to_ccr(fork8, 3.0)
    return ClassicScheduler().schedule(graph, net)


class TestReplay:
    def test_replayed_schedule_validates(self, classic_schedule):
        replayed = replay_under_contention(classic_schedule)
        validate_schedule(replayed)

    def test_mapping_preserved(self, classic_schedule):
        replayed = replay_under_contention(classic_schedule)
        for tid, pl in classic_schedule.placements.items():
            assert replayed.placements[tid].processor == pl.processor

    def test_algorithm_name_tagged(self, classic_schedule):
        assert replay_under_contention(classic_schedule).algorithm == "classic+replay"

    def test_contention_free_promise_is_broken(self, classic_schedule):
        # A classic schedule spreading a contended fork-join over a star
        # network must get slower once contention is simulated.
        penalty = contention_penalty(classic_schedule)
        assert penalty > 1.0

    def test_contention_aware_schedule_replays_close(self, fork8):
        # BA already accounts for contention; replaying its placements with
        # the same engine should land in the same ballpark.
        net = switched_cluster(8)
        graph = scale_to_ccr(fork8, 3.0)
        ba = BAScheduler().schedule(graph, net)
        replayed = replay_under_contention(ba)
        validate_schedule(replayed)
        assert replayed.makespan <= ba.makespan * 1.5

    def test_replay_on_wan(self, fork8):
        net = random_wan(12, rng=3)
        schedule = ClassicScheduler().schedule(scale_to_ccr(fork8, 2.0), net)
        replayed = replay_under_contention(schedule)
        validate_schedule(replayed)

    def test_incomplete_schedule_rejected(self, classic_schedule):
        del classic_schedule.placements[0]
        with pytest.raises(SchedulingError):
            replay_under_contention(classic_schedule)

    def test_single_processor_noop_penalty(self, chain3):
        from repro.network.builders import fully_connected

        net = fully_connected(1)
        schedule = ClassicScheduler().schedule(chain3, net)
        assert contention_penalty(schedule) == pytest.approx(1.0)
