"""Engine-level behavior: suppressions, scoping, selection, parse errors."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import all_rules, lint_paths, lint_source, select_rules
from repro.analysis.engine import normalize_path, path_matches

CORE = "src/repro/core/sample.py"

FIRING = """
def same(a: float, b: float) -> bool:
    return a == b
"""


def lint(source: str, path: str = CORE, rules=None):
    return lint_source(textwrap.dedent(source), path, rules)


class TestSuppression:
    def test_inline_disable_moves_finding_to_suppressed(self):
        result = lint(
            """
            def same(a: float, b: float) -> bool:
                return a == b  # repro-lint: disable=FLT001
            """
        )
        assert not result.findings
        assert [f.rule for f in result.suppressed] == ["FLT001"]

    def test_inline_disable_with_reason_text(self):
        result = lint(
            """
            def same(a: float, b: float) -> bool:
                return a == b  # repro-lint: disable=FLT001 (exactness proven)
            """
        )
        assert not result.findings
        assert len(result.suppressed) == 1

    def test_disable_other_rule_does_not_suppress(self):
        result = lint(
            """
            def same(a: float, b: float) -> bool:
                return a == b  # repro-lint: disable=DET001
            """
        )
        assert [f.rule for f in result.findings] == ["FLT001"]

    def test_disable_all_keyword(self):
        result = lint(
            """
            def same(a: float, b: float) -> bool:
                return a == b  # repro-lint: disable=all
            """
        )
        assert not result.findings

    def test_disable_file_silences_whole_module(self):
        result = lint(
            """
            # repro-lint: disable-file=FLT001
            def same(a: float, b: float) -> bool:
                return a == b

            def also(x: float) -> bool:
                return x == 0.5
            """
        )
        assert not result.findings
        assert len(result.suppressed) == 2

    def test_suppression_on_wrong_line_does_not_apply(self):
        result = lint(
            """
            def same(a: float, b: float) -> bool:
                # repro-lint: disable=FLT001
                return a == b
            """
        )
        assert [f.rule for f in result.findings] == ["FLT001"]


class TestPathScoping:
    def test_normalize_path_posix(self):
        assert normalize_path("src/repro/core/ba.py") == "src/repro/core/ba.py"

    def test_segment_aligned_matching(self):
        assert path_matches("src/repro/core/ba.py", ("repro/core",))
        assert not path_matches("src/repro/core_utils.py", ("repro/core",))
        assert path_matches("src/repro/utils/rng.py", ("repro/utils/rng.py",))

    def test_rule_does_not_apply_outside_include(self):
        result = lint(FIRING, path="scripts/helper.py")
        assert not result.findings

    def test_exclude_wins_over_include(self):
        result = lint(FIRING, path="src/repro/utils/intervals.py")
        assert not result.findings


class TestSelection:
    def test_select_isolates_rule(self):
        rules = select_rules(["FLT001"])
        assert [r.rule_id for r in rules] == ["FLT001"]

    def test_ignore_removes_rule(self):
        rules = select_rules(None, ["FLT001"])
        assert "FLT001" not in {r.rule_id for r in rules}

    def test_ids_case_insensitive(self):
        assert [r.rule_id for r in select_rules(["flt001"])] == ["FLT001"]

    def test_unknown_id_raises(self):
        with pytest.raises(ValueError, match="unknown rule id"):
            select_rules(["NOPE99"])

    def test_registry_has_all_families(self):
        ids = {r.rule_id for r in all_rules()}
        assert {"DET001", "DET002", "DET003", "FLT001", "KER001", "KER002",
                "KER003", "KER004", "OBS001", "PUR001", "PUR002", "PUR003",
                "TXN001", "TXN101", "TXN102", "TXN103"} <= ids

    def test_syntactic_txn_rules_are_retired(self):
        ids = {r.rule_id for r in all_rules()}
        assert "TXN002" not in ids and "TXN003" not in ids

    def test_every_rule_documents_itself(self):
        for rule in all_rules():
            assert rule.name and rule.summary and rule.rationale, rule.rule_id


class TestParseErrors:
    def test_syntax_error_becomes_parse_finding(self):
        result = lint("def broken(:\n")
        assert [f.rule for f in result.findings] == ["PARSE"]
        assert "syntax error" in result.findings[0].message


class TestFindingFormat:
    def test_editor_line_shape(self):
        result = lint(FIRING)
        line = result.findings[0].format()
        assert line.startswith("src/repro/core/sample.py:3:12 FLT001 ")

    def test_fingerprint_is_content_based(self):
        f = lint(FIRING).findings[0]
        assert f.fingerprint == (CORE, "FLT001", "return a == b")


class TestLintPaths:
    def test_walk_is_deterministic_and_recursive(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "b.py").write_text("def f(a: float) -> bool:\n    return a == 0.5\n")
        (pkg / "a.py").write_text("def g(a: float) -> bool:\n    return a == 1.5\n")
        (pkg / "__pycache__").mkdir()
        (pkg / "__pycache__" / "junk.py").write_text("x = 1\n")
        result = lint_paths([str(tmp_path / "src")])
        assert result.files == 2
        assert [f.path.rsplit("/", 1)[1] for f in result.findings] == ["a.py", "b.py"]
