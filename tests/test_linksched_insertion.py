"""Unit tests for repro.linksched.insertion (basic insertion / BA engine)."""

import pytest

from repro.exceptions import SchedulingError
from repro.linksched.causality import check_route_causality
from repro.linksched.insertion import probe_basic, probe_route_basic, schedule_edge_basic
from repro.linksched.slots import TimeSlot
from repro.linksched.state import LinkScheduleState
from repro.network.builders import linear_array


def two_hop():
    """Linear 3-processor array: P0 -L?- P1 -L?- P2; return net + route."""
    net = linear_array(3, link_speed=2.0)
    from repro.network.routing import bfs_route

    ps = [p.vid for p in net.processors()]
    return net, bfs_route(net, ps[0], ps[2])


class TestProbeBasic:
    def test_duration_scales_with_speed(self):
        net, route = two_hop()
        state = LinkScheduleState()
        _, start, finish = probe_basic(state, route[0], 10.0, est=0.0)
        assert finish - start == 10.0 / 2.0

    def test_negative_cost_rejected(self):
        net, route = two_hop()
        with pytest.raises(SchedulingError):
            probe_basic(LinkScheduleState(), route[0], -1.0, est=0.0)


class TestScheduleEdgeBasic:
    def test_empty_route_is_local(self):
        state = LinkScheduleState()
        assert schedule_edge_basic(state, (0, 1), [], 100.0, 7.0) == 7.0
        assert state.route_of((0, 1)) == ()

    def test_zero_cost_occupies_nothing(self):
        net, route = two_hop()
        state = LinkScheduleState()
        assert schedule_edge_basic(state, (0, 1), route, 0.0, 3.0) == 3.0
        assert state.slots(route[0].lid) == []

    def test_single_edge_two_hops(self):
        net, route = two_hop()
        state = LinkScheduleState()
        arrival = schedule_edge_basic(state, (0, 1), route, 10.0, 1.0)
        # Cut-through: both 5-long transfers overlap; arrival = 1 + 5 + 0 (the
        # second hop finishes no earlier than the first).
        s0 = state.slot_of((0, 1), route[0].lid)
        s1 = state.slot_of((0, 1), route[1].lid)
        assert s0.start == 1.0 and s0.finish == 6.0
        assert s1.finish == arrival == 6.0
        check_route_causality(state, net, (0, 1), 10.0, 1.0)

    def test_contention_serializes(self):
        net, route = two_hop()
        state = LinkScheduleState()
        a1 = schedule_edge_basic(state, (0, 1), route, 10.0, 0.0)
        a2 = schedule_edge_basic(state, (2, 3), route, 10.0, 0.0)
        assert a2 >= a1 + 5.0 - 1e-9  # second transfer waits for the link

    def test_small_edge_fills_gap(self):
        net, route = two_hop()
        lid = route[0].lid
        state = LinkScheduleState()
        # Occupy [10, 20) manually; a 2-long transfer fits before it.
        state.record_route((9, 9), (lid,))
        state.insert(lid, 0, TimeSlot((9, 9), 10.0, 20.0))
        arrival = schedule_edge_basic(state, (0, 1), [route[0]], 4.0, 0.0)
        assert arrival == 2.0

    def test_causality_on_slow_then_fast(self):
        # First link slow (speed 1), second fast (speed 4): the fast slot is
        # squeezed to the tail of the slow one (virtual start).
        net = linear_array(3, link_speed=lambda: 1.0)
        from repro.network.routing import bfs_route

        ps = [p.vid for p in net.processors()]
        route = bfs_route(net, ps[0], ps[2])
        fast = [l for l in net.links() if l.lid == route[1].lid][0]
        object.__setattr__(fast, "speed", 4.0)  # heterogeneous second hop
        state = LinkScheduleState()
        arrival = schedule_edge_basic(state, (0, 1), route, 8.0, 0.0)
        s0 = state.slot_of((0, 1), route[0].lid)
        s1 = state.slot_of((0, 1), route[1].lid)
        assert s0.finish == 8.0
        assert s1.duration == 2.0
        assert s1.finish == arrival == 8.0  # cannot finish before the slow hop
        assert s1.start == 6.0  # virtual start = finish - duration
        check_route_causality(state, net, (0, 1), 8.0, 0.0)

    def test_fast_then_slow_extends(self):
        net = linear_array(3, link_speed=lambda: 4.0)
        from repro.network.routing import bfs_route

        ps = [p.vid for p in net.processors()]
        route = bfs_route(net, ps[0], ps[2])
        slow = [l for l in net.links() if l.lid == route[1].lid][0]
        object.__setattr__(slow, "speed", 1.0)
        state = LinkScheduleState()
        arrival = schedule_edge_basic(state, (0, 1), route, 8.0, 0.0)
        assert arrival == 8.0  # dominated by the slow hop
        check_route_causality(state, net, (0, 1), 8.0, 0.0)

    def test_negative_ready_rejected(self):
        net, route = two_hop()
        with pytest.raises(SchedulingError):
            schedule_edge_basic(LinkScheduleState(), (0, 1), route, 1.0, -1.0)

    def test_probe_route_matches_commit_for_single_edge(self):
        net, route = two_hop()
        state = LinkScheduleState()
        probe = probe_route_basic(state, route, 10.0, 1.0)
        commit = schedule_edge_basic(state, (0, 1), route, 10.0, 1.0)
        assert probe == commit

    def test_probe_route_local(self):
        assert probe_route_basic(LinkScheduleState(), [], 5.0, 3.0) == 3.0
