"""Tests for repro.core.io (schedule serialization round trips)."""

import json

import pytest

from repro.core.ba import BAScheduler
from repro.core.bbsa import BBSAScheduler
from repro.core.classic import ClassicScheduler
from repro.core.io import schedule_from_json, schedule_to_json
from repro.core.oihsa import OIHSAScheduler
from repro.core.validate import validate_schedule
from repro.exceptions import SerializationError
from repro.linksched.commmodel import CommModel


@pytest.mark.parametrize(
    "cls", [ClassicScheduler, BAScheduler, OIHSAScheduler, BBSAScheduler]
)
class TestRoundTrip:
    def test_round_trip_validates(self, cls, diamond4, wan16):
        original = cls().schedule(diamond4, wan16)
        back = schedule_from_json(schedule_to_json(original))
        validate_schedule(back)

    def test_round_trip_preserves_core_fields(self, cls, diamond4, wan16):
        original = cls().schedule(diamond4, wan16)
        back = schedule_from_json(schedule_to_json(original))
        assert back.algorithm == original.algorithm
        assert back.makespan == original.makespan
        assert back.edge_arrivals == original.edge_arrivals
        for tid, pl in original.placements.items():
            bpl = back.placements[tid]
            assert (bpl.processor, bpl.start, bpl.finish) == (
                pl.processor, pl.start, pl.finish,
            )

    def test_round_trip_preserves_routes(self, cls, diamond4, wan16):
        original = cls().schedule(diamond4, wan16)
        back = schedule_from_json(schedule_to_json(original))
        if original.link_state is None and original.bandwidth_state is None:
            return
        for e in diamond4.edges():
            assert back.edge_route(e.key) == original.edge_route(e.key)


class TestCommAndErrors:
    def test_comm_model_round_trips(self, diamond4, wan16):
        comm = CommModel("store-and-forward", 3.5)
        original = OIHSAScheduler(comm=comm).schedule(diamond4, wan16)
        back = schedule_from_json(schedule_to_json(original))
        assert back.comm == comm
        validate_schedule(back)

    def test_fork_contention_round_trips(self, fork8, wan16):
        original = BBSAScheduler().schedule(fork8, wan16)
        back = schedule_from_json(schedule_to_json(original))
        validate_schedule(back)

    def test_invalid_json(self):
        with pytest.raises(SerializationError):
            schedule_from_json("nope{")

    def test_wrong_format(self):
        with pytest.raises(SerializationError):
            schedule_from_json(json.dumps({"format": "other"}))

    def test_missing_fields(self):
        with pytest.raises(SerializationError):
            schedule_from_json(json.dumps({"format": "repro.schedule/v1"}))

    def test_document_is_stable(self, diamond4, net4):
        s = BAScheduler().schedule(diamond4, net4)
        assert schedule_to_json(s) == schedule_to_json(s)
