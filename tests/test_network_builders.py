"""Unit tests for repro.network.builders."""

import pytest

from repro.exceptions import TopologyError
from repro.network.builders import (
    TOPOLOGY_BUILDERS,
    fat_tree,
    fully_connected,
    hypercube,
    linear_array,
    mesh2d,
    random_wan,
    ring,
    shared_bus,
    switched_cluster,
    torus2d,
)
from repro.network.validate import validate_topology


class TestBasicShapes:
    def test_fully_connected_link_count(self):
        net = fully_connected(5)
        assert net.num_links == 5 * 4  # directed pairs
        validate_topology(net)

    def test_switched_cluster(self):
        net = switched_cluster(6)
        assert len(net.processors()) == 6
        assert len(net.switches()) == 1
        validate_topology(net)

    def test_linear_array(self):
        net = linear_array(4)
        assert net.num_links == 6  # 3 cables x 2 directions
        validate_topology(net)

    def test_ring(self):
        net = ring(5)
        assert net.num_links == 10
        validate_topology(net)

    def test_ring_too_small(self):
        with pytest.raises(TopologyError):
            ring(2)

    def test_mesh2d(self):
        net = mesh2d(3, 4)
        assert len(net.processors()) == 12
        # 3*3 horizontal + 2*4 vertical cables, duplexed
        assert net.num_links == (9 + 8) * 2
        validate_topology(net)

    def test_torus_wraps(self):
        net = torus2d(3, 3)
        assert net.num_links == 2 * (9 + 9)
        validate_topology(net)

    def test_torus_small_dims_do_not_double_cable(self):
        # 2-wide wrap would duplicate the existing neighbour cable; builder
        # must skip it.
        net = torus2d(2, 2)
        validate_topology(net)
        assert net.num_links == 8  # plain 2x2 mesh

    def test_hypercube(self):
        net = hypercube(3)
        assert len(net.processors()) == 8
        assert net.num_links == 2 * 12
        validate_topology(net)

    def test_fat_tree(self):
        net = fat_tree(8, procs_per_leaf=4)
        assert len(net.switches()) == 3  # root + 2 leaves
        validate_topology(net)

    def test_fat_tree_uplink_is_faster(self):
        net = fat_tree(4, procs_per_leaf=4, link_speed=2.0, uplink_factor=3.0)
        speeds = {l.speed for l in net.links()}
        assert speeds == {2.0, 6.0}

    def test_shared_bus(self):
        net = shared_bus(4)
        assert net.num_links == 1
        validate_topology(net)

    def test_shared_bus_too_small(self):
        with pytest.raises(TopologyError):
            shared_bus(1)


class TestRandomWan:
    def test_processor_count(self):
        for n in (1, 4, 16, 40):
            net = random_wan(n, rng=1)
            assert len(net.processors()) == n
            validate_topology(net)

    def test_procs_per_switch_respected(self):
        net = random_wan(64, rng=2, procs_per_switch=(4, 16))
        for s in net.switches():
            proc_nbrs = {
                v for _, v in net.out_links(s.vid) if net.vertex(v).is_processor
            }
            assert 1 <= len(proc_nbrs) <= 16

    def test_deterministic(self):
        a = random_wan(20, rng=3)
        b = random_wan(20, rng=3)
        assert a.num_links == b.num_links
        assert [l.speed for l in a.links()] == [l.speed for l in b.links()]

    def test_heterogeneous_speeds(self):
        net = random_wan(20, rng=4, proc_speed=(1, 10), link_speed=(1, 10))
        speeds = {p.speed for p in net.processors()}
        assert speeds <= set(range(1, 11))
        assert len(speeds) > 1

    def test_backbone_connected(self):
        # With zero extra density, only the spanning tree keeps it connected.
        net = random_wan(60, rng=5, extra_backbone_density=0.0)
        validate_topology(net, require_connected=True)

    def test_bad_ranges_rejected(self):
        with pytest.raises(TopologyError):
            random_wan(0)
        with pytest.raises(TopologyError):
            random_wan(4, procs_per_switch=(0, 4))
        with pytest.raises(TopologyError):
            random_wan(4, procs_per_switch=(5, 4))


class TestSpeedSpecs:
    def test_scalar(self):
        net = fully_connected(3, proc_speed=2.0, link_speed=5.0)
        assert all(p.speed == 2.0 for p in net.processors())
        assert all(l.speed == 5.0 for l in net.links())

    def test_range_draws_integers(self):
        net = fully_connected(4, proc_speed=(1, 10), rng=6)
        assert all(p.speed == int(p.speed) and 1 <= p.speed <= 10 for p in net.processors())

    def test_callable(self):
        net = fully_connected(3, link_speed=lambda: 7.5)
        assert all(l.speed == 7.5 for l in net.links())

    def test_invalid_specs_rejected(self):
        with pytest.raises(TopologyError):
            fully_connected(3, link_speed=0.0)
        with pytest.raises(TopologyError):
            fully_connected(3, link_speed=(0, 5))
        with pytest.raises(TopologyError):
            fully_connected(3, link_speed=(5, 1))

    def test_registry(self):
        assert "random_wan" in TOPOLOGY_BUILDERS
        for kind in ("fat_tree", "leaf_spine", "torus"):
            assert f"fabric_{kind}" in TOPOLOGY_BUILDERS
        assert len(TOPOLOGY_BUILDERS) == 15


class TestTorus3dAndDragonfly:
    def test_torus3d_counts(self):
        from repro.network.builders import torus3d

        net = torus3d((3, 3, 3))
        assert len(net.processors()) == 27
        validate_topology(net)
        # 3 wrap dimensions of size 3: 3 links per node direction, 27*3 cables
        assert net.num_links == 2 * 27 * 3

    def test_torus3d_small_dims_no_duplicate_cables(self):
        from repro.network.builders import torus3d

        net = torus3d((2, 2, 3))
        validate_topology(net)

    def test_torus3d_single_processor(self):
        from repro.network.builders import torus3d

        net = torus3d((1, 1, 1))
        assert len(net.processors()) == 1

    def test_torus3d_bad_dims(self):
        from repro.network.builders import torus3d

        with pytest.raises(TopologyError):
            torus3d((0, 2, 2))

    def test_dragonfly_structure(self):
        from repro.network.builders import dragonfly

        net = dragonfly(groups=3, routers_per_group=2, procs_per_router=2)
        assert len(net.processors()) == 12
        assert len(net.switches()) == 6
        validate_topology(net)

    def test_dragonfly_global_links_faster(self):
        from repro.network.builders import dragonfly

        net = dragonfly(2, 2, 1, link_speed=1.0, global_factor=3.0)
        speeds = sorted({l.speed for l in net.links()})
        assert speeds == [1.0, 3.0]

    def test_dragonfly_routes_cross_groups(self):
        from repro.network.builders import dragonfly
        from repro.network.routing import bfs_route

        net = dragonfly(3, 2, 2, rng=1)
        procs = [p.vid for p in net.processors()]
        route = bfs_route(net, procs[0], procs[-1])
        assert 2 <= len(route) <= 5
        validate_topology(net)

    def test_dragonfly_bad_args(self):
        from repro.network.builders import dragonfly

        with pytest.raises(TopologyError):
            dragonfly(groups=1)

    def test_schedulable(self):
        from repro.core.oihsa import OIHSAScheduler
        from repro.core.validate import validate_schedule
        from repro.network.builders import dragonfly, torus3d
        from repro.taskgraph.kernels import fork_join

        g = fork_join(6, rng=1)
        for net in (torus3d((2, 2, 2)), dragonfly(3, 2, 2, rng=2)):
            validate_schedule(OIHSAScheduler().schedule(g, net))
