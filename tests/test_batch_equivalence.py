"""Differential suite: batched array-native evaluation vs object vs naive.

:class:`repro.core.batch.BatchMappingEvaluator` claims **bit-identical**
results to both :class:`repro.core.incremental.IncrementalMappingEvaluator`
(the object substrate) and :func:`repro.core.mapping.simulate_mapping` (the
naive reference) while scoring candidates on flat column arrays and whole
batches through one shared-prefix checkpoint.  This module proves the claim
the same way ``test_incremental_equivalence`` does for PR 5 — exact (``==``,
never approximate) three-way comparison on Hypothesis-generated inputs:

1. random candidate *streams* (walks of single-task moves, full remaps, and
   repeats) scored through a live array evaluator vs a live object evaluator
   vs a fresh full simulation per candidate, both comm models;
2. :meth:`BatchMappingEvaluator.evaluate_batch` vs per-candidate naive
   scores — results in caller order regardless of the internal prefix sort;
3. the flat columns themselves: after a stream, the array link state's
   ``(starts, finishes)`` per link and the processor finish column equal the
   object schedule's booking queues slot by slot;
4. the worst case — consecutive candidates diverging at order position 0;
5. the search schedulers: ``AnnealingScheduler`` / ``GeneticScheduler`` with
   ``backend="array"`` vs ``backend="object"`` produce equal schedules
   (same RNG draws, same trajectory);
6. validation parity on broken mappings, and the batch / identical-skip
   counters.

The differential classes are parametrized over ``kernel`` — the pure-Python
reference and, when the AOT extension is built (skipped otherwise), the
compiled hot loop — so the same Hypothesis inputs that prove the reference
against the naive simulator also prove the C translation bit-identical to
the reference.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro import obs
from repro.core.annealing import AnnealingScheduler
from repro.core.batch import BatchMappingEvaluator
from repro.core.genetic import GeneticScheduler
from repro.core.incremental import IncrementalMappingEvaluator
from repro.core.mapping import simulate_mapping
from repro.core.kernelreg import compiled_available
from repro.exceptions import SchedulingError
from repro.linksched.commmodel import CUT_THROUGH, STORE_AND_FORWARD
from repro.network.builders import (
    fully_connected,
    linear_array,
    random_wan,
    switched_cluster,
)
from repro.obs import OBS
from repro.taskgraph.generators import random_layered_dag
from repro.taskgraph.priorities import priority_list

DIFF = settings(
    max_examples=120, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
WORST = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
SCHED = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

graphs = st.builds(
    lambda n, seed, density: random_layered_dag(n, rng=seed, density=density),
    n=st.integers(2, 18),
    seed=st.integers(0, 10_000),
    density=st.floats(0.0, 0.5),
)

topologies = st.one_of(
    st.builds(lambda n, s: fully_connected(n, rng=s), st.integers(2, 5), st.integers(0, 99)),
    st.builds(lambda n, s: switched_cluster(n, rng=s), st.integers(2, 6), st.integers(0, 99)),
    st.builds(lambda n, s: linear_array(n, rng=s), st.integers(2, 5), st.integers(0, 99)),
    st.builds(
        lambda n, s: random_wan(n, rng=s, proc_speed=(1, 10), link_speed=(1, 10)),
        st.integers(2, 8),
        st.integers(0, 99),
    ),
)

comm_models = st.sampled_from([CUT_THROUGH, STORE_AND_FORWARD])

#: kernel axis of the differential classes: always the pure-Python
#: reference; the AOT-built kernel too when importable (skip, not xfail —
#: toolchain-free machines are a supported configuration).
KERNELS = [
    pytest.param("python", id="pykernel"),
    pytest.param(
        "compiled",
        id="ckernel",
        marks=pytest.mark.skipif(
            not compiled_available(),
            reason="repro.core._kernel_c extension not built",
        ),
    ),
]

#: a candidate stream: the initial assignment plus a walk of edits (same
#: generator as ``test_incremental_equivalence`` — single-task moves, full
#: remaps, repeats).
walks = st.lists(
    st.tuples(
        st.booleans(),  # full remap instead of a single move
        st.integers(0, 10**6),  # order-position selector
        st.integers(0, 10**6),  # processor selector
    ),
    min_size=1,
    max_size=6,
)


def _mappings_for(graph, net, init_sel, walk):
    """Deterministic candidate stream from Hypothesis-drawn selectors."""
    order = priority_list(graph)
    procs = sorted(p.vid for p in net.processors())
    mapping = {tid: procs[(init_sel + i) % len(procs)] for i, tid in enumerate(order)}
    stream = [dict(mapping)]
    for remap, pos_sel, proc_sel in walk:
        if remap:
            mapping = {
                tid: procs[(pos_sel + proc_sel * i) % len(procs)]
                for i, tid in enumerate(order)
            }
        else:
            mapping = dict(mapping)
            mapping[order[pos_sel % len(order)]] = procs[proc_sel % len(procs)]
        stream.append(dict(mapping))
    return stream


def _assert_schedules_equal(a, b):
    assert a.makespan == b.makespan
    assert a.placements == b.placements
    assert a.edge_arrivals == b.edge_arrivals
    assert a.link_state.routes() == b.link_state.routes()
    lids = set(a.link_state.used_links()) | set(b.link_state.used_links())
    for lid in lids:
        assert a.link_state.slots(lid) == b.link_state.slots(lid)


def _assert_columns_match_schedule(evaluator, net, ref):
    """The evaluator's flat columns == the reference schedule, slot by slot."""
    array_state = evaluator.link_state
    lids = set(array_state.booked_links()) | set(ref.link_state.used_links())
    for lid in lids:
        starts, finishes = array_state.columns(lid)
        _, ref_starts, ref_finishes = ref.link_state.queue_arrays(lid)
        assert starts == ref_starts
        assert finishes == ref_finishes
    proc_vids = [p.vid for p in net.processors()]
    expected = [0.0] * len(proc_vids)
    for pl in ref.placements.values():
        i = proc_vids.index(pl.processor)
        if pl.finish > expected[i]:
            expected[i] = pl.finish
    assert evaluator.proc_state.finish == expected


@pytest.mark.parametrize("kernel", KERNELS)
class TestEvaluateDifferential:
    @DIFF
    @given(
        graph=graphs,
        net=topologies,
        comm=comm_models,
        init_sel=st.integers(0, 10**6),
        walk=walks,
    )
    def test_candidate_stream_three_way(self, kernel, graph, net, comm, init_sel, walk):
        array_ev = BatchMappingEvaluator(graph, net, comm=comm, kernel=kernel)
        object_ev = IncrementalMappingEvaluator(graph, net, comm=comm)
        for mapping in _mappings_for(graph, net, init_sel, walk):
            expected = simulate_mapping(graph, net, mapping, comm=comm).makespan
            assert array_ev.evaluate(mapping) == expected
            assert object_ev.evaluate(mapping) == expected

    @WORST
    @given(
        graph=graphs,
        net=topologies,
        comm=comm_models,
        init_sel=st.integers(0, 10**6),
        walk=walks,
    )
    def test_batch_matches_sequential_naive(
        self, kernel, graph, net, comm, init_sel, walk
    ):
        stream = _mappings_for(graph, net, init_sel, walk)
        evaluator = BatchMappingEvaluator(graph, net, comm=comm, kernel=kernel)
        scores = evaluator.evaluate_batch(stream)
        expected = [
            simulate_mapping(graph, net, m, comm=comm).makespan for m in stream
        ]
        assert scores == expected  # caller order, not the internal prefix sort

    @WORST
    @given(
        graph=graphs,
        net=topologies,
        comm=comm_models,
        init_sel=st.integers(0, 10**6),
        walk=walks,
    )
    def test_columns_match_object_slots(self, kernel, graph, net, comm, init_sel, walk):
        """After a stream, the flat columns equal the object queues slot by slot."""
        stream = _mappings_for(graph, net, init_sel, walk)
        evaluator = BatchMappingEvaluator(graph, net, comm=comm, kernel=kernel)
        for mapping in stream:
            evaluator.evaluate(mapping)
        # The columns hold the state of the last *simulated* candidate; a
        # repeat of an earlier mapping is served from the score cache without
        # touching them, so the reference is the stream's last first-seen one.
        seen: set[tuple[tuple[int, int], ...]] = set()
        simulated = stream[0]
        for mapping in stream:
            key = tuple(sorted(mapping.items()))
            if key not in seen:
                seen.add(key)
                simulated = mapping
        _assert_columns_match_schedule(
            evaluator, net, simulate_mapping(graph, net, simulated, comm=comm)
        )

    @WORST
    @given(graph=graphs, net=topologies, comm=comm_models, seed=st.integers(0, 10**6))
    def test_divergence_at_position_zero(self, kernel, graph, net, comm, seed):
        """Worst case: every candidate invalidates the whole prefix."""
        order = priority_list(graph)
        procs = sorted(p.vid for p in net.processors())
        base = {tid: procs[(seed + i) % len(procs)] for i, tid in enumerate(order)}
        moved = dict(base)
        moved[order[0]] = procs[(procs.index(base[order[0]]) + 1) % len(procs)]
        evaluator = BatchMappingEvaluator(graph, net, comm=comm, kernel=kernel)
        for mapping in (base, moved, base, moved):
            expected = simulate_mapping(graph, net, mapping, comm=comm).makespan
            assert evaluator.evaluate(mapping) == expected

    @WORST
    @given(
        graph=graphs,
        net=topologies,
        comm=comm_models,
        init_sel=st.integers(0, 10**6),
        walk=walks,
    )
    def test_materialized_schedule_matches_slot_by_slot(
        self, kernel, graph, net, comm, init_sel, walk
    ):
        stream = _mappings_for(graph, net, init_sel, walk)
        evaluator = BatchMappingEvaluator(graph, net, comm=comm, kernel=kernel)
        evaluator.evaluate_batch(stream)
        final = stream[len(walk) // 2]
        _assert_schedules_equal(
            evaluator.schedule(final), simulate_mapping(graph, net, final, comm=comm)
        )


class TestSchedulerBackendParity:
    @pytest.mark.parametrize("kernel", KERNELS)
    @SCHED
    @given(graph=graphs, net=topologies, seed=st.integers(0, 500))
    def test_annealing_array_matches_object(self, kernel, graph, net, seed):
        kwargs = dict(iterations=40, rng=seed)
        arr = AnnealingScheduler(backend="array", kernel=kernel, **kwargs).schedule(
            graph, net
        )
        obj = AnnealingScheduler(backend="object", **kwargs).schedule(graph, net)
        _assert_schedules_equal(arr, obj)

    @pytest.mark.parametrize("kernel", KERNELS)
    @SCHED
    @given(graph=graphs, net=topologies, seed=st.integers(0, 500))
    def test_genetic_array_matches_object(self, kernel, graph, net, seed):
        kwargs = dict(population=6, generations=3, rng=seed)
        arr = GeneticScheduler(backend="array", kernel=kernel, **kwargs).schedule(
            graph, net
        )
        obj = GeneticScheduler(backend="object", **kwargs).schedule(graph, net)
        _assert_schedules_equal(arr, obj)

    def test_unknown_backend_rejected(self):
        with pytest.raises(SchedulingError, match="backend"):
            AnnealingScheduler(backend="columnar")
        with pytest.raises(SchedulingError, match="backend"):
            GeneticScheduler(backend="columnar")


class TestValidationAndCounters:
    def _workload(self):
        graph = random_layered_dag(10, rng=7, density=0.4)
        net = fully_connected(3, rng=7)
        return graph, net

    def test_missing_task_raises(self):
        graph, net = self._workload()
        order = priority_list(graph)
        procs = sorted(p.vid for p in net.processors())
        mapping = {tid: procs[0] for tid in order}
        del mapping[order[len(order) // 2]]
        evaluator = BatchMappingEvaluator(graph, net)
        with pytest.raises(SchedulingError, match="misses tasks"):
            evaluator.evaluate(mapping)

    def test_non_processor_target_raises(self):
        graph, net = self._workload()
        switch = net.add_switch()
        net.connect(net.processors()[0], switch)
        mapping = {t.tid: switch.vid for t in graph.tasks()}
        with pytest.raises(SchedulingError, match="non-processor"):
            BatchMappingEvaluator(graph, net).evaluate(mapping)

    def test_bad_order_rejected(self):
        graph, net = self._workload()
        order = priority_list(graph)
        with pytest.raises(SchedulingError, match="permutation"):
            BatchMappingEvaluator(graph, net, order=order[:-1])

    def test_batch_counters(self):
        graph, net = self._workload()
        order = priority_list(graph)
        procs = sorted(p.vid for p in net.processors())
        base = {tid: procs[0] for tid in order}
        moved = dict(base)
        moved[order[-1]] = procs[1]  # shares the whole prefix but the last task
        obs.enable()
        obs.reset()  # the metrics registry is process-wide
        try:
            evaluator = BatchMappingEvaluator(graph, net)
            evaluator.evaluate_batch([base, moved])
            metrics = OBS.metrics
            assert metrics.counter("mapping.batch_evaluations").value == 1
            assert metrics.counter("mapping.batch_candidates").value == 2
            assert metrics.counter("mapping.evaluations").value == 2
            # The second candidate reuses every position but the last.
            assert (
                metrics.counter("mapping.shared_prefix_tasks").value
                == len(order) - 1
            )
        finally:
            obs.disable()

    def test_identical_skips_both_backends(self):
        graph, net = self._workload()
        procs = sorted(p.vid for p in net.processors())
        mapping = {t.tid: procs[0] for t in graph.tasks()}
        for factory in (BatchMappingEvaluator, IncrementalMappingEvaluator):
            obs.enable()
            obs.reset()
            try:
                evaluator = factory(graph, net)
                first = evaluator.evaluate(mapping)
                second = evaluator.evaluate(dict(mapping))
                assert first == second
                assert OBS.metrics.counter("mapping.identical_skips").value == 1
                assert OBS.metrics.counter("mapping.evaluations").value == 2
            finally:
                obs.disable()

    def test_evaluate_emits_no_events(self):
        graph, net = self._workload()
        procs = sorted(p.vid for p in net.processors())
        mapping = {t.tid: procs[0] for t in graph.tasks()}
        obs.enable()
        try:
            BatchMappingEvaluator(graph, net).evaluate(mapping)
            assert list(OBS.bus.iter_events()) == []
        finally:
            obs.disable()
