"""Differential suite: hierarchical fabric routing vs the flat searches.

The fabric layer claims to be a *drop-in* replacement for flat routing
everywhere they overlap.  This module proves it by driving both paths
through identical inputs and comparing exactly:

1. route identity — on every fabric family, the attached
   :class:`~repro.network.routing.HierarchicalRouter` returns link-for-link
   the route a router-less clone's flat BFS returns, for every processor
   pair (small instances) or a deterministic sample (larger ones);
2. route costs — hop counts agree with a uniform-probe flat Dijkstra on
   fabrics *and* on the existing random topologies;
3. schedules — OIHSA / BBSA / BA makespans, placements, and link slot
   queues are bit-identical with the router attached vs detached;
4. invalidation — mutating a fabric topology detaches the router and drops
   its sharded lazy tables, so stale routes can never be served (the
   regression the seam fix closes);
5. laziness — a scheduling run on a fabric materializes strictly fewer
   route entries than the full ``(src, dst)`` cross product.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro import obs
from repro.core import SCHEDULERS
from repro.network.builders import random_wan, switched_cluster
from repro.network.fabrics import (
    fabric_for_procs,
    kary_fat_tree,
    leaf_spine,
    torus_fabric,
)
from repro.network.routing import bfs_route, dijkstra_route
from repro.taskgraph.ccr import scale_to_ccr
from repro.taskgraph.generators import random_layered_dag

# Differential checks are exact (==), never approximate: the acceptance bar
# is bit-identical behavior, so any drift must fail loudly.

ROUTES = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
SCHED = settings(
    max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

#: (label, zero-argument builder) — rebuilt fresh for router/flat clones.
FABRICS = [
    ("fat_tree_k4", lambda: kary_fat_tree(4)),
    ("fat_tree_k4_capped", lambda: kary_fat_tree(4, n_procs=11)),
    ("fat_tree_k6", lambda: kary_fat_tree(6, hosts_per_edge=1)),
    ("leaf_spine_4x3", lambda: leaf_spine(4, 3, 4)),
    ("leaf_spine_1leaf", lambda: leaf_spine(1, 2, 6)),
    ("torus_3x4", lambda: torus_fabric((3, 4), hosts_per_node=2)),
    ("torus_2x3x2", lambda: torus_fabric((2, 3, 2))),
]


def _route_ids(net, s, d):
    return [l.lid for l in bfs_route(net, s, d)]


def _all_pairs(net, limit=400):
    procs = [p.vid for p in net.processors()]
    pairs = [(s, d) for s in procs for d in procs if s != d]
    step = max(1, len(pairs) // limit)
    return pairs[::step]


@pytest.mark.parametrize("label,build", FABRICS, ids=[f[0] for f in FABRICS])
class TestRouteIdentity:
    def test_router_matches_flat_bfs_link_for_link(self, label, build):
        routed = build()
        assert routed.attached_router is not None
        flat = build()
        flat.detach_router()
        assert flat.attached_router is None
        for s, d in _all_pairs(routed):
            assert _route_ids(routed, s, d) == _route_ids(flat, s, d)

    def test_hop_counts_match_uniform_dijkstra(self, label, build):
        routed = build()
        flat = build()
        flat.detach_router()
        probe = lambda link, t: t + 1.0  # noqa: E731 - uniform hop cost
        for s, d in _all_pairs(routed, limit=100):
            hops = len(bfs_route(routed, s, d))
            assert hops == len(dijkstra_route(flat, s, d, 0.0, probe))


class TestRandomTopologyCosts:
    """Flat BFS vs uniform-probe Dijkstra on the paper's random networks."""

    @ROUTES
    @given(seed=st.integers(0, 10_000), n=st.integers(4, 24))
    def test_random_wan_hop_counts(self, seed, n):
        net = random_wan(n, rng=seed)
        probe = lambda link, t: t + 1.0  # noqa: E731
        for s, d in _all_pairs(net, limit=40):
            assert len(bfs_route(net, s, d)) == len(
                dijkstra_route(net, s, d, 0.0, probe)
            )

    @ROUTES
    @given(seed=st.integers(0, 10_000), kind=st.sampled_from(
        ["fat_tree", "leaf_spine", "torus"]
    ))
    def test_sized_fabric_route_identity(self, seed, kind):
        n = 3 + seed % 22
        routed = fabric_for_procs(kind, n)
        flat = fabric_for_procs(kind, n)
        flat.detach_router()
        for s, d in _all_pairs(routed, limit=60):
            assert _route_ids(routed, s, d) == _route_ids(flat, s, d)


def _schedule_fingerprint(schedule):
    """Everything observable about a schedule, exactly."""
    placements = {
        t: (p.processor, p.start, p.finish)
        for t, p in schedule.placements.items()
    }
    state = getattr(schedule, "link_state", None)
    slots = {}
    if state is not None:
        slots = {lid: list(state.slots(lid)) for lid in state.used_links()}
    return schedule.makespan, placements, slots


@pytest.mark.parametrize("algo", ["ba", "oihsa", "bbsa"])
@pytest.mark.parametrize(
    "label,build",
    [
        ("fat_tree_k4", lambda: kary_fat_tree(4)),
        ("leaf_spine_3x2", lambda: leaf_spine(3, 2, 4)),
        ("torus_3x3", lambda: torus_fabric((3, 3))),
    ],
    ids=["fat_tree_k4", "leaf_spine_3x2", "torus_3x3"],
)
class TestScheduleBitIdentity:
    """OIHSA/BBSA/BA schedules are unchanged by the hierarchical router."""

    @SCHED
    @given(seed=st.integers(0, 10_000))
    def test_makespans_and_slots_identical(self, algo, label, build, seed):
        graph = random_layered_dag(14 + seed % 10, rng=seed)
        if graph.num_edges:  # an edgeless DAG cannot be scaled to a CCR
            graph = scale_to_ccr(graph, 2.0)
        routed = build()
        flat = build()
        flat.detach_router()
        with_router = SCHEDULERS[algo]().schedule(graph, routed)
        without = SCHEDULERS[algo]().schedule(graph, flat)
        assert _schedule_fingerprint(with_router) == _schedule_fingerprint(
            without
        )


class TestInvalidation:
    """Topology mutation must drop the sharded lazy tables (seam fix)."""

    def test_connect_detaches_router_and_reroutes(self):
        net = leaf_spine(2, 1, 2)
        procs = [p.vid for p in net.processors()]
        s, d = procs[0], procs[-1]  # cross-leaf pair: 4 hops via the spine
        assert len(bfs_route(net, s, d)) == 4
        router = net.attached_router
        assert router is not None
        assert router.materialized_entries() == 1
        # Mutate: a direct cable makes the old cached route non-minimal.
        net.connect(s, d, 1.0)
        assert net.attached_router is None
        route = bfs_route(net, s, d)
        assert len(route) == 1
        assert route[0].src == s and route[0].dst == d

    def test_add_processor_detaches_router(self):
        net = kary_fat_tree(2)
        procs = [p.vid for p in net.processors()]
        bfs_route(net, procs[0], procs[1])
        net.add_processor(1.0)
        assert net.attached_router is None

    def test_add_bus_detaches_router(self):
        net = torus_fabric((2, 2))
        procs = [p.vid for p in net.processors()]
        bfs_route(net, procs[0], procs[1])
        net.add_bus(procs, 1.0)
        assert net.attached_router is None

    def test_flat_route_table_also_invalidated(self):
        # The pre-existing flat memo goes through the same seam.
        net = switched_cluster(3)
        procs = [p.vid for p in net.processors()]
        assert len(bfs_route(net, procs[0], procs[1])) == 2
        net.connect(procs[0], procs[1], 1.0)
        assert len(bfs_route(net, procs[0], procs[1])) == 1


class TestLazyMaterialization:
    """A scheduling run touches far fewer pairs than the cross product."""

    def test_ba_run_materializes_sparse_table(self):
        graph = scale_to_ccr(random_layered_dag(40, rng=5), 1.0)
        net = fabric_for_procs("leaf_spine", 64)
        obs.enable(obs.NullSink())
        obs.reset()
        try:
            SCHEDULERS["ba"]().schedule(graph, net)
            counters = obs.METRICS.snapshot()["counters"]
        finally:
            obs.disable()
        router = net.attached_router
        stats = router.stats()
        assert stats["cross_product_entries"] == 64 * 63
        assert 0 < stats["materialized_entries"] < stats["cross_product_entries"]
        assert counters.get("routing.lazy_materialized", 0) == stats[
            "materialized_entries"
        ]
        # Repeat routes hit the sharded tables, not fresh searches.
        assert counters.get("routing.table_hits", 0) > 0
