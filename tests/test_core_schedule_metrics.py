"""Unit tests for repro.core.schedule and repro.core.metrics."""

import pytest

from repro.core.ba import BAScheduler
from repro.core.bbsa import BBSAScheduler
from repro.core.classic import ClassicScheduler
from repro.core.metrics import (
    comm_to_comp_time,
    efficiency,
    improvement_ratio,
    link_utilization,
    makespan,
    schedule_length_ratio,
    speedup,
)
from repro.exceptions import ReproError, SchedulingError
from repro.network.builders import fully_connected, switched_cluster
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.kernels import fork_join, pipeline


@pytest.fixture
def ba_schedule(diamond4, net4):
    return BAScheduler().schedule(diamond4, net4)


class TestSchedule:
    def test_makespan_is_last_finish(self, ba_schedule):
        assert ba_schedule.makespan == max(
            p.finish for p in ba_schedule.placements.values()
        )

    def test_placement_lookup(self, ba_schedule):
        assert ba_schedule.placement(0).task == 0
        with pytest.raises(SchedulingError):
            ba_schedule.placement(42)

    def test_edge_route_lookup(self, ba_schedule):
        for e in ba_schedule.graph.edges():
            ba_schedule.edge_route(e.key)  # must not raise
        with pytest.raises(SchedulingError):
            ba_schedule.edge_route((9, 9))

    def test_summary_mentions_algorithm(self, ba_schedule):
        assert "ba" in ba_schedule.summary()

    def test_processors_used_subset(self, ba_schedule, net4):
        assert ba_schedule.processors_used() <= {p.vid for p in net4.processors()}


class TestMetrics:
    def test_improvement_ratio(self):
        assert improvement_ratio(100.0, 75.0) == 25.0
        assert improvement_ratio(100.0, 125.0) == -25.0

    def test_improvement_ratio_bad_baseline(self):
        with pytest.raises(ReproError):
            improvement_ratio(0.0, 1.0)

    def test_speedup_single_processor_is_one(self, chain3):
        net = fully_connected(1)
        s = ClassicScheduler().schedule(chain3, net)
        assert speedup(s) == pytest.approx(1.0)

    def test_speedup_bounded_by_processors(self, fork8):
        net = switched_cluster(4)
        s = BAScheduler().schedule(fork8, net)
        assert 0 < speedup(s) <= 4.0 + 1e-9
        assert 0 < efficiency(s) <= 1.0 + 1e-9

    def test_slr_at_least_compute_bound(self):
        g = pipeline(5)  # chain: makespan >= CP
        net = fully_connected(2)
        s = BAScheduler().schedule(g, net)
        assert schedule_length_ratio(s) >= (g.total_work() /
            (g.total_work() + g.total_comm())) - 1e-9

    def test_link_utilization_range(self, fork8, wan16):
        for cls in (BAScheduler, BBSAScheduler):
            s = cls().schedule(fork8, wan16)
            util = link_utilization(s)
            assert util, "contended fork-join must use links"
            assert all(0 <= u <= 1 + 1e-9 for u in util.values())

    def test_link_utilization_classic_empty(self, diamond4, net4):
        s = ClassicScheduler().schedule(diamond4, net4)
        assert link_utilization(s) == {}

    def test_comm_to_comp(self, fork8, wan16):
        s = BAScheduler().schedule(fork8, wan16)
        assert comm_to_comp_time(s) >= 0.0

    def test_makespan_fn_matches_property(self, ba_schedule):
        assert makespan(ba_schedule) == ba_schedule.makespan
