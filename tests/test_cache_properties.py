"""Property tests for the experiment result cache (hypothesis).

- the config fingerprint is a pure function of the config: equal configs
  hash equal, any single-field perturbation (seed, density, CCR grid,
  algorithm order, ...) changes it,
- unit keys separate every addressing dimension (algorithm, grid cell,
  instance seed),
- a cached ``ComparisonResult`` round-trips through serialize/deserialize
  losslessly (makespans, counters, timings, events).
"""

import json
import string

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.experiments import (  # noqa: E402
    ComparisonResult,
    ExperimentConfig,
    comparison_from_json,
    comparison_to_json,
    config_fingerprint,
    unit_key,
)
from repro.obs import Event, ScheduleStats  # noqa: E402

SETTINGS = settings(max_examples=30, deadline=None)

#: generator for valid ExperimentConfig keyword arguments
config_kwargs = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 2**32 - 1),
        "density": st.floats(0.01, 0.5, allow_nan=False),
        "repetitions": st.integers(1, 5),
        "ccrs": st.lists(
            st.floats(0.1, 10.0, allow_nan=False),
            min_size=1,
            max_size=4,
            unique=True,
        ).map(tuple),
        "proc_counts": st.lists(
            st.integers(2, 64), min_size=1, max_size=3, unique=True
        ).map(tuple),
        "heterogeneous": st.booleans(),
    }
)

finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
counter_name = st.text(
    alphabet=string.ascii_lowercase + "._", min_size=1, max_size=16
)


class TestConfigFingerprint:
    @SETTINGS
    @given(config_kwargs)
    def test_equal_configs_hash_equal(self, kwargs):
        assert config_fingerprint(ExperimentConfig(**kwargs)) == (
            config_fingerprint(ExperimentConfig(**kwargs))
        )

    @SETTINGS
    @given(config_kwargs)
    def test_seed_perturbation_changes_key(self, kwargs):
        base = ExperimentConfig(**kwargs)
        assert config_fingerprint(base) != config_fingerprint(
            base.with_(seed=base.seed + 1)
        )

    @SETTINGS
    @given(config_kwargs)
    def test_density_perturbation_changes_key(self, kwargs):
        base = ExperimentConfig(**kwargs)
        assert config_fingerprint(base) != config_fingerprint(
            base.with_(density=base.density + 0.001)
        )

    @SETTINGS
    @given(config_kwargs)
    def test_ccr_grid_perturbation_changes_key(self, kwargs):
        base = ExperimentConfig(**kwargs)
        extended = base.with_(ccrs=base.ccrs + (11.0,))
        assert config_fingerprint(base) != config_fingerprint(extended)
        if len(base.ccrs) > 1 and base.ccrs != tuple(reversed(base.ccrs)):
            # grid *order* counts: seeds are spawned in iteration order
            reordered = base.with_(ccrs=tuple(reversed(base.ccrs)))
            assert config_fingerprint(base) != config_fingerprint(reordered)

    @SETTINGS
    @given(config_kwargs)
    def test_algorithm_order_changes_key(self, kwargs):
        base = ExperimentConfig(**kwargs)  # ("ba", "oihsa", "bbsa")
        reordered = base.with_(algorithms=("ba", "bbsa", "oihsa"))
        assert config_fingerprint(base) != config_fingerprint(reordered)

    def test_fingerprint_is_stable_hex(self):
        fp = config_fingerprint(ExperimentConfig.smoke())
        assert len(fp) == 64 and set(fp) <= set(string.hexdigits.lower())


class TestUnitKey:
    FP = config_fingerprint(ExperimentConfig.smoke())

    @SETTINGS
    @given(
        ccr=st.floats(0.1, 10.0, allow_nan=False),
        n_procs=st.integers(2, 128),
        entropy=st.integers(0, 2**64 - 1),
        spawn=st.integers(0, 1000),
        algorithm=st.sampled_from(["ba", "oihsa", "bbsa", "classic"]),
    )
    def test_each_dimension_separates(self, ccr, n_procs, entropy, spawn, algorithm):
        seed_key = (entropy, (spawn,))
        key = unit_key(self.FP, ccr, n_procs, seed_key, algorithm)
        assert key == unit_key(self.FP, ccr, n_procs, seed_key, algorithm)
        assert key != unit_key(self.FP, ccr + 0.25, n_procs, seed_key, algorithm)
        assert key != unit_key(self.FP, ccr, n_procs + 1, seed_key, algorithm)
        assert key != unit_key(
            self.FP, ccr, n_procs, (entropy, (spawn + 1,)), algorithm
        )
        assert key != unit_key(self.FP, ccr, n_procs, seed_key, algorithm + "x")
        other_fp = config_fingerprint(ExperimentConfig.smoke().with_(seed=1))
        assert key != unit_key(other_fp, ccr, n_procs, seed_key, algorithm)


class TestComparisonRoundTrip:
    @SETTINGS
    @given(
        names=st.lists(
            st.sampled_from(["ba", "oihsa", "bbsa", "classic", "heft"]),
            min_size=1,
            max_size=4,
            unique=True,
        ),
        data=st.data(),
    )
    def test_makespans_and_counters_lossless(self, names, data):
        makespans = {
            n: data.draw(st.floats(1e-3, 1e9, allow_nan=False)) for n in names
        }
        counters = {
            n: data.draw(
                st.dictionaries(counter_name, finite, max_size=4)
            )
            for n in names
        }
        result = ComparisonResult(
            instance=None,
            makespans=makespans,
            stats={
                n: ScheduleStats(metrics={"counters": counters[n]})
                for n in names
            },
        )
        back = comparison_from_json(comparison_to_json(result))
        assert back.makespans == makespans  # exact float equality
        assert set(back.stats) == set(names)
        for n in names:
            assert back.stats[n].metrics == {"counters": counters[n]}

    def test_timings_and_events_round_trip(self):
        stats = ScheduleStats(
            metrics={"counters": {"insertion.probes": 12.0}},
            timings={"routing": {"total": 0.125, "count": 3}},
            events=[
                Event("route_probed", 1.5, {"src": 0, "dst": 4, "hops": 2}),
                Event("processor_chosen", None, {"task": 7}),
            ],
        )
        result = ComparisonResult(
            instance=None, makespans={"ba": 10.0}, stats={"ba": stats}
        )
        back = comparison_from_json(comparison_to_json(result))
        assert back.stats["ba"].metrics == stats.metrics
        assert back.stats["ba"].timings == stats.timings
        assert back.stats["ba"].events == stats.events

    def test_stats_none_round_trips(self):
        result = ComparisonResult(instance=None, makespans={"ba": 3.5})
        back = comparison_from_json(comparison_to_json(result))
        assert back.stats is None
        assert back.makespans == {"ba": 3.5}

    def test_payload_is_plain_json(self):
        result = ComparisonResult(
            instance=None,
            makespans={"ba": 10.0, "oihsa": 8.0},
            stats={"ba": ScheduleStats(metrics={"counters": {"x": 1.0}})},
        )
        doc = json.loads(comparison_to_json(result))
        assert set(doc) == {"instance", "makespans", "stats"}
