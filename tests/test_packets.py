"""Tests for the packet-switched link engine and PacketBAScheduler."""

import pytest

from repro.core.ba import BAScheduler
from repro.core.packetba import PacketBAScheduler
from repro.core.validate import validate_schedule
from repro.exceptions import SchedulingError
from repro.linksched.commmodel import STORE_AND_FORWARD
from repro.linksched.insertion import schedule_edge_basic
from repro.linksched.packets import PacketLinkState
from repro.linksched.state import LinkScheduleState
from repro.network.builders import linear_array, random_wan
from repro.network.routing import bfs_route
from repro.taskgraph.ccr import scale_to_ccr
from repro.taskgraph.kernels import fork_join


def route3(speed=1.0):
    net = linear_array(3, link_speed=speed)
    ps = [p.vid for p in net.processors()]
    return net, bfs_route(net, ps[0], ps[2])


class TestPacketEngine:
    def test_one_packet_equals_store_and_forward(self):
        net, route = route3()
        packets = PacketLinkState()
        a_pkt = packets.schedule_edge((0, 1), route, 10.0, 0.0, n_packets=1)
        slots = LinkScheduleState()
        a_sf = schedule_edge_basic(slots, (0, 1), route, 10.0, 0.0, STORE_AND_FORWARD)
        assert a_pkt == a_sf == 20.0

    def test_more_packets_pipeline(self):
        net, route = route3()
        arrivals = []
        for k in (1, 2, 5, 20):
            state = PacketLinkState()
            arrivals.append(state.schedule_edge((0, 1), route, 10.0, 0.0, n_packets=k))
        assert arrivals == sorted(arrivals, reverse=True)
        # k packets: arrival = 10 + 10/k (last packet crosses last hop after
        # the full message crossed hop 1).
        assert arrivals[1] == pytest.approx(15.0)
        assert arrivals[-1] == pytest.approx(10.5)

    def test_converges_to_cut_through_limit(self):
        net, route = route3()
        state = PacketLinkState()
        arrival = state.schedule_edge((0, 1), route, 10.0, 0.0, n_packets=1000)
        # Cut-through limit for this route is 10.0.
        assert arrival == pytest.approx(10.0, abs=0.05)

    def test_fifo_within_edge(self):
        net, route = route3()
        state = PacketLinkState()
        state.schedule_edge((0, 1), route, 10.0, 0.0, n_packets=4)
        for link in route:
            slots = state.slots_of((0, 1), link.lid)
            for a, b in zip(slots, slots[1:]):
                assert b.start >= a.finish - 1e-9

    def test_contention_between_edges(self):
        net, route = route3()
        state = PacketLinkState()
        a1 = state.schedule_edge((0, 1), [route[0]], 10.0, 0.0, n_packets=2)
        a2 = state.schedule_edge((2, 3), [route[0]], 10.0, 0.0, n_packets=2)
        assert a2 >= a1  # shared link serializes the packets overall

    def test_small_packets_interleave_into_gaps(self):
        net, route = route3()
        state = PacketLinkState()
        # Big transfer leaves inter-packet gaps on link 2; a later small
        # transfer on link 2 only may use them.
        state.schedule_edge((0, 1), route, 12.0, 0.0, n_packets=3)
        a = state.schedule_edge((2, 3), [route[1]], 2.0, 0.0, n_packets=1)
        assert a <= 6.0  # fits into the first idle window on link 2

    def test_hop_delay(self):
        net, route = route3()
        state = PacketLinkState()
        arrival = state.schedule_edge((0, 1), route, 10.0, 0.0, n_packets=2, hop_delay=3.0)
        assert arrival == pytest.approx(18.0)  # 15 + one hop delay

    def test_zero_cost_and_empty_route(self):
        state = PacketLinkState()
        assert state.schedule_edge((0, 1), [], 5.0, 2.0, n_packets=4) == 2.0
        net, route = route3()
        assert state.schedule_edge((2, 3), route, 0.0, 2.0, n_packets=4) == 2.0

    def test_bad_args(self):
        net, route = route3()
        state = PacketLinkState()
        with pytest.raises(SchedulingError):
            state.schedule_edge((0, 1), route, 1.0, 0.0, n_packets=0)
        with pytest.raises(SchedulingError):
            state.schedule_edge((0, 1), route, 1.0, -1.0, n_packets=1)
        state.schedule_edge((0, 1), route, 1.0, 0.0, n_packets=1)
        with pytest.raises(SchedulingError):
            state.schedule_edge((0, 1), route, 1.0, 0.0, n_packets=1)


class TestPacketBAScheduler:
    @pytest.mark.parametrize("k", [1, 2, 8])
    def test_validates(self, k, fork8, wan16):
        s = PacketBAScheduler(n_packets=k).schedule(scale_to_ccr(fork8, 2.0), wan16)
        validate_schedule(s)
        assert s.packet_state is not None

    def test_more_packets_never_hurt_much(self):
        g = scale_to_ccr(fork_join(6, rng=1), 2.0)
        net = random_wan(8, rng=3)
        m1 = PacketBAScheduler(n_packets=1).schedule(g, net).makespan
        m8 = PacketBAScheduler(n_packets=8).schedule(g, net).makespan
        assert m8 <= m1 * 1.05

    def test_many_packets_approach_ba_cut_through(self):
        g = scale_to_ccr(fork_join(6, rng=1), 2.0)
        net = random_wan(8, rng=3)
        ba_ct = BAScheduler(shared_ready_time=False).schedule(g, net).makespan
        pkt = PacketBAScheduler(n_packets=64).schedule(g, net).makespan
        assert pkt <= ba_ct * 1.25

    def test_bad_params(self):
        with pytest.raises(SchedulingError):
            PacketBAScheduler(n_packets=0)

    def test_corrupted_packets_detected(self, fork8, wan16):
        from repro.exceptions import ValidationError
        from repro.linksched.packets import PacketSlot

        s = PacketBAScheduler(n_packets=2).schedule(scale_to_ccr(fork8, 2.0), wan16)
        state = s.packet_state
        lid = state.used_links()[0]
        slot = state.slots(lid)[0]
        # Shift one packet to overlap its neighbour.
        state._queues[lid][0] = PacketSlot(
            slot.edge, slot.packet, slot.start, slot.finish + 1e6
        )
        with pytest.raises(ValidationError):
            validate_schedule(s)


class TestPacketIntegration:
    def test_round_trip_serialization(self, fork8, wan16):
        from repro.core.io import schedule_from_json, schedule_to_json

        s = PacketBAScheduler(n_packets=3).schedule(scale_to_ccr(fork8, 2.0), wan16)
        back = schedule_from_json(schedule_to_json(s))
        validate_schedule(back)
        assert back.makespan == s.makespan
        assert back.packet_state is not None
        routed = next(k for k, v in back.packet_state.routes().items() if v)
        assert back.packet_state.packets_of(routed) == 3

    def test_link_gantt_shows_packets(self, fork8, wan16):
        from repro.viz.gantt import link_gantt

        s = PacketBAScheduler(n_packets=2).schedule(scale_to_ccr(fork8, 2.0), wan16)
        out = link_gantt(s)
        assert ".0" in out or ".1" in out  # packet suffix in the labels

    def test_link_utilization_and_report(self, fork8, wan16):
        from repro.core.metrics import comm_to_comp_time, link_utilization
        from repro.viz.report import schedule_report

        s = PacketBAScheduler(n_packets=2).schedule(scale_to_ccr(fork8, 2.0), wan16)
        util = link_utilization(s)
        assert util and all(0 <= u <= 1 + 1e-9 for u in util.values())
        assert comm_to_comp_time(s) > 0
        assert "comm/comp" in schedule_report(s, gantt=False)

    def test_resimulates(self, fork8, wan16):
        from repro.core.eventsim import resimulate

        s = PacketBAScheduler(n_packets=4).schedule(scale_to_ccr(fork8, 2.0), wan16)
        assert resimulate(s).makespan == pytest.approx(s.makespan)
