"""Tests for repro.core.validate: valid schedules pass, corrupted ones fail."""

import dataclasses

import pytest

from repro.core.ba import BAScheduler
from repro.core.bbsa import BBSAScheduler
from repro.core.oihsa import OIHSAScheduler
from repro.core.validate import validate_schedule
from repro.exceptions import ValidationError
from repro.procsched.state import TaskPlacement


@pytest.fixture
def schedule(diamond4, wan16):
    return BAScheduler().schedule(diamond4, wan16)


def corrupt_placement(schedule, tid, **changes):
    pl = schedule.placements[tid]
    schedule.placements[tid] = dataclasses.replace(pl, **changes)


class TestPlacementChecks:
    def test_valid_passes(self, schedule):
        validate_schedule(schedule)

    def test_missing_task_detected(self, schedule):
        del schedule.placements[0]
        with pytest.raises(ValidationError, match="not placed"):
            validate_schedule(schedule)

    def test_unknown_task_detected(self, schedule):
        schedule.placements[99] = TaskPlacement(99, 0, 0.0, 1.0)
        with pytest.raises(ValidationError, match="unknown"):
            validate_schedule(schedule)

    def test_wrong_duration_detected(self, schedule):
        pl = schedule.placements[0]
        corrupt_placement(schedule, 0, finish=pl.finish + 5.0)
        with pytest.raises(ValidationError):
            validate_schedule(schedule)

    def test_non_processor_detected(self, schedule, wan16):
        switch = wan16.switches()[0].vid
        pl = schedule.placements[0]
        corrupt_placement(schedule, 0, processor=switch)
        with pytest.raises(ValidationError, match="non-processor"):
            validate_schedule(schedule)

    def test_processor_overlap_detected(self, diamond4, net4):
        s = BAScheduler().schedule(diamond4, net4)
        # Move every task to processor 0 at time 0 — guaranteed overlaps.
        for tid in list(s.placements):
            pl = s.placements[tid]
            corrupt_placement(s, tid, processor=net4.processors()[0].vid, start=0.0,
                              finish=pl.finish - pl.start)
        with pytest.raises(ValidationError):
            validate_schedule(s)


class TestEdgeChecks:
    def test_missing_arrival_detected(self, schedule):
        key = next(iter(schedule.edge_arrivals))
        del schedule.edge_arrivals[key]
        with pytest.raises(ValidationError, match="no recorded arrival"):
            validate_schedule(schedule)

    def test_arrival_before_source_detected(self, schedule):
        key = next(iter(schedule.edge_arrivals))
        schedule.edge_arrivals[key] = -1.0
        with pytest.raises(ValidationError):
            validate_schedule(schedule)

    def test_start_before_arrival_detected(self, schedule):
        # Push an edge's arrival way past its destination's start.
        for e in schedule.graph.edges():
            dst = schedule.placements[e.dst]
            schedule.edge_arrivals[e.key] = dst.start + 100.0
            break
        with pytest.raises(ValidationError):
            validate_schedule(schedule)


class TestLinkChecks:
    def test_slot_overlap_detected(self, schedule):
        state = schedule.link_state
        lid = next(l for l in state.used_links() if len(state.slots(l)) >= 1)
        slot = state.slots(lid)[0]
        # Inject an overlapping duplicate slot via the raw queue.
        from repro.linksched.slots import TimeSlot

        q = state._queues[lid]
        q.slots.append(TimeSlot((98, 99), slot.start, slot.finish + 1.0))
        q.slots.sort(key=lambda s: s.start)
        with pytest.raises(ValidationError):
            validate_schedule(schedule)

    def test_causality_violation_detected(self, fork8, wan16):
        s = OIHSAScheduler().schedule(fork8, wan16)
        state = s.link_state
        # Find a cross-processor edge with a >= 2 link route and shift its
        # first slot after its second.
        for e in fork8.edges():
            route = state.route_of(e.key) if state.has_route(e.key) else ()
            if len(route) >= 2:
                from repro.linksched.slots import TimeSlot

                first = state.slot_of(e.key, route[0])
                q = state._queues[route[0]]
                moved = TimeSlot(e.key, first.start + 1e6, first.finish + 1e6)
                q.slots[q.slots.index(first)] = moved
                q.by_edge[e.key] = moved
                with pytest.raises(ValidationError):
                    validate_schedule(s)
                return
        pytest.skip("no multi-hop edge in this schedule")


class TestBandwidthChecks:
    def test_valid_bbsa_passes(self, fork8, wan16):
        validate_schedule(BBSAScheduler().schedule(fork8, wan16))

    def test_volume_loss_detected(self, fork8, wan16):
        s = BBSAScheduler().schedule(fork8, wan16)
        state = s.bandwidth_state
        for e in fork8.edges():
            bookings = state.bookings_of(e.key)
            if bookings:
                import dataclasses as dc

                from repro.linksched.bandwidth import Cumulative

                b = bookings[-1]
                truncated = dc.replace(
                    b,
                    departure=Cumulative([(b.departure.start_time, 0.0)]),
                )
                state._bookings[e.key][-1] = truncated
                with pytest.raises(ValidationError):
                    validate_schedule(s)
                return
        pytest.skip("no cross-processor edge")
