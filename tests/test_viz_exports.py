"""Tests for SVG and Chrome-trace schedule exports."""

import json
import xml.etree.ElementTree as ET

import pytest

from repro.core.ba import BAScheduler
from repro.core.bbsa import BBSAScheduler
from repro.core.classic import ClassicScheduler
from repro.viz.svg import schedule_to_svg
from repro.viz.trace import schedule_to_trace


@pytest.fixture
def schedules(diamond4, net4, fork8, wan16):
    return {
        "ba": BAScheduler().schedule(diamond4, net4),
        # fork-join on a WAN guarantees cross-processor (bandwidth) traffic
        "bbsa": BBSAScheduler().schedule(fork8, wan16),
        "classic": ClassicScheduler().schedule(diamond4, net4),
    }


class TestSvg:
    def test_is_well_formed_xml(self, schedules):
        for s in schedules.values():
            ET.fromstring(schedule_to_svg(s))

    def test_contains_all_tasks(self, schedules, diamond4):
        svg = schedule_to_svg(schedules["ba"])
        for tid in diamond4.task_ids():
            assert f"task {tid}:" in svg

    def test_link_lanes_for_slot_schedules(self, schedules):
        svg = schedule_to_svg(schedules["ba"])
        assert "edge 0-&gt;" in svg or "edge 0->" in svg

    def test_bandwidth_lanes(self, schedules):
        svg = schedule_to_svg(schedules["bbsa"])
        assert "% used over" in svg or "used over" in svg

    def test_no_links_flag(self, schedules):
        svg = schedule_to_svg(schedules["ba"], include_links=False)
        assert "edge 0" not in svg

    def test_mentions_makespan(self, schedules):
        s = schedules["ba"]
        assert f"{s.makespan:.1f}" in schedule_to_svg(s)


class TestTrace:
    def test_is_valid_json(self, schedules):
        for s in schedules.values():
            doc = json.loads(schedule_to_trace(s))
            assert "traceEvents" in doc

    def test_task_events_cover_placements(self, schedules):
        s = schedules["ba"]
        doc = json.loads(schedule_to_trace(s))
        task_events = [e for e in doc["traceEvents"] if e.get("ph") == "X" and e["pid"] < 10_000]
        assert len(task_events) == len(s.placements)

    def test_link_events_present(self, schedules):
        doc = json.loads(schedule_to_trace(schedules["ba"]))
        link_events = [e for e in doc["traceEvents"] if e.get("pid", 0) >= 10_000]
        assert link_events

    def test_bandwidth_counters(self, schedules):
        doc = json.loads(schedule_to_trace(schedules["bbsa"]))
        counters = [e for e in doc["traceEvents"] if e.get("ph") == "C"]
        assert counters

    def test_time_unit_scaling(self, schedules):
        s = schedules["ba"]
        fast = json.loads(schedule_to_trace(s, time_unit=1.0))
        slow = json.loads(schedule_to_trace(s, time_unit=10.0))
        f_ts = max(e.get("ts", 0) for e in fast["traceEvents"])
        s_ts = max(e.get("ts", 0) for e in slow["traceEvents"])
        assert s_ts == pytest.approx(10 * f_ts, rel=0.01)

    def test_durations_positive(self, schedules):
        doc = json.loads(schedule_to_trace(schedules["ba"]))
        for e in doc["traceEvents"]:
            if e.get("ph") == "X":
                assert e["dur"] >= 1
