"""Tests for SVG and Chrome-trace schedule exports."""

import json
import xml.etree.ElementTree as ET

import pytest

from repro.core.ba import BAScheduler
from repro.core.bbsa import BBSAScheduler
from repro.core.classic import ClassicScheduler
from repro.viz.svg import schedule_to_svg
from repro.viz.trace import LINK_PID_BASE, schedule_to_trace


@pytest.fixture
def schedules(diamond4, net4, fork8, wan16):
    return {
        "ba": BAScheduler().schedule(diamond4, net4),
        # fork-join on a WAN guarantees cross-processor (bandwidth) traffic
        "bbsa": BBSAScheduler().schedule(fork8, wan16),
        "classic": ClassicScheduler().schedule(diamond4, net4),
    }


class TestSvg:
    def test_is_well_formed_xml(self, schedules):
        for s in schedules.values():
            ET.fromstring(schedule_to_svg(s))

    def test_contains_all_tasks(self, schedules, diamond4):
        svg = schedule_to_svg(schedules["ba"])
        for tid in diamond4.task_ids():
            assert f"task {tid}:" in svg

    def test_link_lanes_for_slot_schedules(self, schedules):
        svg = schedule_to_svg(schedules["ba"])
        assert "edge 0-&gt;" in svg or "edge 0->" in svg

    def test_bandwidth_lanes(self, schedules):
        svg = schedule_to_svg(schedules["bbsa"])
        assert "% used over" in svg or "used over" in svg

    def test_no_links_flag(self, schedules):
        svg = schedule_to_svg(schedules["ba"], include_links=False)
        assert "edge 0" not in svg

    def test_mentions_makespan(self, schedules):
        s = schedules["ba"]
        assert f"{s.makespan:.1f}" in schedule_to_svg(s)


class TestTrace:
    def test_is_valid_json(self, schedules):
        for s in schedules.values():
            doc = json.loads(schedule_to_trace(s))
            assert "traceEvents" in doc

    def test_task_events_cover_placements(self, schedules):
        s = schedules["ba"]
        doc = json.loads(schedule_to_trace(s))
        task_events = [e for e in doc["traceEvents"] if e.get("ph") == "X" and e["pid"] < 10_000]
        assert len(task_events) == len(s.placements)

    def test_link_events_present(self, schedules):
        doc = json.loads(schedule_to_trace(schedules["ba"]))
        link_events = [e for e in doc["traceEvents"] if e.get("pid", 0) >= 10_000]
        assert link_events

    def test_bandwidth_counters(self, schedules):
        doc = json.loads(schedule_to_trace(schedules["bbsa"]))
        counters = [e for e in doc["traceEvents"] if e.get("ph") == "C"]
        assert counters

    def test_time_unit_scaling(self, schedules):
        s = schedules["ba"]
        fast = json.loads(schedule_to_trace(s, time_unit=1.0))
        slow = json.loads(schedule_to_trace(s, time_unit=10.0))
        f_ts = max(e.get("ts", 0) for e in fast["traceEvents"])
        s_ts = max(e.get("ts", 0) for e in slow["traceEvents"])
        assert s_ts == pytest.approx(10 * f_ts, rel=0.01)

    def test_durations_positive(self, schedules):
        doc = json.loads(schedule_to_trace(schedules["ba"]))
        for e in doc["traceEvents"]:
            if e.get("ph") == "X":
                assert e["dur"] >= 1


class TestTraceMetadata:
    """Links must sort below processors instead of interleaving by pid."""

    def test_sort_index_for_every_process(self, schedules):
        doc = json.loads(schedule_to_trace(schedules["ba"]))
        named = {
            e["pid"]
            for e in doc["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "process_name"
        }
        sort_index = {
            e["pid"]: e["args"]["sort_index"]
            for e in doc["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "process_sort_index"
        }
        assert set(sort_index) == named
        proc_indices = [v for pid, v in sort_index.items() if pid < LINK_PID_BASE]
        link_indices = [v for pid, v in sort_index.items() if pid >= LINK_PID_BASE]
        assert link_indices and proc_indices
        assert min(link_indices) > max(proc_indices)

    def test_bandwidth_links_also_sorted(self, schedules):
        doc = json.loads(schedule_to_trace(schedules["bbsa"]))
        link_sorts = [
            e
            for e in doc["traceEvents"]
            if e.get("ph") == "M"
            and e["name"] == "process_sort_index"
            and e["pid"] >= LINK_PID_BASE
        ]
        assert link_sorts

    def test_thread_names(self, schedules):
        doc = json.loads(schedule_to_trace(schedules["ba"]))
        names = {
            (e["pid"] >= LINK_PID_BASE, e["args"]["name"])
            for e in doc["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "thread_name"
        }
        assert (False, "exec") in names
        assert (True, "transfer") in names


class TestZeroLengthSlots:
    """Regression: sub-microsecond slots must not vanish in Perfetto."""

    @pytest.fixture
    def tiny_schedule(self, diamond4, net4):
        from repro.core.schedule import Schedule
        from repro.linksched.slots import TimeSlot
        from repro.linksched.state import LinkScheduleState
        from repro.procsched.state import TaskPlacement

        proc = net4.processors()[0].vid
        lid = next(net4.links()).lid
        state = LinkScheduleState()
        state.record_route((0, 1), (lid,))
        # 0.2 time units: rounds to the same microsecond at both ends.
        state.insert(lid, 0, TimeSlot((0, 1), 1.0, 1.2))
        return Schedule(
            algorithm="test",
            graph=diamond4,
            net=net4,
            placements={0: TaskPlacement(0, proc, 1.0, 1.2)},
            link_state=state,
        )

    def test_task_and_link_slots_clamped(self, tiny_schedule):
        doc = json.loads(schedule_to_trace(tiny_schedule))
        xs = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        task_events = [e for e in xs if e["pid"] < LINK_PID_BASE]
        link_events = [e for e in xs if e["pid"] >= LINK_PID_BASE]
        assert task_events and link_events
        for e in xs:
            assert e["dur"] >= 1


class TestTraceInstants:
    def test_decision_events_rendered_when_instrumented(self, fork8, wan16):
        from repro import obs
        from repro.core.oihsa import OIHSAScheduler
        from repro.taskgraph.ccr import scale_to_ccr

        graph = scale_to_ccr(fork8, 8.0)
        obs.enable()
        try:
            schedule = OIHSAScheduler().schedule(graph, wan16)
        finally:
            obs.disable()
            obs.reset()
        doc = json.loads(schedule_to_trace(schedule))
        instants = [e for e in doc["traceEvents"] if e.get("ph") == "i"]
        assert instants
        assert {e["name"] for e in instants} <= {
            "slot_deferred",
            "probe_rejected",
            "task_placed",
            "route_probed",
        }
        for e in instants:
            assert e["s"] == "t"
            assert isinstance(e["ts"], int)
