"""Unit tests for repro.taskgraph.kernels (structure of each kernel DAG)."""

import pytest

from repro.exceptions import GraphError
from repro.taskgraph import kernels
from repro.taskgraph.validate import validate_graph


@pytest.mark.parametrize(
    "factory",
    [
        lambda rng: kernels.fork_join(5, rng),
        lambda rng: kernels.pipeline(7, rng),
        lambda rng: kernels.out_tree(3, 2, rng),
        lambda rng: kernels.in_tree(3, 2, rng),
        lambda rng: kernels.divide_and_conquer(4, rng),
        lambda rng: kernels.gaussian_elimination(5, rng),
        lambda rng: kernels.cholesky(4, rng),
        lambda rng: kernels.fft(8, rng),
        lambda rng: kernels.stencil(4, 3, rng),
        lambda rng: kernels.map_reduce(3, 2, rng),
        lambda rng: kernels.diamond(4, rng),
    ],
    ids=[
        "fork_join", "pipeline", "out_tree", "in_tree", "dac",
        "gauss", "cholesky", "fft", "stencil", "map_reduce", "diamond",
    ],
)
class TestAllKernels:
    def test_valid_dag(self, factory):
        validate_graph(factory(11))

    def test_deterministic(self, factory):
        a, b = factory(5), factory(5)
        assert {e.key for e in a.edges()} == {e.key for e in b.edges()}

    def test_unit_costs_without_rng(self, factory):
        g = factory(None)
        assert all(t.weight == 1.0 for t in g.tasks())
        assert all(e.cost == 1.0 for e in g.edges())

    def test_weakly_connected(self, factory):
        import networkx as nx

        assert nx.is_weakly_connected(factory(3).to_networkx())


class TestShapes:
    def test_fork_join_counts(self):
        g = kernels.fork_join(6)
        assert g.num_tasks == 8
        assert g.num_edges == 12
        assert g.sources() == [0]
        assert g.sinks() == [7]

    def test_pipeline_is_chain(self):
        g = kernels.pipeline(5)
        assert g.num_edges == 4
        assert len(g.sources()) == 1 and len(g.sinks()) == 1

    def test_out_tree_counts(self):
        g = kernels.out_tree(3, 2)
        assert g.num_tasks == 7
        assert len(g.sinks()) == 4

    def test_in_tree_is_reversed_out_tree(self):
        g = kernels.in_tree(3, 2)
        assert len(g.sources()) == 4
        assert len(g.sinks()) == 1

    def test_dac_symmetry(self):
        g = kernels.divide_and_conquer(3)
        assert g.num_tasks == 4 + 3 + 3  # 1+2+4 down, 2+1 up
        assert len(g.sources()) == 1 and len(g.sinks()) == 1

    def test_gauss_counts(self):
        g = kernels.gaussian_elimination(4)
        # levels k=0..2 with n-k tasks: 4 + 3 + 2
        assert g.num_tasks == 9

    def test_fft_counts(self):
        g = kernels.fft(4)
        assert g.num_tasks == 12  # (log2(4)+1) ranks x 4 points
        assert all(len(g.predecessors(t)) == 2 for t in g.task_ids() if g.predecessors(t))

    def test_stencil_counts(self):
        g = kernels.stencil(3, 2)
        assert g.num_tasks == 6
        # middle cell of step 1 sees all three step-0 cells
        assert len(g.predecessors(4)) == 3

    def test_map_reduce_shuffle_is_complete(self):
        g = kernels.map_reduce(3, 2)
        reducers = [t for t in g.task_ids() if (g.task(t).name or "").startswith("reduce")]
        for r in reducers:
            assert len(g.predecessors(r)) == 3

    def test_diamond_grid(self):
        g = kernels.diamond(3)
        assert g.num_tasks == 9
        assert len(g.predecessors(4)) == 2  # interior cell: up + left

    def test_bad_args_rejected(self):
        with pytest.raises(GraphError):
            kernels.fork_join(0)
        with pytest.raises(GraphError):
            kernels.fft(6)  # not a power of two
        with pytest.raises(GraphError):
            kernels.stencil(0, 1)
        with pytest.raises(GraphError):
            kernels.gaussian_elimination(1)

    def test_registry_covers_all(self):
        assert set(kernels.KERNELS) == {
            "fork_join", "pipeline", "out_tree", "in_tree", "divide_and_conquer",
            "gaussian_elimination", "cholesky", "fft", "stencil", "map_reduce",
            "diamond",
        }
