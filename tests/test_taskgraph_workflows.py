"""Tests for the scientific-workflow-shaped task graphs."""

import pytest

from repro.core.oihsa import OIHSAScheduler
from repro.core.validate import validate_schedule
from repro.exceptions import GraphError
from repro.network.builders import random_wan
from repro.taskgraph.validate import validate_graph
from repro.taskgraph.workflows import (
    WORKFLOWS,
    cybershake_like,
    epigenomics_like,
    ligo_like,
    montage_like,
)


@pytest.mark.parametrize("name", sorted(WORKFLOWS))
class TestAllWorkflows:
    def test_valid_dag(self, name):
        validate_graph(WORKFLOWS[name](rng=1), require_connected=True)

    def test_deterministic(self, name):
        a, b = WORKFLOWS[name](rng=5), WORKFLOWS[name](rng=5)
        assert {e.key for e in a.edges()} == {e.key for e in b.edges()}
        assert [t.weight for t in a.tasks()] == [t.weight for t in b.tasks()]

    def test_schedulable(self, name):
        g = WORKFLOWS[name](rng=2)
        net = random_wan(8, rng=3)
        validate_schedule(OIHSAScheduler().schedule(g, net))

    def test_single_entry_or_fan(self, name):
        g = WORKFLOWS[name](rng=4)
        assert 1 <= len(g.sources()) <= 8
        assert 1 <= len(g.sinks()) <= 4


class TestShapes:
    def test_montage_structure(self):
        g = montage_like(width=6, rng=1)
        # 6 projections + 5 diffs + concat + model + 6 backgrounds + 4 tail
        assert g.num_tasks == 6 + 5 + 1 + 1 + 6 + 4
        assert len(g.sources()) == 6
        assert len(g.sinks()) == 1

    def test_montage_background_depends_on_model_and_projection(self):
        g = montage_like(width=4, rng=1)
        bgs = [t.tid for t in g.tasks() if (t.name or "").startswith("mBackground")]
        for b in bgs:
            assert len(g.predecessors(b)) == 2

    def test_epigenomics_lane_depth(self):
        g = epigenomics_like(lanes=3, chain=4, rng=1)
        assert g.num_tasks == 1 + 3 * 4 + 3
        import networkx as nx

        assert nx.dag_longest_path_length(g.to_networkx()) == 4 + 3

    def test_ligo_two_waves(self):
        g = ligo_like(banks=4, rng=1)
        assert g.num_tasks == 4 + 4 + 1 + 4 + 4 + 1
        thinca2 = g.num_tasks - 1
        assert len(g.predecessors(thinca2)) == 4

    def test_cybershake_generators_fan(self):
        g = cybershake_like(sites=3, rng=1)
        assert len(g.sources()) == 2
        extracts = [t.tid for t in g.tasks() if (t.name or "").startswith("extract")]
        for e in extracts:
            assert len(g.predecessors(e)) == 2

    def test_bad_args(self):
        with pytest.raises(GraphError):
            montage_like(width=1)
        with pytest.raises(GraphError):
            epigenomics_like(lanes=0)
        with pytest.raises(GraphError):
            ligo_like(banks=1)
        with pytest.raises(GraphError):
            cybershake_like(sites=0)
