"""Integration matrix: every scheduler x topology family x kernel validates.

This is the library's main safety net: any interaction bug between routing,
insertion, deferral, bandwidth sharing and placement shows up here as a
ValidationError.
"""

import pytest

from repro.core import SCHEDULERS
from repro.core.validate import validate_schedule
from repro.network.builders import (
    fat_tree,
    fully_connected,
    hypercube,
    linear_array,
    mesh2d,
    random_wan,
    ring,
    shared_bus,
    switched_cluster,
    torus2d,
)
from repro.taskgraph import kernels
from repro.taskgraph.ccr import scale_to_ccr
from repro.taskgraph.generators import random_layered_dag

TOPOLOGIES = {
    "fully_connected": lambda: fully_connected(4),
    "switched_cluster": lambda: switched_cluster(6),
    "linear": lambda: linear_array(4),
    "ring": lambda: ring(5),
    "mesh": lambda: mesh2d(2, 3),
    "torus": lambda: torus2d(3, 3),
    "hypercube": lambda: hypercube(3),
    "fat_tree": lambda: fat_tree(8),
    "bus": lambda: shared_bus(4),
    "wan": lambda: random_wan(12, rng=5),
    "hetero_wan": lambda: random_wan(12, rng=6, proc_speed=(1, 10), link_speed=(1, 10)),
}

GRAPHS = {
    "gauss": lambda: kernels.gaussian_elimination(4, rng=1),
    "fft": lambda: kernels.fft(4, rng=2),
    "fork_join": lambda: kernels.fork_join(6, rng=3),
    "mapreduce": lambda: kernels.map_reduce(3, 3, rng=4),
    "layered_hi_ccr": lambda: scale_to_ccr(random_layered_dag(30, rng=5), 8.0),
    "layered_lo_ccr": lambda: scale_to_ccr(random_layered_dag(30, rng=6), 0.2),
}


@pytest.mark.parametrize("algo", sorted(SCHEDULERS))
@pytest.mark.parametrize("topo", sorted(TOPOLOGIES))
def test_all_schedulers_on_all_topologies(algo, topo, diamond4):
    net = TOPOLOGIES[topo]()
    schedule = SCHEDULERS[algo]().schedule(diamond4, net)
    validate_schedule(schedule)


@pytest.mark.parametrize("algo", sorted(SCHEDULERS))
@pytest.mark.parametrize("graph", sorted(GRAPHS))
def test_all_schedulers_on_all_kernels(algo, graph):
    net = random_wan(8, rng=9)
    schedule = SCHEDULERS[algo]().schedule(GRAPHS[graph](), net)
    validate_schedule(schedule)


@pytest.mark.parametrize("algo", ["ba", "oihsa", "bbsa"])
def test_contended_bus_serializes_all_communication(algo):
    """On one shared bus every cross-processor byte contends; the schedule
    must still validate and the bus must never overlap bookings."""
    net = shared_bus(4)
    graph = kernels.fork_join(8, rng=11)
    schedule = SCHEDULERS[algo]().schedule(graph, net)
    validate_schedule(schedule)


@pytest.mark.parametrize("algo", sorted(SCHEDULERS))
def test_big_mixed_workload(algo):
    graph = scale_to_ccr(random_layered_dag(60, rng=13, density=0.1), 3.0)
    net = random_wan(16, rng=13, proc_speed=(1, 10), link_speed=(1, 10))
    schedule = SCHEDULERS[algo]().schedule(graph, net)
    validate_schedule(schedule)
    assert len(schedule.placements) == 60
