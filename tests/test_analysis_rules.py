"""Per-rule fixtures for the ``repro.analysis`` lint engine.

Every rule gets at least one *firing* fixture (the hazard it exists for)
and one *clean* fixture (the idiom the repo actually uses), linted under a
virtual path inside the rule's scope so the path-scoping logic is exercised
too.
"""

from __future__ import annotations

import textwrap

from repro.analysis import lint_source, select_rules
from repro.analysis.findings import Finding

CORE = "src/repro/core/sample.py"
LINKSCHED = "src/repro/linksched/sample.py"
EXPERIMENTS = "src/repro/experiments/sample.py"


def run_rule(rule_id: str, source: str, path: str = CORE) -> list[Finding]:
    result = lint_source(textwrap.dedent(source), path, select_rules([rule_id]))
    return result.findings


class TestSetIteration:
    def test_for_over_set_param_fires(self):
        found = run_rule(
            "DET001",
            """
            def f(items: set[int]) -> list[int]:
                out = []
                for x in items:
                    out.append(x)
                return out
            """,
        )
        assert [f.rule for f in found] == ["DET001"]
        assert found[0].line == 4

    def test_sorted_iteration_is_clean(self):
        assert not run_rule(
            "DET001",
            """
            def f(items: set[int]) -> list[int]:
                return [x for x in sorted(items)]
            """,
        )

    def test_listcomp_over_set_literal_fires(self):
        found = run_rule("DET001", "xs = [x for x in {3, 1, 2}]\n")
        assert len(found) == 1
        assert "comprehension" in found[0].message

    def test_assignment_flow_inference(self):
        found = run_rule(
            "DET001",
            """
            def f() -> None:
                seen = set()
                also = seen
                for x in also:
                    pass
            """,
        )
        assert len(found) == 1

    def test_generator_into_order_safe_consumer_is_clean(self):
        assert not run_rule(
            "DET001",
            """
            def f(items: set[int]) -> int:
                return sum(x for x in items)
            """,
        )

    def test_list_call_on_set_fires(self):
        found = run_rule(
            """DET001""",
            """
            def f(items: frozenset) -> list:
                return list(items)
            """,
        )
        assert len(found) == 1

    def test_out_of_scope_path_is_clean(self):
        # repro/utils is not scheduling code; DET001 does not apply there.
        assert not run_rule(
            "DET001",
            "xs = [x for x in {3, 1, 2}]\n",
            path="src/repro/utils/sample.py",
        )


class TestUnseededRng:
    def test_global_random_module_fires(self):
        found = run_rule(
            "DET002",
            """
            import random

            def f() -> float:
                return random.random()
            """,
            path=EXPERIMENTS,
        )
        assert len(found) == 1
        assert "process-global" in found[0].message

    def test_seeded_random_instance_is_clean(self):
        assert not run_rule(
            "DET002",
            """
            import random

            def f(seed: int) -> float:
                return random.Random(seed).random()
            """,
            path=EXPERIMENTS,
        )

    def test_unseeded_default_rng_fires(self):
        found = run_rule(
            "DET002",
            """
            import numpy as np

            def f():
                return np.random.default_rng()
            """,
            path=EXPERIMENTS,
        )
        assert len(found) == 1
        assert "unseeded" in found[0].message

    def test_seeded_default_rng_is_clean(self):
        assert not run_rule(
            "DET002",
            """
            import numpy as np

            def f(seed: int):
                return np.random.default_rng(seed)
            """,
            path=EXPERIMENTS,
        )

    def test_legacy_np_random_global_fires(self):
        found = run_rule(
            "DET002",
            """
            import numpy as np

            def f() -> float:
                return np.random.rand()
            """,
            path=EXPERIMENTS,
        )
        assert len(found) == 1

    def test_seed_plumbing_module_is_exempt(self):
        assert not run_rule(
            "DET002",
            """
            import numpy as np

            def as_rng(seed=None):
                return np.random.default_rng()
            """,
            path="src/repro/utils/rng.py",
        )


class TestWallClock:
    def test_time_time_fires(self):
        found = run_rule(
            "DET003",
            """
            import time

            def stamp() -> float:
                return time.time()
            """,
        )
        assert len(found) == 1
        assert "wall-clock" in found[0].message

    def test_from_import_alias_fires(self):
        found = run_rule(
            "DET003",
            """
            from time import time as _now

            def stamp() -> float:
                return _now()
            """,
        )
        assert len(found) == 1

    def test_perf_counter_is_clean(self):
        assert not run_rule(
            "DET003",
            """
            import time

            def measure() -> float:
                return time.perf_counter()
            """,
        )

    def test_datetime_now_fires(self):
        found = run_rule(
            "DET003",
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """,
        )
        assert len(found) == 1


class TestFloatEquality:
    def test_float_params_fire(self):
        found = run_rule(
            "FLT001",
            """
            def same(a: float, b: float) -> bool:
                return a == b
            """,
        )
        assert len(found) == 1
        assert "float equality" in found[0].message

    def test_known_float_attribute_fires(self):
        found = run_rule(
            "FLT001",
            """
            def at_origin(slot) -> bool:
                return slot.start == 0
            """,
            path=LINKSCHED,
        )
        assert len(found) == 1

    def test_epsilon_band_is_clean(self):
        assert not run_rule(
            "FLT001",
            """
            def same(a: float, b: float) -> bool:
                return abs(a - b) <= 1e-6
            """,
        )

    def test_int_comparison_is_clean(self):
        assert not run_rule(
            "FLT001",
            """
            def f(n: int) -> bool:
                return n == 0
            """,
        )

    def test_causality_module_is_exempt(self):
        assert not run_rule(
            "FLT001",
            """
            def same(a: float, b: float) -> bool:
                return a == b
            """,
            path="src/repro/linksched/causality.py",
        )


class TestObsGuard:
    def test_unguarded_emit_fires(self):
        found = run_rule(
            "OBS001",
            """
            from repro.obs import OBS

            def f() -> None:
                OBS.emit("edge_scheduled", t=1.0)
            """,
        )
        assert len(found) == 1
        assert "unguarded" in found[0].message

    def test_guarded_emit_is_clean(self):
        assert not run_rule(
            "OBS001",
            """
            from repro.obs import OBS

            def f() -> None:
                if OBS.on:
                    OBS.emit("edge_scheduled", t=1.0)
            """,
        )

    def test_alias_guard_is_clean(self):
        assert not run_rule(
            "OBS001",
            """
            from repro.obs import OBS

            def f() -> None:
                observing = OBS.on
                if observing:
                    OBS.metrics.counter("probes").inc()
            """,
        )

    def test_early_exit_guard_is_clean(self):
        assert not run_rule(
            "OBS001",
            """
            from repro.obs import OBS

            def f() -> None:
                if not OBS.on:
                    return
                OBS.metrics.counter("probes").inc()
            """,
        )

    def test_unguarded_metric_alias_fires(self):
        found = run_rule(
            "OBS001",
            """
            from repro.obs import OBS

            def f() -> None:
                gauges = OBS.metrics
                gauges.gauge("makespan").set(1.0)
            """,
        )
        assert len(found) == 1

    def test_helper_with_all_call_sites_guarded_is_clean(self):
        assert not run_rule(
            "OBS001",
            """
            from repro.obs import OBS

            def _attach(result) -> None:
                OBS.metrics.gauge("makespan").set(result.makespan)

            def run(result) -> None:
                if OBS.on:
                    _attach(result)
            """,
        )


class TestLedgerWrite:
    def test_direct_open_of_ledger_path_fires(self):
        found = run_rule(
            "OBS002",
            """
            def dump(record) -> None:
                with open(".repro-runs/ledger-ab.jsonl", "a") as fh:
                    fh.write(record.to_json() + "\\n")
            """,
            path=EXPERIMENTS,
        )
        assert [f.rule for f in found] == ["OBS002"]
        assert "runlog.append" in found[0].message

    def test_os_open_of_ledger_variable_fires(self):
        found = run_rule(
            "OBS002",
            """
            import os

            def dump(ledger_path, line: bytes) -> None:
                fd = os.open(ledger_path, os.O_WRONLY | os.O_APPEND)
                os.write(fd, line)
            """,
            path=EXPERIMENTS,
        )
        assert len(found) == 1

    def test_write_text_on_runs_dir_path_fires(self):
        found = run_rule(
            "OBS002",
            """
            def dump(runs_dir, payload: str) -> None:
                (runs_dir / "ledger-00.jsonl").write_text(payload)
            """,
            path=EXPERIMENTS,
        )
        assert len(found) == 1

    def test_runlog_module_itself_is_exempt(self):
        assert not run_rule(
            "OBS002",
            """
            def dump(record) -> None:
                with open(".repro-runs/ledger-ab.jsonl", "a") as fh:
                    fh.write(record.to_json() + "\\n")
            """,
            path="src/repro/obs/runlog.py",
        )

    def test_unrelated_write_is_clean(self):
        assert not run_rule(
            "OBS002",
            """
            def dump(path, payload: str) -> None:
                with open(path, "w") as fh:
                    fh.write(payload)
            """,
            path=EXPERIMENTS,
        )

    def test_reading_the_ledger_is_clean(self):
        assert not run_rule(
            "OBS002",
            """
            def load(ledger_path) -> list[str]:
                with open(ledger_path) as fh:
                    return fh.readlines()
            """,
            path=EXPERIMENTS,
        )


class TestStateInternals:
    def test_foreign_private_access_fires(self):
        found = run_rule(
            "TXN001",
            """
            def peek(state):
                return state._queues
            """,
        )
        assert len(found) == 1
        assert "_queues" in found[0].message

    def test_self_access_is_clean(self):
        assert not run_rule(
            "TXN001",
            """
            class Thing:
                def peek(self):
                    return self._queues
            """,
        )

    def test_state_module_itself_is_exempt(self):
        assert not run_rule(
            "TXN001",
            """
            def helper(state):
                return state._undo
            """,
            path="src/repro/linksched/state.py",
        )

    def test_link_queue_import_fires(self):
        found = run_rule(
            "TXN001", "from repro.linksched.state import _LinkQueue\n"
        )
        assert len(found) == 1


class TestTransactionBalance:
    """TXN101: begin() must reach a closer on every path."""

    def test_exception_edge_leak_fires(self):
        # No try/finally: if find_gap raises, the transaction leaks.
        found = run_rule(
            "TXN101",
            """
            def probe(state) -> float:
                state.begin()
                best = state.find_gap(0, 1.0, 0.0, 0.0)[1]
                state.rollback()
                return best
            """,
        )
        assert len(found) == 1
        assert "exception edges count" in found[0].message

    def test_early_return_leak_fires(self):
        found = run_rule(
            "TXN101",
            """
            def probe(state, skip) -> float:
                state.begin()
                if skip:
                    return 0.0
                state.rollback()
                return 1.0
            """,
        )
        assert len(found) == 1

    def test_break_leak_fires(self):
        found = run_rule(
            "TXN101",
            """
            def scan(state, slots) -> None:
                for slot in slots:
                    state.begin()
                    if slot.bad:
                        break
                    state.rollback()
            """,
        )
        assert len(found) == 1

    def test_finally_rollback_is_clean(self):
        assert not run_rule(
            "TXN101",
            """
            def probe(state) -> float:
                state.begin()
                try:
                    return state.find_gap(0, 1.0, 0.0, 0.0)[1]
                finally:
                    state.rollback()
            """,
        )

    def test_probe_loop_idiom_is_clean(self):
        # The ba.py shape: begin/try/finally-rollback per loop iteration.
        assert not run_rule(
            "TXN101",
            """
            def best_probe(state, slots) -> float:
                best = 0.0
                for slot in slots:
                    state.begin()
                    try:
                        span = state.probe(slot)
                        if span > best:
                            best = span
                    finally:
                        state.rollback()
                return best
            """,
        )

    def test_straight_line_commit_is_clean(self):
        # Nothing between begin and commit can raise — no leak path.
        assert not run_rule(
            "TXN101",
            """
            def book(state) -> None:
                state.begin()
                state.commit()
            """,
        )

    def test_other_receivers_closer_does_not_count(self):
        found = run_rule(
            "TXN101",
            """
            def probe(a, b) -> None:
                a.begin()
                b.commit()
            """,
        )
        assert len(found) == 1


class TestJournalMarkBalance:
    """TXN102: local snapshot()/journal_mark() must be restored on all paths."""

    def test_early_return_drop_fires(self):
        found = run_rule(
            "TXN102",
            """
            def trial(cols, cand) -> float:
                mark = cols.snapshot()
                if not feasible(cand):
                    return -1.0
                cols.restore(mark)
                return 0.0
            """,
        )
        assert len(found) == 1
        assert "mark" in found[0].message

    def test_finally_restore_is_clean(self):
        assert not run_rule(
            "TXN102",
            """
            def trial(cols, cand) -> float:
                mark = cols.snapshot()
                try:
                    return score(cols, cand)
                finally:
                    cols.restore(mark)
            """,
        )

    def test_journal_mark_rollback_to_is_clean(self):
        assert not run_rule(
            "TXN102",
            """
            def trial(state, cand) -> float:
                mark = state.journal_mark()
                try:
                    return score(state, cand)
                finally:
                    state.rollback_to(mark)
            """,
        )

    def test_escaping_mark_is_exempt(self):
        # The incremental evaluators' checkpoint lists: marks stored for a
        # later cross-call rewind are not per-function balance.
        assert not run_rule(
            "TXN102",
            """
            def checkpoint(cols, lmarks) -> None:
                mark = cols.snapshot()
                lmarks.append(mark)
            """,
        )

    def test_returned_mark_is_exempt(self):
        assert not run_rule(
            "TXN102",
            """
            def open_trial(cols) -> int:
                mark = cols.snapshot()
                return mark
            """,
        )

    def test_restore_on_other_receiver_does_not_count(self):
        found = run_rule(
            "TXN102",
            """
            def trial(a, b) -> None:
                mark = a.snapshot()
                try:
                    pass
                finally:
                    b.restore(mark)
            """,
        )
        assert len(found) == 1


class TestCloserWithoutBegin:
    """TXN103: a closer must be dominated by a begin() on its receiver."""

    def test_branch_only_begin_fires(self):
        found = run_rule(
            "TXN103",
            """
            def finish(state, fresh) -> None:
                if fresh:
                    state.begin()
                state.commit()
            """,
        )
        assert len(found) == 1
        assert "no `state.begin()` ran" in found[0].message

    def test_closer_with_no_begin_fires(self):
        found = run_rule(
            "TXN103",
            """
            def cleanup(state) -> None:
                state.rollback()
            """,
        )
        assert len(found) == 1
        assert "never opens" in found[0].message

    def test_dominating_begin_is_clean(self):
        assert not run_rule(
            "TXN103",
            """
            def book(state, ok) -> None:
                state.begin()
                if ok:
                    state.commit()
                else:
                    state.rollback()
            """,
        )

    def test_probe_loop_idiom_is_clean(self):
        assert not run_rule(
            "TXN103",
            """
            def best_probe(state, slots) -> None:
                for slot in slots:
                    state.begin()
                    try:
                        state.probe(slot)
                    finally:
                        state.rollback()
            """,
        )


EXPERIMENTS_SAMPLE = "src/repro/experiments/sample.py"


class TestWorkerGlobalWrite:
    def test_global_in_worker_fires(self):
        found = run_rule(
            "PUR001",
            """
            COUNT = 0

            def run_unit(config, unit):
                global COUNT
                COUNT += 1
                return COUNT
            """,
            path=EXPERIMENTS_SAMPLE,
        )
        assert len(found) == 1
        assert "global COUNT" in found[0].message

    def test_transitive_helper_inherits_obligation(self):
        found = run_rule(
            "PUR001",
            """
            TOTAL = 0

            def _bump():
                global TOTAL
                TOTAL += 1

            def run_unit(config, unit):
                _bump()
                return TOTAL
            """,
            path=EXPERIMENTS_SAMPLE,
        )
        assert len(found) == 1
        assert "_bump" in found[0].message

    def test_non_worker_global_is_ignored(self):
        assert not run_rule(
            "PUR001",
            """
            COUNT = 0

            def parent_only_tally():
                global COUNT
                COUNT += 1
            """,
            path=EXPERIMENTS_SAMPLE,
        )

    def test_pure_worker_is_clean(self):
        assert not run_rule(
            "PUR001",
            """
            def run_unit(config, unit):
                return config.score(unit)
            """,
            path=EXPERIMENTS_SAMPLE,
        )


class TestWorkerModuleState:
    def test_mutable_module_read_fires(self):
        found = run_rule(
            "PUR002",
            """
            CACHE = {}

            def run_unit(config, unit):
                return CACHE.get(unit)
            """,
            path=EXPERIMENTS_SAMPLE,
        )
        assert len(found) == 1
        assert "CACHE" in found[0].message

    def test_shadowing_local_is_clean(self):
        assert not run_rule(
            "PUR002",
            """
            CACHE = {}

            def run_unit(config, unit):
                CACHE = {}
                return CACHE.get(unit)
            """,
            path=EXPERIMENTS_SAMPLE,
        )

    def test_immutable_module_constant_is_clean(self):
        assert not run_rule(
            "PUR002",
            """
            ALGORITHMS = ("bl-est", "oihsa")

            def run_unit(config, unit):
                return ALGORITHMS[0]
            """,
            path=EXPERIMENTS_SAMPLE,
        )


class TestUnpicklableSubmission:
    def test_lambda_submission_fires(self):
        found = run_rule(
            "PUR003",
            """
            from concurrent.futures import ProcessPoolExecutor

            def drive(work):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(lambda u: u, work))
            """,
            path=EXPERIMENTS_SAMPLE,
        )
        assert len(found) == 1
        assert "lambda" in found[0].message

    def test_nested_function_submission_fires(self):
        found = run_rule(
            "PUR003",
            """
            from concurrent.futures import ProcessPoolExecutor

            def drive(work):
                def inner(u):
                    return u
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(inner, work))
            """,
            path=EXPERIMENTS_SAMPLE,
        )
        assert len(found) == 1
        assert "drive.inner" in found[0].message

    def test_module_level_trampoline_is_clean(self):
        assert not run_rule(
            "PUR003",
            """
            from concurrent.futures import ProcessPoolExecutor

            def _star(args):
                return args

            def drive(work):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(_star, work))
            """,
            path=EXPERIMENTS_SAMPLE,
        )


class TestKernelRules:
    """KER001-004 apply only to hot functions of the kernel files."""

    def test_kwargs_signature_fires(self):
        found = run_rule(
            "KER001",
            """
            def _resimulate(cand, start, **opts):
                pass
            """,
            path="src/repro/core/batch.py",
        )
        assert len(found) == 1
        assert "**opts" in found[0].message

    def test_call_splat_fires(self):
        found = run_rule(
            "KER001",
            """
            def restore(self, mark):
                self.pop(*mark)
            """,
            path="src/repro/linksched/arraystate.py",
        )
        assert len(found) == 1

    def test_getattr_fires(self):
        found = run_rule(
            "KER002",
            """
            def snapshot(self):
                return len(getattr(self, "journal_index"))
            """,
            path="src/repro/linksched/arraystate.py",
        )
        assert len(found) == 1

    def test_nested_lambda_fires(self):
        found = run_rule(
            "KER003",
            """
            def makespan(self):
                return max(self.finish, key=lambda f: f)
            """,
            path="src/repro/linksched/arraystate.py",
        )
        assert len(found) == 1

    def test_generator_expression_fires(self):
        found = run_rule(
            "KER004",
            """
            def makespan(self):
                return max(f for f in self.finish)
            """,
            path="src/repro/linksched/arraystate.py",
        )
        assert len(found) == 1

    def test_hot_set_follows_module_local_calls(self):
        # _route_plan is hot because _resimulate calls it.
        found = run_rule(
            "KER004",
            """
            class Evaluator:
                def _route_plan(self, src, dst):
                    return list(l for l in self.route(src, dst))

                def _resimulate(self, cand, start):
                    self._route_plan(0, 1)
            """,
            path="src/repro/core/batch.py",
        )
        assert len(found) == 1
        assert "_route_plan" in found[0].message

    def test_cold_functions_are_exempt(self):
        assert not run_rule(
            "KER004",
            """
            def booked_links(self):
                return sorted(lid for lid in self._columns)
            """,
            path="src/repro/linksched/arraystate.py",
        )

    def test_rules_scoped_to_kernel_files(self):
        assert not run_rule(
            "KER004",
            """
            def makespan(self):
                return max(f for f in self.finish)
            """,
            path=CORE,
        )


BATCH = "src/repro/core/batch.py"
ARRAYSTATE = "src/repro/linksched/arraystate.py"


class TestColumnLoop:
    def test_for_over_column_fires(self):
        found = run_rule(
            "ARR001",
            """
            def span(finishes: list[float]) -> float:
                best = 0.0
                for f in finishes:
                    if f > best:
                        best = f
                return best
            """,
            path=ARRAYSTATE,
        )
        assert [f.rule for f in found] == ["ARR001"]
        assert "finishes" in found[0].message

    def test_enumerate_attribute_column_fires(self):
        found = run_rule(
            "ARR001",
            """
            def scan(self) -> int:
                n = 0
                for i, s in enumerate(self.journal_starts):
                    n += i
                return n
            """,
            path=BATCH,
        )
        assert len(found) == 1
        assert "journal_starts" in found[0].message

    def test_range_len_column_fires(self):
        found = run_rule(
            "ARR001",
            """
            def walk(starts: list[float]) -> None:
                for i in range(len(starts)):
                    starts[i] += 1.0
            """,
            path=BATCH,
        )
        assert len(found) == 1

    def test_comprehension_over_column_fires(self):
        found = run_rule(
            "ARR001",
            "total = sum(f for f in finishes)\n",
            path=ARRAYSTATE,
        )
        assert len(found) == 1
        assert "comprehension" in found[0].message

    def test_bulk_operations_are_clean(self):
        assert not run_rule(
            "ARR001",
            """
            import bisect

            def book(starts: list[float], finishes: list[float], t: float) -> None:
                i = bisect.bisect_left(starts, t)
                starts.insert(i, t)
                finishes.insert(i, t + 1.0)
                del starts[i:]
            """,
            path=ARRAYSTATE,
        )

    def test_non_column_loops_are_clean(self):
        assert not run_rule(
            "ARR001",
            """
            def resim(plan: list[tuple[float, float]], n: int) -> float:
                acc = 0.0
                for a, b in plan:
                    acc += b - a
                for i in range(3, n):
                    acc += i
                return acc
            """,
            path=BATCH,
        )

    def test_out_of_scope_path_is_clean(self):
        assert not run_rule(
            "ARR001",
            "best = max(f for f in finishes)\n",
            path=CORE,
        )

    def test_disable_comment_suppresses(self):
        result = lint_source(
            textwrap.dedent(
                """
                def debug_dump(finishes: list[float]) -> list[str]:
                    return [f"{f:.3f}" for f in finishes]  # repro-lint: disable=ARR001
                """
            ),
            ARRAYSTATE,
            select_rules(["ARR001"]),
        )
        assert not result.findings
        assert len(result.suppressed) == 1
