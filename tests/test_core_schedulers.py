"""Behavioral tests for the four schedulers (classic, BA, OIHSA, BBSA)."""

import pytest

from repro.core.ba import BAScheduler
from repro.core.bbsa import BBSAScheduler
from repro.core.classic import ClassicScheduler
from repro.core.oihsa import OIHSAScheduler
from repro.core.validate import validate_schedule
from repro.exceptions import GraphError, SchedulingError, TopologyError
from repro.network.builders import fully_connected, linear_array, random_wan, switched_cluster
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.kernels import fork_join

ALL = [ClassicScheduler, BAScheduler, OIHSAScheduler, BBSAScheduler]


@pytest.mark.parametrize("cls", ALL)
class TestCommonBehaviour:
    def test_single_task(self, cls, net2):
        g = TaskGraph()
        g.add_task(0, 6.0)
        s = cls().schedule(g, net2)
        validate_schedule(s)
        assert s.makespan == 6.0

    def test_chain_on_one_processor_net(self, cls, chain3):
        net = fully_connected(1)
        s = cls().schedule(chain3, net)
        validate_schedule(s)
        assert s.makespan == chain3.total_work()

    def test_diamond_validates(self, cls, diamond4, net4):
        s = cls().schedule(diamond4, net4)
        validate_schedule(s)
        assert s.makespan > 0

    def test_fork_join_wan(self, cls, fork8, wan16):
        s = cls().schedule(fork8, wan16)
        validate_schedule(s)

    def test_deterministic(self, cls, diamond4, wan16):
        m1 = cls().schedule(diamond4, wan16).makespan
        m2 = cls().schedule(diamond4, wan16).makespan
        assert m1 == m2

    def test_scheduler_reusable(self, cls, chain3, diamond4, net4):
        sched = cls()
        s1 = sched.schedule(chain3, net4)
        s2 = sched.schedule(diamond4, net4)
        validate_schedule(s1)
        validate_schedule(s2)
        # second run must not contain first run's state
        assert set(s2.placements) == {t.tid for t in diamond4.tasks()}

    def test_invalid_graph_rejected(self, cls, net2):
        with pytest.raises(GraphError):
            cls().schedule(TaskGraph(), net2)

    def test_disconnected_net_rejected(self, cls, chain3):
        from repro.network.topology import NetworkTopology

        net = NetworkTopology()
        net.add_processor()
        net.add_processor()
        with pytest.raises(TopologyError):
            cls().schedule(chain3, net)

    def test_heterogeneous_processors(self, cls, diamond4):
        net = fully_connected(3, proc_speed=(1, 10), link_speed=(1, 10), rng=5)
        s = cls().schedule(diamond4, net)
        validate_schedule(s)

    def test_zero_cost_edges(self, cls, net4):
        g = TaskGraph()
        g.add_task(0, 1.0)
        g.add_task(1, 1.0)
        g.add_edge(0, 1, 0.0)
        s = cls().schedule(g, net4)
        validate_schedule(s)

    def test_makespan_at_least_critical_compute(self, cls, diamond4, net4):
        # No schedule can beat the heaviest task on the fastest processor.
        from repro.taskgraph.priorities import bottom_levels

        s = cls().schedule(diamond4, net4)
        fastest = max(p.speed for p in net4.processors())
        heaviest = max(t.weight for t in diamond4.tasks())
        assert s.makespan >= heaviest / fastest - 1e-9


class TestClassic:
    def test_no_link_state(self, diamond4, net4):
        s = ClassicScheduler().schedule(diamond4, net4)
        assert s.link_state is None and s.bandwidth_state is None

    def test_ignores_contention(self, fork8):
        # Classic sees a contention-free world: on a star topology its
        # makespan is no larger than BA's contention-aware one.
        net = switched_cluster(8)
        classic = ClassicScheduler().schedule(fork8, net)
        ba = BAScheduler().schedule(fork8, net)
        assert classic.makespan <= ba.makespan + 1e-9

    def test_direct_link_speed_used(self):
        g = TaskGraph()
        g.add_task(0, 1.0)
        g.add_task(1, 1.0)
        g.add_edge(0, 1, 10.0)
        net = fully_connected(2, link_speed=5.0)
        s = ClassicScheduler().schedule(g, net)
        validate_schedule(s)
        if len(s.processors_used()) == 2:
            assert s.edge_arrivals[(0, 1)] == pytest.approx(1.0 + 10.0 / 5.0)


class TestBA:
    def test_modes_all_validate(self, diamond4, wan16):
        for choice in ("blind-eft", "tentative"):
            for shared in (True, False):
                s = BAScheduler(processor_choice=choice, shared_ready_time=shared).schedule(
                    diamond4, wan16
                )
                validate_schedule(s)

    def test_unknown_mode_rejected(self):
        with pytest.raises(SchedulingError):
            BAScheduler(processor_choice="nope")

    def test_tentative_not_worse_than_blind_on_contended_star(self, fork8):
        net = switched_cluster(8)
        blind = BAScheduler().schedule(fork8, net).makespan
        tentative = BAScheduler(
            processor_choice="tentative", shared_ready_time=False
        ).schedule(fork8, net).makespan
        assert tentative <= blind + 1e-9

    def test_uses_bfs_minimal_routes(self, chain3):
        net = linear_array(3)
        s = BAScheduler().schedule(chain3, net)
        validate_schedule(s)
        for e in chain3.edges():
            route = s.edge_route(e.key)
            src = s.placements[e.src].processor
            dst = s.placements[e.dst].processor
            if src != dst:
                from repro.network.routing import bfs_route

                assert len(route) == len(bfs_route(net, src, dst))

    def test_link_state_present(self, diamond4, net4):
        s = BAScheduler().schedule(diamond4, net4)
        assert s.link_state is not None


class TestOIHSA:
    def test_ablation_flags_validate(self, diamond4, wan16):
        for routing in (True, False):
            for insertion in (True, False):
                for priority in (True, False):
                    s = OIHSAScheduler(
                        modified_routing=routing,
                        optimal_insertion=insertion,
                        edge_priority=priority,
                    ).schedule(diamond4, wan16)
                    validate_schedule(s)

    def test_local_comm_exempt_flag(self, diamond4, wan16):
        for exempt in (True, False):
            s = OIHSAScheduler(local_comm_exempt=exempt).schedule(diamond4, wan16)
            validate_schedule(s)

    def test_beats_or_matches_ba_on_contended_fork(self, fork8):
        net = random_wan(8, rng=17)
        ba = BAScheduler().schedule(fork8, net).makespan
        oihsa = OIHSAScheduler().schedule(fork8, net).makespan
        assert oihsa <= ba * 1.15  # allows small noise, forbids blowups


class TestBBSA:
    def test_bandwidth_state_present(self, diamond4, net4):
        s = BBSAScheduler().schedule(diamond4, net4)
        assert s.bandwidth_state is not None
        assert s.link_state is None

    def test_flags_validate(self, diamond4, wan16):
        for routing in (True, False):
            s = BBSAScheduler(modified_routing=routing).schedule(diamond4, wan16)
            validate_schedule(s)

    def test_never_overcommits_links(self, fork8, wan16):
        s = BBSAScheduler().schedule(fork8, wan16)
        state = s.bandwidth_state
        for lids in state.routes().values():
            for lid in lids:
                assert state.profile(lid).max_used() <= 1.0 + 1e-6

    def test_not_worse_than_oihsa_on_hetero_links(self, fork8):
        # Heterogeneous link speeds leave spare bandwidth that only BBSA uses.
        net = random_wan(8, rng=23, link_speed=(1, 10))
        oihsa = OIHSAScheduler().schedule(fork8, net).makespan
        bbsa = BBSAScheduler().schedule(fork8, net).makespan
        assert bbsa <= oihsa * 1.10
