"""Tests for the literature baselines: HEFT, CPOP, annealing, simulate_mapping."""

import pytest

from repro.core.annealing import AnnealingScheduler
from repro.core.ba import BAScheduler
from repro.core.cpop import CPOPScheduler
from repro.core.heft import HEFTScheduler, upward_ranks
from repro.core.cpop import downward_ranks
from repro.core.mapping import simulate_mapping
from repro.core.validate import validate_schedule
from repro.exceptions import SchedulingError
from repro.network.builders import fully_connected, random_wan
from repro.taskgraph.ccr import scale_to_ccr
from repro.taskgraph.generators import random_layered_dag
from repro.taskgraph.kernels import fork_join


class TestRanks:
    def test_upward_rank_of_sink_is_normalized_weight(self, diamond4):
        ranks = upward_ranks(diamond4, mean_proc_speed=2.0, mean_link_speed=1.0)
        assert ranks[3] == diamond4.task(3).weight / 2.0

    def test_upward_rank_dominates_successors(self, diamond4):
        ranks = upward_ranks(diamond4, 1.0, 1.0)
        for e in diamond4.edges():
            assert ranks[e.src] > ranks[e.dst]

    def test_downward_rank_of_source_is_zero(self, diamond4):
        ranks = downward_ranks(diamond4, 1.0, 1.0)
        assert ranks[0] == 0.0

    def test_rank_sum_constant_on_critical_path(self, chain3):
        # On a chain every task lies on the critical path: rank_u + rank_d
        # equals the full path length for all of them.
        ru = upward_ranks(chain3, 1.0, 1.0)
        rd = downward_ranks(chain3, 1.0, 1.0)
        totals = {t: ru[t] + rd[t] for t in chain3.task_ids()}
        assert len({round(v, 9) for v in totals.values()}) == 1


class TestHEFT:
    def test_validates(self, diamond4, wan16):
        s = HEFTScheduler().schedule(diamond4, wan16)
        validate_schedule(s)
        assert s.algorithm == "heft"

    def test_prefers_fast_processors(self):
        g = fork_join(4, rng=1)
        net = fully_connected(3, proc_speed=lambda: 1.0)
        fast = net.processors()[1]
        object.__setattr__(fast, "speed", 10.0)
        s = HEFTScheduler().schedule(g, net)
        # The heavy majority of work should land on the 10x processor.
        on_fast = sum(
            1 for pl in s.placements.values() if pl.processor == fast.vid
        )
        assert on_fast >= len(s.placements) // 2

    def test_insertion_fills_gaps(self):
        # HEFT's insertion EFT can only improve on end-technique classic.
        from repro.core.classic import ClassicScheduler

        g = random_layered_dag(30, rng=4)
        net = fully_connected(4)
        heft = HEFTScheduler().schedule(g, net).makespan
        classic_end = ClassicScheduler(task_insertion=False).schedule(g, net).makespan
        assert heft <= classic_end * 1.2


class TestCPOP:
    def test_validates(self, diamond4, wan16):
        s = CPOPScheduler().schedule(diamond4, wan16)
        validate_schedule(s)

    def test_critical_path_is_colocated(self, chain3, net4):
        # A chain IS the critical path: CPOP must place it all on one
        # processor, making the makespan the serial work.
        s = CPOPScheduler().schedule(chain3, net4)
        assert len(s.processors_used()) == 1
        assert s.makespan == chain3.total_work()

    def test_cp_processor_is_fastest(self):
        g = scale_to_ccr(fork_join(4, rng=2), 1.0)
        net = fully_connected(3, proc_speed=(1, 10), rng=9)
        s = CPOPScheduler().schedule(g, net)
        fastest = max(net.processors(), key=lambda p: (p.speed, -p.vid)).vid
        # Entry and exit tasks are always on the critical path.
        assert s.placements[0].processor == fastest


class TestSimulateMapping:
    def test_respects_mapping(self, diamond4, net4):
        procs = [p.vid for p in net4.processors()]
        mapping = {0: procs[0], 1: procs[1], 2: procs[2], 3: procs[0]}
        s = simulate_mapping(diamond4, net4, mapping)
        validate_schedule(s)
        for tid, vid in mapping.items():
            assert s.placements[tid].processor == vid

    def test_missing_task_rejected(self, diamond4, net4):
        with pytest.raises(SchedulingError):
            simulate_mapping(diamond4, net4, {0: 0})

    def test_non_processor_rejected(self, diamond4, net4):
        switch = net4.switches()[0].vid
        mapping = {t.tid: switch for t in diamond4.tasks()}
        with pytest.raises(SchedulingError):
            simulate_mapping(diamond4, net4, mapping)

    def test_bad_order_rejected(self, diamond4, net4):
        p = net4.processors()[0].vid
        mapping = {t.tid: p for t in diamond4.tasks()}
        with pytest.raises(SchedulingError):
            simulate_mapping(diamond4, net4, mapping, order=[0, 1])

    def test_single_processor_mapping_is_serial(self, diamond4, net4):
        p = net4.processors()[0].vid
        mapping = {t.tid: p for t in diamond4.tasks()}
        s = simulate_mapping(diamond4, net4, mapping)
        assert s.makespan == diamond4.total_work()


class TestAnnealing:
    def test_validates_and_never_worse_than_seed(self):
        g = scale_to_ccr(random_layered_dag(20, rng=6), 2.0)
        net = random_wan(6, rng=7)
        ba = BAScheduler().schedule(g, net)
        sa = AnnealingScheduler(iterations=60, rng=1).schedule(g, net)
        validate_schedule(sa)
        # Replaying BA's own mapping through simulate_mapping can differ
        # slightly from BA (edge order), but annealing keeps the best seen.
        assert sa.makespan <= ba.makespan * 1.05

    def test_deterministic_given_seed(self):
        g = scale_to_ccr(random_layered_dag(15, rng=8), 1.0)
        net = random_wan(4, rng=9)
        m1 = AnnealingScheduler(iterations=40, rng=3).schedule(g, net).makespan
        m2 = AnnealingScheduler(iterations=40, rng=3).schedule(g, net).makespan
        assert m1 == m2

    def test_random_seed_start(self):
        g = random_layered_dag(10, rng=1)
        net = random_wan(4, rng=2)
        s = AnnealingScheduler(iterations=30, seed_with_ba=False, rng=5).schedule(g, net)
        validate_schedule(s)

    def test_bad_params_rejected(self):
        with pytest.raises(SchedulingError):
            AnnealingScheduler(iterations=0)
        with pytest.raises(SchedulingError):
            AnnealingScheduler(cooling=0.0)

    def test_improves_a_bad_start_on_contended_net(self):
        # With a random start, annealing should find something no worse.
        g = scale_to_ccr(fork_join(6, rng=3), 4.0)
        net = random_wan(6, rng=11)
        first = AnnealingScheduler(iterations=1, seed_with_ba=False, rng=2).schedule(g, net)
        longer = AnnealingScheduler(iterations=150, seed_with_ba=False, rng=2).schedule(g, net)
        assert longer.makespan <= first.makespan + 1e-9
