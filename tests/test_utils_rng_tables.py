"""Unit tests for repro.utils.rng and repro.utils.tables."""

import numpy as np
import pytest

from repro.utils.rng import as_rng, spawn_rng
from repro.utils.tables import format_ascii_plot, format_series, format_table


class TestRng:
    def test_int_seed_is_deterministic(self):
        a = as_rng(7).integers(0, 1000, size=10)
        b = as_rng(7).integers(0, 1000, size=10)
        assert (a == b).all()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert as_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_spawn_produces_independent_streams(self):
        children = spawn_rng(as_rng(3), 4)
        draws = [c.integers(0, 1_000_000) for c in children]
        assert len(set(draws)) == 4

    def test_spawn_is_deterministic(self):
        a = [c.integers(0, 10**9) for c in spawn_rng(as_rng(3), 3)]
        b = [c.integers(0, 10**9) for c in spawn_rng(as_rng(3), 3)]
        assert a == b

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rng(as_rng(0), -1)

    def test_spawn_zero_is_empty(self):
        assert spawn_rng(as_rng(0), 0) == []


class TestTables:
    def test_alignment(self):
        out = format_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert lines[0].endswith("bb")
        assert all(len(l) == len(lines[0]) for l in lines)

    def test_float_formatting(self):
        out = format_table(["x"], [[1.23456]])
        assert "1.23" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_series(self):
        out = format_series("x", [1, 2], {"y": [10.0, 20.0]})
        assert "10.00" in out and "20.00" in out

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("x", [1, 2], {"y": [1.0]})

    def test_ascii_plot_contains_markers(self):
        out = format_ascii_plot([0, 1, 2], {"s": [0.0, 1.0, 2.0]})
        assert "*" in out and "s" in out

    def test_ascii_plot_empty(self):
        assert "empty" in format_ascii_plot([], {})

    def test_ascii_plot_flat_series(self):
        out = format_ascii_plot([0, 1], {"s": [5.0, 5.0]})
        assert "*" in out
