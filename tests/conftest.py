"""Shared fixtures: small graphs and topologies used across test modules."""

from __future__ import annotations

import pytest

from repro.network.builders import fully_connected, random_wan, switched_cluster
from repro.taskgraph.graph import TaskGraph


@pytest.fixture(autouse=True)
def _isolated_run_ledger(tmp_path, monkeypatch):
    """Point the run ledger at a throwaway directory for every test.

    CLI commands append to ``.repro-runs`` in the working directory by
    default; without this, running the suite would grow a ledger in the
    repo checkout.
    """
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "repro-runs"))


@pytest.fixture
def chain3() -> TaskGraph:
    """t0 -> t1 -> t2, unit-ish costs."""
    g = TaskGraph(name="chain3")
    g.add_task(0, 2.0)
    g.add_task(1, 3.0)
    g.add_task(2, 4.0)
    g.add_edge(0, 1, 5.0)
    g.add_edge(1, 2, 6.0)
    return g


@pytest.fixture
def diamond4() -> TaskGraph:
    """t0 -> {t1, t2} -> t3."""
    g = TaskGraph(name="diamond4")
    for tid, w in enumerate((2.0, 3.0, 4.0, 1.0)):
        g.add_task(tid, w)
    g.add_edge(0, 1, 10.0)
    g.add_edge(0, 2, 20.0)
    g.add_edge(1, 3, 30.0)
    g.add_edge(2, 3, 40.0)
    return g


@pytest.fixture
def fork8() -> TaskGraph:
    """One fork into 8 parallel tasks and a join (stresses contention)."""
    from repro.taskgraph.kernels import fork_join

    return fork_join(8, rng=7)


@pytest.fixture
def net2():
    """Two processors, one full-duplex cable."""
    return fully_connected(2)


@pytest.fixture
def net4():
    """Four processors behind one switch."""
    return switched_cluster(4)


@pytest.fixture
def wan16():
    """Paper-style random WAN with 16 processors."""
    return random_wan(16, rng=42)
