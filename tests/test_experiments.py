"""Tests for repro.experiments (config, workloads, runner, figures, ablations)."""

import pytest

from repro.exceptions import ReproError
from repro.experiments.ablations import ABLATIONS, run_ablation
from repro.experiments.config import (
    PAPER_CCRS,
    PAPER_PROC_COUNTS,
    ExperimentConfig,
)
from repro.experiments.figures import (
    ALL_FIGURES,
    PAPER_FIGURE1,
    figure1,
    figure3,
)
from repro.experiments.runner import compare_once, improvement_series
from repro.experiments.workloads import paper_workload
from repro.network.validate import validate_topology
from repro.taskgraph.ccr import ccr_of
from repro.taskgraph.validate import validate_graph


class TestConfig:
    def test_paper_grids(self):
        assert len(PAPER_CCRS) == 19
        assert PAPER_PROC_COUNTS == (2, 4, 8, 16, 32, 64, 128)

    def test_paper_scale_uses_full_grids(self):
        cfg = ExperimentConfig.paper_scale()
        assert cfg.ccrs == PAPER_CCRS
        assert cfg.task_range == (40, 1000)

    def test_default_is_smaller(self):
        cfg = ExperimentConfig.default()
        assert cfg.task_range[1] < 1000

    def test_baseline_must_be_included(self):
        with pytest.raises(ReproError):
            ExperimentConfig(algorithms=("oihsa",), baseline="ba")

    def test_bad_repetitions(self):
        with pytest.raises(ReproError):
            ExperimentConfig(repetitions=0)

    def test_with_(self):
        cfg = ExperimentConfig.smoke().with_(repetitions=7)
        assert cfg.repetitions == 7


class TestWorkloads:
    def test_instance_is_valid(self):
        cfg = ExperimentConfig.smoke()
        inst = paper_workload(cfg, ccr=2.0, n_procs=8, rng=1)
        validate_graph(inst.graph)
        validate_topology(inst.net)
        assert len(inst.net.processors()) == 8
        assert ccr_of(inst.graph) == pytest.approx(2.0)

    def test_task_count_in_range(self):
        cfg = ExperimentConfig.smoke()
        for seed in range(5):
            inst = paper_workload(cfg, 1.0, 4, rng=seed)
            lo, hi = cfg.task_range
            assert lo <= inst.graph.num_tasks <= hi

    def test_heterogeneous_speeds(self):
        cfg = ExperimentConfig.smoke(heterogeneous=True)
        inst = paper_workload(cfg, 1.0, 8, rng=2)
        speeds = {p.speed for p in inst.net.processors()}
        assert speeds <= {float(v) for v in range(1, 11)}

    def test_homogeneous_speeds_are_one(self):
        cfg = ExperimentConfig.smoke()
        inst = paper_workload(cfg, 1.0, 8, rng=3)
        assert all(p.speed == 1.0 for p in inst.net.processors())
        assert all(l.speed == 1.0 for l in inst.net.links())

    def test_deterministic(self):
        cfg = ExperimentConfig.smoke()
        a = paper_workload(cfg, 1.0, 4, rng=5)
        b = paper_workload(cfg, 1.0, 4, rng=5)
        assert a.graph.num_edges == b.graph.num_edges
        assert a.net.num_links == b.net.num_links


class TestRunner:
    def test_compare_once(self):
        cfg = ExperimentConfig.smoke()
        inst = paper_workload(cfg, 1.0, 4, rng=7)
        result = compare_once(inst, ("ba", "oihsa", "bbsa"), validate=True)
        assert set(result.makespans) == {"ba", "oihsa", "bbsa"}
        assert all(m > 0 for m in result.makespans.values())

    def test_unknown_algorithm(self):
        cfg = ExperimentConfig.smoke()
        inst = paper_workload(cfg, 1.0, 4, rng=7)
        with pytest.raises(ReproError):
            compare_once(inst, ("nope",))

    def test_improvement_over(self):
        cfg = ExperimentConfig.smoke()
        inst = paper_workload(cfg, 1.0, 4, rng=7)
        result = compare_once(inst, ("ba", "oihsa"))
        imp = result.improvement_over("ba", "oihsa")
        assert imp == pytest.approx(
            100 * (result.makespans["ba"] - result.makespans["oihsa"]) / result.makespans["ba"]
        )
        with pytest.raises(ReproError):
            result.improvement_over("ba", "bbsa")

    def test_improvement_series_shape(self):
        cfg = ExperimentConfig.smoke()
        series = improvement_series(cfg, sweep="ccr")
        assert series["_x"] == list(cfg.ccrs)
        assert len(series["oihsa"]) == len(cfg.ccrs)
        assert len(series["bbsa"]) == len(cfg.ccrs)

    def test_improvement_series_procs(self):
        cfg = ExperimentConfig.smoke()
        series = improvement_series(cfg, sweep="procs")
        assert series["_x"] == [float(p) for p in cfg.proc_counts]

    def test_bad_sweep(self):
        with pytest.raises(ReproError):
            improvement_series(ExperimentConfig.smoke(), sweep="speed")

    def test_series_deterministic(self):
        cfg = ExperimentConfig.smoke()
        assert improvement_series(cfg, sweep="ccr") == improvement_series(cfg, sweep="ccr")

    def test_with_metrics_counter_series_span_every_point(self):
        # Regression guard for the counter padding: every emitted
        # "<algorithm>:<counter>" series must cover the full x grid, even
        # when a counter is first observed late or stops being observed
        # (the synthetic cases live in test_parallel_equivalence.py).
        cfg = ExperimentConfig.smoke()
        series = improvement_series(cfg, sweep="ccr", with_metrics=True)
        n_points = len(series["_x"])
        counter_keys = [k for k in series if ":" in k]
        assert counter_keys
        assert all(len(series[k]) == n_points for k in counter_keys)

    def test_parallel_and_cached_series_match_serial(self, tmp_path):
        cfg = ExperimentConfig.smoke()
        serial = improvement_series(cfg, sweep="procs")
        assert improvement_series(cfg, sweep="procs", jobs=2) == serial
        assert (
            improvement_series(cfg, sweep="procs", cache=tmp_path) == serial
        )
        # warm replay
        assert (
            improvement_series(cfg, sweep="procs", cache=tmp_path) == serial
        )


class TestFigures:
    def test_figure1_smoke(self):
        fig = figure1(ExperimentConfig.smoke())
        assert fig.figure_id == "figure1"
        assert set(fig.measured) == {"oihsa", "bbsa"}
        assert len(fig.paper["oihsa"]) == len(fig.x_values)
        text = fig.to_text()
        assert "CCR" in text and "shape checks" in text

    def test_figure3_requires_heterogeneous(self):
        with pytest.raises(ReproError):
            figure3(ExperimentConfig.smoke(heterogeneous=False))

    def test_figure3_smoke(self):
        fig = figure3(ExperimentConfig.smoke(heterogeneous=True))
        assert fig.figure_id == "figure3"

    def test_all_figures_registry(self):
        assert set(ALL_FIGURES) == {"figure1", "figure2", "figure3", "figure4"}

    def test_reference_grids_match(self):
        assert len(PAPER_FIGURE1["oihsa"]) == len(PAPER_CCRS)

    def test_shape_checks_present(self):
        fig = figure1(ExperimentConfig.smoke())
        assert "oihsa beats BA on average" in fig.shape_checks


class TestAblations:
    def test_known_ablation_runs(self):
        cfg = ExperimentConfig.smoke()
        result = run_ablation("routing", cfg, ccr=1.0, n_procs=8)
        assert result.base == "bfs-routing"
        assert "modified-routing" in result.improvements

    def test_unknown_ablation(self):
        with pytest.raises(ReproError):
            run_ablation("nope")

    def test_registry_contents(self):
        assert set(ABLATIONS) == {
            "routing", "insertion", "edge_order", "bandwidth", "ba_variants",
        }
