"""CFG construction, dataflow fixpoints, and the module-local call graph.

The flow rules (TXN1xx/PUR/KER, dominance OBS001) are only as good as the
graphs they query, so the framework is tested directly: edge shapes for the
control constructs the scheduling code actually uses (try/finally probe
idiom, nested loops with break, early returns), fixpoint convergence on
loops, and call-graph name resolution (lexical function chain, class scopes
skipped, ``self.m()`` over-approximation).
"""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.callgraph import CallGraph
from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.dataflow import (
    all_paths_reach,
    dominators,
    reachable,
    reaching_definitions,
)
from repro.analysis.engine import dotted


def cfg_of(source: str) -> CFG:
    """CFG of the first function defined in ``source``."""
    tree = ast.parse(textwrap.dedent(source))
    func = next(
        n for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)
    )
    return build_cfg(func)


def node_calling(cfg: CFG, name: str):
    """The unique node evaluating a call whose callee ends with ``name``."""
    hits = []
    for node in cfg.nodes:
        for call in cfg.calls_at(node.index):
            if dotted(call.func).endswith(name):
                hits.append(node)
    assert len(hits) == 1, f"{name}: {hits}"
    return hits[0]


class TestCFGConstruction:
    def test_straight_line_chain(self):
        cfg = cfg_of(
            """
            def f(x):
                a = x
                b = a
                return b
            """
        )
        # entry -> a=x -> b=a -> return -> exit, single-successor chain
        # (the return statement itself cannot raise: plain name move).
        index = cfg.entry
        kinds = []
        while index != cfg.exit:
            node = cfg.nodes[index]
            kinds.append(node.kind)
            assert len(node.normal_succ) == 1
            index = node.normal_succ[0]
        assert kinds == ["entry", "stmt", "stmt", "stmt"]

    def test_if_produces_arm_nodes(self):
        cfg = cfg_of(
            """
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                return a
            """
        )
        tests = [n for n in cfg.nodes if n.kind == "test"]
        assert len(tests) == 1
        arms = cfg.arms_of(tests[0].index)
        assert sorted(a.branch for a in arms) == ["false", "true"]
        # Each arm leads into its branch's statement.
        for arm in arms:
            assert len(arm.succ) == 1

    def test_dead_code_after_return_has_no_node(self):
        cfg = cfg_of(
            """
            def f(s):
                s.begin()
                return 1
                s.rollback()
            """
        )
        assert node_calling(cfg, "s.begin") is not None
        labels = [
            dotted(c.func) for n in cfg.nodes for c in cfg.calls_at(n.index)
        ]
        assert "s.rollback" not in labels

    def test_loop_back_edge_and_break_arm(self):
        cfg = cfg_of(
            """
            def f(items):
                for item in items:
                    if item:
                        break
                    use(item)
                return 0
            """
        )
        header = next(n for n in cfg.nodes if n.kind == "for")
        # iter/exhaust leave the header; the break arm is a jump *target*.
        arms = {a.branch for a in cfg.arms_of(header.index)}
        assert arms == {"iter", "exhaust"}
        break_arm = next(
            n
            for n in cfg.nodes
            if n.kind == "arm" and n.branch == "break" and n.test == header.index
        )
        break_stmt = next(
            n
            for n in cfg.nodes
            if n.kind == "stmt" and isinstance(n.ast_node, ast.Break)
        )
        assert break_arm.index in break_stmt.succ
        # The loop body's tail edges back to the header.
        tail = node_calling(cfg, "use")
        assert header.index in tail.normal_succ

    def test_nested_loops_break_targets_innermost(self):
        cfg = cfg_of(
            """
            def f(grid):
                for row in grid:
                    for cell in row:
                        break
                return 0
            """
        )
        headers = [n for n in cfg.nodes if n.kind == "for"]
        assert len(headers) == 2
        inner = headers[1]
        inner_break = next(
            n
            for n in cfg.nodes
            if n.kind == "arm" and n.branch == "break" and n.test == inner.index
        )
        break_stmt = next(
            n
            for n in cfg.nodes
            if n.kind == "stmt" and isinstance(n.ast_node, ast.Break)
        )
        assert inner_break.index in break_stmt.succ

    def test_call_statement_gets_exception_edge(self):
        cfg = cfg_of(
            """
            def f(s):
                try:
                    s.work()
                except ValueError:
                    s.cleanup()
            """
        )
        work = node_calling(cfg, "s.work")
        handler = next(n for n in cfg.nodes if n.kind == "except")
        assert handler.index in work.exc
        assert handler.index not in work.normal_succ

    def test_return_routes_through_finally(self):
        cfg = cfg_of(
            """
            def f(s):
                s.begin()
                try:
                    return s.score()
                finally:
                    s.rollback()
            """
        )
        ret = next(
            n
            for n in cfg.nodes
            if n.kind == "stmt" and isinstance(n.ast_node, ast.Return)
        )
        fin_entry = next(n for n in cfg.nodes if n.kind == "finally")
        finexit = next(n for n in cfg.nodes if n.kind == "finexit")
        # The return does not jump straight to exit: the finally body runs.
        assert cfg.exit not in ret.normal_succ
        assert fin_entry.index in ret.normal_succ
        assert cfg.exit in cfg.nodes[finexit.index].succ

    def test_with_enter_may_raise(self):
        cfg = cfg_of(
            """
            def f(path):
                with opener(path) as fh:
                    fh.read()
            """
        )
        item = next(n for n in cfg.nodes if n.kind == "with")
        assert item.exc  # __enter__ can raise
        assert cfg.exit in item.exc


class TestDataflow:
    def test_reachable_excludes_dead_code(self):
        cfg = cfg_of(
            """
            def f(x):
                return x
                y = 1
            """
        )
        live = reachable(cfg)
        assert cfg.exit in live
        assert all(cfg.nodes[i].kind != "stmt" or i in live for i in live)

    def test_dominators_diamond(self):
        cfg = cfg_of(
            """
            def f(x):
                if x:
                    left()
                else:
                    right()
                join()
            """
        )
        doms = dominators(cfg)
        test = next(n for n in cfg.nodes if n.kind == "test")
        join = node_calling(cfg, "join")
        left = node_calling(cfg, "left")
        # The test dominates the join; neither branch statement does.
        assert test.index in doms[join.index]
        assert left.index not in doms[join.index]
        # Dominance is reflexive and rooted at entry.
        assert join.index in doms[join.index]
        assert cfg.entry in doms[join.index]

    def test_dominators_converge_on_loops(self):
        cfg = cfg_of(
            """
            def f(items):
                total = 0
                for item in items:
                    total = step(total, item)
                return total
            """
        )
        doms = dominators(cfg)
        header = next(n for n in cfg.nodes if n.kind == "for")
        body = node_calling(cfg, "step")
        ret = next(
            n
            for n in cfg.nodes
            if n.kind == "stmt" and isinstance(n.ast_node, ast.Return)
        )
        # The loop header dominates both the body and everything after.
        assert header.index in doms[body.index]
        assert header.index in doms[ret.index]
        # The body does not dominate the exit path (zero-iteration case).
        assert body.index not in doms[ret.index]

    def test_reaching_definitions_join_and_kill(self):
        cfg = cfg_of(
            """
            def f(x):
                a = 1
                if x:
                    a = 2
                return a
            """
        )
        reaching = reaching_definitions(cfg)
        ret = next(
            n
            for n in cfg.nodes
            if n.kind == "stmt" and isinstance(n.ast_node, ast.Return)
        )
        defs_of_a = {d for d in reaching[ret.index] if d[0] == "a"}
        assert len(defs_of_a) == 2  # both the initial and the branch def
        # Parameters are seeded at entry.
        assert ("x", cfg.entry) in reaching[ret.index]

    def test_reaching_definitions_redefinition_kills(self):
        cfg = cfg_of(
            """
            def f():
                a = 1
                a = 2
                return a
            """
        )
        reaching = reaching_definitions(cfg)
        ret = next(
            n
            for n in cfg.nodes
            if n.kind == "stmt" and isinstance(n.ast_node, ast.Return)
        )
        assert len({d for d in reaching[ret.index] if d[0] == "a"}) == 1

    def test_all_paths_reach_diamond(self):
        cfg = cfg_of(
            """
            def f(x):
                if x:
                    hit()
                else:
                    miss()
                return 0
            """
        )
        hit = node_calling(cfg, "hit")
        ok = all_paths_reach(cfg, {hit.index})
        # From entry, only the true branch passes through hit().
        assert not ok[cfg.entry]
        assert ok[hit.index]  # a target satisfies itself

    def test_all_paths_reach_both_branches(self):
        cfg = cfg_of(
            """
            def f(x):
                if x:
                    close_a()
                else:
                    close_b()
                return 0
            """
        )
        a = node_calling(cfg, "close_a")
        b = node_calling(cfg, "close_b")
        ok = all_paths_reach(cfg, {a.index, b.index})
        assert ok[cfg.entry]


CG_SOURCE = """
def helper(x):
    return x

class Evaluator:
    def helper(self, x):
        return x

    def run(self):
        helper(1)
        self.score()

    def score(self):
        return 0

def outer():
    def inner():
        return helper(2)
    return inner()

def chain():
    outer()
"""


class TestCallGraph:
    def setup_method(self):
        self.cg = CallGraph(ast.parse(CG_SOURCE))

    def test_qualnames_collected(self):
        assert {
            "helper",
            "Evaluator.helper",
            "Evaluator.run",
            "Evaluator.score",
            "outer",
            "outer.inner",
            "chain",
        } <= set(self.cg.functions)

    def test_bare_call_skips_class_scope(self):
        # Python resolves a bare ``helper(1)`` inside a method to the
        # module function, never to the sibling method.
        assert "helper" in self.cg.calls["Evaluator.run"]
        assert "Evaluator.helper" not in self.cg.calls["Evaluator.run"]

    def test_self_call_overapproximates_methods(self):
        assert "Evaluator.score" in self.cg.calls["Evaluator.run"]

    def test_nested_function_resolution(self):
        assert "outer.inner" in self.cg.calls["outer"]
        assert "helper" in self.cg.calls["outer.inner"]

    def test_reachability_is_transitive(self):
        reach = self.cg.reachable_from(["chain"])
        assert {"chain", "outer", "outer.inner", "helper"} <= reach
        assert "Evaluator.run" not in reach

    def test_resolve_name(self):
        assert self.cg.resolve_name(None, "helper") == "helper"
        assert self.cg.resolve_name("outer", "inner") == "outer.inner"
        assert self.cg.resolve_name("outer", "nothing") is None
