"""Unit tests for repro.taskgraph.io and repro.taskgraph.validate."""

import json

import pytest

from repro.exceptions import GraphError, SerializationError
from repro.taskgraph.generators import random_layered_dag
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.io import graph_from_json, graph_to_dot, graph_to_json
from repro.taskgraph.validate import validate_graph


class TestJson:
    def test_round_trip(self, diamond4):
        back = graph_from_json(graph_to_json(diamond4))
        assert back.name == diamond4.name
        assert {e.key for e in back.edges()} == {e.key for e in diamond4.edges()}
        assert back.edge(2, 3).cost == 40.0
        assert back.task(0).weight == 2.0

    def test_round_trip_random(self):
        g = random_layered_dag(50, rng=8)
        back = graph_from_json(graph_to_json(g))
        assert back.num_tasks == 50
        assert back.num_edges == g.num_edges

    def test_invalid_json_rejected(self):
        with pytest.raises(SerializationError):
            graph_from_json("{not json")

    def test_wrong_format_rejected(self):
        with pytest.raises(SerializationError):
            graph_from_json(json.dumps({"format": "something/else"}))

    def test_missing_fields_rejected(self):
        doc = {"format": "repro.taskgraph/v1", "tasks": [{"id": 0}], "edges": []}
        with pytest.raises(SerializationError):
            graph_from_json(json.dumps(doc))

    def test_non_dict_rejected(self):
        with pytest.raises(SerializationError):
            graph_from_json("[1, 2]")

    def test_output_is_stable(self, diamond4):
        assert graph_to_json(diamond4) == graph_to_json(diamond4)


class TestDot:
    def test_contains_nodes_and_edges(self, chain3):
        dot = graph_to_dot(chain3)
        assert "n0 -> n1" in dot
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")

    def test_labels_include_costs(self, chain3):
        assert 'label="5"' in graph_to_dot(chain3)


class TestValidate:
    def test_valid_graph_passes(self, diamond4):
        validate_graph(diamond4)

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            validate_graph(TaskGraph())

    def test_cycle_rejected(self):
        g = TaskGraph()
        g.add_task(0, 1)
        g.add_task(1, 1)
        g.add_edge(0, 1, 1)
        g.add_edge(1, 0, 1)
        with pytest.raises(GraphError):
            validate_graph(g)

    def test_nan_weight_rejected(self):
        g = TaskGraph()
        g.add_task(0, float("nan"))
        with pytest.raises(GraphError):
            validate_graph(g)

    def test_inf_cost_rejected(self):
        g = TaskGraph()
        g.add_task(0, 1)
        g.add_task(1, 1)
        g.add_edge(0, 1, float("inf"))
        with pytest.raises(GraphError):
            validate_graph(g)

    def test_disconnected_flagged_when_required(self):
        g = TaskGraph()
        g.add_task(0, 1)
        g.add_task(1, 1)
        validate_graph(g)  # fine by default
        with pytest.raises(GraphError):
            validate_graph(g, require_connected=True)

    def test_single_task_connected(self):
        g = TaskGraph()
        g.add_task(0, 1)
        validate_graph(g, require_connected=True)
