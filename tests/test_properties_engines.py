"""Property-based tests focused on the link engines under fuzzing.

Complements test_properties.py with adversarial inputs for the fluid
bandwidth sweep and the comm-model variants of the slot engines.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.linksched.bandwidth import (
    BandwidthProfile,
    Cumulative,
    UsageSegment,
    forward_through_link,
)
from repro.linksched.commmodel import CommModel
from repro.linksched.insertion import schedule_edge_basic
from repro.linksched.optimal_insertion import schedule_edge_optimal
from repro.linksched.slots import check_queue_invariants
from repro.linksched.state import LinkScheduleState
from repro.network.builders import linear_array
from repro.network.routing import bfs_route

FAST = settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])


def build_profile(raw: list[tuple[float, float, float]]) -> BandwidthProfile:
    """Disjoint random profile from raw (offset, length, used) triples."""
    prof = BandwidthProfile()
    cursor = 0.0
    segments = []
    for offset, length, used in sorted(raw):
        start = max(cursor, offset)
        segments.append(UsageSegment(start, start + length, min(used, 1.0)))
        cursor = start + length
    prof.add_usage(segments)
    return prof


def build_arrival(t0: float, pieces: list[tuple[float, float]], volume_cap: float) -> Cumulative:
    """Non-decreasing piecewise arrival from raw (dt, dv) pairs."""
    points = [(t0, 0.0)]
    t, v = t0, 0.0
    for dt, dv in pieces:
        t += dt
        v = min(v + dv, volume_cap)
        points.append((t, v))
    if points[-1][1] < volume_cap:
        points.append((points[-1][0], volume_cap))  # final jump to cap
    return Cumulative(points)


class TestFluidFuzz:
    @FAST
    @given(
        raw=st.lists(
            st.tuples(st.floats(0, 50), st.floats(0.1, 10), st.floats(0.1, 1.0)),
            max_size=6,
        ),
        t0=st.floats(0, 20),
        volume=st.floats(0.5, 40),
        speed=st.floats(0.5, 8),
    )
    def test_step_arrival_invariants(self, raw, t0, volume, speed):
        prof = build_profile(raw)
        before = list(prof.segments)
        arrival = Cumulative.step(t0, volume)
        dep, usage = forward_through_link(prof, arrival, speed)
        # Volume conserved, never forwarded before availability.
        assert dep.final_volume == pytest.approx(volume, rel=1e-9, abs=1e-9)
        assert dep.start_time >= t0
        # Monotone, bounded by arrival.
        for t, v in dep.points:
            assert v <= arrival.value(t) + 1e-6
        # Usage never exceeds the free capacity anywhere.
        for seg in usage:
            mid = (seg.start + seg.finish) / 2
            assert seg.fraction <= 1.0 - prof.used_at(mid) + 1e-9
        # Probe-only call must not mutate the profile.
        assert prof.segments == before

    @FAST
    @given(
        raw=st.lists(
            st.tuples(st.floats(0, 30), st.floats(0.1, 8), st.floats(0.1, 1.0)),
            max_size=5,
        ),
        t0=st.floats(0, 10),
        pieces=st.lists(
            st.tuples(st.floats(0.1, 5), st.floats(0.0, 10)), min_size=1, max_size=5
        ),
        speed=st.floats(0.5, 4),
    )
    def test_ramp_arrival_invariants(self, raw, t0, pieces, speed):
        volume = min(sum(dv for _, dv in pieces) + 1.0, 30.0)
        prof = build_profile(raw)
        arrival = build_arrival(t0, pieces, volume)
        dep, usage = forward_through_link(prof, arrival, speed, reserve=True)
        assert dep.final_volume == pytest.approx(volume, rel=1e-9, abs=1e-9)
        for t, v in dep.points:
            assert v <= arrival.value(t) + 1e-6
        assert dep.finish_time() >= arrival.finish_time() - 1e-9
        # Reserved: the profile now includes the usage, still within capacity.
        assert prof.max_used() <= 1.0 + 1e-6

    @FAST
    @given(
        volumes=st.lists(st.floats(0.5, 10), min_size=1, max_size=8),
        speed=st.floats(0.5, 4),
    )
    def test_sequential_transfers_fill_capacity(self, volumes, speed):
        """Booking several step transfers at t=0 serializes them exactly:
        total completion equals total volume / speed (full utilization)."""
        prof = BandwidthProfile()
        finish = 0.0
        for i, v in enumerate(volumes):
            dep, _ = forward_through_link(prof, Cumulative.step(0.0, v), speed, reserve=True)
            finish = max(finish, dep.finish_time())
        assert finish == pytest.approx(sum(volumes) / speed, rel=1e-6)


class TestCommModeProperties:
    plans = st.lists(
        st.tuples(st.floats(0.5, 20.0), st.floats(0.0, 20.0)),
        min_size=1,
        max_size=8,
    )
    comms = st.one_of(
        st.builds(CommModel, mode=st.just("cut-through"), hop_delay=st.floats(0, 5)),
        st.builds(CommModel, mode=st.just("store-and-forward"), hop_delay=st.floats(0, 5)),
    )

    @FAST
    @given(plans=plans, comm=comms)
    def test_optimal_never_later_than_basic_any_mode(self, plans, comm):
        """Theorem 1 is a per-insertion guarantee: on the *same* link state,
        optimal insertion never arrives later than basic insertion.  It is
        not a cross-stream guarantee — two engines fed the same edge stream
        diverge once optimal defers a slot within its causality slack, and a
        gap the basic engine left open may not exist in the optimal state
        (e.g. plans [(3,1),(1,1),(1,3),(3,0)] on a 3-node store-and-forward
        array: edge 3 arrives at 6.5 under basic, 7.0 under optimal)."""
        net = linear_array(3, link_speed=2.0)
        ps = [p.vid for p in net.processors()]
        route = bfs_route(net, ps[0], ps[2])
        state = LinkScheduleState()
        for i, (cost, ready) in enumerate(plans):
            state.begin()
            a_b = schedule_edge_basic(state, (i, 100 + i), route, cost, ready, comm)
            state.rollback()
            a_o = schedule_edge_optimal(state, (i, 100 + i), route, cost, ready, comm)
            assert a_o <= a_b + 1e-6
            for link in route:
                check_queue_invariants(state.slots(link.lid))

    @FAST
    @given(plans=plans, comm=comms)
    def test_causality_holds_any_mode(self, plans, comm):
        from repro.linksched.causality import check_route_causality

        net = linear_array(3)
        ps = [p.vid for p in net.processors()]
        route = bfs_route(net, ps[0], ps[2])
        state = LinkScheduleState()
        booked = {}
        for i, (cost, ready) in enumerate(plans):
            key = (i, 100 + i)
            schedule_edge_optimal(state, key, route, cost, ready, comm)
            booked[key] = (cost, ready)
        for key, (cost, ready) in booked.items():
            check_route_causality(state, net, key, cost, ready, comm=comm)

    @FAST
    @given(cost=st.floats(0.5, 20), ready=st.floats(0, 10), delay=st.floats(0, 5))
    def test_store_and_forward_dominates_cut_through(self, cost, ready, delay):
        net = linear_array(4)
        ps = [p.vid for p in net.processors()]
        route = bfs_route(net, ps[0], ps[3])
        ct = schedule_edge_basic(
            LinkScheduleState(), (0, 1), route, cost, ready, CommModel("cut-through", delay)
        )
        sf = schedule_edge_basic(
            LinkScheduleState(), (0, 1), route, cost, ready, CommModel("store-and-forward", delay)
        )
        assert sf >= ct - 1e-9
