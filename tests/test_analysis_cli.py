"""``repro lint`` CLI: exit codes, output formats, baseline workflow, self-lint."""

from __future__ import annotations

import importlib.util
import json
import subprocess
import sys
import tomllib
from pathlib import Path

import pytest

from repro.__main__ import main

REPO_ROOT = Path(__file__).resolve().parents[1]

FIRING = "def same(a: float, b: float) -> bool:\n    return a == b\n"
CLEAN = "def same(a: float, b: float) -> bool:\n    return abs(a - b) <= 1e-6\n"


@pytest.fixture
def firing_tree(tmp_path):
    """A tiny tree with exactly one FLT001 finding."""
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "sample.py").write_text(FIRING)
    return tmp_path


def lint(*args: str) -> int:
    return main(["lint", *args])


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "sample.py").write_text(CLEAN)
        assert lint("--no-baseline", str(tmp_path / "src")) == 0

    def test_findings_exit_one(self, firing_tree, capsys):
        assert lint("--no-baseline", str(firing_tree / "src")) == 1

    def test_unknown_rule_id_exits_two(self, firing_tree, capsys):
        assert lint("--select", "NOPE99", str(firing_tree / "src")) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_empty_selection_exits_two(self, firing_tree, capsys):
        code = lint(
            "--select", "FLT001", "--ignore", "FLT001", str(firing_tree / "src")
        )
        assert code == 2


class TestOutput:
    def test_text_format_is_editor_stable(self, firing_tree, capsys):
        lint("--no-baseline", str(firing_tree / "src"))
        out_line = capsys.readouterr().out.strip().splitlines()[0]
        path, line, rest = out_line.split(":", 2)
        col, rule, _message = rest.split(" ", 2)
        assert path.endswith("sample.py")
        assert int(line) == 2 and int(col) >= 1
        assert rule == "FLT001"

    def test_summary_goes_to_stderr(self, firing_tree, capsys):
        lint("--no-baseline", str(firing_tree / "src"))
        err = capsys.readouterr().err
        assert "1 finding(s)" in err

    def test_json_format(self, firing_tree, capsys):
        lint("--no-baseline", "--format", "json", str(firing_tree / "src"))
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] == 2
        assert "FLT001" in doc["rules"]
        assert doc["summary"]["findings"] == 1
        assert doc["findings"][0]["rule"] == "FLT001"
        assert doc["findings"][0]["snippet"] == "return a == b"

    def test_output_file_written_regardless_of_format(self, firing_tree, capsys):
        report = firing_tree / "lint.json"
        lint("--no-baseline", "--output", str(report), str(firing_tree / "src"))
        out = capsys.readouterr().out
        assert "{" not in out  # stdout stayed in text format
        doc = json.loads(report.read_text())
        assert doc["schema_version"] == 2
        assert doc["summary"]["findings"] == 1

    def test_select_and_ignore(self, firing_tree, capsys):
        assert lint(
            "--no-baseline", "--select", "DET001", str(firing_tree / "src")
        ) == 0
        assert lint(
            "--no-baseline", "--ignore", "FLT001", str(firing_tree / "src")
        ) == 0

    def test_list_rules(self, capsys):
        assert lint("--list-rules") == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "FLT001", "OBS001", "TXN001"):
            assert rule_id in out


class TestBaseline:
    def test_write_then_match(self, firing_tree, capsys):
        baseline = firing_tree / "baseline.json"
        assert lint(
            "--baseline", str(baseline), "--write-baseline",
            str(firing_tree / "src"),
        ) == 0
        assert baseline.exists()
        # Same tree now lints clean against its baseline.
        assert lint("--baseline", str(baseline), str(firing_tree / "src")) == 0
        assert "1 baselined" in capsys.readouterr().err

    def test_stale_entry_fails(self, firing_tree, capsys):
        baseline = firing_tree / "baseline.json"
        lint("--baseline", str(baseline), "--write-baseline", str(firing_tree / "src"))
        sample = firing_tree / "src" / "repro" / "core" / "sample.py"
        sample.write_text(CLEAN)  # finding gone -> entry is stale
        assert lint("--baseline", str(baseline), str(firing_tree / "src")) == 1
        assert "stale baseline entry" in capsys.readouterr().err

    def test_fail_on_baseline(self, firing_tree, capsys):
        baseline = firing_tree / "baseline.json"
        lint("--baseline", str(baseline), "--write-baseline", str(firing_tree / "src"))
        code = lint(
            "--baseline", str(baseline), "--fail-on-baseline",
            str(firing_tree / "src"),
        )
        assert code == 1
        assert "--fail-on-baseline" in capsys.readouterr().err

    def test_count_budget_catches_new_duplicates(self, firing_tree, capsys):
        baseline = firing_tree / "baseline.json"
        lint("--baseline", str(baseline), "--write-baseline", str(firing_tree / "src"))
        sample = firing_tree / "src" / "repro" / "core" / "sample.py"
        # A second identical violation exceeds the count=1 budget.
        sample.write_text(FIRING + "\n\ndef other(a: float, b: float) -> bool:\n    return a == b\n")
        assert lint("--baseline", str(baseline), str(firing_tree / "src")) == 1

    def test_corrupt_baseline_exits_two(self, firing_tree, capsys):
        baseline = firing_tree / "baseline.json"
        baseline.write_text("{\"version\": 99}")
        assert lint("--baseline", str(baseline), str(firing_tree / "src")) == 2


class TestStaleClassification:
    """Renames, subset runs, and ``--update-baseline`` pruning."""

    def _seed(self, firing_tree):
        baseline = firing_tree / "baseline.json"
        lint("--baseline", str(baseline), "--write-baseline",
             str(firing_tree / "src"))
        return baseline

    def test_renamed_file_orphans_entry(self, firing_tree, capsys):
        baseline = self._seed(firing_tree)
        sample = firing_tree / "src" / "repro" / "core" / "sample.py"
        sample.rename(sample.with_name("renamed.py"))
        assert lint("--baseline", str(baseline), str(firing_tree / "src")) == 1
        err = capsys.readouterr().err
        assert "no longer exists" in err
        assert "--update-baseline" in err

    def test_orphaned_entry_has_json_status(self, firing_tree, capsys):
        baseline = self._seed(firing_tree)
        sample = firing_tree / "src" / "repro" / "core" / "sample.py"
        sample.rename(sample.with_name("renamed.py"))
        lint("--baseline", str(baseline), "--format", "json",
             str(firing_tree / "src"))
        doc = json.loads(capsys.readouterr().out)
        # The renamed copy fires fresh; the old entry is orphaned.
        assert doc["summary"]["findings"] == 1
        assert [e["status"] for e in doc["stale_baseline"]] == ["orphaned"]

    def test_update_baseline_prunes_orphans(self, firing_tree, capsys):
        baseline = self._seed(firing_tree)
        sample = firing_tree / "src" / "repro" / "core" / "sample.py"
        sample.write_text(CLEAN)
        sample.with_name("gone.py").write_text(FIRING)
        lint("--baseline", str(baseline), "--write-baseline",
             str(firing_tree / "src"))
        (firing_tree / "src" / "repro" / "core" / "gone.py").unlink()
        code = lint("--baseline", str(baseline), "--update-baseline",
                    str(firing_tree / "src"))
        assert code == 0
        assert "pruned 1 stale entry" in capsys.readouterr().err
        assert json.loads(baseline.read_text())["entries"] == []
        # The pruned baseline is durable: the next plain run is clean.
        assert lint("--baseline", str(baseline), str(firing_tree / "src")) == 0

    def test_rule_subset_run_leaves_entries_unchecked(self, firing_tree, capsys):
        baseline = self._seed(firing_tree)
        sample = firing_tree / "src" / "repro" / "core" / "sample.py"
        sample.write_text(CLEAN)  # full run would flag the entry as changed
        code = lint("--baseline", str(baseline), "--select", "DET001",
                    str(firing_tree / "src"))
        assert code == 0
        assert "stale" not in capsys.readouterr().err

    def test_path_subset_run_leaves_entries_unchecked(self, firing_tree, capsys):
        baseline = self._seed(firing_tree)
        other = firing_tree / "src" / "repro" / "utils"
        other.mkdir()
        (other / "misc.py").write_text("X = 1\n")
        code = lint("--baseline", str(baseline), str(other))
        assert code == 0
        lint("--baseline", str(baseline), "--format", "json", str(other))
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["unchecked_baseline"] == 1
        assert doc["stale_baseline"] == []


class TestRepoIsClean:
    """The committed tree must lint clean — the PR's zero-findings baseline."""

    def test_src_has_zero_unsuppressed_findings(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        assert lint("src") == 0
        err = capsys.readouterr().err
        assert "0 finding(s)" in err
        assert "stale" not in err

    def test_tests_lint_clean_too(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        assert lint("src", "tests") == 0

    def test_module_entrypoint_subprocess(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "src"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr


class TestTypingConfig:
    def test_mypy_config_present_and_strict_on_core(self):
        doc = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())
        mypy = doc["tool"]["mypy"]
        assert mypy["packages"] == ["repro"]
        overrides = doc["tool"]["mypy"]["overrides"]
        strict = next(
            o for o in overrides if "repro.core.*" in o.get("module", [])
        )
        assert strict["disallow_untyped_defs"] is True
        assert "repro.linksched.*" in strict["module"]
        assert "repro.analysis.*" in strict["module"]

    def test_py_typed_marker_ships(self):
        assert (REPO_ROOT / "src" / "repro" / "py.typed").exists()
        package_data = tomllib.loads(
            (REPO_ROOT / "pyproject.toml").read_text()
        )["tool"]["setuptools"]["package-data"]
        assert "py.typed" in package_data["repro"]

    @pytest.mark.skipif(
        importlib.util.find_spec("mypy") is None,
        reason="mypy not installed in this environment",
    )
    def test_mypy_passes_on_strict_core(self):
        proc = subprocess.run(
            [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout
