"""Unit tests for repro.network.topology."""

import pytest

from repro.exceptions import TopologyError
from repro.network.topology import Link, NetworkTopology, Vertex


class TestVertexAndLink:
    def test_processor_needs_positive_speed(self):
        with pytest.raises(TopologyError):
            Vertex(0, "processor", 0.0)

    def test_switch_speed_ignored(self):
        assert Vertex(0, "switch", 1.0).is_processor is False

    def test_link_needs_positive_speed(self):
        with pytest.raises(TopologyError):
            Link(0, 0.0, 0, 1)


class TestConstruction:
    def test_ids_are_sequential(self):
        net = NetworkTopology()
        a = net.add_processor()
        b = net.add_switch()
        assert (a.vid, b.vid) == (0, 1)

    def test_full_duplex_creates_two_links(self):
        net = NetworkTopology()
        a, b = net.add_processor(), net.add_processor()
        fwd, bwd = net.connect(a, b, 2.0)
        assert (fwd.src, fwd.dst) == (a.vid, b.vid)
        assert (bwd.src, bwd.dst) == (b.vid, a.vid)
        assert net.num_links == 2

    def test_half_duplex_creates_one_shared_link(self):
        net = NetworkTopology()
        a, b = net.add_processor(), net.add_processor()
        (link,) = net.connect(a, b, duplex="half")
        # Reachable in both directions through the same resource.
        assert [l.lid for l, _ in net.out_links(a.vid)] == [link.lid]
        assert [l.lid for l, _ in net.out_links(b.vid)] == [link.lid]

    def test_self_connection_rejected(self):
        net = NetworkTopology()
        a = net.add_processor()
        with pytest.raises(TopologyError):
            net.connect(a, a)

    def test_unknown_vertex_rejected(self):
        net = NetworkTopology()
        net.add_processor()
        with pytest.raises(TopologyError):
            net.connect(0, 99)

    def test_unknown_duplex_rejected(self):
        net = NetworkTopology()
        a, b = net.add_processor(), net.add_processor()
        with pytest.raises(TopologyError):
            net.connect(a, b, duplex="simplex")

    def test_parallel_cables_allowed(self):
        net = NetworkTopology()
        a, b = net.add_processor(), net.add_processor()
        net.connect(a, b)
        net.connect(a, b)
        assert net.num_links == 4


class TestBus:
    def test_bus_connects_all_pairs(self):
        net = NetworkTopology()
        ps = [net.add_processor() for _ in range(3)]
        bus = net.add_bus(ps, speed=4.0)
        for p in ps:
            nbrs = {v for l, v in net.out_links(p.vid) if l.lid == bus.lid}
            assert nbrs == {q.vid for q in ps if q is not p}

    def test_bus_needs_two_members(self):
        net = NetworkTopology()
        p = net.add_processor()
        with pytest.raises(TopologyError):
            net.add_bus([p])

    def test_bus_duplicate_members_rejected(self):
        net = NetworkTopology()
        p, q = net.add_processor(), net.add_processor()
        with pytest.raises(TopologyError):
            net.add_bus([p, q, p])

    def test_bus_kind(self):
        net = NetworkTopology()
        ps = [net.add_processor() for _ in range(2)]
        assert net.add_bus(ps).kind == "bus"


class TestQueries:
    def test_processors_and_switches(self, net4):
        assert len(net4.processors()) == 4
        assert len(net4.switches()) == 1

    def test_mean_link_speed(self):
        net = NetworkTopology()
        a, b = net.add_processor(), net.add_processor()
        net.connect(a, b, 2.0)
        net.connect(a, b, 4.0)
        assert net.mean_link_speed() == 3.0

    def test_mean_link_speed_no_links(self):
        net = NetworkTopology()
        net.add_processor()
        with pytest.raises(TopologyError):
            net.mean_link_speed()

    def test_mean_processor_speed(self):
        net = NetworkTopology()
        net.add_processor(1.0)
        net.add_processor(3.0)
        assert net.mean_processor_speed() == 2.0

    def test_unknown_ids_raise(self, net4):
        with pytest.raises(TopologyError):
            net4.vertex(99)
        with pytest.raises(TopologyError):
            net4.link(99)
        with pytest.raises(TopologyError):
            net4.out_links(99)

    def test_to_networkx_arcs(self, net2):
        g = net2.to_networkx()
        assert g.number_of_nodes() == 2
        assert g.number_of_edges() == 2  # one arc per direction
