"""Unit tests for small helpers: repro.types and figure-result internals."""

import pytest

from repro.experiments.figures import FigureResult, _interp_reference
from repro.types import EPS, feq, fle, flt


class TestFloatHelpers:
    def test_feq_within_eps(self):
        assert feq(1.0, 1.0 + EPS / 2)
        assert not feq(1.0, 1.0 + 10 * EPS)

    def test_fle(self):
        assert fle(1.0, 1.0)
        assert fle(1.0 + EPS / 2, 1.0)
        assert not fle(2.0, 1.0)

    def test_flt(self):
        assert flt(1.0, 2.0)
        assert not flt(1.0, 1.0 + EPS / 2)

    def test_custom_eps(self):
        assert feq(1.0, 1.4, eps=0.5)
        assert flt(1.0, 2.0, eps=0.5)


class TestInterpReference:
    def test_exact_grid_passthrough(self):
        ref = {"a": [1.0, 2.0, 3.0]}
        out = _interp_reference(ref, (1.0, 2.0, 3.0), [1.0, 2.0, 3.0])
        assert out["a"] == [1.0, 2.0, 3.0]

    def test_interpolates_midpoints(self):
        ref = {"a": [0.0, 10.0]}
        out = _interp_reference(ref, (0.0, 1.0), [0.5])
        assert out["a"] == [5.0]

    def test_clamps_outside_grid(self):
        ref = {"a": [1.0, 2.0]}
        out = _interp_reference(ref, (0.0, 1.0), [-1.0, 5.0])
        assert out["a"] == [1.0, 2.0]


def make_result(x, oihsa, bbsa, x_label="CCR"):
    return FigureResult(
        figure_id="figX",
        title="synthetic",
        x_label=x_label,
        x_values=x,
        measured={"oihsa": oihsa, "bbsa": bbsa},
        paper={"oihsa": oihsa, "bbsa": bbsa},
    )


class TestShapeChecks:
    def test_interior_peak_passes(self):
        r = make_result([0.1, 1.0, 5.0, 10.0], [5, 20, 25, 15], [6, 22, 28, 18])
        checks = r.run_shape_checks()
        assert checks["improvement rises from the low end"]
        assert checks["improvement saturates at the high end"]

    def test_peak_at_start_flagged(self):
        r = make_result([0.1, 1.0, 5.0], [30, 20, 10], [30, 20, 10])
        checks = r.run_shape_checks()
        assert not checks["improvement rises from the low end"]

    def test_peak_at_end_flagged(self):
        r = make_result([0.1, 1.0, 5.0], [5, 10, 30], [5, 10, 30])
        checks = r.run_shape_checks()
        assert not checks["improvement saturates at the high end"]

    def test_processor_sweep_uses_growth_check(self):
        r = make_result([4, 8, 16, 32], [5, 6, 10, 12], [5, 6, 10, 12],
                        x_label="processors")
        checks = r.run_shape_checks()
        assert checks["improvement grows with processors"]
        assert "improvement rises from the low end" not in checks

    def test_negative_averages_flagged(self):
        r = make_result([1, 2, 3], [-5, -10, -2], [-4, -9, -1])
        checks = r.run_shape_checks()
        assert not checks["oihsa beats BA on average"]
        assert not checks["bbsa beats BA on average"]

    def test_bbsa_below_oihsa_flagged(self):
        r = make_result([1, 2, 3], [20, 20, 20], [5, 5, 5])
        checks = r.run_shape_checks()
        assert not checks["bbsa >= oihsa on average"]

    def test_to_text_with_plot(self):
        r = make_result([1, 2, 3], [5, 10, 8], [6, 12, 9])
        text = r.to_text(plot=True)
        assert "figX" in text and "shape checks" in text and "*" in text
