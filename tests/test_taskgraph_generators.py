"""Unit tests for repro.taskgraph.generators."""

import pytest

from repro.exceptions import GraphError
from repro.taskgraph.generators import random_fan_dag, random_layered_dag
from repro.taskgraph.validate import validate_graph


class TestRandomLayered:
    @pytest.mark.parametrize("n", [1, 2, 10, 100])
    def test_task_count(self, n):
        assert random_layered_dag(n, rng=1).num_tasks == n

    def test_is_valid_dag(self):
        validate_graph(random_layered_dag(60, rng=2))

    def test_deterministic(self):
        a = random_layered_dag(30, rng=9)
        b = random_layered_dag(30, rng=9)
        assert {e.key for e in a.edges()} == {e.key for e in b.edges()}
        assert [t.weight for t in a.tasks()] == [t.weight for t in b.tasks()]

    def test_different_seeds_differ(self):
        a = random_layered_dag(30, rng=1)
        b = random_layered_dag(30, rng=2)
        assert {e.key for e in a.edges()} != {e.key for e in b.edges()}

    def test_costs_in_range(self):
        g = random_layered_dag(50, rng=3, weight_range=(5, 10), cost_range=(2, 4))
        assert all(5 <= t.weight <= 10 for t in g.tasks())
        assert all(2 <= e.cost <= 4 for e in g.edges())

    def test_every_non_source_has_parent(self):
        g = random_layered_dag(80, rng=4)
        sources = set(g.sources())
        for tid in g.task_ids():
            if tid not in sources:
                assert g.predecessors(tid)

    def test_density_increases_edges(self):
        sparse = random_layered_dag(60, rng=5, density=0.02)
        dense = random_layered_dag(60, rng=5, density=0.5)
        assert dense.num_edges > sparse.num_edges

    def test_max_fan_in_respected(self):
        g = random_layered_dag(80, rng=6, density=0.9, max_fan_in=3)
        assert max(len(g.predecessors(t)) for t in g.task_ids()) <= 3

    def test_shape_controls_depth(self):
        import networkx as nx

        deep = random_layered_dag(100, rng=7, shape=0.5)
        wide = random_layered_dag(100, rng=7, shape=4.0)
        assert nx.dag_longest_path_length(deep.to_networkx()) >= nx.dag_longest_path_length(
            wide.to_networkx()
        )

    def test_bad_args_rejected(self):
        with pytest.raises(GraphError):
            random_layered_dag(0)
        with pytest.raises(GraphError):
            random_layered_dag(10, density=1.5)
        with pytest.raises(GraphError):
            random_layered_dag(10, shape=0.0)


class TestRandomFan:
    def test_task_count(self):
        assert random_fan_dag(25, rng=1).num_tasks == 25

    def test_is_valid_dag(self):
        validate_graph(random_fan_dag(40, rng=2))

    def test_connected_from_root(self):
        g = random_fan_dag(40, rng=3)
        import networkx as nx

        assert nx.is_weakly_connected(g.to_networkx())

    def test_single_task(self):
        assert random_fan_dag(1, rng=1).num_edges == 0

    def test_bad_args_rejected(self):
        with pytest.raises(GraphError):
            random_fan_dag(0)
        with pytest.raises(GraphError):
            random_fan_dag(5, max_out_degree=0)
