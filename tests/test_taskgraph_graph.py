"""Unit tests for repro.taskgraph.graph."""

import pytest

from repro.exceptions import CycleError, GraphError
from repro.taskgraph.graph import CommEdge, Task, TaskGraph


class TestTaskAndEdge:
    def test_negative_weight_rejected(self):
        with pytest.raises(GraphError):
            Task(0, -1.0)

    def test_zero_weight_allowed(self):
        assert Task(0, 0.0).weight == 0.0

    def test_negative_cost_rejected(self):
        with pytest.raises(GraphError):
            CommEdge(0, 1, -1.0)

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            CommEdge(3, 3, 1.0)

    def test_edge_key(self):
        assert CommEdge(1, 2, 0.5).key == (1, 2)


class TestConstruction:
    def test_duplicate_task_rejected(self, chain3):
        with pytest.raises(GraphError):
            chain3.add_task(0, 1.0)

    def test_duplicate_edge_rejected(self, chain3):
        with pytest.raises(GraphError):
            chain3.add_edge(0, 1, 2.0)

    def test_edge_to_unknown_task_rejected(self, chain3):
        with pytest.raises(GraphError):
            chain3.add_edge(0, 99, 1.0)
        with pytest.raises(GraphError):
            chain3.add_edge(99, 0, 1.0)

    def test_counts(self, chain3):
        assert chain3.num_tasks == 3
        assert chain3.num_edges == 2


class TestQueries:
    def test_unknown_task_raises(self, chain3):
        with pytest.raises(GraphError):
            chain3.task(42)
        with pytest.raises(GraphError):
            chain3.successors(42)
        with pytest.raises(GraphError):
            chain3.predecessors(42)

    def test_unknown_edge_raises(self, chain3):
        with pytest.raises(GraphError):
            chain3.edge(2, 0)

    def test_adjacency(self, diamond4):
        assert set(diamond4.successors(0)) == {1, 2}
        assert set(diamond4.predecessors(3)) == {1, 2}

    def test_in_out_edges(self, diamond4):
        assert {e.key for e in diamond4.in_edges(3)} == {(1, 3), (2, 3)}
        assert {e.key for e in diamond4.out_edges(0)} == {(0, 1), (0, 2)}

    def test_sources_and_sinks(self, diamond4):
        assert diamond4.sources() == [0]
        assert diamond4.sinks() == [3]

    def test_totals(self, diamond4):
        assert diamond4.total_work() == 10.0
        assert diamond4.total_comm() == 100.0


class TestTopologicalOrder:
    def test_order_respects_precedence(self, diamond4):
        order = diamond4.topological_order()
        pos = {t: i for i, t in enumerate(order)}
        for e in diamond4.edges():
            assert pos[e.src] < pos[e.dst]

    def test_cycle_detected(self):
        g = TaskGraph()
        g.add_task(0, 1)
        g.add_task(1, 1)
        g.add_edge(0, 1, 1)
        g.add_edge(1, 0, 1)
        with pytest.raises(CycleError):
            g.topological_order()

    def test_deterministic_tie_break(self):
        g = TaskGraph()
        for t in (2, 0, 1):
            g.add_task(t, 1)
        assert g.topological_order() == [0, 1, 2]


class TestInterop:
    def test_networkx_round_trip(self, diamond4):
        back = TaskGraph.from_networkx(diamond4.to_networkx())
        assert back.num_tasks == diamond4.num_tasks
        assert back.num_edges == diamond4.num_edges
        assert back.edge(2, 3).cost == 40.0
        assert back.task(1).weight == 3.0

    def test_copy_is_independent(self, chain3):
        dup = chain3.copy()
        dup.add_task(99, 1.0)
        assert not chain3.has_task(99)
        assert dup.has_task(99)

    def test_copy_preserves_adjacency(self, diamond4):
        dup = diamond4.copy()
        assert dup.successors(0) == diamond4.successors(0)
