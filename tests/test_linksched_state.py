"""Unit tests for repro.linksched.state (transactions, journal mode, fused booking)."""

import pytest

from repro.exceptions import SchedulingError
from repro.linksched.commmodel import CUT_THROUGH, STORE_AND_FORWARD, CommModel
from repro.linksched.insertion import schedule_edge_basic
from repro.linksched.slots import TimeSlot
from repro.linksched.state import LinkScheduleState
from repro.network.topology import Link


def make_state():
    state = LinkScheduleState()
    state.record_route((0, 1), (0, 1))
    state.insert(0, 0, TimeSlot((0, 1), 0.0, 2.0))
    state.insert(1, 0, TimeSlot((0, 1), 2.0, 4.0))
    return state


class TestBasics:
    def test_slots_empty_for_unknown_link(self):
        assert LinkScheduleState().slots(7) == []

    def test_insert_and_lookup(self):
        state = make_state()
        assert state.slot_of((0, 1), 0).finish == 2.0
        assert state.has_slot((0, 1), 0)
        assert not state.has_slot((0, 1), 5)

    def test_slot_of_missing_raises(self):
        with pytest.raises(SchedulingError):
            LinkScheduleState().slot_of((0, 1), 0)

    def test_double_booking_rejected(self):
        state = make_state()
        with pytest.raises(SchedulingError):
            state.insert(0, 1, TimeSlot((0, 1), 5.0, 6.0))

    def test_route_bookkeeping(self):
        state = make_state()
        assert state.route_of((0, 1)) == (0, 1)
        assert state.has_route((0, 1))
        with pytest.raises(SchedulingError):
            state.route_of((9, 9))
        with pytest.raises(SchedulingError):
            state.record_route((0, 1), (5,))

    def test_next_link(self):
        state = make_state()
        assert state.next_link_of((0, 1), 0) == 1
        assert state.next_link_of((0, 1), 1) is None
        with pytest.raises(SchedulingError):
            state.next_link_of((0, 1), 42)

    def test_used_links(self):
        assert sorted(make_state().used_links()) == [0, 1]


class TestTransactions:
    def test_rollback_restores_slots(self):
        state = make_state()
        state.begin()
        state.insert(0, 1, TimeSlot((2, 3), 5.0, 6.0))
        state.record_route((2, 3), (0,))
        state.rollback()
        assert len(state.slots(0)) == 1
        assert not state.has_route((2, 3))

    def test_commit_keeps_changes(self):
        state = make_state()
        state.begin()
        state.insert(0, 1, TimeSlot((2, 3), 5.0, 6.0))
        state.record_route((2, 3), (0,))
        state.commit()
        assert len(state.slots(0)) == 2
        assert state.has_route((2, 3))

    def test_rollback_restores_fresh_link(self):
        state = make_state()
        state.begin()
        state.insert(9, 0, TimeSlot((2, 3), 0.0, 1.0))
        state.rollback()
        assert state.slots(9) == []

    def test_rollback_of_replace_suffix(self):
        state = make_state()
        before = list(state.slots(0))
        state.begin()
        state.replace_suffix(0, 0, [TimeSlot((2, 3), 0.0, 1.0), TimeSlot((0, 1), 1.0, 3.0)])
        state.rollback()
        assert state.slots(0) == before
        assert state.slot_of((0, 1), 0).start == 0.0

    def test_no_nested_transactions(self):
        state = make_state()
        state.begin()
        with pytest.raises(SchedulingError):
            state.begin()
        state.rollback()

    def test_commit_without_begin_rejected(self):
        with pytest.raises(SchedulingError):
            LinkScheduleState().commit()
        with pytest.raises(SchedulingError):
            LinkScheduleState().rollback()

    def test_reads_inside_transaction_see_changes(self):
        state = make_state()
        state.begin()
        state.insert(0, 1, TimeSlot((2, 3), 5.0, 6.0))
        assert len(state.slots(0)) == 2
        state.rollback()

    def test_sequential_transactions(self):
        state = make_state()
        for i in range(3):
            state.begin()
            state.insert(0, 1, TimeSlot((2, 3 + i), 5.0 + i, 6.0 + i))
            state.rollback()
        assert len(state.slots(0)) == 1


class TestReplaceSuffix:
    def test_replace_updates_index(self):
        state = make_state()
        moved = TimeSlot((0, 1), 1.0, 3.0)
        state.replace_suffix(0, 0, [TimeSlot((7, 8), 0.0, 1.0), moved])
        assert state.slot_of((0, 1), 0) is moved
        assert state.slot_of((7, 8), 0).start == 0.0

    def test_replace_rejects_duplicate_edges(self):
        state = make_state()
        with pytest.raises(SchedulingError):
            state.replace_suffix(
                0, 0, [TimeSlot((7, 8), 0.0, 1.0), TimeSlot((7, 8), 2.0, 3.0)]
            )


class TestJournalMode:
    def make_journaled(self):
        state = LinkScheduleState()
        state.enable_journal()
        state.record_route((0, 1), (0, 1))
        state.insert(0, 0, TimeSlot((0, 1), 0.0, 2.0))
        state.insert(1, 0, TimeSlot((0, 1), 2.0, 4.0))
        return state

    def test_mark_and_rollback_restores_slots_and_routes(self):
        state = self.make_journaled()
        mark = state.journal_mark()
        state.record_route((2, 3), (0,))
        state.insert(0, 1, TimeSlot((2, 3), 4.0, 5.0))
        assert len(state.slots(0)) == 2
        state.rollback_to(mark)
        assert [s.edge for s in state.slots(0)] == [(0, 1)]
        assert not state.has_route((2, 3))
        assert not state.has_slot((2, 3), 0)

    def test_nested_marks_rewind_to_any_checkpoint(self):
        state = self.make_journaled()
        marks = []
        for i in range(3):
            marks.append(state.journal_mark())
            state.record_route((5, 6 + i), (0,))
            state.insert(0, 1 + i, TimeSlot((5, 6 + i), 4.0 + i, 5.0 + i))
        state.rollback_to(marks[1])
        assert [s.edge for s in state.slots(0)] == [(0, 1), (5, 6)]
        state.rollback_to(marks[0])
        assert [s.edge for s in state.slots(0)] == [(0, 1)]

    def test_rollback_bumps_version(self):
        state = self.make_journaled()
        mark = state.journal_mark()
        before = state.version(0)
        state.insert(0, 1, TimeSlot((2, 3), 4.0, 5.0))
        state.rollback_to(mark)
        # Undo replay is a mutation too: (lid, version) must never repeat.
        assert state.version(0) == before + 2

    def test_transactions_unavailable_in_journal_mode(self):
        state = self.make_journaled()
        with pytest.raises(SchedulingError):
            state.begin()

    def test_enable_journal_with_open_transaction_rejected(self):
        state = make_state()
        state.begin()
        with pytest.raises(SchedulingError):
            state.enable_journal()
        state.rollback()

    def test_double_enable_rejected(self):
        state = self.make_journaled()
        with pytest.raises(SchedulingError):
            state.enable_journal()

    def test_mark_and_rollback_require_journal(self):
        state = make_state()
        with pytest.raises(SchedulingError):
            state.journal_mark()
        with pytest.raises(SchedulingError):
            state.rollback_to(0)

    def test_rollback_mark_out_of_range(self):
        state = self.make_journaled()
        with pytest.raises(SchedulingError):
            state.rollback_to(state.journal_mark() + 1)
        with pytest.raises(SchedulingError):
            state.rollback_to(-1)

    def test_journaling_property(self):
        state = LinkScheduleState()
        assert not state.journaling
        state.enable_journal()
        assert state.journaling


class TestBookEdgeBasic:
    """The fused booking path must match the layered one bit-for-bit."""

    ROUTE = [
        Link(0, 2.0, 0, 10),
        Link(1, 1.0, 10, 11),
        Link(2, 4.0, 11, 1),
    ]

    BOOKINGS = [
        ((0, 1), 8.0, 0.0),
        ((0, 2), 4.0, 1.5),
        ((2, 3), 2.0, 0.25),
        ((3, 4), 16.0, 3.0),
    ]

    @pytest.mark.parametrize("comm", [CUT_THROUGH, STORE_AND_FORWARD,
                                      CommModel(hop_delay=0.5)])
    def test_matches_layered_booking(self, comm):
        fused = LinkScheduleState()
        layered = LinkScheduleState()
        for edge, cost, ready in self.BOOKINGS:
            a1 = fused.book_edge_basic(edge, self.ROUTE, cost, ready, comm)
            a2 = schedule_edge_basic(layered, edge, self.ROUTE, cost, ready, comm)
            assert a1 == a2
        assert fused.routes() == layered.routes()
        for link in self.ROUTE:
            assert fused.slots(link.lid) == layered.slots(link.lid)

    def test_record_false_skips_route_bookkeeping(self):
        state = LinkScheduleState()
        edge = (0, 1)
        state.book_edge_basic(edge, self.ROUTE, 4.0, 0.0, CUT_THROUGH, record=False)
        assert not state.has_route(edge)
        assert state.has_slot(edge, 0)

    def test_empty_route_returns_ready_time(self):
        state = LinkScheduleState()
        assert state.book_edge_basic((0, 1), [], 4.0, 1.5, CUT_THROUGH) == 1.5
        assert state.route_of((0, 1)) == ()

    def test_zero_cost_returns_ready_time(self):
        state = LinkScheduleState()
        assert state.book_edge_basic((0, 1), self.ROUTE, 0.0, 2.5, CUT_THROUGH) == 2.5
        assert state.route_of((0, 1)) == ()

    def test_negative_inputs_rejected(self):
        state = LinkScheduleState()
        with pytest.raises(SchedulingError):
            state.book_edge_basic((0, 1), self.ROUTE, -1.0, 0.0, CUT_THROUGH)
        with pytest.raises(SchedulingError):
            state.book_edge_basic((0, 1), self.ROUTE, 1.0, -0.5, CUT_THROUGH)

    def test_duplicate_edge_rejected(self):
        state = LinkScheduleState()
        state.book_edge_basic((0, 1), self.ROUTE, 4.0, 0.0, CUT_THROUGH)
        with pytest.raises(SchedulingError):
            state.book_edge_basic((0, 1), self.ROUTE, 4.0, 0.0, CUT_THROUGH,
                                  record=False)

    def test_journaled_bookings_rewind(self):
        state = LinkScheduleState()
        state.enable_journal()
        mark = state.journal_mark()
        state.book_edge_basic((0, 1), self.ROUTE, 4.0, 0.0, CUT_THROUGH)
        state.rollback_to(mark)
        assert not state.has_route((0, 1))
        assert all(state.slots(link.lid) == [] for link in self.ROUTE)
