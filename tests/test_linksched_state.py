"""Unit tests for repro.linksched.state (copy-on-write transactions)."""

import pytest

from repro.exceptions import SchedulingError
from repro.linksched.slots import TimeSlot
from repro.linksched.state import LinkScheduleState


def make_state():
    state = LinkScheduleState()
    state.record_route((0, 1), (0, 1))
    state.insert(0, 0, TimeSlot((0, 1), 0.0, 2.0))
    state.insert(1, 0, TimeSlot((0, 1), 2.0, 4.0))
    return state


class TestBasics:
    def test_slots_empty_for_unknown_link(self):
        assert LinkScheduleState().slots(7) == []

    def test_insert_and_lookup(self):
        state = make_state()
        assert state.slot_of((0, 1), 0).finish == 2.0
        assert state.has_slot((0, 1), 0)
        assert not state.has_slot((0, 1), 5)

    def test_slot_of_missing_raises(self):
        with pytest.raises(SchedulingError):
            LinkScheduleState().slot_of((0, 1), 0)

    def test_double_booking_rejected(self):
        state = make_state()
        with pytest.raises(SchedulingError):
            state.insert(0, 1, TimeSlot((0, 1), 5.0, 6.0))

    def test_route_bookkeeping(self):
        state = make_state()
        assert state.route_of((0, 1)) == (0, 1)
        assert state.has_route((0, 1))
        with pytest.raises(SchedulingError):
            state.route_of((9, 9))
        with pytest.raises(SchedulingError):
            state.record_route((0, 1), (5,))

    def test_next_link(self):
        state = make_state()
        assert state.next_link_of((0, 1), 0) == 1
        assert state.next_link_of((0, 1), 1) is None
        with pytest.raises(SchedulingError):
            state.next_link_of((0, 1), 42)

    def test_used_links(self):
        assert sorted(make_state().used_links()) == [0, 1]


class TestTransactions:
    def test_rollback_restores_slots(self):
        state = make_state()
        state.begin()
        state.insert(0, 1, TimeSlot((2, 3), 5.0, 6.0))
        state.record_route((2, 3), (0,))
        state.rollback()
        assert len(state.slots(0)) == 1
        assert not state.has_route((2, 3))

    def test_commit_keeps_changes(self):
        state = make_state()
        state.begin()
        state.insert(0, 1, TimeSlot((2, 3), 5.0, 6.0))
        state.record_route((2, 3), (0,))
        state.commit()
        assert len(state.slots(0)) == 2
        assert state.has_route((2, 3))

    def test_rollback_restores_fresh_link(self):
        state = make_state()
        state.begin()
        state.insert(9, 0, TimeSlot((2, 3), 0.0, 1.0))
        state.rollback()
        assert state.slots(9) == []

    def test_rollback_of_replace_suffix(self):
        state = make_state()
        before = list(state.slots(0))
        state.begin()
        state.replace_suffix(0, 0, [TimeSlot((2, 3), 0.0, 1.0), TimeSlot((0, 1), 1.0, 3.0)])
        state.rollback()
        assert state.slots(0) == before
        assert state.slot_of((0, 1), 0).start == 0.0

    def test_no_nested_transactions(self):
        state = make_state()
        state.begin()
        with pytest.raises(SchedulingError):
            state.begin()
        state.rollback()

    def test_commit_without_begin_rejected(self):
        with pytest.raises(SchedulingError):
            LinkScheduleState().commit()
        with pytest.raises(SchedulingError):
            LinkScheduleState().rollback()

    def test_reads_inside_transaction_see_changes(self):
        state = make_state()
        state.begin()
        state.insert(0, 1, TimeSlot((2, 3), 5.0, 6.0))
        assert len(state.slots(0)) == 2
        state.rollback()

    def test_sequential_transactions(self):
        state = make_state()
        for i in range(3):
            state.begin()
            state.insert(0, 1, TimeSlot((2, 3 + i), 5.0 + i, 6.0 + i))
            state.rollback()
        assert len(state.slots(0)) == 1


class TestReplaceSuffix:
    def test_replace_updates_index(self):
        state = make_state()
        moved = TimeSlot((0, 1), 1.0, 3.0)
        state.replace_suffix(0, 0, [TimeSlot((7, 8), 0.0, 1.0), moved])
        assert state.slot_of((0, 1), 0) is moved
        assert state.slot_of((7, 8), 0).start == 0.0

    def test_replace_rejects_duplicate_edges(self):
        state = make_state()
        with pytest.raises(SchedulingError):
            state.replace_suffix(
                0, 0, [TimeSlot((7, 8), 0.0, 1.0), TimeSlot((7, 8), 2.0, 3.0)]
            )
