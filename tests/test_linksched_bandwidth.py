"""Unit tests for repro.linksched.bandwidth (BBSA's fluid link model)."""

import math

import pytest

from repro.exceptions import SchedulingError
from repro.linksched.bandwidth import (
    BandwidthLinkState,
    BandwidthProfile,
    Cumulative,
    UsageSegment,
    forward_through_link,
)
from repro.network.builders import linear_array
from repro.network.routing import bfs_route


class TestCumulative:
    def test_step(self):
        c = Cumulative.step(5.0, 10.0)
        assert c.start_time == 5.0
        assert c.final_volume == 10.0
        assert c.finish_time() == 5.0

    def test_value_interpolates(self):
        c = Cumulative([(0.0, 0.0), (10.0, 20.0)])
        assert c.value(5.0) == 10.0
        assert c.value(-1.0) == 0.0
        assert c.value(11.0) == 20.0

    def test_value_right_continuous_at_jump(self):
        c = Cumulative([(5.0, 0.0), (5.0, 10.0), (6.0, 12.0)])
        assert c.value(5.0) == 10.0

    def test_monotonicity_enforced(self):
        with pytest.raises(SchedulingError):
            Cumulative([(0.0, 5.0), (1.0, 3.0)])
        with pytest.raises(SchedulingError):
            Cumulative([(1.0, 0.0), (0.0, 1.0)])

    def test_needs_points(self):
        with pytest.raises(SchedulingError):
            Cumulative([])

    def test_negative_volume_rejected(self):
        with pytest.raises(SchedulingError):
            Cumulative.step(0.0, -1.0)

    def test_finish_time_of_ramp(self):
        c = Cumulative([(0.0, 0.0), (4.0, 8.0), (9.0, 8.0)])
        assert c.finish_time() == 4.0


class TestBandwidthProfile:
    def test_empty_is_free(self):
        prof = BandwidthProfile()
        assert prof.used_at(123.0) == 0.0
        assert prof.max_used() == 0.0

    def test_add_usage(self):
        prof = BandwidthProfile()
        prof.add_usage([UsageSegment(1.0, 3.0, 0.5)])
        assert prof.used_at(2.0) == 0.5
        assert prof.used_at(0.5) == 0.0
        assert prof.used_at(3.0) == 0.0

    def test_overlapping_usage_stacks(self):
        prof = BandwidthProfile()
        prof.add_usage([UsageSegment(0.0, 4.0, 0.5)])
        prof.add_usage([UsageSegment(2.0, 6.0, 0.25)])
        assert prof.used_at(1.0) == 0.5
        assert prof.used_at(3.0) == 0.75
        assert prof.used_at(5.0) == 0.25

    def test_overcommit_rejected(self):
        prof = BandwidthProfile()
        prof.add_usage([UsageSegment(0.0, 2.0, 0.8)])
        with pytest.raises(SchedulingError):
            prof.add_usage([UsageSegment(1.0, 3.0, 0.3)])

    def test_adjacent_equal_segments_merge(self):
        prof = BandwidthProfile()
        prof.add_usage([UsageSegment(0.0, 1.0, 0.5), UsageSegment(1.0, 2.0, 0.5)])
        assert prof.segments == [(0.0, 2.0, 0.5)]

    def test_copy_is_independent(self):
        prof = BandwidthProfile()
        prof.add_usage([UsageSegment(0.0, 1.0, 0.5)])
        dup = prof.copy()
        dup.add_usage([UsageSegment(2.0, 3.0, 0.5)])
        assert len(prof.segments) == 1


class TestForward:
    def test_free_link_full_speed(self):
        dep, usage = forward_through_link(BandwidthProfile(), Cumulative.step(2.0, 10.0), 2.0)
        assert dep.finish_time() == pytest.approx(7.0)  # 10 volume at speed 2
        assert usage == [UsageSegment(2.0, 7.0, 1.0)]

    def test_zero_volume(self):
        dep, usage = forward_through_link(BandwidthProfile(), Cumulative.step(1.0, 0.0), 1.0)
        assert usage == []
        assert dep.final_volume == 0.0

    def test_partially_used_link_shares(self):
        prof = BandwidthProfile()
        prof.add_usage([UsageSegment(0.0, 100.0, 0.5)])
        dep, usage = forward_through_link(prof, Cumulative.step(0.0, 10.0), 1.0)
        # Only half the bandwidth available: 20 time units.
        assert dep.finish_time() == pytest.approx(20.0)
        assert usage == [UsageSegment(0.0, 20.0, 0.5)]

    def test_uses_freed_capacity(self):
        prof = BandwidthProfile()
        prof.add_usage([UsageSegment(0.0, 5.0, 1.0)])  # fully busy until t=5
        dep, usage = forward_through_link(prof, Cumulative.step(0.0, 10.0), 1.0)
        assert dep.start_time == 0.0
        assert dep.finish_time() == pytest.approx(15.0)

    def test_mixed_capacity_profile(self):
        prof = BandwidthProfile()
        prof.add_usage([UsageSegment(0.0, 4.0, 0.75)])  # quarter speed first
        dep, _ = forward_through_link(prof, Cumulative.step(0.0, 10.0), 1.0)
        # 4 time units at rate 0.25 = 1 volume; remaining 9 at full speed.
        assert dep.finish_time() == pytest.approx(13.0)

    def test_departure_never_exceeds_arrival(self):
        arrival = Cumulative([(0.0, 0.0), (10.0, 10.0)])  # trickle at rate 1
        dep, _ = forward_through_link(BandwidthProfile(), arrival, 5.0)
        for t, v in dep.points:
            assert v <= arrival.value(t) + 1e-9
        assert dep.finish_time() == pytest.approx(10.0)

    def test_trickle_then_catchup(self):
        # Slow arrival, link busy in the middle: backlog accumulates then drains.
        arrival = Cumulative([(0.0, 0.0), (10.0, 10.0)])
        prof = BandwidthProfile()
        prof.add_usage([UsageSegment(2.0, 6.0, 1.0)])
        dep, _ = forward_through_link(prof, arrival, 1.0)
        assert dep.value(6.0) == pytest.approx(2.0)  # blocked during [2, 6)
        assert dep.finish_time() == pytest.approx(14.0)

    def test_reserve_commits_usage(self):
        prof = BandwidthProfile()
        forward_through_link(prof, Cumulative.step(0.0, 4.0), 1.0, reserve=True)
        assert prof.used_at(2.0) == 1.0

    def test_bad_speed_rejected(self):
        with pytest.raises(SchedulingError):
            forward_through_link(BandwidthProfile(), Cumulative.step(0.0, 1.0), 0.0)


class TestBandwidthLinkState:
    def _route(self):
        net = linear_array(3, link_speed=2.0)
        ps = [p.vid for p in net.processors()]
        return net, bfs_route(net, ps[0], ps[2])

    def test_schedule_edge_two_hops(self):
        net, route = self._route()
        state = BandwidthLinkState()
        arrival = state.schedule_edge((0, 1), route, 10.0, 1.0)
        assert arrival == pytest.approx(6.0)  # 5 units transfer, cut-through
        bookings = state.bookings_of((0, 1))
        assert [b.lid for b in bookings] == [l.lid for l in route]

    def test_local_edge(self):
        state = BandwidthLinkState()
        assert state.schedule_edge((0, 1), [], 5.0, 3.0) == 3.0
        assert state.route_of((0, 1)) == ()

    def test_double_schedule_rejected(self):
        net, route = self._route()
        state = BandwidthLinkState()
        state.schedule_edge((0, 1), route, 1.0, 0.0)
        with pytest.raises(SchedulingError):
            state.schedule_edge((0, 1), route, 1.0, 0.0)

    def test_two_transfers_share_bandwidth(self):
        net, route = self._route()
        state = BandwidthLinkState()
        a1 = state.schedule_edge((0, 1), [route[0]], 10.0, 0.0)
        a2 = state.schedule_edge((2, 3), [route[0]], 10.0, 0.0)
        # Link fully used by the first transfer during [0, 5): the second
        # starts only when capacity frees, same as slot scheduling here.
        assert a1 == pytest.approx(5.0)
        assert a2 == pytest.approx(10.0)
        assert state.profile(route[0].lid).max_used() <= 1.0 + 1e-9

    def test_second_transfer_exploits_spare_bandwidth(self):
        net, route = self._route()
        state = BandwidthLinkState()
        # Slow trickle occupies only half of link 1's bandwidth (speed 2
        # downstream of a speed-1 bottleneck).
        slow = [l for l in net.links() if l.lid == route[0].lid][0]
        object.__setattr__(slow, "speed", 1.0)
        state.schedule_edge((0, 1), route, 10.0, 0.0)
        prof = state.profile(route[1].lid)
        assert prof.max_used() == pytest.approx(0.5)
        # A second transfer on link 1 can run concurrently in the spare half.
        a2 = state.schedule_edge((2, 3), [route[1]], 10.0, 0.0)
        assert a2 == pytest.approx(10.0)  # half bandwidth of speed-2 link

    def test_probe_does_not_commit(self):
        net, route = self._route()
        state = BandwidthLinkState()
        t = state.probe_link(route[0], 10.0, 0.0)
        assert t == pytest.approx(5.0)
        assert state.profile(route[0].lid).segments == []

    def test_transactions(self):
        net, route = self._route()
        state = BandwidthLinkState()
        state.begin()
        state.schedule_edge((0, 1), route, 10.0, 0.0)
        state.rollback()
        assert not state.has_route((0, 1))
        assert state.profile(route[0].lid).segments == []
        state.begin()
        state.schedule_edge((0, 1), route, 10.0, 0.0)
        state.commit()
        assert state.has_route((0, 1))

    def test_negative_ready_rejected(self):
        net, route = self._route()
        with pytest.raises(SchedulingError):
            BandwidthLinkState().schedule_edge((0, 1), route, 1.0, -2.0)
