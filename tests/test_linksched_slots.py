"""Unit tests for repro.linksched.slots (gap search and queue invariants)."""

import pytest

from repro.exceptions import SchedulingError
from repro.linksched.slots import TimeSlot, check_queue_invariants, find_gap, insert_slot


def slot(a, b, edge=(0, 1)):
    return TimeSlot(edge, a, b)


class TestTimeSlot:
    def test_duration(self):
        assert slot(1.0, 3.0).duration == 2.0

    def test_negative_start_rejected(self):
        with pytest.raises(SchedulingError):
            slot(-1.0, 2.0)

    def test_inverted_rejected(self):
        with pytest.raises(SchedulingError):
            slot(3.0, 2.0)

    def test_shifted(self):
        s = slot(1.0, 2.0).shifted(4.0)
        assert (s.start, s.finish) == (5.0, 6.0)
        assert s.edge == (0, 1)


class TestFindGap:
    def test_empty_queue(self):
        assert find_gap([], 2.0, 3.0) == (0, 3.0, 5.0)

    def test_before_first_slot(self):
        q = [slot(10.0, 12.0)]
        assert find_gap(q, 2.0, 0.0) == (0, 0.0, 2.0)

    def test_gap_too_small_skipped(self):
        q = [slot(1.0, 2.0), slot(3.0, 4.0)]
        index, start, finish = find_gap(q, 1.5, 0.0)
        assert index == 2
        assert start == 4.0

    def test_exact_fit(self):
        q = [slot(0.0, 1.0), slot(3.0, 4.0)]
        assert find_gap(q, 2.0, 0.0) == (1, 1.0, 3.0)

    def test_est_pushes_into_later_gap(self):
        q = [slot(2.0, 3.0)]
        # est=1 leaves only a 1-wide gap before the slot; 1.5 doesn't fit.
        assert find_gap(q, 1.5, 1.0) == (1, 3.0, 4.5)

    def test_min_finish_delays_start(self):
        # Slot must finish >= 10 even though the link is free from 0.
        index, start, finish = find_gap([], 2.0, 0.0, min_finish=10.0)
        assert (index, start, finish) == (0, 8.0, 10.0)

    def test_min_finish_within_gap(self):
        q = [slot(0.0, 1.0), slot(20.0, 21.0)]
        index, start, finish = find_gap(q, 2.0, 0.0, min_finish=5.0)
        assert (index, start, finish) == (1, 3.0, 5.0)

    def test_zero_duration(self):
        q = [slot(0.0, 5.0)]
        index, start, finish = find_gap(q, 0.0, 1.0)
        assert start == finish

    def test_negative_duration_rejected(self):
        with pytest.raises(SchedulingError):
            find_gap([], -1.0, 0.0)

    def test_negative_est_rejected(self):
        with pytest.raises(SchedulingError):
            find_gap([], 1.0, -0.5)


class TestInsertAndInvariants:
    def test_insert_preserves_order(self):
        q = [slot(0.0, 1.0), slot(5.0, 6.0)]
        insert_slot(q, 1, slot(2.0, 3.0, edge=(1, 2)))
        check_queue_invariants(q)
        assert [s.start for s in q] == [0.0, 2.0, 5.0]

    def test_insert_overlap_predecessor_rejected(self):
        q = [slot(0.0, 2.0)]
        with pytest.raises(SchedulingError):
            insert_slot(q, 1, slot(1.0, 3.0, edge=(1, 2)))

    def test_insert_overlap_successor_rejected(self):
        q = [slot(2.0, 4.0)]
        with pytest.raises(SchedulingError):
            insert_slot(q, 0, slot(0.0, 3.0, edge=(1, 2)))

    def test_invariant_checker_catches_overlap(self):
        q = [slot(0.0, 2.0), slot(1.0, 3.0, edge=(1, 2))]
        with pytest.raises(SchedulingError):
            check_queue_invariants(q)
