"""Unit tests for repro.linksched.optimal_insertion (OIHSA's deferral)."""

import pytest

from repro.exceptions import SchedulingError
from repro.linksched.causality import check_route_causality
from repro.linksched.insertion import schedule_edge_basic
from repro.linksched.optimal_insertion import (
    deferrable_time,
    probe_optimal,
    schedule_edge_optimal,
)
from repro.linksched.slots import check_queue_invariants
from repro.linksched.state import LinkScheduleState
from repro.network.builders import linear_array
from repro.network.routing import bfs_route


def three_procs(link_speed=1.0):
    net = linear_array(3, link_speed=link_speed)
    ps = [p.vid for p in net.processors()]
    return net, ps


class TestDeferrableTime:
    def test_zero_on_last_link(self):
        net, ps = three_procs()
        route = bfs_route(net, ps[0], ps[2])
        state = LinkScheduleState()
        schedule_edge_basic(state, (0, 1), route, 10.0, 0.0)
        last_slot = state.slot_of((0, 1), route[-1].lid)
        assert deferrable_time(state, route[-1].lid, last_slot) == 0.0

    def test_slack_from_next_link(self):
        net, ps = three_procs()
        route = bfs_route(net, ps[0], ps[2])
        state = LinkScheduleState()
        # Edge A occupies the second link at [0, 10); edge B routed after it
        # lands at [10, 20) there, so B's first-link slot [0, 10) has 10 of slack.
        schedule_edge_basic(state, (9, 9), [route[1]], 10.0, 0.0)
        schedule_edge_basic(state, (0, 1), route, 10.0, 0.0)
        first_slot = state.slot_of((0, 1), route[0].lid)
        assert first_slot.start == 0.0
        assert deferrable_time(state, route[0].lid, first_slot) == 10.0


class TestProbeOptimal:
    def test_empty_link_matches_basic(self):
        net, ps = three_procs(link_speed=2.0)
        route = bfs_route(net, ps[0], ps[1])
        state = LinkScheduleState()
        placement = probe_optimal(state, route[0], 10.0, est=3.0)
        assert (placement.index, placement.start, placement.finish) == (0, 3.0, 8.0)
        assert placement.overflow == 0.0

    def test_min_finish_respected(self):
        net, ps = three_procs()
        route = bfs_route(net, ps[0], ps[1])
        placement = probe_optimal(LinkScheduleState(), route[0], 4.0, est=0.0, min_finish=10.0)
        assert placement.finish == 10.0
        assert placement.start == 6.0

    def test_negative_cost_rejected(self):
        net, ps = three_procs()
        route = bfs_route(net, ps[0], ps[1])
        with pytest.raises(SchedulingError):
            probe_optimal(LinkScheduleState(), route[0], -2.0, est=0.0)

    def test_defers_blocking_slot(self):
        net, ps = three_procs()
        route02 = bfs_route(net, ps[0], ps[2])
        lid0 = route02[0].lid
        state = LinkScheduleState()
        # Give the first link a deferrable occupant: edge A's slot on link 0
        # is [0, 10) but its next-link slot is at [20, 30) -> slack 20.
        schedule_edge_basic(state, (9, 9), [route02[1]], 10.0, 20.0)
        state.record_route((5, 5), (lid0, route02[1].lid))
        from repro.linksched.slots import TimeSlot

        state.insert(lid0, 0, TimeSlot((5, 5), 0.0, 10.0))
        state.insert(route02[1].lid, 1, TimeSlot((5, 5), 30.0, 40.0))
        # New 6-long transfer with est=0: basic insertion would append at 10,
        # optimal insertion defers (5,5) and starts at 0.
        placement = probe_optimal(state, route02[0], 6.0, est=0.0)
        assert placement.index == 0
        assert placement.start == 0.0
        assert placement.overflow == 6.0


class TestScheduleEdgeOptimal:
    def test_local_edge(self):
        state = LinkScheduleState()
        assert schedule_edge_optimal(state, (0, 1), [], 5.0, 2.0) == 2.0

    def test_matches_basic_on_empty_links(self):
        net, ps = three_procs(link_speed=2.0)
        route = bfs_route(net, ps[0], ps[2])
        s1, s2 = LinkScheduleState(), LinkScheduleState()
        a_basic = schedule_edge_basic(s1, (0, 1), route, 12.0, 1.0)
        a_opt = schedule_edge_optimal(s2, (0, 1), route, 12.0, 1.0)
        assert a_opt == a_basic

    def test_never_later_than_basic(self):
        # Optimal insertion dominates basic insertion slot-for-slot.
        net, ps = three_procs()
        route = bfs_route(net, ps[0], ps[2])
        for seed_costs in ([7, 3, 9], [2, 2, 2], [10, 1, 5]):
            s_basic, s_opt = LinkScheduleState(), LinkScheduleState()
            for i, cost in enumerate(seed_costs):
                schedule_edge_basic(s_basic, (i, 10 + i), route, cost, float(i))
                schedule_edge_optimal(s_opt, (i, 10 + i), route, cost, float(i))
            last = (len(seed_costs) - 1, 10 + len(seed_costs) - 1)
            b = s_basic.slot_of(last, route[-1].lid).finish
            o = s_opt.slot_of(last, route[-1].lid).finish
            assert o <= b + 1e-9

    def test_deferral_preserves_causality_of_deferred_edge(self):
        net, ps = three_procs()
        route = bfs_route(net, ps[0], ps[2])
        state = LinkScheduleState()
        # Edge A across both links, arrives late on second link.
        schedule_edge_basic(state, (9, 9), [route[1]], 10.0, 20.0)  # blocker
        schedule_edge_optimal(state, (0, 1), route, 10.0, 0.0)
        # New big transfer on link 0 only: may defer (0, 1)'s first-hop slot.
        ps01 = bfs_route(net, ps[0], ps[1])
        schedule_edge_optimal(state, (2, 3), ps01, 8.0, 0.0)
        check_route_causality(state, net, (0, 1), 10.0, 0.0)
        check_queue_invariants(state.slots(route[0].lid))

    def test_cascade_defers_multiple_slots(self):
        net, ps = three_procs()
        route = bfs_route(net, ps[0], ps[2])
        lid0, lid1 = route[0].lid, route[1].lid
        from repro.linksched.slots import TimeSlot

        state = LinkScheduleState()
        # Two occupants back-to-back on link 0, each with ample slack on link 1.
        for i, (a, b) in enumerate([(0.0, 4.0), (4.0, 8.0)]):
            edge = (20 + i, 30 + i)
            state.record_route(edge, (lid0, lid1))
            state.insert(lid0, i, TimeSlot(edge, a, b))
            state.insert(lid1, i, TimeSlot(edge, a + 50.0, b + 50.0))
        arrival = schedule_edge_optimal(state, (0, 1), [route[0]], 3.0, 0.0)
        assert arrival == 3.0  # inserted at the head, both occupants pushed
        slots = state.slots(lid0)
        assert [s.edge for s in slots] == [(0, 1), (20, 30), (21, 31)]
        assert [(s.start, s.finish) for s in slots] == [(0.0, 3.0), (3.0, 7.0), (7.0, 11.0)]
        check_queue_invariants(slots)

    def test_cascade_stops_at_gap(self):
        net, ps = three_procs()
        route = bfs_route(net, ps[0], ps[2])
        lid0, lid1 = route[0].lid, route[1].lid
        from repro.linksched.slots import TimeSlot

        state = LinkScheduleState()
        # Occupant 1 at [0, 4) with slack, occupant 2 far away at [100, 104).
        for i, (a, b) in enumerate([(0.0, 4.0), (100.0, 104.0)]):
            edge = (20 + i, 30 + i)
            state.record_route(edge, (lid0, lid1))
            state.insert(lid0, i, TimeSlot(edge, a, b))
            state.insert(lid1, i, TimeSlot(edge, a + 50.0, b + 50.0))
        schedule_edge_optimal(state, (0, 1), [route[0]], 3.0, 0.0)
        slots = state.slots(lid0)
        assert (slots[2].start, slots[2].finish) == (100.0, 104.0)  # untouched

    def test_does_not_defer_beyond_slack(self):
        net, ps = three_procs()
        route = bfs_route(net, ps[0], ps[2])
        lid0, lid1 = route[0].lid, route[1].lid
        from repro.linksched.slots import TimeSlot

        state = LinkScheduleState()
        # Occupant [0, 4) has exactly 2 units of slack: its next-link slot is
        # [2, 6), so it may slip to at most [2, 6) itself.
        edge = (9, 9)
        state.record_route(edge, (lid0, lid1))
        state.insert(lid0, 0, TimeSlot(edge, 0.0, 4.0))
        state.insert(lid1, 0, TimeSlot(edge, 2.0, 6.0))
        # A 3-long transfer cannot open a head gap (needs 3 > slack 2):
        # it must go after the occupant.
        arrival = schedule_edge_optimal(state, (0, 1), [route[0]], 3.0, 0.0)
        assert arrival == 7.0
        assert state.slot_of(edge, lid0).start == 0.0  # occupant untouched

    def test_defers_exactly_the_slack(self):
        net, ps = three_procs()
        route = bfs_route(net, ps[0], ps[2])
        lid0, lid1 = route[0].lid, route[1].lid
        from repro.linksched.slots import TimeSlot

        state = LinkScheduleState()
        edge = (9, 9)
        state.record_route(edge, (lid0, lid1))
        state.insert(lid0, 0, TimeSlot(edge, 0.0, 4.0))
        state.insert(lid1, 0, TimeSlot(edge, 2.0, 6.0))
        # A 2-long transfer fits by deferring the occupant by its full slack.
        arrival = schedule_edge_optimal(state, (2, 3), [route[0]], 2.0, 0.0)
        assert arrival == 2.0
        occ = state.slot_of(edge, lid0)
        assert occ.start == 2.0  # deferred onto its next-link start exactly
        check_route_causality(state, net, edge, 4.0)
        # Its slack is now exhausted: a further transfer must append.
        arrival2 = schedule_edge_optimal(state, (4, 5), [route[0]], 1.0, 0.0)
        assert arrival2 == 7.0
