"""Tests for the discrete-event re-execution cross-check."""

import dataclasses

import pytest

from repro.core import SCHEDULERS
from repro.core.ba import BAScheduler
from repro.core.eventsim import resimulate
from repro.exceptions import ValidationError
from repro.network.builders import random_wan
from repro.taskgraph.ccr import scale_to_ccr
from repro.taskgraph.generators import random_layered_dag


@pytest.mark.parametrize("algo", sorted(SCHEDULERS))
def test_every_scheduler_resimulates_exactly(algo):
    g = scale_to_ccr(random_layered_dag(20, rng=3), 2.0)
    net = random_wan(6, rng=4)
    schedule = SCHEDULERS[algo]().schedule(g, net)
    report = resimulate(schedule)
    assert report.makespan == pytest.approx(schedule.makespan)
    for tid, pl in schedule.placements.items():
        assert report.task_finish[tid] == pytest.approx(pl.finish)


@pytest.fixture
def schedule(diamond4, wan16):
    return BAScheduler().schedule(diamond4, wan16)


class TestDivergenceDetection:
    def test_too_early_start_detected(self, schedule):
        # Pull a non-entry task's start before its data arrives.
        tid = next(
            t for t, pl in schedule.placements.items()
            if schedule.graph.predecessors(t)
        )
        pl = schedule.placements[tid]
        schedule.placements[tid] = dataclasses.replace(
            pl, start=0.0, finish=pl.finish - pl.start
        )
        with pytest.raises(ValidationError):
            resimulate(schedule)

    def test_missing_arrival_detected(self, schedule):
        key = next(iter(schedule.edge_arrivals))
        del schedule.edge_arrivals[key]
        with pytest.raises(ValidationError, match="no recorded arrival"):
            resimulate(schedule)

    def test_arrival_before_source_detected(self, schedule):
        key = next(iter(schedule.edge_arrivals))
        schedule.edge_arrivals[key] = -5.0
        with pytest.raises(ValidationError):
            resimulate(schedule)

    def test_makespan_mismatch_detected(self, schedule):
        # Stretch the last task beyond its recorded duration implicitly by
        # shrinking its recorded finish.
        tid = max(schedule.placements, key=lambda t: schedule.placements[t].finish)
        pl = schedule.placements[tid]
        schedule.placements[tid] = dataclasses.replace(pl, finish=pl.finish + 10.0)
        with pytest.raises(ValidationError):
            resimulate(schedule)

    def test_deadlock_detected(self, chain3):
        from repro.network.builders import fully_connected

        net = fully_connected(2)
        s = BAScheduler().schedule(chain3, net)
        # Swap two tasks' processor-queue positions to create a cyclic wait:
        # put t0 after t2 on the same processor while t2 still needs t0.
        pl0, pl2 = s.placements[0], s.placements[2]
        proc = pl0.processor
        s.placements[2] = dataclasses.replace(
            pl2, processor=proc, start=pl0.start - 0.5,
            finish=pl0.start - 0.5 + (pl2.finish - pl2.start),
        )
        with pytest.raises(ValidationError):
            resimulate(s)
