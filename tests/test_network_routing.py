"""Unit tests for repro.network.routing (BFS + contention-aware Dijkstra)."""

import pytest

from repro.exceptions import RoutingError
from repro.network.builders import (
    fully_connected,
    linear_array,
    random_wan,
    shared_bus,
    switched_cluster,
)
from repro.network.routing import bfs_route, dijkstra_route
from repro.network.topology import NetworkTopology


def _vertex_walk_ok(net, route, src, dst):
    """A route must be traversable hop by hop from src to dst."""
    from repro.linksched.causality import check_route_connectivity

    check_route_connectivity(net, tuple(l.lid for l in route), src, dst)


class TestBfs:
    def test_same_processor_empty(self, net4):
        p = net4.processors()[0].vid
        assert bfs_route(net4, p, p) == []

    def test_direct_link(self, net2):
        a, b = (p.vid for p in net2.processors())
        route = bfs_route(net2, a, b)
        assert len(route) == 1
        assert route[0].src == a and route[0].dst == b

    def test_through_switch(self, net4):
        a, b = net4.processors()[0].vid, net4.processors()[1].vid
        route = bfs_route(net4, a, b)
        assert len(route) == 2
        _vertex_walk_ok(net4, route, a, b)

    def test_linear_array_hops(self):
        net = linear_array(5)
        ps = [p.vid for p in net.processors()]
        assert len(bfs_route(net, ps[0], ps[4])) == 4

    def test_minimal_over_wan(self):
        net = random_wan(30, rng=9)
        procs = [p.vid for p in net.processors()]
        route = bfs_route(net, procs[0], procs[-1])
        _vertex_walk_ok(net, route, procs[0], procs[-1])
        assert 1 <= len(route) <= 6

    def test_bus_single_hop(self):
        net = shared_bus(4)
        a, b = net.processors()[0].vid, net.processors()[3].vid
        route = bfs_route(net, a, b)
        assert len(route) == 1
        assert route[0].kind == "bus"

    def test_endpoint_must_be_processor(self, net4):
        switch = net4.switches()[0].vid
        proc = net4.processors()[0].vid
        with pytest.raises(RoutingError):
            bfs_route(net4, switch, proc)

    def test_disconnected_raises(self):
        net = NetworkTopology()
        a = net.add_processor()
        b = net.add_processor()
        with pytest.raises(RoutingError):
            bfs_route(net, a.vid, b.vid)

    def test_deterministic(self):
        net = random_wan(20, rng=10)
        ps = [p.vid for p in net.processors()]
        r1 = [l.lid for l in bfs_route(net, ps[0], ps[10])]
        r2 = [l.lid for l in bfs_route(net, ps[0], ps[10])]
        assert r1 == r2


class TestDijkstra:
    @staticmethod
    def _uniform_probe(duration):
        return lambda link, t: t + duration

    def test_same_processor_empty(self, net4):
        p = net4.processors()[0].vid
        assert dijkstra_route(net4, p, p, 0.0, self._uniform_probe(1.0)) == []

    def test_matches_bfs_under_uniform_cost(self):
        net = random_wan(20, rng=11)
        ps = [p.vid for p in net.processors()]
        bfs = bfs_route(net, ps[0], ps[7])
        dij = dijkstra_route(net, ps[0], ps[7], 0.0, self._uniform_probe(1.0))
        assert len(dij) == len(bfs)

    def test_avoids_loaded_link(self):
        # Triangle: direct a-b link is "busy" (slow probe); detour via c wins.
        net = fully_connected(3)
        a, b, c = (p.vid for p in net.processors())
        direct = {l.lid for l, v in net.out_links(a) if v == b}

        def probe(link, t):
            return t + (10.0 if link.lid in direct else 1.0)

        route = dijkstra_route(net, a, b, 0.0, probe)
        assert len(route) == 2  # a -> c -> b
        assert all(l.lid not in direct for l in route)

    def test_ready_time_threads_through(self):
        net = linear_array(3)
        ps = [p.vid for p in net.processors()]
        seen = []

        def probe(link, t):
            seen.append(t)
            return t + 2.0

        dijkstra_route(net, ps[0], ps[2], 5.0, probe)
        assert min(seen) == 5.0

    def test_negative_ready_time_rejected(self, net2):
        a, b = (p.vid for p in net2.processors())
        with pytest.raises(RoutingError):
            dijkstra_route(net2, a, b, -1.0, self._uniform_probe(1.0))

    def test_non_monotone_probe_detected(self, net2):
        a, b = (p.vid for p in net2.processors())
        with pytest.raises(RoutingError):
            dijkstra_route(net2, a, b, 10.0, lambda link, t: 0.0)

    def test_disconnected_raises(self):
        net = NetworkTopology()
        a = net.add_processor()
        b = net.add_processor()
        with pytest.raises(RoutingError):
            dijkstra_route(net, a.vid, b.vid, 0.0, self._uniform_probe(1.0))

    def test_route_is_walkable(self):
        net = random_wan(25, rng=12)
        ps = [p.vid for p in net.processors()]
        route = dijkstra_route(net, ps[2], ps[-1], 0.0, self._uniform_probe(1.5))
        _vertex_walk_ok(net, route, ps[2], ps[-1])

    def test_switch_endpoint_rejected(self, net4):
        switch = net4.switches()[0].vid
        proc = net4.processors()[0].vid
        with pytest.raises(RoutingError):
            dijkstra_route(net4, proc, switch, 0.0, self._uniform_probe(1.0))


class TestRouteTable:
    """bfs_route memoizes per (src, dst) on the topology's route table."""

    def test_repeat_queries_return_cached_route(self, net4):
        a, b = net4.processors()[0].vid, net4.processors()[1].vid
        first = bfs_route(net4, a, b)
        assert bfs_route(net4, a, b) is first
        assert net4.route_table()[(a, b)] is first

    def test_directions_cached_independently(self, net4):
        a, b = net4.processors()[0].vid, net4.processors()[1].vid
        bfs_route(net4, a, b)
        bfs_route(net4, b, a)
        assert set(net4.route_table()) >= {(a, b), (b, a)}

    def test_same_vertex_not_cached(self, net4):
        p = net4.processors()[0].vid
        assert bfs_route(net4, p, p) == []
        assert (p, p) not in net4.route_table()

    def test_topology_mutation_invalidates_table(self):
        net = NetworkTopology()
        a = net.add_processor()
        b = net.add_processor()
        c = net.add_processor()
        net.connect(a, b)
        net.connect(b, c)
        stale = bfs_route(net, a.vid, c.vid)
        assert len(stale) == 2
        net.connect(a, c)  # shortcut; must not keep serving the 2-hop route
        route = bfs_route(net, a.vid, c.vid)
        assert len(route) == 1

    def test_each_mutator_invalidates(self, net2):
        a, b = (p.vid for p in net2.processors())
        for mutate in (
            lambda n: n.add_processor(),
            lambda n: n.add_switch(),
            lambda n: n.add_bus([a, b]),
        ):
            bfs_route(net2, a, b)
            assert net2.route_table()
            mutate(net2)
            assert not net2.route_table()

    def test_table_hits_counter(self, net4):
        from repro import obs

        a, b = net4.processors()[0].vid, net4.processors()[1].vid
        obs.enable()
        obs.reset()  # the metrics registry is process-wide
        try:
            bfs_route(net4, a, b)
            miss_routes = obs.OBS.metrics.counter("routing.bfs_routes").value
            bfs_route(net4, a, b)
            assert obs.OBS.metrics.counter("routing.table_hits").value == 1
            # A table hit is not a BFS computation.
            assert obs.OBS.metrics.counter("routing.bfs_routes").value == miss_routes
        finally:
            obs.disable()
