"""Property-based round-trip tests for all serialization layers."""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import SCHEDULERS
from repro.core.io import schedule_from_json, schedule_to_json
from repro.core.validate import validate_schedule
from repro.network.builders import random_wan, switched_cluster
from repro.network.io import topology_from_json, topology_to_json
from repro.network.routing import bfs_route
from repro.taskgraph.ccr import scale_to_ccr
from repro.taskgraph.generators import random_layered_dag
from repro.taskgraph.io import graph_from_json, graph_to_json

FAST = settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])


class TestGraphRoundTrip:
    @FAST
    @given(n=st.integers(1, 40), seed=st.integers(0, 1000), density=st.floats(0, 0.4))
    def test_json_preserves_everything(self, n, seed, density):
        g = random_layered_dag(n, rng=seed, density=density)
        back = graph_from_json(graph_to_json(g))
        assert back.num_tasks == g.num_tasks
        assert {e.key for e in back.edges()} == {e.key for e in g.edges()}
        for t in g.tasks():
            assert back.task(t.tid).weight == t.weight
        for e in g.edges():
            assert back.edge(e.src, e.dst).cost == e.cost


class TestTopologyRoundTrip:
    @FAST
    @given(n=st.integers(1, 20), seed=st.integers(0, 1000))
    def test_json_preserves_routing_graph(self, n, seed):
        net = random_wan(n, rng=seed, link_speed=(1, 10))
        back = topology_from_json(topology_to_json(net))
        assert back.num_vertices == net.num_vertices
        assert back.num_links == net.num_links
        procs = [p.vid for p in net.processors()]
        if len(procs) >= 2:
            r1 = [l.lid for l in bfs_route(net, procs[0], procs[-1])]
            r2 = [l.lid for l in bfs_route(back, procs[0], procs[-1])]
            assert r1 == r2


class TestScheduleRoundTrip:
    @FAST
    @given(
        n=st.integers(2, 20),
        seed=st.integers(0, 500),
        ccr=st.floats(0.2, 6.0),
        algo=st.sampled_from(["ba", "oihsa", "bbsa", "classic"]),
    )
    def test_round_trip_revalidates(self, n, seed, ccr, algo):
        g = random_layered_dag(n, rng=seed)
        if g.num_edges:
            g = scale_to_ccr(g, ccr)
        net = switched_cluster(4, rng=seed)
        original = SCHEDULERS[algo]().schedule(g, net)
        back = schedule_from_json(schedule_to_json(original))
        validate_schedule(back)
        assert back.makespan == original.makespan
