"""Figure 2: homogeneous systems, % improvement over BA vs processor count.

Paper: improvements grow with the processor count (more links -> better
routes and more even workload) up to ~64 processors, then degrade as the
graph's parallelism runs out.
"""

from repro.experiments.figures import figure2


def test_fig2_homogeneous_procs(benchmark, homo_config, report_sink):
    result = benchmark.pedantic(figure2, args=(homo_config,), iterations=1, rounds=1)
    report_sink.append(result.to_text())
    checks = result.run_shape_checks()
    assert checks["oihsa beats BA on average"]
    assert checks["bbsa beats BA on average"]
