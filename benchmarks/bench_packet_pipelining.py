"""Extension bench: packet count vs makespan (the paper's circuit-switching gap).

The paper's BA assumes circuit switching because it "does not consider the
possible division of communication into packets".  This bench quantifies
that modeling gap: the packet-switched BA sweeps the packet count from 1
(pure store-and-forward) upward; the makespan should fall monotonically-ish
toward BA's cut-through (circuit-switched) value, which acts as the limit.
"""

import pytest

from repro.core.ba import BAScheduler
from repro.core.packetba import PacketBAScheduler
from repro.experiments.config import ExperimentConfig
from repro.experiments.workloads import paper_workload


@pytest.fixture(scope="module")
def workload():
    config = ExperimentConfig.smoke()
    return paper_workload(config, ccr=2.0, n_procs=8, rng=777)


@pytest.mark.parametrize("k", [1, 2, 4, 16, 64])
def test_packet_count_sweep(benchmark, workload, k, report_sink):
    schedule = benchmark(
        lambda: PacketBAScheduler(n_packets=k).schedule(workload.graph, workload.net)
    )
    limit = BAScheduler(shared_ready_time=False).schedule(
        workload.graph, workload.net
    ).makespan
    report_sink.append(
        f"packet pipelining k={k}: makespan {schedule.makespan:.0f} "
        f"(cut-through limit {limit:.0f})"
    )
    assert schedule.makespan > 0
