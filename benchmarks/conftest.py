"""Shared benchmark configuration.

Every ``bench_fig*.py`` regenerates one figure of the paper: the benchmark
timer measures the scheduling work, and the regenerated series (measured vs
published values plus shape checks) is printed at the end of the session so
``pytest benchmarks/ --benchmark-only`` doubles as the reproduction report.

Scale knobs (environment variable):
    REPRO_BENCH_SCALE=smoke    tiny sweep, seconds per figure (default)
    REPRO_BENCH_SCALE=default  scaled-down sweep, ~10s per figure
    REPRO_BENCH_SCALE=paper    the published parameters (hours per figure)
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import ExperimentConfig

SCALE = os.environ.get("REPRO_BENCH_SCALE", "smoke")


def _config(heterogeneous: bool) -> ExperimentConfig:
    if SCALE == "paper":
        return ExperimentConfig.paper_scale(heterogeneous=heterogeneous)
    if SCALE == "default":
        return ExperimentConfig.default(heterogeneous=heterogeneous)
    return ExperimentConfig.smoke(heterogeneous=heterogeneous)


@pytest.fixture
def homo_config() -> ExperimentConfig:
    """Sweep parameters for the homogeneous figures (1 and 2)."""
    return _config(heterogeneous=False)


@pytest.fixture
def hetero_config() -> ExperimentConfig:
    """Sweep parameters for the heterogeneous figures (3 and 4)."""
    return _config(heterogeneous=True)


_reports: list[str] = []


@pytest.fixture
def report_sink() -> list[str]:
    """Append figure/ablation reports here; printed at session end."""
    return _reports


def pytest_sessionfinish(session, exitstatus):  # noqa: ARG001
    if _reports:
        print("\n\n===== reproduction report =====")
        print("\n\n".join(_reports))
