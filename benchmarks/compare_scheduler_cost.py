"""Compare a fresh ``BENCH_scheduler_cost.json`` against the committed baseline.

Usage::

    python benchmarks/compare_scheduler_cost.py CURRENT [BASELINE]

``BASELINE`` defaults to the ``BENCH_scheduler_cost.json`` committed at the
repo root.  Exits non-zero when any algorithm's makespan (and therefore the
``makespan_checksum``) drifts from the baseline — performance work must never
change what the engines compute.  Wall-clock numbers are *reported* but never
gated on: CI runners are too noisy for timing assertions.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load(path: Path) -> dict:
    data = json.loads(path.read_text())
    if "algorithms" not in data or "makespan_checksum" not in data:
        raise SystemExit(
            f"{path}: not a scheduler-cost report (missing 'algorithms' or "
            f"'makespan_checksum' — regenerate with "
            f"'python -m pytest benchmarks/bench_scheduler_cost.py')"
        )
    return data


def main(argv: list[str]) -> int:
    if not 1 <= len(argv) <= 2:
        print(__doc__, file=sys.stderr)
        return 2
    current = _load(Path(argv[0]))
    baseline_path = (
        Path(argv[1]) if len(argv) == 2 else REPO_ROOT / "BENCH_scheduler_cost.json"
    )
    baseline = _load(baseline_path)

    cur_algos = current["algorithms"]
    base_algos = baseline["algorithms"]
    for algo in sorted(set(cur_algos) | set(base_algos)):
        cur = cur_algos.get(algo)
        base = base_algos.get(algo)
        if cur is None or base is None:
            print(f"{algo:>12}: only in {'baseline' if cur is None else 'current'}")
            continue
        ratio = base["wall_s"] / cur["wall_s"] if cur["wall_s"] else float("inf")
        drift = "" if cur["makespan"] == base["makespan"] else "  << MAKESPAN DRIFT"
        print(
            f"{algo:>12}: wall {base['wall_s'] * 1e3:8.1f}ms -> "
            f"{cur['wall_s'] * 1e3:8.1f}ms ({ratio:4.2f}x)  "
            f"makespan {cur['makespan']!r}{drift}"
        )

    if current["makespan_checksum"] != baseline["makespan_checksum"]:
        print(
            f"\nFAIL: makespan checksum drifted from baseline {baseline_path}\n"
            f"  baseline: {baseline['makespan_checksum']}\n"
            f"  current:  {current['makespan_checksum']}\n"
            "The engines no longer compute the same schedules. If the change "
            "is intentional (a new algorithm or a deliberate model fix), "
            "regenerate and commit the baseline.",
            file=sys.stderr,
        )
        return 1
    print("\nOK: makespan checksum matches baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
