"""Ablation: the two readings of the BA baseline (see repro.core.ba).

``ba-as-described`` follows Han & Wang's Section 4.1 description
(communication-blind processor choice, shared latest-predecessor ready
time); ``ba-sinnen`` is the stronger Sinnen-faithful variant (tentative
full-edge-scheduling probe, per-edge ready times).  The gap quantifies how
much the published improvement figures depend on the baseline reading —
DESIGN.md documents this interpretation decision.
"""

from repro.experiments.ablations import run_ablation


def test_ablation_ba_variants(benchmark, homo_config, report_sink):
    result = benchmark.pedantic(
        run_ablation,
        args=("ba_variants", homo_config),
        kwargs={"ccr": 2.0, "n_procs": 8},
        iterations=1,
        rounds=1,
    )
    imp = result.improvements["ba-sinnen"]
    report_sink.append(
        f"ablation BA variants: sinnen-faithful vs as-described = {imp:+.1f}% makespan"
    )
    # The Sinnen-faithful baseline is strictly better informed; it should
    # never be dramatically worse.
    assert imp > -10.0
