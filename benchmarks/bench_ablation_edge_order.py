"""Ablation: descending-cost edge priority (paper Section 4.2) vs source-id order.

The paper argues big transfers should reserve routes and slots first because
small ones can still squeeze into remaining gaps, but not vice versa.
"""

from repro.experiments.ablations import run_ablation


def test_ablation_edge_order(benchmark, homo_config, report_sink):
    result = benchmark.pedantic(
        run_ablation,
        args=("edge_order", homo_config),
        kwargs={"ccr": 2.0, "n_procs": 16},
        iterations=1,
        rounds=1,
    )
    imp = result.improvements["descending-cost"]
    report_sink.append(
        f"ablation edge order: descending-cost vs source-id = {imp:+.1f}% makespan"
    )
    assert imp > -10.0
