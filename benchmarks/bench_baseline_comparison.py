"""Extended baseline comparison: the paper's algorithms vs the literature.

Not a paper figure — this bench pits OIHSA/BBSA against the broader
list-scheduling literature (HEFT, CPOP under the contention-free model, and
their contention-replayed makespans) plus a simulated-annealing mapping
search evaluated under the contention model, on one mid-size WAN workload.
"""

import pytest

from repro.core import SCHEDULERS
from repro.core.replay import replay_under_contention
from repro.experiments.config import ExperimentConfig
from repro.experiments.workloads import paper_workload


@pytest.fixture(scope="module")
def workload():
    config = ExperimentConfig.smoke()
    return paper_workload(config, ccr=2.0, n_procs=8, rng=4242)


@pytest.mark.parametrize("algo", ["ba", "oihsa", "bbsa", "heft", "cpop"])
def test_baseline_runtime(benchmark, workload, algo):
    scheduler_cls = SCHEDULERS[algo]
    schedule = benchmark(lambda: scheduler_cls().schedule(workload.graph, workload.net))
    assert schedule.makespan > 0


def test_annealing_runtime(benchmark, workload, report_sink):
    from repro.core.annealing import AnnealingScheduler

    schedule = benchmark.pedantic(
        lambda: AnnealingScheduler(iterations=100, rng=1).schedule(
            workload.graph, workload.net
        ),
        iterations=1,
        rounds=1,
    )
    # Compare everything under the *contention* model: classic-model
    # schedules are replayed first.
    rows = [f"annealing(100 iters): {schedule.makespan:.0f}"]
    for algo in ("ba", "oihsa", "bbsa"):
        m = SCHEDULERS[algo]().schedule(workload.graph, workload.net).makespan
        rows.append(f"{algo}: {m:.0f}")
    for algo in ("heft", "cpop"):
        promised = SCHEDULERS[algo]().schedule(workload.graph, workload.net)
        real = replay_under_contention(promised).makespan
        rows.append(f"{algo}+replay: {real:.0f} (promised {promised.makespan:.0f})")
    report_sink.append(
        "baseline comparison (contention-model makespans):\n  " + "\n  ".join(rows)
    )
    assert schedule.makespan > 0
