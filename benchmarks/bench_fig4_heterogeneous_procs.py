"""Figure 4: heterogeneous systems, % improvement over BA vs processor count.

Paper: like Figure 2 with larger improvements (~10-45%), same saturation
beyond the graph's parallelism.
"""

from repro.experiments.figures import figure4


def test_fig4_heterogeneous_procs(benchmark, hetero_config, report_sink):
    result = benchmark.pedantic(figure4, args=(hetero_config,), iterations=1, rounds=1)
    report_sink.append(result.to_text())
    checks = result.run_shape_checks()
    assert checks["oihsa beats BA on average"]
    assert checks["bbsa beats BA on average"]
