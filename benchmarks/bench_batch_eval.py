"""Batched array-native candidate scoring vs one-by-one object scoring.

The search-scheduler bench times whole searches; this module isolates the
ISSUE 8 kernel itself: scoring one fixed candidate *population* (a BA seed
plus deterministic mutations, the shape a genetic generation or annealing
neighborhood produces) through

- ``batch_array``: one :meth:`repro.core.batch.BatchMappingEvaluator.evaluate_batch`
  call — candidates sorted into prefix-trie order, whole batch forked from
  shared column checkpoints, and
- ``object_sequential``: the PR 5
  :class:`repro.core.incremental.IncrementalMappingEvaluator`, one
  ``evaluate`` per candidate in caller order.

Both paths must produce the **bit-identical score list** — asserted here
per element and digested into ``scores_checksum``.  A fresh evaluator is
built per timed round so neither path ever serves a score from its
identical-candidate cache.

The session writes ``BENCH_batch_eval.json`` to the working directory; CI
compares it against the committed baseline with
``benchmarks/compare_scheduler_cost.py`` (the report shares its layout) and
gates on the checksum.  The speedup floor asserted below is deliberately
far under the locally measured ratio — CI runners are noisy, and the floor
only exists to catch the kernel silently degenerating to per-candidate
full work.

Both timed series pin ``kernel="python"`` so the ``algorithms`` section —
and its makespan checksum — is reproducible on toolchain-free runners.
When the AOT-built extension is importable, a second test times the same
population through ``kernel="compiled"`` and records the comparison under
a separate top-level ``kernels`` key (absent from toolchain-free runs; the
compiled-kernel CI job gates on it with ``compiled_speedup_floor``).
"""

import hashlib
import json
from pathlib import Path
from time import perf_counter

import numpy as np
import pytest

from repro.core.ba import BAScheduler
from repro.core.batch import BatchMappingEvaluator
from repro.core.incremental import IncrementalMappingEvaluator
from repro.experiments.config import ExperimentConfig
from repro.experiments.workloads import paper_workload

#: candidates per population — one genetic generation's worth, times four
POPULATION = 64
#: timed rounds per path; the report keeps the fastest (min-of-N)
ROUNDS = 5
#: CI gate: the batch kernel must stay comfortably ahead of the object path
SPEEDUP_FLOOR = 1.2
#: CI gate (compiled job only): AOT kernel vs pure-Python reference kernel
COMPILED_SPEEDUP_FLOOR = 3.0

_report: dict[str, dict] = {}
_kernels: dict[str, dict] = {}


@pytest.fixture(scope="module")
def workload():
    config = ExperimentConfig.default()
    return paper_workload(config, ccr=2.0, n_procs=8, rng=777)


@pytest.fixture(scope="module")
def population(workload):
    """BA's mapping plus deterministic point mutations of it."""
    graph, net = workload.graph, workload.net
    seed_schedule = BAScheduler().schedule(graph, net)
    seed = {tid: pl.processor for tid, pl in seed_schedule.placements.items()}
    tasks = sorted(seed)
    procs = sorted(p.vid for p in net.processors())
    gen = np.random.default_rng(123)
    candidates = [dict(seed)]
    while len(candidates) < POPULATION:
        cand = dict(seed)
        # 1-4 point mutations: the move sizes annealing/genetic actually make.
        for _ in range(int(gen.integers(1, 5))):
            tid = tasks[int(gen.integers(0, len(tasks)))]
            cand[tid] = procs[int(gen.integers(0, len(procs)))]
        candidates.append(cand)
    return candidates


def _time_batch_array(graph, net, candidates, kernel="python") -> tuple[float, list[float]]:
    # kernel pinned to the pure-Python reference by default so the committed
    # baseline's timings/checksums do not depend on a C toolchain.
    best = float("inf")
    scores: list[float] = []
    for _ in range(ROUNDS):
        evaluator = BatchMappingEvaluator(graph, net, kernel=kernel)
        t0 = perf_counter()
        scores = evaluator.evaluate_batch(candidates)
        best = min(best, perf_counter() - t0)
    return best, scores


def _time_object_sequential(graph, net, candidates) -> tuple[float, list[float]]:
    best = float("inf")
    scores: list[float] = []
    for _ in range(ROUNDS):
        evaluator = IncrementalMappingEvaluator(graph, net)
        t0 = perf_counter()
        scores = [evaluator.evaluate(c) for c in candidates]
        best = min(best, perf_counter() - t0)
    return best, scores


def scores_checksum(scores: list[float]) -> str:
    """Digest of the whole score list — order-sensitive, repr-exact."""
    return hashlib.sha256("\n".join(repr(s) for s in scores).encode()).hexdigest()


def makespan_checksum(report: dict[str, dict]) -> str:
    """Same digest as ``bench_scheduler_cost.makespan_checksum``."""
    lines = sorted(f"{algo}={report[algo]['makespan']!r}" for algo in report)
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def test_batch_eval_speedup(workload, population):
    graph, net = workload.graph, workload.net
    array_wall, array_scores = _time_batch_array(graph, net, population)
    object_wall, object_scores = _time_object_sequential(graph, net, population)

    # The core claim: the kernel buys speed, never different schedules.
    assert array_scores == object_scores
    speedup = object_wall / array_wall if array_wall else 0.0
    assert speedup >= SPEEDUP_FLOOR, (
        f"batch kernel only {speedup:.2f}x vs object path "
        f"(floor {SPEEDUP_FLOOR}x) — did the hot loop regress?"
    )

    digest = scores_checksum(array_scores)
    # "makespan" per series keeps the report readable by
    # compare_scheduler_cost.py; the population's best score plays the role.
    _report["batch_array"] = {
        "wall_s": array_wall,
        "makespan": min(array_scores),
        "scores_checksum": digest,
        "speedup_vs_object": speedup,
    }
    _report["object_sequential"] = {
        "wall_s": object_wall,
        "makespan": min(object_scores),
        "scores_checksum": digest,
    }


def test_compiled_kernel_speedup(workload, population):
    """AOT kernel vs reference kernel: bit-identical scores, >=3x faster."""
    from repro.core.kernelreg import compiled_available

    if not compiled_available():
        pytest.skip("repro.core._kernel_c extension not built")
    graph, net = workload.graph, workload.net
    python_wall, python_scores = _time_batch_array(graph, net, population, kernel="python")
    compiled_wall, compiled_scores = _time_batch_array(
        graph, net, population, kernel="compiled"
    )

    # Bit-identity contract: same IEEE-754 operations in the same order.
    assert compiled_scores == python_scores
    assert scores_checksum(compiled_scores) == scores_checksum(python_scores)
    speedup = python_wall / compiled_wall if compiled_wall else 0.0
    assert speedup >= COMPILED_SPEEDUP_FLOOR, (
        f"compiled kernel only {speedup:.2f}x vs pure-Python kernel "
        f"(floor {COMPILED_SPEEDUP_FLOOR}x)"
    )

    digest = scores_checksum(compiled_scores)
    _kernels["python"] = {"wall_s": python_wall, "scores_checksum": digest}
    _kernels["compiled"] = {
        "wall_s": compiled_wall,
        "scores_checksum": digest,
        "speedup_vs_python": speedup,
    }


@pytest.fixture(scope="module", autouse=True)
def _write_report():
    """After the module's benchmark, dump the comparison report."""
    yield
    if not _report:
        return
    out = Path("BENCH_batch_eval.json")
    doc = {
        "algorithms": _report,
        "makespan_checksum": makespan_checksum(_report),
        "population": POPULATION,
        "rounds": ROUNDS,
        "speedup_floor": SPEEDUP_FLOOR,
    }
    if _kernels:
        # Kept outside "algorithms" on purpose: the makespan checksum above
        # must match on toolchain-free runners that never produce this key.
        doc["kernels"] = _kernels
        doc["compiled_speedup_floor"] = COMPILED_SPEEDUP_FLOOR
    out.write_text(json.dumps(doc, indent=1, sort_keys=True))
    print(f"\nwrote batch-eval comparison to {out.resolve()}")
