"""Ablation: BBSA's fluid bandwidth sharing vs OIHSA's exclusive slots.

Same placement, same routing philosophy — the gap is what splitting a
transfer across partially-occupied periods buys (the paper's Section 5).
"""

from repro.experiments.ablations import run_ablation


def test_ablation_bandwidth(benchmark, hetero_config, report_sink):
    # Heterogeneous links leave the spare-bandwidth pockets BBSA exploits.
    result = benchmark.pedantic(
        run_ablation,
        args=("bandwidth", hetero_config),
        kwargs={"ccr": 2.0, "n_procs": 16},
        iterations=1,
        rounds=1,
    )
    imp = result.improvements["fluid-bandwidth"]
    report_sink.append(
        f"ablation bandwidth: fluid sharing vs exclusive slots = {imp:+.1f}% makespan"
    )
    assert imp > -15.0
