"""Search-scheduler cost: array-batched vs object-incremental vs full.

``bench_scheduler_cost`` times every algorithm once; this module zooms in on
the two mapping-search schedulers (simulated annealing, genetic search),
whose candidate streams are exactly what the prefix-reusing evaluators
accelerate.  Each scheduler is timed three times on a fixed workload:

- ``array`` (the headline, scheduler default): the batched array-native
  kernel of :mod:`repro.core.batch` on flat columns,
- ``object``: the :mod:`repro.core.incremental` evaluator on the object
  substrate (the PR 5 hot path, kept as a secondary series),
- ``full``: one complete ``simulate_mapping`` per candidate (the naive
  reference).

All three runs must produce **bit-identical makespans**: the speedup is
never allowed to buy a different schedule.

As in ``bench_scheduler_cost``, the timed benchmark runs with observability
disabled, and a separate instrumented pass collects the decision counters —
``mapping.prefix_hits`` / ``mapping.suffix_tasks_resimulated`` /
``mapping.batch_evaluations`` / ``mapping.identical_skips`` /
``routing.table_hits`` — from which prefix/route-table hit rates are
derived.  The session writes ``BENCH_search_schedulers.json`` to the working
directory; CI compares it against the committed baseline with
``benchmarks/compare_scheduler_cost.py`` (the report shares its layout), so
any makespan drift fails the build.
"""

import hashlib
import json
from pathlib import Path
from time import perf_counter

import pytest

from repro import obs
from repro.core import SCHEDULERS
from repro.experiments.config import ExperimentConfig
from repro.experiments.workloads import paper_workload

ALGOS = ("annealing", "genetic")

#: evaluation mode -> scheduler kwargs.  The array mode pins the pure-Python
#: reference kernel so the committed baseline's timings and makespan
#: checksum reproduce on toolchain-free runners regardless of whether the
#: AOT extension happens to be built (makespans are bit-identical either
#: way; wall time is not).
MODES = {
    "array": {"incremental": True, "backend": "array", "kernel": "python"},
    "object": {"incremental": True, "backend": "object"},
    "full": {"incremental": False},
}

_report: dict[str, dict] = {}


@pytest.fixture(scope="module")
def workload():
    # Smaller than bench_scheduler_cost's 16-processor instance: the full
    # (non-incremental) runs are timed too, and CI runs this module in the
    # perf-smoke job.
    config = ExperimentConfig.default()
    return paper_workload(config, ccr=2.0, n_procs=8, rng=777)


def _instrumented_run(algo: str, graph, net, mode: str) -> dict:
    """One instrumented schedule() call: wall time + decision counters."""
    obs.enable(obs.NullSink())
    obs.reset()
    try:
        t0 = perf_counter()
        schedule = SCHEDULERS[algo](**MODES[mode]).schedule(graph, net)
        wall = perf_counter() - t0
        assert schedule.makespan > 0
        counters = obs.METRICS.snapshot()["counters"]
    finally:
        obs.disable()
    return {"wall_s": wall, "makespan": schedule.makespan, "counters": counters}


def _hit_rates(counters: dict) -> dict:
    """Derived cache effectiveness figures for the report."""
    evals = counters.get("mapping.evaluations", 0)
    hits = counters.get("mapping.prefix_hits", 0)
    table_hits = counters.get("routing.table_hits", 0)
    bfs = counters.get("routing.bfs_routes", 0)
    batches = counters.get("mapping.batch_evaluations", 0)
    return {
        "prefix_hit_rate": hits / evals if evals else 0.0,
        "mean_suffix_tasks": (
            counters.get("mapping.suffix_tasks_resimulated", 0) / evals
            if evals
            else 0.0
        ),
        "route_table_hit_rate": (
            table_hits / (table_hits + bfs) if table_hits + bfs else 0.0
        ),
        "mean_batch_size": (
            counters.get("mapping.batch_candidates", 0) / batches if batches else 0.0
        ),
        "identical_skips": counters.get("mapping.identical_skips", 0),
    }


@pytest.mark.parametrize("algo", ALGOS)
@pytest.mark.parametrize("mode", list(MODES), ids=list(MODES))
def test_search_scheduler_runtime(benchmark, workload, algo, mode):
    scheduler_cls = SCHEDULERS[algo]
    kwargs = MODES[mode]
    result = benchmark(
        lambda: scheduler_cls(**kwargs).schedule(workload.graph, workload.net)
    )
    assert result.makespan > 0
    run = _instrumented_run(algo, workload.graph, workload.net, mode)
    entry = _report.setdefault(algo, {})
    if mode == "array":
        # The headline series: after the first candidate, evaluations reuse
        # a simulated prefix, and the genetic search scores whole
        # generations as batches.
        assert run["counters"].get("mapping.prefix_hits", 0) > 0
        if algo == "genetic":
            assert run["counters"].get("mapping.batch_evaluations", 0) > 0
        entry.update(
            {**run, "backend": "array", "kernel": "python", **_hit_rates(run["counters"])}
        )
    else:
        entry[mode] = {"wall_s": run["wall_s"], "makespan": run["makespan"]}


def makespan_checksum(report: dict[str, dict]) -> str:
    """Same digest as ``bench_scheduler_cost.makespan_checksum``.

    (Duplicated rather than imported — ``benchmarks`` is not a package.)
    """
    lines = sorted(f"{algo}={report[algo]['makespan']!r}" for algo in report)
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def _finalize(report: dict[str, dict]) -> dict:
    for algo, entry in report.items():
        for mode in ("object", "full"):
            other = entry.get(mode)
            if other is None:
                continue
            # Bit-identity across the three evaluation paths is the bench's
            # core claim: fail loudly, don't just record drift.
            assert other["makespan"] == entry["makespan"], (
                f"{algo}: array makespan {entry['makespan']!r} != "
                f"{mode} {other['makespan']!r}"
            )
            entry[f"speedup_vs_{mode}"] = (
                other["wall_s"] / entry["wall_s"] if entry["wall_s"] else 0.0
            )
        # Kept under its historical name: the full-path cost of the default
        # evaluator, whatever backend that default is.
        if "speedup_vs_full" in entry:
            entry["incremental_speedup"] = entry["speedup_vs_full"]
    return {
        "algorithms": report,
        "makespan_checksum": makespan_checksum(report),
    }


@pytest.fixture(scope="module", autouse=True)
def _write_report():
    """After the module's benchmarks, dump the instrumented comparison."""
    yield
    if not _report:
        return
    out = Path("BENCH_search_schedulers.json")
    out.write_text(json.dumps(_finalize(_report), indent=1, sort_keys=True))
    print(f"\nwrote search-scheduler cost comparison to {out.resolve()}")
