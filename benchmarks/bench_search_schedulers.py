"""Search-scheduler cost: incremental evaluation vs full re-simulation.

``bench_scheduler_cost`` times every algorithm once; this module zooms in on
the two mapping-search schedulers (simulated annealing, genetic search),
whose candidate streams are exactly what the incremental evaluator
(:mod:`repro.core.incremental`) accelerates.  Each scheduler is timed twice
on a fixed workload — ``incremental=True`` (the default) and
``incremental=False`` (one full ``simulate_mapping`` per candidate) — and
the two runs must produce **bit-identical makespans**: the speedup is never
allowed to buy a different schedule.

As in ``bench_scheduler_cost``, the timed benchmark runs with observability
disabled, and a separate instrumented pass collects the decision counters —
including the new ``mapping.prefix_hits`` / ``mapping.suffix_tasks_resimulated``
/ ``routing.table_hits`` — from which prefix/route-table hit rates are
derived.  The session writes ``BENCH_search_schedulers.json`` to the working
directory; CI compares it against the committed baseline with
``benchmarks/compare_scheduler_cost.py`` (the report shares its layout), so
any makespan drift fails the build.
"""

import hashlib
import json
from pathlib import Path
from time import perf_counter

import pytest

from repro import obs
from repro.core import SCHEDULERS
from repro.experiments.config import ExperimentConfig
from repro.experiments.workloads import paper_workload

ALGOS = ("annealing", "genetic")

_report: dict[str, dict] = {}


@pytest.fixture(scope="module")
def workload():
    # Smaller than bench_scheduler_cost's 16-processor instance: the full
    # (non-incremental) runs are timed too, and CI runs this module in the
    # perf-smoke job.
    config = ExperimentConfig.default()
    return paper_workload(config, ccr=2.0, n_procs=8, rng=777)


def _instrumented_run(algo: str, graph, net, *, incremental: bool) -> dict:
    """One instrumented schedule() call: wall time + decision counters."""
    obs.enable(obs.NullSink())
    obs.reset()
    try:
        t0 = perf_counter()
        schedule = SCHEDULERS[algo](incremental=incremental).schedule(graph, net)
        wall = perf_counter() - t0
        assert schedule.makespan > 0
        counters = obs.METRICS.snapshot()["counters"]
    finally:
        obs.disable()
    return {"wall_s": wall, "makespan": schedule.makespan, "counters": counters}


def _hit_rates(counters: dict) -> dict:
    """Derived cache effectiveness figures for the report."""
    evals = counters.get("mapping.evaluations", 0)
    hits = counters.get("mapping.prefix_hits", 0)
    table_hits = counters.get("routing.table_hits", 0)
    bfs = counters.get("routing.bfs_routes", 0)
    return {
        "prefix_hit_rate": hits / evals if evals else 0.0,
        "mean_suffix_tasks": (
            counters.get("mapping.suffix_tasks_resimulated", 0) / evals
            if evals
            else 0.0
        ),
        "route_table_hit_rate": (
            table_hits / (table_hits + bfs) if table_hits + bfs else 0.0
        ),
    }


@pytest.mark.parametrize("algo", ALGOS)
@pytest.mark.parametrize("incremental", [True, False], ids=["incremental", "full"])
def test_search_scheduler_runtime(benchmark, workload, algo, incremental):
    scheduler_cls = SCHEDULERS[algo]
    result = benchmark(
        lambda: scheduler_cls(incremental=incremental).schedule(
            workload.graph, workload.net
        )
    )
    assert result.makespan > 0
    run = _instrumented_run(
        algo, workload.graph, workload.net, incremental=incremental
    )
    entry = _report.setdefault(algo, {})
    if incremental:
        # The whole point of the incremental evaluator: after the first
        # candidate, evaluations reuse a simulated prefix.
        assert run["counters"].get("mapping.prefix_hits", 0) > 0
        entry.update({**run, **_hit_rates(run["counters"])})
    else:
        entry["full"] = {"wall_s": run["wall_s"], "makespan": run["makespan"]}


def makespan_checksum(report: dict[str, dict]) -> str:
    """Same digest as ``bench_scheduler_cost.makespan_checksum``.

    (Duplicated rather than imported — ``benchmarks`` is not a package.)
    """
    lines = sorted(f"{algo}={report[algo]['makespan']!r}" for algo in report)
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def _finalize(report: dict[str, dict]) -> dict:
    for algo, entry in report.items():
        full = entry.get("full")
        if full is not None:
            # Bit-identity between the two evaluation paths is the bench's
            # core claim: fail loudly, don't just record drift.
            assert full["makespan"] == entry["makespan"], (
                f"{algo}: incremental makespan {entry['makespan']!r} != "
                f"full {full['makespan']!r}"
            )
            entry["incremental_speedup"] = (
                full["wall_s"] / entry["wall_s"] if entry["wall_s"] else 0.0
            )
    return {
        "algorithms": report,
        "makespan_checksum": makespan_checksum(report),
    }


@pytest.fixture(scope="module", autouse=True)
def _write_report():
    """After the module's benchmarks, dump the instrumented comparison."""
    yield
    if not _report:
        return
    out = Path("BENCH_search_schedulers.json")
    out.write_text(json.dumps(_finalize(_report), indent=1, sort_keys=True))
    print(f"\nwrote search-scheduler cost comparison to {out.resolve()}")
