"""Scheduler runtime scaling: time one schedule() call per algorithm.

Not a paper figure — this measures the *cost* of each algorithm on a fixed
mid-size workload so regressions in the engines (gap search, deferral
cascade, fluid sweep, routing probes) show up as timing changes.

The timed benchmark runs with observability **disabled** (the production
configuration).  A separate instrumented pass per algorithm — outside the
benchmark timer — collects the per-phase breakdown (routing vs insertion vs
processor selection vs task placement) through :mod:`repro.obs.profile`
plus the run's decision counters, and the session writes the lot to
``BENCH_scheduler_cost.json`` in the working directory.

Each algorithm's **makespan** on the fixed workload is recorded too, plus a
``makespan_checksum`` over all of them: performance work on the engines must
never change what they compute, so CI compares the checksum against the
baseline ``BENCH_scheduler_cost.json`` committed at the repo root (see
``benchmarks/compare_scheduler_cost.py``) and fails on any drift.
"""

import hashlib
import json
from pathlib import Path
from time import perf_counter

import pytest

from repro import obs
from repro.core import SCHEDULERS
from repro.experiments.workloads import scheduler_cost_workload

PHASES = ("routing", "insertion", "processor_selection", "task_placement")

_phase_report: dict[str, dict] = {}


@pytest.fixture(scope="module")
def workload():
    return scheduler_cost_workload()


def _profiled_run(algo: str) -> dict:
    """One instrumented schedule() call: wall time + phase/counter breakdown.

    Reads the process-wide instruments directly (they were just reset), so
    schedulers that bypass ``Schedule.stats`` attachment still report.

    Builds a **fresh** workload instance rather than reusing the benchmark
    fixture: route tables and probe caches live on the topology object, so a
    shared instance would make the counters depend on which algorithms ran
    before (warm caches -> more table hits).  A cold instance makes every
    counter a pure function of (algorithm, workload) — reproducible by
    ``repro runs compare`` in any process, in any order.
    """
    workload = scheduler_cost_workload()
    graph, net = workload.graph, workload.net
    obs.enable(obs.NullSink())
    obs.reset()
    try:
        t0 = perf_counter()
        schedule = SCHEDULERS[algo]().schedule(graph, net)
        wall = perf_counter() - t0
        assert schedule.makespan > 0
        timings = obs.PROFILER.snapshot()
        counters = obs.METRICS.snapshot()["counters"]
    finally:
        obs.disable()
    phases = {
        p: timings.get(p, {"total": 0.0, "count": 0}) for p in PHASES
    }
    return {
        "wall_s": wall,
        "makespan": schedule.makespan,
        "phases": phases,
        "counters": counters,
    }


def makespan_checksum(report: dict[str, dict]) -> str:
    """Order-independent digest of every algorithm's makespan.

    Uses ``repr`` of the floats (shortest round-trip form) so the digest is
    bit-exact: any behavioral drift in any engine changes it.
    """
    lines = sorted(f"{algo}={report[algo]['makespan']!r}" for algo in report)
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


@pytest.mark.parametrize("algo", sorted(SCHEDULERS))
def test_scheduler_runtime(benchmark, workload, algo):
    scheduler_cls = SCHEDULERS[algo]
    result = benchmark(lambda: scheduler_cls().schedule(workload.graph, workload.net))
    assert result.makespan > 0
    _phase_report[algo] = _profiled_run(algo)


@pytest.mark.parametrize("n_tasks", [25, 50, 100])
def test_oihsa_scaling_with_tasks(benchmark, n_tasks):
    from repro.network.builders import random_wan
    from repro.taskgraph.ccr import scale_to_ccr
    from repro.taskgraph.generators import random_layered_dag

    graph = scale_to_ccr(random_layered_dag(n_tasks, rng=1, density=0.05), 2.0)
    net = random_wan(16, rng=2)
    scheduler_cls = SCHEDULERS["oihsa"]
    result = benchmark(lambda: scheduler_cls().schedule(graph, net))
    assert result.makespan > 0


@pytest.fixture(scope="module", autouse=True)
def _write_phase_report():
    """After the module's benchmarks, dump the instrumented breakdown."""
    yield
    if not _phase_report:
        return
    out = Path("BENCH_scheduler_cost.json")
    payload = {
        "algorithms": _phase_report,
        "makespan_checksum": makespan_checksum(_phase_report),
    }
    out.write_text(json.dumps(payload, indent=1, sort_keys=True))
    print(f"\nwrote per-phase scheduler cost breakdown to {out.resolve()}")
    # Ledger record of the bench run (same shape `repro runs compare` checks).
    from repro.obs import runlog
    from repro.experiments.workloads import SCHEDULER_COST_PARAMS

    record = runlog.new_record(
        "bench",
        fingerprint_doc={
            "bench": "scheduler_cost",
            "params": SCHEDULER_COST_PARAMS,
            "algorithms": sorted(_phase_report),
        },
        makespans={a: r["makespan"] for a, r in _phase_report.items()},
        meta={
            "counters": {a: r["counters"] for a, r in _phase_report.items()},
            "wall_s": {a: r["wall_s"] for a, r in _phase_report.items()},
            "makespan_checksum": payload["makespan_checksum"],
        },
    )
    runlog.append(record)
    print(f"ledger: appended bench record {record.run_id}")
