"""Scheduler runtime scaling: time one schedule() call per algorithm.

Not a paper figure — this measures the *cost* of each algorithm on a fixed
mid-size workload so regressions in the engines (gap search, deferral
cascade, fluid sweep, routing probes) show up as timing changes.
"""

import pytest

from repro.core import SCHEDULERS
from repro.experiments.config import ExperimentConfig
from repro.experiments.workloads import paper_workload


@pytest.fixture(scope="module")
def workload():
    config = ExperimentConfig.default()
    return paper_workload(config, ccr=2.0, n_procs=16, rng=12345)


@pytest.mark.parametrize("algo", sorted(SCHEDULERS))
def test_scheduler_runtime(benchmark, workload, algo):
    scheduler_cls = SCHEDULERS[algo]
    result = benchmark(lambda: scheduler_cls().schedule(workload.graph, workload.net))
    assert result.makespan > 0


@pytest.mark.parametrize("n_tasks", [25, 50, 100])
def test_oihsa_scaling_with_tasks(benchmark, n_tasks):
    from repro.network.builders import random_wan
    from repro.taskgraph.ccr import scale_to_ccr
    from repro.taskgraph.generators import random_layered_dag

    graph = scale_to_ccr(random_layered_dag(n_tasks, rng=1, density=0.05), 2.0)
    net = random_wan(16, rng=2)
    scheduler_cls = SCHEDULERS["oihsa"]
    result = benchmark(lambda: scheduler_cls().schedule(graph, net))
    assert result.makespan > 0
