"""Figure 1: homogeneous systems, % improvement over BA vs CCR.

Paper: improvements rise with CCR from ~5% toward ~30-40% in the mid range
and flatten/dip at very large CCR; BBSA tracks above OIHSA.  The benchmark
times the whole sweep; the regenerated series is printed next to the
published values in the session report.
"""

from repro.experiments.figures import figure1


def test_fig1_homogeneous_ccr(benchmark, homo_config, report_sink):
    result = benchmark.pedantic(figure1, args=(homo_config,), iterations=1, rounds=1)
    report_sink.append(result.to_text())
    checks = result.run_shape_checks()
    assert checks["oihsa beats BA on average"]
    assert checks["bbsa beats BA on average"]
