"""Ablation: how the improvement over BA varies across topology families.

The paper evaluates only its random WAN; this bench re-runs the comparison
on classic interconnects.  Expectation: contention-aware routing matters
most where routing *choices* exist (WAN, hypercube, torus, fat-tree) and
least where there is a single path (star/cluster) or a single resource
(bus) — there only insertion/bandwidth quality differentiates.
"""

import numpy as np
import pytest

from repro.core import SCHEDULERS
from repro.network.builders import (
    fat_tree,
    hypercube,
    random_wan,
    shared_bus,
    switched_cluster,
    torus2d,
)
from repro.taskgraph.ccr import scale_to_ccr
from repro.taskgraph.generators import random_layered_dag

TOPOLOGIES = {
    "random_wan": lambda rng: random_wan(16, rng=rng),
    "switched_cluster": lambda rng: switched_cluster(16, rng=rng),
    "torus2d": lambda rng: torus2d(4, 4, rng=rng),
    "hypercube": lambda rng: hypercube(4, rng=rng),
    "fat_tree": lambda rng: fat_tree(16, rng=rng),
    "shared_bus": lambda rng: shared_bus(16, rng=rng),
}


def _improvements(build, reps=4, ccr=2.0):
    out = {"oihsa": [], "bbsa": []}
    for rep in range(reps):
        graph = scale_to_ccr(random_layered_dag(50, rng=1000 + rep, density=0.05), ccr)
        net = build(2000 + rep)
        ba = SCHEDULERS["ba"]().schedule(graph, net).makespan
        for algo in ("oihsa", "bbsa"):
            m = SCHEDULERS[algo]().schedule(graph, net).makespan
            out[algo].append(100.0 * (ba - m) / ba)
    return {k: float(np.mean(v)) for k, v in out.items()}


@pytest.mark.parametrize("topo", sorted(TOPOLOGIES))
def test_ablation_topology(benchmark, topo, report_sink):
    result = benchmark.pedantic(
        _improvements, args=(TOPOLOGIES[topo],), iterations=1, rounds=1
    )
    report_sink.append(
        f"ablation topology[{topo}]: oihsa {result['oihsa']:+.1f}%  "
        f"bbsa {result['bbsa']:+.1f}% vs BA"
    )
    # No topology should make the contention-aware algorithms catastrophically
    # worse than BA.
    assert result["oihsa"] > -20.0
    assert result["bbsa"] > -20.0
