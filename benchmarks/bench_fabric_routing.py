"""Fabric routing cost: hierarchical lazy tables on a 1k-processor fabric.

The datacenter-fabric layer (:mod:`repro.network.fabrics`) claims that a
1024-processor leaf-spine never builds the full ``(src, dst)`` route table:
the attached :class:`~repro.network.routing.HierarchicalRouter` materializes
routes lazily into per-leaf shards, computing each analytically from the
fabric structure, and the routes are **bit-identical** to flat BFS.  This
module times three things on the fixed 1k-processor workload:

1. a BA schedule through the hierarchical router (the real consumer),
2. the same BA schedule with the router detached (flat reference) — the
   makespans must match exactly, and both go into the checksum,
3. a raw route-materialization sweep over a deterministic processor-pair
   sample, hierarchical vs flat.

The instrumented pass records the routing counters — materialized entries,
shard count, analytic fraction, ``routing.table_hits`` — and asserts the
laziness acceptance criterion (materialized entries strictly fewer than the
cross product).  The session writes ``BENCH_fabric_routing.json``; CI
compares it against the committed baseline with
``benchmarks/compare_scheduler_cost.py`` (the report shares its layout), so
any makespan or route-count drift fails the build.
"""

import hashlib
import json
from pathlib import Path
from time import perf_counter

import pytest

from repro import obs
from repro.core import SCHEDULERS
from repro.experiments.config import ExperimentConfig
from repro.experiments.workloads import paper_workload
from repro.network.routing import bfs_route

#: The fixed 1k-processor leaf-spine bench instance (64 leaves x 16 hosts).
FABRIC_ROUTING_PARAMS = {"ccr": 2.0, "n_procs": 1024, "rng": 4242}

#: Processor pairs routed by the raw-materialization sweep.
N_SAMPLE_PAIRS = 2000

_report: dict[str, dict] = {}
_routing: dict[str, object] = {}


def _workload():
    config = ExperimentConfig.default().with_(topology="leaf_spine")
    return paper_workload(config, **FABRIC_ROUTING_PARAMS)


@pytest.fixture(scope="module")
def workload():
    return _workload()


@pytest.fixture(scope="module")
def flat_workload():
    w = _workload()
    w.net.detach_router()
    return w


def _sample_pairs(net, limit=N_SAMPLE_PAIRS):
    procs = [p.vid for p in net.processors()]
    pairs = [(s, d) for s in procs for d in procs if s != d]
    step = max(1, len(pairs) // limit)
    return pairs[::step]


def _instrumented_ba(graph, net) -> dict:
    """One instrumented BA run: wall time + routing counters."""
    obs.enable(obs.NullSink())
    obs.reset()
    try:
        t0 = perf_counter()
        schedule = SCHEDULERS["ba"]().schedule(graph, net)
        wall = perf_counter() - t0
        assert schedule.makespan > 0
        counters = obs.METRICS.snapshot()["counters"]
    finally:
        obs.disable()
    return {"wall_s": wall, "makespan": schedule.makespan, "counters": counters}


def test_ba_through_hierarchical_router(benchmark, workload):
    result = benchmark(
        lambda: SCHEDULERS["ba"]().schedule(workload.graph, workload.net)
    )
    assert result.makespan > 0
    # Counters come from a fresh workload so repeated benchmark rounds (warm
    # shard tables) cannot make the numbers process-history-dependent.
    fresh = _workload()
    run = _instrumented_ba(fresh.graph, fresh.net)
    router = fresh.net.attached_router
    stats = router.stats()
    # The laziness acceptance criterion: strictly fewer materialized entries
    # than the full (src, dst) cross product, and every route analytic (a
    # leaf-spine needs no BFS fallback).
    assert 0 < stats["materialized_entries"] < stats["cross_product_entries"]
    assert stats["analytic_routes"] == stats["materialized_entries"]
    assert run["counters"].get("routing.lazy_materialized", 0) == (
        stats["materialized_entries"]
    )
    counters = run.pop("counters")
    _report["ba"] = {
        **run,
        "routing_stats": stats,
        "route_table_hits": counters.get("routing.table_hits", 0),
    }


def test_ba_flat_reference(benchmark, flat_workload):
    result = benchmark(
        lambda: SCHEDULERS["ba"]().schedule(flat_workload.graph, flat_workload.net)
    )
    assert result.makespan > 0
    fresh = _workload()
    fresh.net.detach_router()
    run = _instrumented_ba(fresh.graph, fresh.net)
    run.pop("counters")
    _report["ba_flat"] = run


def test_route_materialization_sweep(benchmark, workload):
    pairs = _sample_pairs(workload.net)

    def _route_all():
        net = _workload().net  # cold shard tables every round
        return sum(len(bfs_route(net, s, d)) for s, d in pairs)

    total_hops = benchmark(_route_all)
    assert total_hops > 0
    net = _workload().net
    t0 = perf_counter()
    hier_hops = sum(len(bfs_route(net, s, d)) for s, d in pairs)
    hier_wall = perf_counter() - t0
    stats = net.attached_router.stats()
    assert stats["materialized_entries"] == len(pairs)
    flat = _workload().net
    flat.detach_router()
    t0 = perf_counter()
    flat_hops = sum(len(bfs_route(flat, s, d)) for s, d in pairs)
    flat_wall = perf_counter() - t0
    assert hier_hops == flat_hops  # identical routes, pair for pair
    _routing.update(
        {
            "sampled_pairs": len(pairs),
            "total_hops": hier_hops,
            "hierarchical_wall_s": hier_wall,
            "flat_wall_s": flat_wall,
            "materialized_entries": stats["materialized_entries"],
            "cross_product_entries": stats["cross_product_entries"],
            "shards": stats["shards"],
        }
    )


def makespan_checksum(report: dict[str, dict]) -> str:
    """Same digest as ``bench_scheduler_cost.makespan_checksum``.

    (Duplicated rather than imported — ``benchmarks`` is not a package.)
    """
    lines = sorted(f"{algo}={report[algo]['makespan']!r}" for algo in report)
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def _finalize(report: dict[str, dict]) -> dict:
    hier = report.get("ba")
    flat = report.get("ba_flat")
    if hier is not None and flat is not None:
        # Bit-identity between routed and flat scheduling is the fabric
        # layer's core claim: fail loudly, don't just record drift.
        assert hier["makespan"] == flat["makespan"], (
            f"hierarchical makespan {hier['makespan']!r} != "
            f"flat {flat['makespan']!r}"
        )
    return {
        "algorithms": report,
        "makespan_checksum": makespan_checksum(report),
        "params": FABRIC_ROUTING_PARAMS,
        "routing": _routing,
    }


@pytest.fixture(scope="module", autouse=True)
def _write_report():
    """After the module's benchmarks, dump the instrumented comparison."""
    yield
    if not _report:
        return
    out = Path("BENCH_fabric_routing.json")
    out.write_text(json.dumps(_finalize(_report), indent=1, sort_keys=True))
    print(f"\nwrote fabric-routing cost comparison to {out.resolve()}")
