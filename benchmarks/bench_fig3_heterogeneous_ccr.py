"""Figure 3: heterogeneous systems (speeds U(1,10)), % improvement vs CCR.

Paper: same rising-then-flattening shape as Figure 1 but with larger
improvements (~10-60%): the contention-aware routing exploits the speed
spread, and BBSA soaks up spare bandwidth on fast links.
"""

from repro.experiments.figures import figure3


def test_fig3_heterogeneous_ccr(benchmark, hetero_config, report_sink):
    result = benchmark.pedantic(figure3, args=(hetero_config,), iterations=1, rounds=1)
    report_sink.append(result.to_text())
    checks = result.run_shape_checks()
    assert checks["oihsa beats BA on average"]
    assert checks["bbsa beats BA on average"]
