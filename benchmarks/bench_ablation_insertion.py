"""Ablation: optimal insertion (deferral, Theorem 1) vs basic insertion.

Identical routing and edge order; the only difference is whether existing
slots may slip within their causality slack to open earlier gaps.
"""

from repro.experiments.ablations import run_ablation


def test_ablation_insertion(benchmark, homo_config, report_sink):
    result = benchmark.pedantic(
        run_ablation,
        args=("insertion", homo_config),
        kwargs={"ccr": 2.0, "n_procs": 16},
        iterations=1,
        rounds=1,
    )
    imp = result.improvements["optimal-insertion"]
    report_sink.append(
        f"ablation insertion: optimal vs basic insertion = {imp:+.1f}% makespan"
    )
    # Optimal insertion dominates basic insertion per edge; in aggregate a
    # greedy schedule may reshuffle, but large regressions indicate a bug.
    assert imp > -10.0
