"""Paper-scale CCR sweep: |V| up to 1000 on a 128-processor fabric.

The figure benches run the scaled-down ``ExperimentConfig.default()`` grid
(tasks U(40, 120)); this module runs the published Section 6 problem *size*
— task counts U(40, 1000), 128 processors, the full CCR grid 0.1–10 — on a
leaf-spine fabric, through the deterministic parallel runner
(:mod:`repro.experiments.parallel`).  It exists to demonstrate that the
paper-scale points are tractable end to end and to pin their results:

- ``makespan_checksum`` digests **every unit's per-algorithm makespan**
  (repr-exact, order-fixed), so any engine drift at paper scale fails the
  comparison even where the aggregated improvement means would hide it.
- Makespans are kernel-independent by the bit-identity contract
  (``tests/test_batch_equivalence.py``), so the checksum reproduces with or
  without the AOT-built kernel; wall time is reported, never gated.

Repetitions default to 2 (the full 5 takes hours single-core) — override
with ``REPRO_PAPER_SWEEP_REPS``; worker count with ``REPRO_PAPER_SWEEP_JOBS``.
The session writes ``BENCH_paper_sweep.json`` to the working directory; the
committed copy is the baseline CI uploads as an artifact and compares
checksums against.
"""

import hashlib
import json
import os
from pathlib import Path
from time import perf_counter

from repro.core.kernelreg import kernel_provenance
from repro.experiments.config import PAPER_CCRS, ExperimentConfig
from repro.experiments.parallel import (
    collect_telemetry,
    execute_units,
    merge_unit_results,
    plan_sweep,
)

REPS = int(os.environ.get("REPRO_PAPER_SWEEP_REPS", 2))
JOBS = int(os.environ.get("REPRO_PAPER_SWEEP_JOBS", min(4, os.cpu_count() or 1)))


def _config() -> ExperimentConfig:
    """The published problem size on a datacenter fabric."""
    return ExperimentConfig(
        ccrs=PAPER_CCRS,
        proc_counts=(128,),
        task_range=(40, 1000),
        repetitions=REPS,
        topology="leaf_spine",
    )


def unit_makespan_checksum(results) -> str:
    """Digest of every unit's per-algorithm makespan, repr-exact.

    Finer-grained than the figure benches' per-series checksum: a drift in
    any single instance fails, even if the point means happen to agree.
    """
    lines = [
        f"{res.index}:{algo}={res.makespans[algo]!r}"
        for res in sorted(results, key=lambda r: r.index)
        for algo in sorted(res.makespans)
    ]
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def test_paper_scale_sweep():
    config = _config()
    x_values, units = plan_sweep(config, "ccr")
    assert len(units) == len(PAPER_CCRS) * REPS

    t0 = perf_counter()
    results = execute_units(config, units, jobs=JOBS)
    wall = perf_counter() - t0
    assert len(results) == len(units)

    series = merge_unit_results(config, x_values, results)
    telemetry = collect_telemetry(results)
    # The paper's qualitative claim must hold at published scale: the
    # contention-aware schedulers beat BA somewhere on the CCR grid.
    assert any(v > 0 for v in series["oihsa"]) and any(v > 0 for v in series["bbsa"])

    doc = {
        "sweep": {
            "ccrs": list(PAPER_CCRS),
            "n_procs": 128,
            "task_range": [40, 1000],
            "topology": config.topology,
            "repetitions": REPS,
            "algorithms": list(config.algorithms),
            "seed": config.seed,
        },
        "units": len(results),
        "jobs": JOBS,
        "wall_s": wall,
        "unit_wall_s": {
            "mean": wall / len(results),
            "max": max(r.wall_s or 0.0 for r in results),
        },
        "makespan_checksum": unit_makespan_checksum(results),
        "improvement_series": series,
        "kernel_provenance": kernel_provenance("auto"),
        "telemetry": telemetry.summary_dict(),
    }
    out = Path("BENCH_paper_sweep.json")
    out.write_text(json.dumps(doc, indent=1, sort_keys=True))
    print(
        f"\n{len(results)} paper-scale units in {wall:.1f}s "
        f"(jobs={JOBS}); wrote {out.resolve()}"
    )
