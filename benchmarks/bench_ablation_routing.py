"""Ablation: modified (contention-aware Dijkstra) routing vs BFS routing.

Holds everything else fixed (basic insertion, source-id edge order, MLS
placement) and toggles only the routing policy — how much of OIHSA's win is
the load-adaptive route choice alone?
"""

from repro.experiments.ablations import run_ablation


def test_ablation_routing(benchmark, homo_config, report_sink):
    result = benchmark.pedantic(
        run_ablation,
        args=("routing", homo_config),
        kwargs={"ccr": 2.0, "n_procs": 16},
        iterations=1,
        rounds=1,
    )
    imp = result.improvements["modified-routing"]
    report_sink.append(
        f"ablation routing: modified routing vs BFS = {imp:+.1f}% makespan"
    )
    # Load-adaptive routing must not lose badly to static BFS on a WAN.
    assert imp > -10.0
