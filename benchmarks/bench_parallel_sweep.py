"""Sweep throughput: serial vs process-pool fan-out, cold vs warm cache.

Times a full ``improvement_series`` CCR sweep four ways — serial, parallel
(``jobs=N``), cache-cold, cache-warm — asserts all four outputs are
identical (the determinism contract), and writes the measurements to
``BENCH_parallel_sweep.json`` in the working directory.  The cache-warm
rerun must be at least 5x faster than the cold run: replaying a sweep from
cache is pure JSON reads, so a warm figure regeneration is effectively free.

Scale via ``REPRO_BENCH_SCALE`` (smoke/default/paper) like the figure
benchmarks; jobs via ``REPRO_BENCH_JOBS`` (default: up to 4 workers).
"""

import json
import os
from pathlib import Path
from time import perf_counter

from repro.experiments import ExperimentConfig, ResultCache, improvement_series

SCALE = os.environ.get("REPRO_BENCH_SCALE", "smoke")
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", min(4, os.cpu_count() or 1)))


def _config() -> ExperimentConfig:
    if SCALE == "paper":
        return ExperimentConfig.paper_scale()
    if SCALE == "default":
        return ExperimentConfig.default()
    return ExperimentConfig.smoke()


def _timed(**kwargs):
    t0 = perf_counter()
    series = improvement_series(_config(), sweep="ccr", **kwargs)
    return series, perf_counter() - t0


def test_parallel_sweep_and_cache_speedup(tmp_path):
    serial, serial_s = _timed()
    parallel, parallel_s = _timed(jobs=JOBS)
    assert parallel == serial, "jobs=N must be bit-identical to serial"

    cache_dir = tmp_path / "cache"
    cold_cache = ResultCache(cache_dir)
    cold, cold_s = _timed(cache=cold_cache)
    warm_cache = ResultCache(cache_dir)
    warm, warm_s = _timed(cache=warm_cache)
    assert cold == serial and warm == serial
    assert warm_cache.stats.misses == 0 and warm_cache.stats.hits > 0

    warm_speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    doc = {
        "scale": SCALE,
        "jobs": JOBS,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "parallel_speedup": serial_s / parallel_s if parallel_s > 0 else None,
        "cache_cold_s": cold_s,
        "cache_warm_s": warm_s,
        "warm_speedup": None if warm_speedup == float("inf") else warm_speedup,
        "cache_records": cold_cache.stats.writes,
        "outputs_identical": True,
    }
    out = Path("BENCH_parallel_sweep.json")
    out.write_text(json.dumps(doc, indent=1, sort_keys=True))
    print(
        f"\nserial {serial_s:.2f}s | jobs={JOBS} {parallel_s:.2f}s | "
        f"cache cold {cold_s:.2f}s -> warm {warm_s:.3f}s "
        f"({warm_speedup:.0f}x); wrote {out.resolve()}"
    )
    assert warm_speedup >= 5.0, (
        f"cache-warm rerun only {warm_speedup:.1f}x faster than cold"
    )
