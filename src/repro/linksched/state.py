"""Per-link schedule state with undo-log transactions and indexed queues.

Schedulers repeatedly ask "what if I scheduled this task's communications
toward processor P?" (BA probes every processor).  Rather than copying every
touched queue on first write (the original copy-on-write scheme, retained as
the differential-test reference in ``tests/naive_reference.py``), each write
appends its exact inverse to an **undo log**: rollback replays the log in
reverse, so its cost is O(writes made in the transaction) — independent of
how many slots sit on the touched links — and commit simply drops the log.

Each :class:`_LinkQueue` also keeps parallel ``starts``/``finishes`` arrays
(for the bisecting gap search in :func:`repro.linksched.slots.find_gap_indexed`)
and a monotone **version counter**, bumped on every mutation including undo
replay.  ``(lid, version)`` therefore uniquely identifies queue content for
the lifetime of the state, which is what makes the routing probe memo in
:mod:`repro.core.oihsa` / :mod:`repro.core.bbsa` safe: a memo entry keyed by
``(lid, version, t, cost)`` can never serve a stale answer.

Besides the single-shot transactions, a state can run in **journal mode**
(:meth:`LinkScheduleState.enable_journal`): the undo log is kept open for the
state's whole lifetime and :meth:`journal_mark` / :meth:`rollback_to` expose
positions in it as restorable checkpoints.  This is what the incremental
mapping evaluator (:mod:`repro.core.incremental`) builds its prefix
checkpoints from: rewinding to any earlier mark costs O(writes undone),
independent of how many slots sit on the touched links.  Journal mode and
transactions are mutually exclusive — they would share the same log.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

from repro.exceptions import SchedulingError
from repro.linksched.commmodel import CommModel
from repro.linksched.slots import TimeSlot, find_gap_indexed, insert_slot
from repro.network.topology import Route
from repro.obs import OBS
from repro.types import EdgeKey, LinkId


@dataclass
class _LinkQueue:
    """One link's bookings: a sorted slot list plus derived indexes.

    ``starts``/``finishes`` mirror ``slots`` (``starts[i] is slots[i].start``)
    so gap searches bisect plain float arrays instead of walking objects.
    ``version`` increments on every mutation — including rollback replay —
    and never repeats, so ``(lid, version)`` keys probe memos safely.
    """

    slots: list[TimeSlot] = field(default_factory=list)
    by_edge: dict[EdgeKey, TimeSlot] = field(default_factory=dict)
    starts: list[float] = field(default_factory=list)
    finishes: list[float] = field(default_factory=list)
    version: int = 0

    def copy(self) -> "_LinkQueue":
        return _LinkQueue(
            list(self.slots),
            dict(self.by_edge),
            list(self.starts),
            list(self.finishes),
            self.version,
        )


#: shared empty view for links that were never booked
_EMPTY_ARRAYS: tuple[list[TimeSlot], list[float], list[float]] = ([], [], [])

# Undo-log entry tags (first tuple element).
_OP_INSERT = 0  # (tag, lid, index)                 -> remove slots[index]
_OP_SUFFIX = 1  # (tag, lid, index, old_suffix)     -> restore slots[index:]
_OP_ROUTE = 2   # (tag, edge, route)                -> forget the route


class LinkScheduleState:
    """All link queues plus per-edge route bookkeeping."""

    def __init__(self) -> None:
        self._queues: dict[LinkId, _LinkQueue] = {}
        self._routes: dict[EdgeKey, tuple[LinkId, ...]] = {}
        #: ``(edge, lid) -> NL(e, L)`` — built by :meth:`record_route` so the
        #: deferral slack computation is O(1) instead of ``route.index``.
        self._next_link: dict[tuple[EdgeKey, LinkId], LinkId | None] = {}
        self._undo: list[tuple] | None = None
        self._journaling = False

    # -- transactions --------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self._undo is not None and not self._journaling

    def begin(self) -> None:
        """Start a tentative-scheduling transaction (no nesting)."""
        if self._undo is not None:
            if self._journaling:
                raise SchedulingError("state is in journal mode; transactions unavailable")
            raise SchedulingError("link-schedule transaction already open")
        self._undo = []

    def commit(self) -> None:
        """Keep all changes made since :meth:`begin`."""
        if self._undo is None or self._journaling:
            raise SchedulingError("no open link-schedule transaction")
        self._undo = None

    def rollback(self) -> None:
        """Discard all changes made since :meth:`begin` (O(writes made))."""
        undo = self._undo
        if undo is None or self._journaling:
            raise SchedulingError("no open link-schedule transaction")
        for entry in reversed(undo):
            self._replay_inverse(entry)
        self._undo = None

    # -- journal mode ---------------------------------------------------------

    @property
    def journaling(self) -> bool:
        return self._journaling

    def enable_journal(self) -> None:
        """Record an inverse for every write for the state's whole lifetime.

        Unlike a transaction (one open undo log, dropped on commit), the
        journal never closes: :meth:`journal_mark` captures the current log
        position and :meth:`rollback_to` rewinds the state to any earlier
        mark, replaying inverses newest-first.  Once enabled, ``begin()`` /
        ``commit()`` / ``rollback()`` raise — both schemes would contend for
        the same log.
        """
        if self._undo is not None:
            raise SchedulingError(
                "cannot enable journal: transaction open or journal already enabled"
            )
        self._undo = []
        self._journaling = True

    def journal_mark(self) -> int:
        """The current journal position; pass to :meth:`rollback_to`."""
        if self._undo is None or not self._journaling:
            raise SchedulingError("journal mode is not enabled")
        return len(self._undo)

    def rollback_to(self, mark: int) -> None:
        """Rewind to an earlier :meth:`journal_mark` (O(writes undone))."""
        undo = self._undo
        if undo is None or not self._journaling:
            raise SchedulingError("journal mode is not enabled")
        if not 0 <= mark <= len(undo):
            raise SchedulingError(
                f"journal mark {mark} out of range [0, {len(undo)}]"
            )
        # Journal rewinds undo long slot streams (the incremental evaluator's
        # suffix re-simulations), so the dominant ``_OP_INSERT`` case is
        # inlined; rarer entries fall through to the shared replay.
        queues = self._queues
        while len(undo) > mark:
            entry = undo.pop()
            if entry[0] == _OP_INSERT:
                _, lid, index = entry
                queue = queues[lid]
                slot = queue.slots.pop(index)
                del queue.starts[index]
                del queue.finishes[index]
                del queue.by_edge[slot.edge]
                queue.version += 1
            else:
                self._replay_inverse(entry)

    def _replay_inverse(self, entry: tuple) -> None:
        """Undo one logged write (shared by rollback and journal rewind)."""
        tag = entry[0]
        if tag == _OP_INSERT:
            _, lid, index = entry
            queue = self._queues[lid]
            slot = queue.slots.pop(index)
            del queue.starts[index]
            del queue.finishes[index]
            del queue.by_edge[slot.edge]
            queue.version += 1
        elif tag == _OP_SUFFIX:
            _, lid, index, old_suffix = entry
            queue = self._queues[lid]
            for s in queue.slots[index:]:
                del queue.by_edge[s.edge]
            for s in old_suffix:
                queue.by_edge[s.edge] = s
            queue.slots[index:] = old_suffix
            queue.starts[index:] = [s.start for s in old_suffix]
            queue.finishes[index:] = [s.finish for s in old_suffix]
            queue.version += 1
        else:  # _OP_ROUTE
            _, edge, route = entry
            del self._routes[edge]
            next_link = self._next_link
            for lid in route:
                next_link.pop((edge, lid), None)

    def _queue(self, lid: LinkId) -> _LinkQueue:
        queue = self._queues.get(lid)
        if queue is None:
            # A queue created inside a transaction is simply left empty on
            # rollback (indistinguishable from an absent one).
            queue = _LinkQueue()
            self._queues[lid] = queue
        return queue

    # -- reads ----------------------------------------------------------------

    def slots(self, lid: LinkId) -> list[TimeSlot]:
        """The link's booking queue (treat as read-only)."""
        queue = self._queues.get(lid)
        return queue.slots if queue is not None else []

    def queue_arrays(
        self, lid: LinkId
    ) -> tuple[list[TimeSlot], list[float], list[float]]:
        """``(slots, starts, finishes)`` views for index-based scans."""
        queue = self._queues.get(lid)
        if queue is None:
            return _EMPTY_ARRAYS
        return queue.slots, queue.starts, queue.finishes

    def version(self, lid: LinkId) -> int:
        """Monotone mutation counter of the link's queue (0 if never booked)."""
        queue = self._queues.get(lid)
        return queue.version if queue is not None else 0

    def find_gap(
        self, lid: LinkId, duration: float, est: float, min_finish: float = 0.0
    ) -> tuple[int, float, float]:
        """Earliest placement on link ``lid`` via the indexed gap search.

        Bit-identical to ``find_gap(self.slots(lid), ...)`` — the linear
        reference — but ``O(log k + gaps examined)``.
        """
        queue = self._queues.get(lid)
        if queue is None:
            if duration < 0:
                raise SchedulingError(f"negative duration {duration}")
            if est < 0:
                raise SchedulingError(f"negative earliest start time {est}")
            floor = min_finish - duration
            start = est if est >= floor else floor
            return 0, start, start + duration
        return find_gap_indexed(queue.starts, queue.finishes, duration, est, min_finish)

    def slot_of(self, edge: EdgeKey, lid: LinkId) -> TimeSlot:
        """The slot edge ``edge`` occupies on link ``lid``."""
        queue = self._queues.get(lid)
        if queue is None or edge not in queue.by_edge:
            raise SchedulingError(f"edge {edge} has no slot on link {lid}")
        return queue.by_edge[edge]

    def has_slot(self, edge: EdgeKey, lid: LinkId) -> bool:
        queue = self._queues.get(lid)
        return queue is not None and edge in queue.by_edge

    def route_of(self, edge: EdgeKey) -> tuple[LinkId, ...]:
        """The committed route of a scheduled edge."""
        try:
            return self._routes[edge]
        except KeyError:
            raise SchedulingError(f"edge {edge} has no recorded route") from None

    def has_route(self, edge: EdgeKey) -> bool:
        return edge in self._routes

    def routes(self) -> dict[EdgeKey, tuple[LinkId, ...]]:
        return dict(self._routes)

    def next_link_of(self, edge: EdgeKey, lid: LinkId) -> LinkId | None:
        """``NL(e, L)``: the link after ``lid`` on ``edge``'s route (None at tail)."""
        try:
            return self._next_link[(edge, lid)]
        except KeyError:
            self.route_of(edge)  # raises when the edge has no route at all
            raise SchedulingError(
                f"link {lid} is not on the route of edge {edge}"
            ) from None

    def used_links(self) -> list[LinkId]:
        return [lid for lid, q in self._queues.items() if q.slots]

    # -- writes ---------------------------------------------------------------

    def record_route(self, edge: EdgeKey, route: tuple[LinkId, ...]) -> None:
        if edge in self._routes:
            raise SchedulingError(f"edge {edge} already has a recorded route")
        self._routes[edge] = route
        next_link = self._next_link
        last = len(route) - 1
        for i, lid in enumerate(route):
            key = (edge, lid)
            if key not in next_link:  # first occurrence wins, as route.index did
                next_link[key] = route[i + 1] if i < last else None
        if self._undo is not None:
            self._undo.append((_OP_ROUTE, edge, route))

    def insert(self, lid: LinkId, index: int, slot: TimeSlot) -> None:
        """Insert a new slot at a known queue position."""
        queue = self._queue(lid)
        if slot.edge in queue.by_edge:
            raise SchedulingError(f"edge {slot.edge} already booked on link {lid}")
        insert_slot(queue.slots, index, slot)
        queue.starts.insert(index, slot.start)
        queue.finishes.insert(index, slot.finish)
        queue.by_edge[slot.edge] = slot
        queue.version += 1
        if self._undo is not None:
            self._undo.append((_OP_INSERT, lid, index))

    def replace_suffix(self, lid: LinkId, index: int, new_suffix: list[TimeSlot]) -> None:
        """Replace ``slots[index:]`` — used by OIHSA's deferral cascade.

        The new suffix may contain one new slot plus deferred (shifted) copies
        of the old ones; the ``by_edge`` index is rebuilt for affected edges.
        """
        queue = self._queue(lid)
        if index == len(queue.slots) and len(new_suffix) == 1:
            # Plain append — by far the most common deferral-free commit.
            s = new_suffix[0]
            if s.edge in queue.by_edge:
                raise SchedulingError(f"edge {s.edge} booked twice on link {lid}")
            queue.by_edge[s.edge] = s
            queue.slots.append(s)
            queue.starts.append(s.start)
            queue.finishes.append(s.finish)
            queue.version += 1
            if self._undo is not None:
                self._undo.append((_OP_SUFFIX, lid, index, []))
            return
        old_suffix = queue.slots[index:]
        removed = {s.edge for s in old_suffix}
        seen: set[EdgeKey] = set()
        for s in new_suffix:
            if (s.edge in queue.by_edge and s.edge not in removed) or s.edge in seen:
                raise SchedulingError(f"edge {s.edge} booked twice on link {lid}")
            seen.add(s.edge)
        for s in old_suffix:
            del queue.by_edge[s.edge]
        for s in new_suffix:
            queue.by_edge[s.edge] = s
        queue.slots[index:] = new_suffix
        queue.starts[index:] = [s.start for s in new_suffix]
        queue.finishes[index:] = [s.finish for s in new_suffix]
        queue.version += 1
        if self._undo is not None:
            self._undo.append((_OP_SUFFIX, lid, index, old_suffix))

    def book_edge_basic(
        self,
        edge: EdgeKey,
        route: Route,
        cost: float,
        ready_time: float,
        comm: CommModel,
        *,
        record: bool = True,
    ) -> float:
        """Fused :func:`repro.linksched.insertion.schedule_edge_basic`.

        Bit-identical results and counters, one call: the per-link probe /
        insert / causality-constraint steps run inline against the queue
        arrays instead of through four layers of method dispatch, which is
        what the incremental mapping evaluator's suffix loop spends its time
        on.  Checks that cannot fire are dropped, provably no-ops: the
        per-link non-negative ``est`` check (``next_constraints`` of a valid
        slot is non-negative) and the insert-position overlap assertions
        (the gap search returns non-overlapping placements by construction).

        With ``record=False`` the edge's route is *not* recorded — the
        evaluator's score-only passes never read routes and skipping them
        keeps the journal (and its rewind cost) to slot inserts; any pass
        that materializes a :class:`~repro.core.schedule.Schedule` must
        record.
        """
        if ready_time < 0:
            raise SchedulingError(f"negative ready time {ready_time}")
        if cost < 0:
            raise SchedulingError(f"negative communication cost {cost}")
        if not route or cost <= 0:
            if record:
                self.record_route(edge, ())
            return ready_time
        if record:
            self.record_route(edge, tuple(l.lid for l in route))
        queues = self._queues
        undo = self._undo
        obs_on = OBS.on
        probes_c = None
        if obs_on:
            probes_c = OBS.metrics.counter("insertion.probes")
        cut_through = comm.mode == "cut-through"
        hop = comm.hop_delay
        est = ready_time
        min_finish = 0.0
        finish = ready_time
        for link in route:
            if probes_c is not None:
                probes_c.inc()
            lid = link.lid
            queue = queues.get(lid)
            if queue is None:
                queue = _LinkQueue()
                queues[lid] = queue
            duration = cost / link.speed
            starts = queue.starts
            finishes = queue.finishes
            # Inlined ``find_gap_indexed`` (bit-identical arithmetic; its
            # negative duration/est validations are hoisted above — both are
            # non-negative by construction past the first link).
            floor = min_finish - duration
            lo = est if est >= floor else floor
            n = len(starts)
            i = bisect_left(starts, lo + duration)
            prev_finish = finishes[i - 1] if i > 0 else 0.0
            while True:
                start = prev_finish if prev_finish > lo else lo
                finish = start + duration
                if i >= n or finish <= starts[i]:
                    break
                prev_finish = finishes[i]
                i += 1
            by_edge = queue.by_edge
            if edge in by_edge:
                raise SchedulingError(f"edge {edge} already booked on link {lid}")
            # Direct tuple construction: the gap search guarantees
            # ``finish >= start >= 0`` (``start >= est >= 0``), so the
            # validating ``TimeSlot.__new__`` cannot fire here.
            slot = tuple.__new__(TimeSlot, (edge, start, finish))
            queue.slots.insert(i, slot)
            starts.insert(i, start)
            finishes.insert(i, finish)
            by_edge[edge] = slot
            queue.version += 1
            if undo is not None:
                undo.append((_OP_INSERT, lid, i))
            if cut_through:
                est = start + hop
                min_finish = finish + hop
            else:
                est = finish + hop
                min_finish = 0.0
        if obs_on:
            OBS.metrics.counter("insertion.edges_scheduled").inc()
            if not OBS.bus.quieted:
                OBS.emit(
                    "edge_scheduled",
                    t=finish,
                    edge=list(edge),
                    policy="basic",
                    links=[l.lid for l in route],
                    ready=ready_time,
                    arrival=finish,
                )
        return finish
