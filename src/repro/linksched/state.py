"""Per-link schedule state with copy-on-write transactions.

Schedulers repeatedly ask "what if I scheduled this task's communications
toward processor P?" (BA probes every processor).  Rather than deep-copying
all link queues per probe, :class:`LinkScheduleState` supports a single-level
transaction: the first write to a link inside the transaction stashes the
original queue object and replaces it with a copy, so rollback is O(links
touched) and commit is O(1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import SchedulingError
from repro.linksched.slots import TimeSlot
from repro.types import EdgeKey, LinkId


@dataclass
class _LinkQueue:
    """One link's bookings: a sorted slot list plus an edge->slot index."""

    slots: list[TimeSlot] = field(default_factory=list)
    by_edge: dict[EdgeKey, TimeSlot] = field(default_factory=dict)

    def copy(self) -> "_LinkQueue":
        return _LinkQueue(list(self.slots), dict(self.by_edge))


class LinkScheduleState:
    """All link queues plus per-edge route bookkeeping."""

    def __init__(self) -> None:
        self._queues: dict[LinkId, _LinkQueue] = {}
        self._routes: dict[EdgeKey, tuple[LinkId, ...]] = {}
        self._txn_queues: dict[LinkId, _LinkQueue] | None = None
        self._txn_routes: list[EdgeKey] | None = None

    # -- transactions --------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self._txn_queues is not None

    def begin(self) -> None:
        """Start a tentative-scheduling transaction (no nesting)."""
        if self._txn_queues is not None:
            raise SchedulingError("link-schedule transaction already open")
        self._txn_queues = {}
        self._txn_routes = []

    def commit(self) -> None:
        """Keep all changes made since :meth:`begin`."""
        if self._txn_queues is None:
            raise SchedulingError("no open link-schedule transaction")
        self._txn_queues = None
        self._txn_routes = None

    def rollback(self) -> None:
        """Discard all changes made since :meth:`begin`."""
        if self._txn_queues is None or self._txn_routes is None:
            raise SchedulingError("no open link-schedule transaction")
        for lid, original in self._txn_queues.items():
            self._queues[lid] = original
        for edge in self._txn_routes:
            del self._routes[edge]
        self._txn_queues = None
        self._txn_routes = None

    def _writable(self, lid: LinkId) -> _LinkQueue:
        queue = self._queues.get(lid)
        if queue is None:
            queue = _LinkQueue()
            self._queues[lid] = queue
            if self._txn_queues is not None and lid not in self._txn_queues:
                # Remember the link was empty before the transaction.
                self._txn_queues[lid] = _LinkQueue()
            return queue
        if self._txn_queues is not None and lid not in self._txn_queues:
            self._txn_queues[lid] = queue
            queue = queue.copy()
            self._queues[lid] = queue
        return queue

    # -- reads ----------------------------------------------------------------

    def slots(self, lid: LinkId) -> list[TimeSlot]:
        """The link's booking queue (treat as read-only)."""
        queue = self._queues.get(lid)
        return queue.slots if queue is not None else []

    def slot_of(self, edge: EdgeKey, lid: LinkId) -> TimeSlot:
        """The slot edge ``edge`` occupies on link ``lid``."""
        queue = self._queues.get(lid)
        if queue is None or edge not in queue.by_edge:
            raise SchedulingError(f"edge {edge} has no slot on link {lid}")
        return queue.by_edge[edge]

    def has_slot(self, edge: EdgeKey, lid: LinkId) -> bool:
        queue = self._queues.get(lid)
        return queue is not None and edge in queue.by_edge

    def route_of(self, edge: EdgeKey) -> tuple[LinkId, ...]:
        """The committed route of a scheduled edge."""
        try:
            return self._routes[edge]
        except KeyError:
            raise SchedulingError(f"edge {edge} has no recorded route") from None

    def has_route(self, edge: EdgeKey) -> bool:
        return edge in self._routes

    def routes(self) -> dict[EdgeKey, tuple[LinkId, ...]]:
        return dict(self._routes)

    def next_link_of(self, edge: EdgeKey, lid: LinkId) -> LinkId | None:
        """``NL(e, L)``: the link after ``lid`` on ``edge``'s route (None at tail)."""
        route = self.route_of(edge)
        try:
            i = route.index(lid)
        except ValueError:
            raise SchedulingError(f"link {lid} is not on the route of edge {edge}") from None
        return route[i + 1] if i + 1 < len(route) else None

    def used_links(self) -> list[LinkId]:
        return [lid for lid, q in self._queues.items() if q.slots]

    # -- writes ---------------------------------------------------------------

    def record_route(self, edge: EdgeKey, route: tuple[LinkId, ...]) -> None:
        if edge in self._routes:
            raise SchedulingError(f"edge {edge} already has a recorded route")
        self._routes[edge] = route
        if self._txn_routes is not None:
            self._txn_routes.append(edge)

    def insert(self, lid: LinkId, index: int, slot: TimeSlot) -> None:
        """Insert a new slot at a known queue position."""
        from repro.linksched.slots import insert_slot

        queue = self._writable(lid)
        if slot.edge in queue.by_edge:
            raise SchedulingError(f"edge {slot.edge} already booked on link {lid}")
        insert_slot(queue.slots, index, slot)
        queue.by_edge[slot.edge] = slot

    def replace_suffix(self, lid: LinkId, index: int, new_suffix: list[TimeSlot]) -> None:
        """Replace ``slots[index:]`` — used by OIHSA's deferral cascade.

        The new suffix may contain one new slot plus deferred (shifted) copies
        of the old ones; the ``by_edge`` index is rebuilt for affected edges.
        """
        queue = self._writable(lid)
        old_suffix = queue.slots[index:]
        for s in old_suffix:
            del queue.by_edge[s.edge]
        for s in new_suffix:
            if s.edge in queue.by_edge:
                raise SchedulingError(f"edge {s.edge} booked twice on link {lid}")
            queue.by_edge[s.edge] = s
        queue.slots[index:] = new_suffix
