"""Immutable link time slots and gap-search primitives.

A link queue is a list of :class:`TimeSlot` sorted by start time, pairwise
non-overlapping (link non-preemption).  Slots are immutable; "moving" a slot
(OIHSA's deferral) replaces it, which is what makes the undo-log transactions
in :mod:`repro.linksched.state` safe.

Two gap searches produce bit-identical results:

- :func:`find_gap` — the straightforward O(k) scan from slot 0, kept as the
  readable reference (and re-used by the differential test suite),
- :func:`find_gap_indexed` — bisects parallel ``starts``/``finishes`` arrays
  (maintained by :class:`repro.linksched.state.LinkScheduleState`) to the
  first *candidate* gap, then scans only the gaps that could actually host
  the slot: ``O(log k + gaps examined)``.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from collections import namedtuple
from typing import Sequence

from repro.exceptions import SchedulingError
from repro.types import EdgeKey


class TimeSlot(namedtuple("TimeSlot", ["edge", "start", "finish"])):
    """Occupation of a link by one DAG edge over ``[start, finish)``.

    ``start`` is the paper's *virtual start time* ``t_s``: the moment from
    which the transfer uses the link's full bandwidth; ``finish`` is ``t_f``.
    ``finish - start`` always equals the edge's execution time on the link
    (``c(e) / s(L)``).

    A ``namedtuple`` rather than a dataclass: slots are created on every
    booking (and every deferral shift), and tuple construction is several
    times cheaper than frozen-dataclass ``object.__setattr__`` assignment.
    """

    __slots__ = ()

    edge: EdgeKey
    start: float
    finish: float

    def __new__(cls, edge: EdgeKey, start: float, finish: float) -> "TimeSlot":
        if not finish >= start >= 0:
            raise SchedulingError(
                f"invalid slot for edge {edge}: [{start}, {finish})"
            )
        return tuple.__new__(cls, (edge, start, finish))

    @property
    def duration(self) -> float:
        return self.finish - self.start

    def shifted(self, dt: float) -> "TimeSlot":
        # The shifted copy is validated again by ``__new__`` (a negative
        # ``dt`` larger than ``start`` must still be rejected).
        return TimeSlot(self.edge, self.start + dt, self.finish + dt)


def find_gap(
    slots: Sequence[TimeSlot],
    duration: float,
    est: float,
    min_finish: float = 0.0,
) -> tuple[int, float, float]:
    """Earliest placement of a new slot without moving existing ones.

    Finds the first idle gap able to hold a slot of ``duration`` whose start
    is ``>= est`` and whose finish is ``>= min_finish`` (the finish on the
    previous route link — causality condition).  The slot is placed as early
    as possible: ``start = max(gap start, est, min_finish - duration)``.

    Returns ``(index, start, finish)`` where ``index`` is the insertion
    position in the queue.  Always succeeds (the tail gap is unbounded).
    """
    if duration < 0:
        raise SchedulingError(f"negative duration {duration}")
    if est < 0:
        raise SchedulingError(f"negative earliest start time {est}")
    prev_finish = 0.0
    for i, slot in enumerate(slots):
        start = max(prev_finish, est, min_finish - duration)
        finish = start + duration
        if finish <= slot.start:
            return i, start, finish
        prev_finish = slot.finish
    start = max(prev_finish, est, min_finish - duration)
    return len(slots), start, start + duration


def find_gap_indexed(
    starts: Sequence[float],
    finishes: Sequence[float],
    duration: float,
    est: float,
    min_finish: float = 0.0,
) -> tuple[int, float, float]:
    """:func:`find_gap` over parallel start/finish arrays, bisecting to the
    first candidate gap.

    Any placement starts at ``>= lo = max(est, min_finish - duration)``, so
    its finish is ``>= lo + duration`` — every gap ending before that (every
    index ``i`` with ``starts[i] < lo + duration``) is infeasible and the
    scan can begin at ``bisect_left(starts, lo + duration)``.  From there the
    arithmetic is the reference scan's, so results are bit-identical.
    """
    if duration < 0:
        raise SchedulingError(f"negative duration {duration}")
    if est < 0:
        raise SchedulingError(f"negative earliest start time {est}")
    floor = min_finish - duration
    lo = est if est >= floor else floor
    n = len(starts)
    i = bisect_left(starts, lo + duration)
    prev_finish = finishes[i - 1] if i > 0 else 0.0
    while i < n:
        start = prev_finish if prev_finish > lo else lo
        finish = start + duration
        if finish <= starts[i]:
            return i, start, finish
        prev_finish = finishes[i]
        i += 1
    start = prev_finish if prev_finish > lo else lo
    return n, start, start + duration


def insert_slot(slots: list[TimeSlot], index: int, slot: TimeSlot) -> None:
    """Insert ``slot`` at ``index``, asserting the queue stays sorted/disjoint."""
    if index > 0 and slots[index - 1].finish > slot.start:
        raise SchedulingError(
            f"slot {slot} overlaps predecessor {slots[index - 1]}"
        )
    if index < len(slots) and slot.finish > slots[index].start:
        raise SchedulingError(f"slot {slot} overlaps successor {slots[index]}")
    slots.insert(index, slot)


def check_queue_invariants(slots: Sequence[TimeSlot]) -> None:
    """Assert sortedness and pairwise disjointness (used by tests/validators)."""
    for a, b in zip(slots, slots[1:]):
        if a.start > b.start or a.finish > b.start:
            raise SchedulingError(f"queue invariant violated between {a} and {b}")
    for s in slots:
        if not math.isfinite(s.start) or not math.isfinite(s.finish):
            raise SchedulingError(f"non-finite slot {s}")
