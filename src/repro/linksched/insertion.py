"""Basic insertion edge scheduling (Sinnen & Sousa's BA, paper Section 3).

For each link of the route in order, the edge is placed into the earliest
idle gap compatible with the link causality condition:

- its (virtual) start on link ``m`` is >= its start on link ``m-1``,
- its finish on link ``m`` is >= its finish on link ``m-1``
  (Lemma 1: ``t_f(e, L_m) = max(t_f(e, L_{m-1}), t_es + int)``).

Existing slots are never moved.
"""

from __future__ import annotations

from repro.exceptions import SchedulingError
from repro.linksched.commmodel import CUT_THROUGH, CommModel
from repro.linksched.slots import TimeSlot
from repro.linksched.state import LinkScheduleState
from repro.network.topology import Link, Route
from repro.obs import OBS
from repro.types import EdgeKey


def probe_basic(
    state: LinkScheduleState,
    link: Link,
    cost: float,
    est: float,
    min_finish: float = 0.0,
) -> tuple[int, float, float]:
    """Placement of a ``cost``-sized transfer on ``link`` without committing.

    Returns ``(queue index, start, finish)``.  All argument validation
    happens *before* the ``insertion.probes`` counter increments, so a
    rejected probe is never counted as work done.
    """
    if cost < 0:
        raise SchedulingError(f"negative communication cost {cost}")
    if est < 0:
        raise SchedulingError(f"negative earliest start time {est}")
    if OBS.on:
        OBS.metrics.counter("insertion.probes").inc()
    return state.find_gap(link.lid, cost / link.speed, est, min_finish)


def schedule_edge_basic(
    state: LinkScheduleState,
    edge: EdgeKey,
    route: Route,
    cost: float,
    ready_time: float,
    comm: CommModel = CUT_THROUGH,
) -> float:
    """Book ``edge`` on every link of ``route``; return its arrival time.

    ``ready_time`` is when the data leaves the source processor (the source
    task's finish time).  Zero-cost edges and empty routes (same-processor
    communication) occupy no link and arrive at ``ready_time``.  ``comm``
    selects the switching mode / hop delay (paper default: cut-through,
    no delay).
    """
    if ready_time < 0:
        raise SchedulingError(f"negative ready time {ready_time}")
    if cost < 0:
        raise SchedulingError(f"negative communication cost {cost}")
    if not route or cost <= 0:
        state.record_route(edge, ())
        return ready_time
    state.record_route(edge, tuple(l.lid for l in route))
    est = ready_time
    min_finish = 0.0
    finish = ready_time
    for link in route:
        index, start, finish = probe_basic(state, link, cost, est, min_finish)
        state.insert(link.lid, index, TimeSlot(edge, start, finish))
        est, min_finish = comm.next_constraints(start, finish)
    if OBS.on:
        OBS.metrics.counter("insertion.edges_scheduled").inc()
        OBS.emit(
            "edge_scheduled",
            t=finish,
            edge=list(edge),
            policy="basic",
            links=[l.lid for l in route],
            ready=ready_time,
            arrival=finish,
        )
    return finish


def probe_route_basic(
    state: LinkScheduleState,
    route: Route,
    cost: float,
    ready_time: float,
    comm: CommModel = CUT_THROUGH,
) -> float:
    """Arrival time the edge *would* get on ``route`` — single-edge, no commit.

    Exact only when nothing else is scheduled in between; BA's processor
    probe instead replays :func:`schedule_edge_basic` under a transaction
    because sibling edges interact on shared links.
    """
    if cost < 0:
        raise SchedulingError(f"negative communication cost {cost}")
    if not route or cost <= 0:
        return ready_time
    est = ready_time
    min_finish = 0.0
    finish = ready_time
    for link in route:
        _, start, finish = probe_basic(state, link, cost, est, min_finish)
        est, min_finish = comm.next_constraints(start, finish)
    return finish
