"""Link-causality condition checks (paper Section 2.2).

For an edge routed over ``L1 .. Ll``, both its (virtual) start times and its
finish times must be non-decreasing along the route; each slot's duration
must equal ``c(e) / s(L)``.  These checks are used by the schedule validator
and by property-based tests after every OIHSA deferral.
"""

from __future__ import annotations

from repro.exceptions import ValidationError
from repro.linksched.commmodel import CUT_THROUGH, CommModel
from repro.linksched.state import LinkScheduleState
from repro.network.topology import NetworkTopology
from repro.types import EdgeKey

#: Validation tolerance: scheduling decisions use exact-ish float arithmetic
#: with an EPS fuzz per deferral, so validators allow a slightly wider band.
CAUSALITY_EPS = 1e-6


def check_route_causality(
    state: LinkScheduleState,
    net: NetworkTopology,
    edge: EdgeKey,
    cost: float,
    ready_time: float | None = None,
    eps: float = CAUSALITY_EPS,
    comm: CommModel = CUT_THROUGH,
) -> None:
    """Raise :class:`ValidationError` if ``edge``'s booking violates the model."""
    route = state.route_of(edge)
    min_start = -float("inf")
    min_finish = -float("inf")
    for lid in route:
        link = net.link(lid)
        slot = state.slot_of(edge, lid)
        expected = cost / link.speed
        if abs(slot.duration - expected) > eps:
            raise ValidationError(
                f"edge {edge} on link {lid}: slot duration {slot.duration} != "
                f"c/s = {expected}"
            )
        if slot.start < min_start - eps:
            raise ValidationError(
                f"edge {edge} on link {lid}: start {slot.start} violates the "
                f"{comm.mode} causality bound {min_start}"
            )
        if slot.finish < min_finish - eps:
            raise ValidationError(
                f"edge {edge} on link {lid}: finish {slot.finish} precedes the "
                f"previous route link's bound {min_finish}"
            )
        min_start, min_finish = comm.next_constraints(slot.start, slot.finish)
    if ready_time is not None and route:
        first = state.slot_of(edge, route[0])
        if first.start < ready_time - eps:
            raise ValidationError(
                f"edge {edge} starts on link {route[0]} at {first.start}, before "
                f"its data is ready at {ready_time}"
            )


def check_route_connectivity(
    net: NetworkTopology,
    route: tuple[int, ...],
    src_proc: int,
    dst_proc: int,
) -> None:
    """Verify a link-id route actually walks from ``src_proc`` to ``dst_proc``.

    Follows the adjacency of each link from the current vertex; for buses the
    next vertex is ambiguous, so any member reachable by the *next* link (or
    the destination, for the last hop) is accepted.
    """
    if not route:
        if src_proc != dst_proc:
            raise ValidationError(
                f"empty route but distinct endpoints {src_proc} -> {dst_proc}"
            )
        return
    current = {src_proc}
    for i, lid in enumerate(route):
        link = net.link(lid)
        nxt: set[int] = set()
        for u in sorted(current):
            for l, v in net.out_links(u):
                if l.lid == lid:
                    nxt.add(v)
        if not nxt:
            raise ValidationError(
                f"route of {src_proc}->{dst_proc}: link {lid} (hop {i}) does not "
                f"leave any reachable vertex {sorted(current)}"
            )
        current = nxt
    if dst_proc not in current:
        raise ValidationError(
            f"route {route} from {src_proc} ends at {sorted(current)}, "
            f"not at destination {dst_proc}"
        )
