"""Array-native link/processor state for batched mapping evaluation.

The object substrate (:mod:`repro.linksched.state`) keeps each link's
bookings as a list of immutable :class:`~repro.linksched.slots.TimeSlot`
records plus derived indexes (``by_edge``, version counters) — the right
shape for the one-pass schedulers, which need per-edge lookup, routes and
rollback-safe memo keys.  The mapping-search schedulers need none of that on
their scoring path: they only ever *insert* slots, *rewind* to a shared
prefix checkpoint, and read the final processor finish times.  Carrying the
full object machinery through ~10⁵ bookings per search run is pure overhead.

This module is the stripped-down column store those scoring passes run on:

- :class:`ArrayLinkState` — per link, two plain parallel float columns
  (``starts``/``finishes``; ``starts[i]``/``finishes[i]`` are one booking).
  No slot objects, no edge index, no version counters: a booking is two
  ``list.insert`` calls.  A positional **journal** (three more parallel
  columns: queue refs + insert index) records every insert so any earlier
  state is a restorable checkpoint.
- :class:`ArrayProcState` — dense per-processor finish-time column with the
  same journal treatment.

``snapshot()`` returns the current journal length; ``restore(mark)`` pops
journal entries newest-first, deleting each booking from its columns, then
the journal columns themselves shrink back by slicing.  Cost is O(bookings
undone), independent of queue lengths — the array analogue of the object
state's :meth:`~repro.linksched.state.LinkScheduleState.rollback_to`.

The batched evaluator (:mod:`repro.core.batch`) appends to these columns
directly from its fused inner loop; the methods here exist for setup,
checkpointing and the differential tests.  Everything is scoring-only: to
materialize a full :class:`~repro.core.schedule.Schedule` the evaluator
re-runs the winning mapping through the object path, which the differential
suite proves bit-identical.
"""

from __future__ import annotations

from repro.exceptions import SchedulingError
from repro.types import LinkId

#: One link's bookings: parallel ``(starts, finishes)`` float columns,
#: sorted by start time (the gap search inserts in order).
LinkColumns = tuple[list[float], list[float]]


class ArrayLinkState:
    """Flat per-link booking columns with a positional undo journal.

    Attributes are public on purpose: the batched evaluator's hot loop
    appends to the journal columns directly instead of paying a method call
    per booking.  The invariant it must maintain is the one :meth:`restore`
    relies on: for every booking, ``journal_starts[k][journal_index[k]]`` /
    ``journal_finishes[k][journal_index[k]]`` is the inserted entry, and
    entries are journaled in insertion order.
    """

    __slots__ = ("_columns", "journal_starts", "journal_finishes", "journal_index")

    def __init__(self) -> None:
        self._columns: dict[LinkId, LinkColumns] = {}
        #: journal columns, parallel: the two queue columns written and the
        #: index written at.  ``restore`` pops them newest-first.
        self.journal_starts: list[list[float]] = []
        self.journal_finishes: list[list[float]] = []
        self.journal_index: list[int] = []

    def columns(self, lid: LinkId) -> LinkColumns:
        """The ``(starts, finishes)`` columns of ``lid``, created on first use.

        Callers keep the returned list references (e.g. in a per-route plan)
        — the columns are mutated in place, never replaced, so the refs stay
        valid for the state's lifetime.
        """
        cols = self._columns.get(lid)
        if cols is None:
            cols = ([], [])
            self._columns[lid] = cols
        return cols

    def booked_links(self) -> list[LinkId]:
        """Link ids with at least one live booking, ascending."""
        return sorted(lid for lid, (s, _f) in self._columns.items() if s)

    def snapshot(self) -> int:
        """The current journal position; pass to :meth:`restore`."""
        return len(self.journal_index)

    def restore(self, mark: int) -> None:
        """Rewind all columns to an earlier :meth:`snapshot` (O(undone))."""
        journal_index = self.journal_index
        if not 0 <= mark <= len(journal_index):
            raise SchedulingError(
                f"snapshot mark {mark} out of range [0, {len(journal_index)}]"
            )
        journal_starts = self.journal_starts
        journal_finishes = self.journal_finishes
        while len(journal_index) > mark:
            i = journal_index.pop()
            del journal_starts.pop()[i]
            del journal_finishes.pop()[i]


class ArrayProcState:
    """Dense per-processor finish-time column with a positional journal.

    The scoring pass books tasks in append mode (``start = max(processor's
    last finish, data-ready)``), so one float per processor — the running
    finish time — is the whole processor state.  The journal records the
    overwritten ``(processor, old finish)`` pair per placement.
    """

    __slots__ = ("finish", "journal_proc", "journal_finish")

    def __init__(self, n_procs: int) -> None:
        if n_procs < 1:
            raise SchedulingError(f"need at least one processor, got {n_procs}")
        #: finish time of the last task placed on each dense processor index
        self.finish: list[float] = [0.0] * n_procs
        self.journal_proc: list[int] = []
        self.journal_finish: list[float] = []

    def snapshot(self) -> int:
        """The current journal position; pass to :meth:`restore`."""
        return len(self.journal_proc)

    def restore(self, mark: int) -> None:
        """Rewind the finish column to an earlier :meth:`snapshot`."""
        journal_proc = self.journal_proc
        if not 0 <= mark <= len(journal_proc):
            raise SchedulingError(
                f"snapshot mark {mark} out of range [0, {len(journal_proc)}]"
            )
        journal_finish = self.journal_finish
        finish = self.finish
        while len(journal_proc) > mark:
            finish[journal_proc.pop()] = journal_finish.pop()

    def makespan(self) -> float:
        """Completion time of the busiest processor (0 when all idle)."""
        return max(self.finish)
