"""Array-native link/processor state (re-export of the kernel module).

The flat column stores that back batched mapping evaluation —
:class:`ArrayLinkState` (per-link parallel ``starts``/``finishes`` float
columns with a positional insert journal) and :class:`ArrayProcState`
(dense finish column, same journal treatment) — moved to
:mod:`repro.core._kernel` so the whole compilable hot loop lives in one
module (the one the optional AOT build compiles; see
``docs/performance.md``).  This module remains the stable import path for
linksched users and keeps the classes inside the ARR001/KER lint scope.
"""

from __future__ import annotations

from repro.core._kernel import ArrayLinkState, ArrayProcState, LinkColumns

__all__ = ["ArrayLinkState", "ArrayProcState", "LinkColumns"]
