"""OIHSA's optimal insertion with deferral (paper Section 4.4).

Key idea: a slot already booked on link ``m`` for edge ``e`` may be *deferred*
(started later) without violating causality, because ``e``'s booking on its
**next** route link is unchanged — the slack is (Lemma 2)::

    dt(e, L_m) = min( t_s(e, NL) - t_s(e, L_m),  t_f(e, NL) - t_f(e, L_m) )

and ``dt = 0`` when ``L_m`` is the edge's last link (deferring would delay the
already-fixed arrival).  Deferring a slot — and cascading into its successors,
which consume their own slack — opens a larger idle gap in front of it.

The insertion scan walks the queue tail -> head maintaining the paper's
``accum`` (formula (2)): the largest amount slot ``n`` can slip given its own
``dt`` and the room behind it.  A gap in front of slot ``n`` is feasible for
the new transfer iff (formula (3))::

    max(t_f(slot n-1), est) + duration'   <=   t_s(slot n) + accum_n

(where duration' accounts for the min-finish causality bound).  The head-most
feasible gap gives the earliest start (Theorem 1); committing shifts the
affected slots right by exactly the overflow, which the scan guaranteed each
can absorb.
"""

from __future__ import annotations

import math
from typing import NamedTuple

from repro.exceptions import SchedulingError
from repro.linksched.commmodel import CUT_THROUGH, CommModel
from repro.linksched.slots import TimeSlot
from repro.linksched.state import LinkScheduleState
from repro.network.topology import Link, Route
from repro.obs import OBS
from repro.types import EPS, EdgeKey


def deferrable_time(
    state: LinkScheduleState,
    lid: int,
    slot: TimeSlot,
    comm: CommModel = CUT_THROUGH,
) -> float:
    """Lemma 2: how far ``slot`` may slip on link ``lid`` without breaking causality.

    Cut-through: bounded by the next-link slot's start *and* finish (minus
    the hop delay).  Store-and-forward: bounded by the requirement that the
    next link starts only after this one finishes.
    """
    next_lid = state.next_link_of(slot.edge, lid)
    if next_lid is None:
        return 0.0
    nxt = state.slot_of(slot.edge, next_lid)
    if comm.mode == "cut-through":
        dt = min(
            nxt.start - comm.hop_delay - slot.start,
            nxt.finish - comm.hop_delay - slot.finish,
        )
    else:
        dt = nxt.start - comm.hop_delay - slot.finish
    # Causality guarantees the slack is >= 0; clamp against float fuzz.
    return max(0.0, dt)


class OptimalPlacement(NamedTuple):
    """Result of :func:`probe_optimal`: where the new slot goes and its times."""

    index: int
    start: float
    finish: float
    #: by how much the slot currently at ``index`` must be deferred (0 if none)
    overflow: float


def probe_optimal(
    state: LinkScheduleState,
    link: Link,
    cost: float,
    est: float,
    min_finish: float = 0.0,
    comm: CommModel = CUT_THROUGH,
) -> OptimalPlacement:
    """Earliest placement on ``link`` allowing deferral of existing slots.

    Pure (no commit).  Falls back to appending after the last slot when no
    deferral-assisted gap is feasible — the append position is never better
    than a feasible insertion, so the scan keeps the head-most feasible gap.
    """
    if cost < 0:
        raise SchedulingError(f"negative communication cost {cost}")
    observing = OBS.on
    if observing:
        OBS.metrics.counter("optimal.probes").inc()
    duration = cost / link.speed
    lid = link.lid
    queue = state._queues.get(lid)
    if queue is None:
        slots, starts, finishes = (), (), ()
    else:
        slots, starts, finishes = queue.slots, queue.starts, queue.finishes
    n = len(slots)
    floor = min_finish - duration
    lo = est if est >= floor else floor  # == max(est, min_finish - duration)

    # Tail placement is always feasible.  The best candidate is tracked in
    # plain locals; the OptimalPlacement is built once on return.
    tail_prev = finishes[-1] if n else 0.0
    start = tail_prev if tail_prev > lo else lo
    best_index = n
    best_start = start
    best_finish = start + duration
    best_overflow = 0.0

    # The scan calls the Lemma-2 slack once per queued slot; inline
    # :func:`deferrable_time` (same arithmetic) with the state's internals
    # hoisted, falling back to the methods only to raise their proper errors.
    next_link_map = state._next_link
    queues = state._queues
    hop = comm.hop_delay
    cut_through = comm.mode == "cut-through"

    accum = 0.0
    for i in range(n - 1, -1, -1):
        slot_start = starts[i]
        gap_after = (starts[i + 1] - finishes[i]) if i + 1 < n else math.inf
        room = accum + gap_after
        if room == 0.0:  # repro-lint: disable=FLT001 (exact-zero fast path)
            # ``min(dt, 0.0)`` is 0.0 for any slack (clamped >= 0), so the
            # slack lookups can be skipped — back-to-back slots, the common
            # case in packed queue tails, all take this branch.
            accum = 0.0
        else:
            s = slots[i]
            try:
                next_lid = next_link_map[(s.edge, lid)]
            except KeyError:
                next_lid = state.next_link_of(s.edge, lid)  # raises the seed error
            if next_lid is None:
                dt = 0.0
            else:
                try:
                    nxt = queues[next_lid].by_edge[s.edge]
                except KeyError:
                    nxt = state.slot_of(s.edge, next_lid)  # raises the seed error
                if cut_through:
                    dt = min(
                        nxt.start - hop - s.start,
                        nxt.finish - hop - s.finish,
                    )
                else:
                    dt = nxt.start - hop - s.finish
                dt = max(0.0, dt)
            accum = dt if dt < room else room
        prev_finish = finishes[i - 1] if i > 0 else 0.0
        start = prev_finish if prev_finish > lo else lo
        finish = start + duration
        if finish <= slot_start + accum + EPS:
            overflow = finish - slot_start
            if overflow < 0.0:
                overflow = 0.0
            # Head-most feasible gap == earliest start: keep scanning.
            best_index = i
            best_start = start
            best_finish = finish
            best_overflow = overflow if overflow < accum else accum
        elif observing:
            OBS.metrics.counter("optimal.gap_rejections").inc()
            OBS.emit(
                "probe_rejected",
                t=start,
                lid=lid,
                index=i,
                needed=finish,
                available=slot_start + accum,
            )
    return OptimalPlacement(best_index, best_start, best_finish, best_overflow)


def commit_optimal(
    state: LinkScheduleState,
    link: Link,
    edge: EdgeKey,
    placement: OptimalPlacement,
    comm: CommModel = CUT_THROUGH,
) -> None:
    """Apply a placement: insert the new slot and cascade deferrals.

    Each pushed slot's individual shift is asserted against its Lemma-2 slack
    (an internal invariant; a violation means the probe's ``accum`` math and
    the commit disagree — a bug, not a user error).
    """
    slots = state.slots(link.lid)
    new_slot = TimeSlot(edge, placement.start, placement.finish)
    suffix: list[TimeSlot] = [new_slot]
    prev_finish = new_slot.finish
    observing = OBS.on
    for i in range(placement.index, len(slots)):
        s = slots[i]
        if s.start + EPS >= prev_finish:
            suffix.extend(slots[i:])
            break
        delta = prev_finish - s.start
        slack = deferrable_time(state, link.lid, s, comm)
        if delta > slack + EPS:
            raise SchedulingError(
                f"deferral cascade pushed edge {s.edge} on link {link.lid} by "
                f"{delta:.12g} but its causality slack is only {slack:.12g}"
            )
        moved = s.shifted(delta)
        suffix.append(moved)
        prev_finish = moved.finish
        if observing:
            OBS.metrics.counter("optimal.deferrals").inc()
            OBS.metrics.histogram("optimal.deferral_amount").observe(delta)
            OBS.emit(
                "slot_deferred",
                t=moved.start,
                lid=link.lid,
                edge=list(s.edge),
                for_edge=list(edge),
                delta=delta,
                slack=slack,
            )
    state.replace_suffix(link.lid, placement.index, suffix)


def _schedule_edge_optimal_fast(
    state: LinkScheduleState,
    edge: EdgeKey,
    route: Route,
    cost: float,
    ready_time: float,
    comm: CommModel,
) -> float:
    """Obs-off booking loop: :func:`probe_optimal` + :func:`commit_optimal`
    fused per link.

    Bit-identical to the probe/commit pair — the scan and cascade arithmetic
    are copied verbatim (including error messages); only the per-link
    function calls, the :class:`OptimalPlacement` allocations (whose
    ``overflow`` field the commit never reads), and the observability hooks
    are dropped.
    """
    if cost < 0:
        raise SchedulingError(f"negative communication cost {cost}")
    hop = comm.hop_delay
    cut_through = comm.mode == "cut-through"
    queues = state._queues
    next_link_map = state._next_link
    est = ready_time
    min_finish = 0.0
    finish = ready_time
    for link in route:
        lid = link.lid
        duration = cost / link.speed
        queue = queues.get(lid)
        if queue is None:
            slots: list[TimeSlot] = []
            starts: list[float] = []
            finishes: list[float] = []
        else:
            slots, starts, finishes = queue.slots, queue.starts, queue.finishes
        n = len(slots)
        floor = min_finish - duration
        lo = est if est >= floor else floor
        tail_prev = finishes[-1] if n else 0.0
        start = tail_prev if tail_prev > lo else lo
        best_index = n
        best_start = start
        best_finish = start + duration
        # -- probe scan (see probe_optimal) --
        accum = 0.0
        for i in range(n - 1, -1, -1):
            slot_start = starts[i]
            gap_after = (starts[i + 1] - finishes[i]) if i + 1 < n else math.inf
            room = accum + gap_after
            if room == 0.0:  # repro-lint: disable=FLT001 (mirrors probe_optimal)
                accum = 0.0
            else:
                s = slots[i]
                try:
                    next_lid = next_link_map[(s.edge, lid)]
                except KeyError:
                    next_lid = state.next_link_of(s.edge, lid)  # raises
                if next_lid is None:
                    dt = 0.0
                else:
                    try:
                        nxt = queues[next_lid].by_edge[s.edge]
                    except KeyError:
                        nxt = state.slot_of(s.edge, next_lid)  # raises
                    if cut_through:
                        dt = min(
                            nxt.start - hop - s.start,
                            nxt.finish - hop - s.finish,
                        )
                    else:
                        dt = nxt.start - hop - s.finish
                    dt = max(0.0, dt)
                accum = dt if dt < room else room
            prev_finish = finishes[i - 1] if i > 0 else 0.0
            start = prev_finish if prev_finish > lo else lo
            fin = start + duration
            if fin <= slot_start + accum + EPS:
                best_index = i
                best_start = start
                best_finish = fin
        # -- commit cascade (see commit_optimal) --
        new_slot = TimeSlot(edge, best_start, best_finish)
        if best_index == n:
            state.replace_suffix(lid, n, [new_slot])
        else:
            suffix: list[TimeSlot] = [new_slot]
            prev_finish = best_finish
            for j in range(best_index, n):
                s = slots[j]
                if s.start + EPS >= prev_finish:
                    suffix.extend(slots[j:])
                    break
                delta = prev_finish - s.start
                slack = deferrable_time(state, lid, s, comm)
                if delta > slack + EPS:
                    raise SchedulingError(
                        f"deferral cascade pushed edge {s.edge} on link {lid} by "
                        f"{delta:.12g} but its causality slack is only {slack:.12g}"
                    )
                moved = s.shifted(delta)
                suffix.append(moved)
                prev_finish = moved.finish
            state.replace_suffix(lid, best_index, suffix)
        finish = best_finish
        if cut_through:
            est = best_start + hop
            min_finish = finish + hop
        else:
            est = finish + hop
            min_finish = 0.0
    return finish


def schedule_edge_optimal(
    state: LinkScheduleState,
    edge: EdgeKey,
    route: Route,
    cost: float,
    ready_time: float,
    comm: CommModel = CUT_THROUGH,
) -> float:
    """Book ``edge`` along ``route`` with optimal insertion; return arrival time."""
    if ready_time < 0:
        raise SchedulingError(f"negative ready time {ready_time}")
    if cost < 0:
        raise SchedulingError(f"negative communication cost {cost}")
    if not route or cost <= 0:
        state.record_route(edge, ())
        return ready_time
    state.record_route(edge, tuple(l.lid for l in route))
    if not OBS.on:
        return _schedule_edge_optimal_fast(state, edge, route, cost, ready_time, comm)
    est = ready_time
    min_finish = 0.0
    finish = ready_time
    # ``comm.next_constraints`` inlined with the model's fields hoisted out of
    # the loop (same arithmetic — see CommModel.next_constraints).
    hop = comm.hop_delay
    cut_through = comm.mode == "cut-through"
    for link in route:
        placement = probe_optimal(state, link, cost, est, min_finish, comm)
        commit_optimal(state, link, edge, placement, comm)
        finish = placement.finish
        if cut_through:
            est = placement.start + hop
            min_finish = finish + hop
        else:
            est = finish + hop
            min_finish = 0.0
    OBS.metrics.counter("insertion.edges_scheduled").inc()
    OBS.emit(
        "edge_scheduled",
        t=finish,
        edge=list(edge),
        policy="optimal",
        links=[l.lid for l in route],
        ready=ready_time,
        arrival=finish,
    )
    return finish
