"""OIHSA's optimal insertion with deferral (paper Section 4.4).

Key idea: a slot already booked on link ``m`` for edge ``e`` may be *deferred*
(started later) without violating causality, because ``e``'s booking on its
**next** route link is unchanged — the slack is (Lemma 2)::

    dt(e, L_m) = min( t_s(e, NL) - t_s(e, L_m),  t_f(e, NL) - t_f(e, L_m) )

and ``dt = 0`` when ``L_m`` is the edge's last link (deferring would delay the
already-fixed arrival).  Deferring a slot — and cascading into its successors,
which consume their own slack — opens a larger idle gap in front of it.

The insertion scan walks the queue tail -> head maintaining the paper's
``accum`` (formula (2)): the largest amount slot ``n`` can slip given its own
``dt`` and the room behind it.  A gap in front of slot ``n`` is feasible for
the new transfer iff (formula (3))::

    max(t_f(slot n-1), est) + duration'   <=   t_s(slot n) + accum_n

(where duration' accounts for the min-finish causality bound).  The head-most
feasible gap gives the earliest start (Theorem 1); committing shifts the
affected slots right by exactly the overflow, which the scan guaranteed each
can absorb.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import SchedulingError
from repro.linksched.commmodel import CUT_THROUGH, CommModel
from repro.linksched.slots import TimeSlot
from repro.linksched.state import LinkScheduleState
from repro.network.topology import Link, Route
from repro.obs import OBS
from repro.types import EPS, EdgeKey


def deferrable_time(
    state: LinkScheduleState,
    lid: int,
    slot: TimeSlot,
    comm: CommModel = CUT_THROUGH,
) -> float:
    """Lemma 2: how far ``slot`` may slip on link ``lid`` without breaking causality.

    Cut-through: bounded by the next-link slot's start *and* finish (minus
    the hop delay).  Store-and-forward: bounded by the requirement that the
    next link starts only after this one finishes.
    """
    next_lid = state.next_link_of(slot.edge, lid)
    if next_lid is None:
        return 0.0
    nxt = state.slot_of(slot.edge, next_lid)
    if comm.mode == "cut-through":
        dt = min(
            nxt.start - comm.hop_delay - slot.start,
            nxt.finish - comm.hop_delay - slot.finish,
        )
    else:
        dt = nxt.start - comm.hop_delay - slot.finish
    # Causality guarantees the slack is >= 0; clamp against float fuzz.
    return max(0.0, dt)


@dataclass(frozen=True, slots=True)
class OptimalPlacement:
    """Result of :func:`probe_optimal`: where the new slot goes and its times."""

    index: int
    start: float
    finish: float
    #: by how much the slot currently at ``index`` must be deferred (0 if none)
    overflow: float


def probe_optimal(
    state: LinkScheduleState,
    link: Link,
    cost: float,
    est: float,
    min_finish: float = 0.0,
    comm: CommModel = CUT_THROUGH,
) -> OptimalPlacement:
    """Earliest placement on ``link`` allowing deferral of existing slots.

    Pure (no commit).  Falls back to appending after the last slot when no
    deferral-assisted gap is feasible — the append position is never better
    than a feasible insertion, so the scan keeps the head-most feasible gap.
    """
    if cost < 0:
        raise SchedulingError(f"negative communication cost {cost}")
    observing = OBS.on
    if observing:
        OBS.metrics.counter("optimal.probes").inc()
    duration = cost / link.speed
    slots = state.slots(link.lid)
    n = len(slots)

    # Tail placement is always feasible.
    tail_prev = slots[-1].finish if slots else 0.0
    start = max(tail_prev, est, min_finish - duration)
    best = OptimalPlacement(n, start, start + duration, 0.0)

    accum = 0.0
    for i in range(n - 1, -1, -1):
        slot = slots[i]
        gap_after = (slots[i + 1].start - slot.finish) if i + 1 < n else math.inf
        accum = min(deferrable_time(state, link.lid, slot, comm), accum + gap_after)
        prev_finish = slots[i - 1].finish if i > 0 else 0.0
        start = max(prev_finish, est, min_finish - duration)
        finish = start + duration
        if finish <= slot.start + accum + EPS:
            overflow = max(0.0, finish - slot.start)
            cand = OptimalPlacement(i, start, finish, min(overflow, accum))
            # Head-most feasible gap == earliest start: keep scanning.
            best = cand
        elif observing:
            OBS.metrics.counter("optimal.gap_rejections").inc()
            OBS.emit(
                "probe_rejected",
                t=start,
                lid=link.lid,
                index=i,
                needed=finish,
                available=slot.start + accum,
            )
    return best


def commit_optimal(
    state: LinkScheduleState,
    link: Link,
    edge: EdgeKey,
    placement: OptimalPlacement,
    comm: CommModel = CUT_THROUGH,
) -> None:
    """Apply a placement: insert the new slot and cascade deferrals.

    Each pushed slot's individual shift is asserted against its Lemma-2 slack
    (an internal invariant; a violation means the probe's ``accum`` math and
    the commit disagree — a bug, not a user error).
    """
    slots = state.slots(link.lid)
    new_slot = TimeSlot(edge, placement.start, placement.finish)
    suffix: list[TimeSlot] = [new_slot]
    prev_finish = new_slot.finish
    for i in range(placement.index, len(slots)):
        s = slots[i]
        if s.start + EPS >= prev_finish:
            suffix.extend(slots[i:])
            break
        delta = prev_finish - s.start
        slack = deferrable_time(state, link.lid, s, comm)
        if delta > slack + EPS:
            raise SchedulingError(
                f"deferral cascade pushed edge {s.edge} on link {link.lid} by "
                f"{delta:.12g} but its causality slack is only {slack:.12g}"
            )
        moved = s.shifted(delta)
        suffix.append(moved)
        prev_finish = moved.finish
        if OBS.on:
            OBS.metrics.counter("optimal.deferrals").inc()
            OBS.metrics.histogram("optimal.deferral_amount").observe(delta)
            OBS.emit(
                "slot_deferred",
                t=moved.start,
                lid=link.lid,
                edge=list(s.edge),
                for_edge=list(edge),
                delta=delta,
                slack=slack,
            )
    state.replace_suffix(link.lid, placement.index, suffix)


def schedule_edge_optimal(
    state: LinkScheduleState,
    edge: EdgeKey,
    route: Route,
    cost: float,
    ready_time: float,
    comm: CommModel = CUT_THROUGH,
) -> float:
    """Book ``edge`` along ``route`` with optimal insertion; return arrival time."""
    if ready_time < 0:
        raise SchedulingError(f"negative ready time {ready_time}")
    if not route or cost == 0:
        state.record_route(edge, ())
        return ready_time
    state.record_route(edge, tuple(l.lid for l in route))
    est = ready_time
    min_finish = 0.0
    finish = ready_time
    for link in route:
        placement = probe_optimal(state, link, cost, est, min_finish, comm)
        commit_optimal(state, link, edge, placement, comm)
        est, min_finish = comm.next_constraints(placement.start, placement.finish)
        finish = placement.finish
    if OBS.on:
        OBS.metrics.counter("insertion.edges_scheduled").inc()
        OBS.emit(
            "edge_scheduled",
            t=finish,
            edge=list(edge),
            policy="optimal",
            links=[l.lid for l in route],
            ready=ready_time,
            arrival=finish,
        )
    return finish
