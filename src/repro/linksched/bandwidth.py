"""Bandwidth-shared link model for BBSA (paper Section 5).

The paper lets an edge use the *remaining bandwidth rate* of occupied time
slots and split its communication volume across slots (Lemma 2', formula (4),
Theorems 3-4).  Formula (4) is the per-slot discretization of a cumulative
causality constraint: at any instant, the volume forwarded on route link
``m+1`` may not exceed the volume already received on link ``m``.  We
implement that constraint directly as a **fluid-flow model**:

- every link carries a piecewise-constant *used-bandwidth* profile
  (:class:`BandwidthProfile`, fraction of capacity in use over time),
- a communication entering a link is described by its cumulative *arrival*
  function (:class:`Cumulative`), a step at the source task's finish time,
- :func:`forward_through_link` forwards greedily — at every instant the
  transfer uses all free bandwidth while never sending data that has not yet
  arrived — producing the *departure* cumulative, which is the next link's
  arrival.

Greedy forwarding is exactly BBSA's policy ("fully exploit the bandwidth of
network links to transfer communication data as soon as possible") without
the slot-splitting bookkeeping of the paper's presentation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.exceptions import SchedulingError
from repro.network.topology import Link, Route
from repro.types import EdgeKey, LinkId

if TYPE_CHECKING:
    from repro.linksched.commmodel import CommModel

#: Numerical slack for backlog/volume comparisons inside the fluid sweep.
_FEPS = 1e-9


class Cumulative:
    """A non-decreasing piecewise-linear cumulative-volume function.

    Stored as breakpoints ``(t, v)``; a vertical jump (instantaneous
    availability) is two points with equal ``t``.  Before the first point the
    value is the first ``v`` (normally 0); after the last it is constant.
    """

    __slots__ = ("points",)

    def __init__(self, points: list[tuple[float, float]]):
        if not points:
            raise SchedulingError("cumulative function needs at least one point")
        last_t, last_v = -math.inf, -math.inf
        for t, v in points:
            if t < last_t or v < last_v:
                raise SchedulingError(f"cumulative points not monotone at ({t}, {v})")
            if v < -_FEPS:
                raise SchedulingError(f"negative cumulative volume {v}")
            last_t, last_v = t, v
        self.points = points

    @staticmethod
    def step(t: float, volume: float) -> "Cumulative":
        """All ``volume`` becomes available instantaneously at time ``t``."""
        if volume < 0:
            raise SchedulingError(f"negative volume {volume}")
        return Cumulative([(t, 0.0), (t, volume)])

    @property
    def start_time(self) -> float:
        return self.points[0][0]

    @property
    def final_volume(self) -> float:
        return self.points[-1][1]

    def finish_time(self) -> float:
        """Earliest time the final volume is fully available."""
        final = self.final_volume
        t_done = self.points[-1][0]
        for t, v in reversed(self.points):
            if v >= final - _FEPS:
                t_done = t
            else:
                break
        return t_done

    def shifted(self, dt: float) -> "Cumulative":
        """The same volume profile delayed by ``dt`` time units."""
        if dt == 0:  # repro-lint: disable=FLT001 (exact zero shift is the identity)
            return self
        return Cumulative([(t + dt, v) for t, v in self.points])

    def value(self, t: float) -> float:
        """Right-continuous value at ``t``."""
        pts = self.points
        if t < pts[0][0]:
            # Exact breakpoint lookup, not arithmetic.
            return pts[0][1] if pts[0][0] == t else 0.0  # repro-lint: disable=FLT001
        if t >= pts[-1][0]:
            return pts[-1][1]
        # Linear scan is fine: validation-only path.
        for (t0, v0), (t1, v1) in zip(pts, pts[1:]):
            if t0 <= t <= t1:
                if t == t1:  # repro-lint: disable=FLT001 (exact breakpoint lookup)
                    continue  # prefer the right-most pair at jumps
                if t1 == t0:
                    continue
                return v0 + (v1 - v0) * (t - t0) / (t1 - t0)
        return pts[-1][1]


@dataclass(frozen=True, slots=True)
class UsageSegment:
    """The transfer occupied ``fraction`` of the link over ``[start, finish)``."""

    start: float
    finish: float
    fraction: float


class BandwidthProfile:
    """Piecewise-constant used-bandwidth fraction of one link over time.

    ``segments`` is a sorted list of ``(t0, t1, used)`` with ``0 < used``;
    uncovered time is fully free.  ``used`` may not exceed 1.
    """

    __slots__ = ("segments",)

    def __init__(self, segments: list[tuple[float, float, float]] | None = None):
        self.segments = segments if segments is not None else []

    def copy(self) -> "BandwidthProfile":
        return BandwidthProfile(list(self.segments))

    def breakpoints(self) -> list[float]:
        out = []
        for t0, t1, _ in self.segments:
            out.append(t0)
            out.append(t1)
        return out

    def used_at(self, t: float) -> float:
        for t0, t1, used in self.segments:
            if t0 <= t < t1:
                return used
            if t0 > t:
                break
        return 0.0

    def max_used(self) -> float:
        return max((u for _, _, u in self.segments), default=0.0)

    def add_usage(self, usage: list[UsageSegment]) -> None:
        """Overlay ``usage`` onto the profile, splitting segments as needed."""
        for seg in usage:
            if seg.fraction < -_FEPS:
                raise SchedulingError(f"negative usage fraction {seg.fraction}")
        events: dict[float, float] = {}
        for t0, t1, used in self.segments:
            events[t0] = events.get(t0, 0.0) + used
            events[t1] = events.get(t1, 0.0) - used
        for seg in usage:
            if seg.finish <= seg.start or seg.fraction <= 0:
                continue
            events[seg.start] = events.get(seg.start, 0.0) + seg.fraction
            events[seg.finish] = events.get(seg.finish, 0.0) - seg.fraction
        new_segments: list[tuple[float, float, float]] = []
        level = 0.0
        prev_t: float | None = None
        for t in sorted(events):
            if prev_t is not None and level > _FEPS and t > prev_t:
                if level > 1.0 + 1e-6:
                    raise SchedulingError(
                        f"link over-committed: used bandwidth {level:.9f} > 1 "
                        f"over [{prev_t}, {t})"
                    )
                # Merge with the previous segment when contiguous and equal.
                if (
                    new_segments
                    and new_segments[-1][1] == prev_t
                    and abs(new_segments[-1][2] - level) <= _FEPS
                ):
                    new_segments[-1] = (new_segments[-1][0], t, new_segments[-1][2])
                else:
                    new_segments.append((prev_t, t, min(level, 1.0)))
            level += events[t]
            prev_t = t
        self.segments = new_segments


def forward_through_link(
    profile: BandwidthProfile,
    arrival: Cumulative,
    speed: float,
    reserve: bool = False,
) -> tuple[Cumulative, list[UsageSegment]]:
    """Greedily forward ``arrival`` through a link of ``speed``.

    Returns ``(departure cumulative, usage segments)``.  ``reserve=True``
    additionally commits the usage onto ``profile``.

    At every instant the forwarding rate is ``free(t) * speed`` while a
    backlog exists, otherwise ``min(arrival rate, free(t) * speed)`` — so the
    departure never exceeds the arrival (cut-through causality) and all spare
    bandwidth is exploited.
    """
    if speed <= 0:
        raise SchedulingError(f"non-positive link speed {speed}")
    volume = arrival.final_volume
    t0 = arrival.start_time
    if volume <= _FEPS:
        return Cumulative([(t0, 0.0)]), []

    # Decompose the arrival into jumps and constant-rate pieces.
    jumps: dict[float, float] = {}
    rate_pieces: list[tuple[float, float, float]] = []  # (t0, t1, rate)
    for (ta, va), (tb, vb) in zip(arrival.points, arrival.points[1:]):
        if tb == ta:
            if vb > va:
                jumps[ta] = jumps.get(ta, 0.0) + (vb - va)
        elif vb > va:
            rate_pieces.append((ta, tb, (vb - va) / (tb - ta)))

    event_times = sorted(
        {t0, *jumps, *(t for p in rate_pieces for t in (p[0], p[1])),
         *(t for t in profile.breakpoints() if t > t0)}
    )

    def arrival_rate(t: float) -> float:
        for a, b, r in rate_pieces:
            if a <= t < b:
                return r
        return 0.0

    forwarded = 0.0
    arrived = 0.0
    t = t0
    dep_points: list[tuple[float, float]] = [(t0, 0.0)]
    usage: list[UsageSegment] = []
    ei = 0
    # Consume any jump exactly at t0.
    arrived += jumps.pop(t0, 0.0)
    guard = 0
    max_iters = 8 * (len(event_times) + len(profile.segments) + 4) + 64
    while forwarded < volume - _FEPS:
        guard += 1
        if guard > max_iters:
            raise SchedulingError(
                "fluid sweep failed to converge (internal error): "
                f"forwarded {forwarded} of {volume}"
            )
        # Next fixed event after t.
        while ei < len(event_times) and event_times[ei] <= t:
            ei += 1
        horizon = event_times[ei] if ei < len(event_times) else math.inf
        a = arrival_rate(t)
        cap = max(0.0, 1.0 - profile.used_at(t)) * speed
        backlog = arrived - forwarded
        if backlog > _FEPS:
            rate = cap
            t_zero = t + backlog / (cap - a) if cap > a else math.inf
        else:
            rate = min(a, cap)
            t_zero = math.inf
        t_done = t + (volume - forwarded) / rate if rate > 0 else math.inf
        t_next = min(horizon, t_zero, t_done)
        if math.isinf(t_next):
            raise SchedulingError(
                "transfer cannot complete: no arrival and no backlog "
                f"(forwarded {forwarded} of {volume} at t={t})"
            )
        if t_next > t:
            dt = t_next - t
            forwarded = min(volume, forwarded + rate * dt)
            arrived = min(volume, arrived + a * dt)
            if rate > 0:
                frac = rate / speed
                # Segments abut exactly: t is copied from the previous finish.
                if usage and usage[-1].finish == t and abs(usage[-1].fraction - frac) <= _FEPS:  # repro-lint: disable=FLT001
                    usage[-1] = UsageSegment(usage[-1].start, t_next, usage[-1].fraction)
                else:
                    usage.append(UsageSegment(t, t_next, frac))
            # Always record the breakpoint: a zero-rate span must appear in
            # the departure curve or interpolation would invent volume there.
            if dep_points[-1] != (t_next, forwarded):
                dep_points.append((t_next, forwarded))
            t = t_next
        # Apply any jump landing exactly at the new time.
        if t in jumps:
            arrived = min(volume, arrived + jumps.pop(t))

    if dep_points[-1][1] < volume:
        dep_points.append((t, volume))
    departure = Cumulative(dep_points)
    if reserve:
        profile.add_usage(usage)
    return departure, usage


def probe_step_finish(
    segments: list[tuple[float, float, float]],
    t0: float,
    volume: float,
    speed: float,
) -> float:
    """Finish time of a step transfer over ``segments`` — probe-only sweep.

    Replays :func:`forward_through_link` for the special case of a step
    arrival, where the whole volume is backlogged from ``t0`` on: the
    forwarding rate is always the free capacity, and the sweep needs no
    departure curve, no usage segments and no arrival-rate bookkeeping.  It
    evaluates the same floating-point expressions over the same event times
    as the general sweep, so the returned finish time is bit-identical to
    ``forward_through_link(profile, Cumulative.step(t0, volume), speed)``
    followed by ``departure.finish_time()`` — just without the allocations.

    The general sweep's event set (every segment boundary after ``t0``)
    collapses to a segment-pointer walk: with ``si`` at the first segment
    ending after ``t``, the next event is that segment's start (when ``t``
    is in the gap before it) or its end (when ``t`` is inside it) — the
    segments are sorted and non-overlapping, so nothing else can intervene.
    """
    n_seg = len(segments)
    forwarded = 0.0
    t = t0
    si = 0
    guard = 0
    max_iters = 8 * (2 * n_seg + 5) + 64
    while forwarded < volume - _FEPS:
        guard += 1
        if guard > max_iters:
            raise SchedulingError(
                "fluid sweep failed to converge (internal error): "
                f"forwarded {forwarded} of {volume}"
            )
        while si < n_seg and segments[si][1] <= t:
            si += 1
        if si < n_seg:
            a, b, u = segments[si]
            if t < a:
                horizon = a
                used = 0.0
            else:
                horizon = b
                used = u
        else:
            horizon = math.inf
            used = 0.0
        rate = max(0.0, 1.0 - used) * speed
        t_done = t + (volume - forwarded) / rate if rate > 0 else math.inf
        t_next = horizon if horizon < t_done else t_done
        if math.isinf(t_next):
            raise SchedulingError(
                "transfer cannot complete: no arrival and no backlog "
                f"(forwarded {forwarded} of {volume} at t={t})"
            )
        if t_next > t:
            forwarded = min(volume, forwarded + rate * (t_next - t))
            t = t_next
    return t


@dataclass(frozen=True, slots=True)
class TransferBooking:
    """One edge's committed transfer across one link."""

    edge: EdgeKey
    lid: LinkId
    arrival: Cumulative
    departure: Cumulative
    usage: tuple[UsageSegment, ...]


@dataclass
class BandwidthLinkState:
    """All links' bandwidth profiles plus per-edge bookings, with COW transactions."""

    _profiles: dict[LinkId, BandwidthProfile] = field(default_factory=dict)
    _bookings: dict[EdgeKey, list[TransferBooking]] = field(default_factory=dict)
    _routes: dict[EdgeKey, tuple[LinkId, ...]] = field(default_factory=dict)
    #: monotone per-link mutation counters (probe-memo invalidation keys)
    _versions: dict[LinkId, int] = field(default_factory=dict)
    _txn_profiles: dict[LinkId, BandwidthProfile] | None = None
    _txn_edges: list[EdgeKey] | None = None

    # -- transactions ------------------------------------------------------

    def begin(self) -> None:
        if self._txn_profiles is not None:
            raise SchedulingError("bandwidth transaction already open")
        self._txn_profiles = {}
        self._txn_edges = []

    def commit(self) -> None:
        if self._txn_profiles is None:
            raise SchedulingError("no open bandwidth transaction")
        self._txn_profiles = None
        self._txn_edges = None

    def rollback(self) -> None:
        if self._txn_profiles is None or self._txn_edges is None:
            raise SchedulingError("no open bandwidth transaction")
        for lid, original in self._txn_profiles.items():
            self._profiles[lid] = original
            self._versions[lid] = self._versions.get(lid, 0) + 1
        for edge in self._txn_edges:
            self._bookings.pop(edge, None)
            self._routes.pop(edge, None)
        self._txn_profiles = None
        self._txn_edges = None

    def profile(self, lid: LinkId) -> BandwidthProfile:
        """Read-only view of a link's used-bandwidth profile."""
        prof = self._profiles.get(lid)
        return prof if prof is not None else BandwidthProfile()

    def version(self, lid: LinkId) -> int:
        """Monotone mutation counter of the link's profile (0 if untouched)."""
        return self._versions.get(lid, 0)

    def _writable_profile(self, lid: LinkId) -> BandwidthProfile:
        self._versions[lid] = self._versions.get(lid, 0) + 1
        prof = self._profiles.get(lid)
        if prof is None:
            prof = BandwidthProfile()
            self._profiles[lid] = prof
            if self._txn_profiles is not None and lid not in self._txn_profiles:
                self._txn_profiles[lid] = BandwidthProfile()
            return prof
        if self._txn_profiles is not None and lid not in self._txn_profiles:
            self._txn_profiles[lid] = prof
            prof = prof.copy()
            self._profiles[lid] = prof
        return prof

    # -- bookings ------------------------------------------------------------

    def route_of(self, edge: EdgeKey) -> tuple[LinkId, ...]:
        try:
            return self._routes[edge]
        except KeyError:
            raise SchedulingError(f"edge {edge} has no recorded route") from None

    def has_route(self, edge: EdgeKey) -> bool:
        return edge in self._routes

    def routes(self) -> dict[EdgeKey, tuple[LinkId, ...]]:
        return dict(self._routes)

    def bookings_of(self, edge: EdgeKey) -> list[TransferBooking]:
        return list(self._bookings.get(edge, []))

    def restore_route(self, edge: EdgeKey, links: tuple[LinkId, ...]) -> None:
        """Re-register a deserialized edge's route verbatim."""
        if edge in self._routes:
            raise SchedulingError(f"edge {edge} already scheduled")
        self._routes[edge] = tuple(links)

    def restore_booking(self, edge: EdgeKey, hops: list[TransferBooking]) -> None:
        """Re-install a deserialized edge's hop bookings and link usage verbatim."""
        if edge in self._bookings:
            raise SchedulingError(f"edge {edge} already has bookings")
        self._bookings[edge] = list(hops)
        for hop in hops:
            self._writable_profile(hop.lid).add_usage(list(hop.usage))

    def schedule_edge(
        self,
        edge: EdgeKey,
        route: Route,
        cost: float,
        ready_time: float,
        comm: "CommModel | None" = None,
    ) -> float:
        """Book ``edge`` along ``route`` with fluid forwarding; return arrival time.

        ``comm`` (a :class:`repro.linksched.commmodel.CommModel`) selects the
        switching mode: under cut-through (default) the next link sees the
        previous link's departure curve delayed by the hop delay; under
        store-and-forward it sees the whole volume as a step once the
        previous link finishes.
        """
        from repro.linksched.commmodel import CUT_THROUGH

        if comm is None:
            comm = CUT_THROUGH
        if ready_time < 0:
            raise SchedulingError(f"negative ready time {ready_time}")
        if cost < 0:
            raise SchedulingError(f"negative communication cost {cost}")
        if edge in self._routes:
            raise SchedulingError(f"edge {edge} already scheduled")
        if not route or cost <= 0:
            self._routes[edge] = ()
            if self._txn_edges is not None:
                self._txn_edges.append(edge)
            return ready_time
        self._routes[edge] = tuple(l.lid for l in route)
        if self._txn_edges is not None:
            self._txn_edges.append(edge)
        flows: list[TransferBooking] = []
        arrival = Cumulative.step(ready_time, cost)
        for link in route:
            prof = self._writable_profile(link.lid)
            departure, usage = forward_through_link(prof, arrival, link.speed, reserve=True)
            flows.append(TransferBooking(edge, link.lid, arrival, departure, tuple(usage)))
            if comm.mode == "cut-through":
                arrival = departure.shifted(comm.hop_delay)
            else:
                arrival = Cumulative.step(
                    departure.finish_time() + comm.hop_delay, cost
                )
        self._bookings[edge] = flows
        return flows[-1].departure.finish_time()

    def probe_link(self, link: Link, cost: float, ready_time: float) -> float:
        """Finish time a ``cost``-sized step transfer would get on ``link`` (no commit).

        Uses :func:`probe_step_finish`, the allocation-free specialisation of
        the fluid sweep for step arrivals — bit-identical to forwarding a
        ``Cumulative.step`` through :func:`forward_through_link` and reading
        ``finish_time()``, at a fraction of the cost.  Routing probes are by
        far the hottest caller of the fluid model.
        """
        if cost < 0:
            raise SchedulingError(f"negative volume {cost}")
        if link.speed <= 0:
            raise SchedulingError(f"non-positive link speed {link.speed}")
        if cost <= _FEPS:
            return ready_time
        prof = self._profiles.get(link.lid)
        segments = prof.segments if prof is not None else []
        return probe_step_finish(segments, ready_time, cost, link.speed)
