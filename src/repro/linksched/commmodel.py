"""Communication model knobs: switching mode and per-hop delay.

The paper assumes cut-through (circuit-switched) communication and neglects
the per-hop delay, noting both are model choices: "with every hop ... a
delay might occur ... it is neglected in edge scheduling for simplicity,
but it can be included if necessary", and BA "does not consider the possible
division of communication into packets" (Section 2.2).  This module makes
both choices explicit so they can be varied:

- **cut-through** (default): data flows through intermediate links
  immediately — the transfer may *start* on link ``m+1`` as soon as it
  starts on link ``m`` (plus the hop delay) and must *finish* no earlier
  than on link ``m`` (plus the hop delay).
- **store-and-forward**: a link must receive the entire message before
  forwarding — the transfer on link ``m+1`` starts no earlier than the
  *finish* on link ``m`` (plus the hop delay).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro.exceptions import SchedulingError

SwitchingMode = Literal["cut-through", "store-and-forward"]


@dataclass(frozen=True, slots=True)
class CommModel:
    """Switching mode plus fixed per-hop delay (time units per link hop)."""

    mode: SwitchingMode = "cut-through"
    hop_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in ("cut-through", "store-and-forward"):
            raise SchedulingError(f"unknown switching mode {self.mode!r}")
        if self.hop_delay < 0:
            raise SchedulingError(f"negative hop delay {self.hop_delay}")

    def next_constraints(self, start: float, finish: float) -> tuple[float, float]:
        """Constraints for the next route link given this link's slot.

        Returns ``(earliest start, minimum finish)`` on the following link.
        """
        if self.mode == "cut-through":
            return start + self.hop_delay, finish + self.hop_delay
        return finish + self.hop_delay, 0.0


#: The paper's model: cut-through with negligible hop delay.
CUT_THROUGH = CommModel()

#: Conventional packet-network model for comparison.
STORE_AND_FORWARD = CommModel(mode="store-and-forward")
