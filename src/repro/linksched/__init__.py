"""Link scheduling engine: booking communications onto network links.

This package is the substrate the paper's contribution runs on:

- :mod:`repro.linksched.slots` — immutable time slots and gap search,
- :mod:`repro.linksched.state` — per-link indexed queues with undo-log
  transactions (cheap tentative scheduling / rollback),
- :mod:`repro.linksched.insertion` — BA's basic insertion,
- :mod:`repro.linksched.optimal_insertion` — OIHSA's deferral-based optimal
  insertion (Section 4.4 of the paper),
- :mod:`repro.linksched.bandwidth` — BBSA's bandwidth-shared (fluid) link
  model (Section 5),
- :mod:`repro.linksched.causality` — link-causality checking.
"""

from repro.linksched.commmodel import CommModel, CUT_THROUGH, STORE_AND_FORWARD
from repro.linksched.slots import TimeSlot, find_gap, find_gap_indexed
from repro.linksched.state import LinkScheduleState
from repro.linksched.insertion import probe_basic, schedule_edge_basic, probe_route_basic
from repro.linksched.optimal_insertion import (
    deferrable_time,
    probe_optimal,
    schedule_edge_optimal,
)
from repro.linksched.bandwidth import (
    Cumulative,
    BandwidthProfile,
    BandwidthLinkState,
    forward_through_link,
)
from repro.linksched.causality import check_route_causality

__all__ = [
    "CommModel",
    "CUT_THROUGH",
    "STORE_AND_FORWARD",
    "TimeSlot",
    "find_gap",
    "find_gap_indexed",
    "LinkScheduleState",
    "probe_basic",
    "schedule_edge_basic",
    "probe_route_basic",
    "deferrable_time",
    "probe_optimal",
    "schedule_edge_optimal",
    "Cumulative",
    "BandwidthProfile",
    "BandwidthLinkState",
    "forward_through_link",
    "check_route_causality",
]
