"""Packet-switched link scheduling.

The paper notes (Section 2.2) that BA "does not consider the possible
division of communication into packets" and therefore assumes circuit
switching.  This module supplies the missing engine: an edge's communication
is split into ``n_packets`` equal packets, each forwarded
store-and-forward-style (a packet must be fully received before it is
forwarded — this is packet switching), pipelined across the route:

- packet ``p`` may enter link ``m`` once it has completely crossed link
  ``m-1`` (plus the hop delay),
- packets of one edge stay in order on every link (FIFO — no resequencing),
- links remain non-preemptive: packet slots on a link never overlap.

With one packet this degenerates to store-and-forward messaging; as the
packet count grows, the arrival time approaches the cut-through (wormhole)
limit — which is why the paper's circuit-switched model is the natural
``n_packets -> inf`` idealization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import SchedulingError
from repro.network.topology import Route
from repro.types import EdgeKey, LinkId


@dataclass(frozen=True, slots=True)
class PacketSlot:
    """Occupation of a link by one packet of one edge."""

    edge: EdgeKey
    packet: int
    start: float
    finish: float

    def __post_init__(self) -> None:
        if not (self.finish >= self.start >= 0) or self.packet < 0:
            raise SchedulingError(
                f"invalid packet slot {self.edge}#{self.packet}: "
                f"[{self.start}, {self.finish})"
            )

    @property
    def duration(self) -> float:
        return self.finish - self.start


def _find_packet_gap(
    slots: list[PacketSlot], duration: float, est: float
) -> tuple[int, float, float]:
    """Earliest idle gap of ``duration`` starting at or after ``est``."""
    prev_finish = 0.0
    for i, slot in enumerate(slots):
        start = max(prev_finish, est)
        if start + duration <= slot.start:
            return i, start, start + duration
        prev_finish = slot.finish
    start = max(prev_finish, est)
    return len(slots), start, start + duration


@dataclass
class PacketLinkState:
    """Per-link packet queues plus per-edge route bookkeeping."""

    _queues: dict[LinkId, list[PacketSlot]] = field(default_factory=dict)
    _routes: dict[EdgeKey, tuple[LinkId, ...]] = field(default_factory=dict)
    _packets: dict[EdgeKey, int] = field(default_factory=dict)

    def slots(self, lid: LinkId) -> list[PacketSlot]:
        return self._queues.get(lid, [])

    def route_of(self, edge: EdgeKey) -> tuple[LinkId, ...]:
        try:
            return self._routes[edge]
        except KeyError:
            raise SchedulingError(f"edge {edge} has no recorded route") from None

    def has_route(self, edge: EdgeKey) -> bool:
        return edge in self._routes

    def routes(self) -> dict[EdgeKey, tuple[LinkId, ...]]:
        return dict(self._routes)

    def packets_of(self, edge: EdgeKey) -> int:
        return self._packets.get(edge, 0)

    def restore_route(
        self, edge: EdgeKey, links: tuple[LinkId, ...], n_packets: int
    ) -> None:
        """Re-register a deserialized edge (route + packet count) verbatim."""
        if edge in self._routes:
            raise SchedulingError(f"edge {edge} already scheduled")
        self._routes[edge] = tuple(links)
        self._packets[edge] = int(n_packets)

    def restore_slots(self, lid: LinkId, slots: list[PacketSlot]) -> None:
        """Install a deserialized per-link packet queue verbatim (in order)."""
        self._queues[lid] = list(slots)

    def slots_of(self, edge: EdgeKey, lid: LinkId) -> list[PacketSlot]:
        """This edge's packet slots on one link, in packet order."""
        out = [s for s in self.slots(lid) if s.edge == edge]
        out.sort(key=lambda s: s.packet)
        return out

    def used_links(self) -> list[LinkId]:
        return [lid for lid, q in self._queues.items() if q]

    def schedule_edge(
        self,
        edge: EdgeKey,
        route: Route,
        cost: float,
        ready_time: float,
        n_packets: int,
        hop_delay: float = 0.0,
    ) -> float:
        """Book all packets of ``edge`` along ``route``; return arrival time."""
        if n_packets < 1:
            raise SchedulingError(f"need at least one packet, got {n_packets}")
        if ready_time < 0:
            raise SchedulingError(f"negative ready time {ready_time}")
        if hop_delay < 0:
            raise SchedulingError(f"negative hop delay {hop_delay}")
        if edge in self._routes:
            raise SchedulingError(f"edge {edge} already scheduled")
        if cost < 0:
            raise SchedulingError(f"negative communication cost {cost}")
        if not route or cost <= 0:
            self._routes[edge] = ()
            self._packets[edge] = 0
            return ready_time
        self._routes[edge] = tuple(l.lid for l in route)
        self._packets[edge] = n_packets
        packet_cost = cost / n_packets
        # prev_on_link[m] = finish of the previous packet on route link m.
        prev_on_link = [0.0] * len(route)
        arrival = ready_time
        for p in range(n_packets):
            upstream = ready_time  # packet fully available at the source
            for m, link in enumerate(route):
                queue = self._queues.setdefault(link.lid, [])
                est = max(upstream, prev_on_link[m])
                index, start, finish = _find_packet_gap(
                    queue, packet_cost / link.speed, est
                )
                queue.insert(index, PacketSlot(edge, p, start, finish))
                prev_on_link[m] = finish
                upstream = finish + hop_delay  # store-and-forward per packet
            arrival = prev_on_link[-1]
        return arrival
