"""Observability for the scheduling pipeline: events, metrics, profiling.

Dependency-free (stdlib only) and **off by default**: every instrumentation
site in the schedulers guards on ``OBS.on`` — a single attribute test — so
the disabled overhead is unmeasurable.  Turn it on around a run::

    from repro import obs

    obs.enable()                        # events -> in-memory ListSink
    schedule = OIHSAScheduler().schedule(graph, net)
    print(schedule.stats.to_text())     # counters + phase timings of the run
    obs.disable()

or stream the decision log to disk::

    obs.enable(obs.JsonlSink("events.jsonl"))
    ...
    obs.disable()                       # closes the sink

The three pillars live in sibling modules:

- :mod:`repro.obs.events`  — typed event bus (decision tracing),
- :mod:`repro.obs.metrics` — counters / gauges / histograms with
  snapshot + diff,
- :mod:`repro.obs.profile` — ``span()`` phase timers.

CLI surfaces: ``python -m repro schedule --stats --trace-out events.jsonl``
and ``python -m repro profile``.  See ``docs/observability.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.events import (
    BUS,
    EVENT_KINDS,
    Event,
    EventBus,
    JsonlSink,
    ListSink,
    NullSink,
    read_jsonl,
)
from repro.obs.metrics import (
    BUCKET_BOUNDS,
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Snapshot,
    diff_snapshots,
    quantile_from_buckets,
)
from repro.obs.profile import PROFILER, PhaseProfiler, Timings, diff_timings, span


@dataclass
class ScheduleStats:
    """Observability capture for one ``schedule()`` call.

    Attached as ``Schedule.stats`` by :class:`repro.core.base.ContentionScheduler`
    whenever observability is enabled; ``None`` otherwise.  ``metrics`` is a
    snapshot *diff* (only what this run did), ``timings`` likewise, and
    ``events`` holds the run's decision log when the bus sink keeps events
    in memory (empty for streaming JSONL sinks).
    """

    metrics: Snapshot = field(default_factory=dict)
    timings: Timings = field(default_factory=dict)
    events: list[Event] = field(default_factory=list)

    def counter(self, name: str) -> float:
        """Value of one counter during the run (0 if never incremented)."""
        return self.metrics.get("counters", {}).get(name, 0.0)

    def to_dict(self) -> dict:
        """JSON-ready form of the capture (inverse of :meth:`from_dict`).

        Used wherever a capture crosses a process or disk boundary: the
        parallel sweep runner ships per-worker captures back to the parent,
        and the experiment result cache persists them between sweeps.
        """
        return {
            "metrics": self.metrics,
            "timings": self.timings,
            "events": [
                {"kind": e.kind, "t": e.t, "data": e.data} for e in self.events
            ],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ScheduleStats":
        """Rebuild a capture serialized by :meth:`to_dict`."""
        return cls(
            metrics=doc.get("metrics", {}),
            timings=doc.get("timings", {}),
            events=[
                Event(kind=d["kind"], t=d.get("t"), data=d.get("data", {}))
                for d in doc.get("events", [])
            ],
        )

    def events_of(self, kind: str) -> list[Event]:
        return [e for e in self.events if e.kind == kind]

    def to_text(self) -> str:
        parts = [MetricsRegistry.render_text(self.metrics)]
        if self.timings:
            width = max(len(p) for p in self.timings)
            parts.append(
                "\n".join(
                    f"{phase:<{width}}  {rec['total'] * 1e3:9.3f} ms  "
                    f"x{int(rec['count'])}"
                    for phase, rec in sorted(self.timings.items())
                )
            )
        return "\n\n".join(parts)


class _Obs:
    """Facade bundling the bus, registry and profiler behind one switch."""

    __slots__ = ("on", "bus", "metrics", "profiler")

    def __init__(self) -> None:
        self.on = False
        self.bus = BUS
        self.metrics = METRICS
        self.profiler = PROFILER

    def emit(self, kind: str, t: float | None = None, **data: object) -> None:
        self.bus.emit(kind, t, **data)


#: The process-wide switchboard; hot paths test ``OBS.on`` and nothing else.
OBS = _Obs()


def enable(sink: NullSink | ListSink | JsonlSink | None = None) -> None:
    """Turn observability on, sending events to ``sink`` (default ListSink)."""
    BUS.sink = sink if sink is not None else ListSink()
    BUS.enabled = True
    PROFILER.enabled = True
    OBS.on = True


def disable() -> None:
    """Turn observability off and close the active sink."""
    OBS.on = False
    BUS.enabled = False
    PROFILER.enabled = False
    BUS.sink.close()
    BUS.sink = NullSink()


def is_enabled() -> bool:
    return OBS.on


def reset() -> None:
    """Zero all instruments and replace the sink (test isolation)."""
    METRICS.reset()
    PROFILER.reset()
    BUS.sink = ListSink() if OBS.on else NullSink()


__all__ = [
    "OBS",
    "BUS",
    "METRICS",
    "PROFILER",
    "EVENT_KINDS",
    "Event",
    "EventBus",
    "JsonlSink",
    "ListSink",
    "NullSink",
    "read_jsonl",
    "BUCKET_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Snapshot",
    "diff_snapshots",
    "quantile_from_buckets",
    "PhaseProfiler",
    "Timings",
    "diff_timings",
    "span",
    "ScheduleStats",
    "enable",
    "disable",
    "is_enabled",
    "reset",
]
