"""Structured scheduling events: the decision log of a scheduler run.

Every interesting decision on the scheduling hot path — a route probed, an
edge booked, a slot deferred to open an earlier gap — is emitted as a typed
:class:`Event` on the process-wide :data:`BUS`.  The bus is **disabled by
default** and every instrumentation site guards on a single attribute check,
so the cost of the disabled path is one boolean test.

Event kinds (the taxonomy is closed; see ``docs/observability.md``):

========================  =====================================================
``route_probed``          a route was computed (BFS or contention-aware
                          Dijkstra); ``data`` carries endpoints, policy, hops
``edge_scheduled``        a DAG edge was committed onto its route's links
``slot_deferred``         optimal insertion slipped an existing slot within
                          its causality slack (OIHSA, Lemma 2)
``processor_chosen``      the scheduler fixed a task's processor
``task_placed``           a task was booked on a processor timeline
``probe_rejected``        a candidate gap failed the feasibility test
                          (formula (3)) during an optimal-insertion scan
========================  =====================================================

Sinks decide where events go: :class:`NullSink` drops them (profiling runs
that only want counters), :class:`ListSink` keeps them in memory (tests,
``Schedule.stats``), :class:`JsonlSink` streams them as JSON lines
(``python -m repro schedule --trace-out events.jsonl``).  The JSONL format
round-trips through :func:`read_jsonl`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Any, Iterator

#: The closed set of event kinds the instrumentation emits.
EVENT_KINDS = frozenset(
    {
        "route_probed",
        "edge_scheduled",
        "slot_deferred",
        "processor_chosen",
        "task_placed",
        "probe_rejected",
    }
)


@dataclass(frozen=True, slots=True)
class Event:
    """One scheduling decision.

    ``t`` is *schedule* time (the simulated clock the decision refers to),
    not wall time; it is ``None`` for decisions with no natural timestamp
    (e.g. a processor choice made before the task is booked).
    """

    kind: str
    t: float | None = None
    data: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        doc: dict[str, Any] = {"kind": self.kind}
        if self.t is not None:
            doc["t"] = self.t
        if self.data:
            doc["data"] = self.data
        return json.dumps(doc, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "Event":
        doc = json.loads(line)
        return cls(kind=doc["kind"], t=doc.get("t"), data=doc.get("data", {}))


class NullSink:
    """Drops every event (metrics/profiling still run)."""

    def write(self, event: Event) -> None:
        pass

    def close(self) -> None:
        pass


class ListSink:
    """Accumulates events in memory; backs ``Schedule.stats.events``."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def write(self, event: Event) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass


class JsonlSink:
    """Streams events as JSON lines to ``path`` (or an open text handle)."""

    def __init__(self, path_or_file: str | IO[str]) -> None:
        if isinstance(path_or_file, str):
            self._fh: IO[str] = open(path_or_file, "w")
            self._owned = True
        else:
            self._fh = path_or_file
            self._owned = False
        self.count = 0
        self._closed = False

    def write(self, event: Event) -> None:
        self._fh.write(event.to_json())
        self._fh.write("\n")
        self.count += 1

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._fh.flush()
        if self._owned:
            self._fh.close()


def read_jsonl(path_or_file: str | IO[str], *, strict: bool = True) -> list[Event]:
    """Load events written by :class:`JsonlSink` (inverse of ``to_json``).

    A malformed line raises :class:`~repro.exceptions.ObsError` naming the
    file and 1-based line number (instead of a bare ``json.JSONDecodeError``
    that loses both).  With ``strict=False`` malformed lines are skipped —
    for salvaging the intact prefix of a log truncated by a crash.
    """
    if isinstance(path_or_file, str):
        with open(path_or_file) as fh:
            return _read_jsonl_lines(fh, path_or_file, strict)
    name = getattr(path_or_file, "name", "<stream>")
    return _read_jsonl_lines(path_or_file, str(name), strict)


def _read_jsonl_lines(lines: IO[str], name: str, strict: bool) -> list[Event]:
    from repro.exceptions import ObsError

    events: list[Event] = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            events.append(Event.from_json(line))
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            if strict:
                raise ObsError(
                    f"{name}:{lineno}: malformed JSONL event line "
                    f"({exc}): {line.strip()[:120]!r}"
                ) from exc
    return events


class _Quiet:
    """Context manager suppressing event emission (counters still count).

    Used around tentative work that is rolled back (BA's processor probing)
    so the decision log only records *committed* decisions.
    """

    __slots__ = ("_bus",)

    def __init__(self, bus: "EventBus") -> None:
        self._bus = bus

    def __enter__(self) -> "_Quiet":
        self._bus._suspended += 1
        return self

    def __exit__(self, *exc: object) -> None:
        self._bus._suspended -= 1


class EventBus:
    """Process-wide event dispatcher.

    ``enabled`` is the master hot-path guard: instrumentation sites test it
    (via ``OBS.on``) before building event payloads, so a disabled bus costs
    one attribute load per site.
    """

    __slots__ = ("enabled", "sink", "_suspended")

    def __init__(self) -> None:
        self.enabled = False
        self.sink: NullSink | ListSink | JsonlSink = NullSink()
        self._suspended = 0

    def emit(self, kind: str, t: float | None = None, **data: Any) -> None:
        if not self.enabled or self._suspended:
            return
        self.sink.write(Event(kind, t, data))

    def quiet(self) -> _Quiet:
        """Suppress events (not counters) for the duration of a ``with`` block."""
        return _Quiet(self)

    @property
    def quieted(self) -> bool:
        """True inside a :meth:`quiet` block — emissions would be dropped.

        Hot emission sites with non-trivial payloads test this to skip
        building an event dict that :meth:`emit` would discard.
        """
        return self._suspended > 0

    # -- marks: cheap "events since X" for ScheduleStats ----------------------

    def mark(self) -> int:
        """Position marker; pair with :meth:`since` (ListSink only)."""
        sink = self.sink
        return len(sink.events) if isinstance(sink, ListSink) else 0

    def since(self, mark: int) -> list[Event]:
        """Events written after ``mark`` (empty for streaming/null sinks)."""
        sink = self.sink
        if isinstance(sink, ListSink):
            return sink.events[mark:]
        return []

    def iter_events(self) -> Iterator[Event]:
        sink = self.sink
        if isinstance(sink, ListSink):
            yield from sink.events


#: The process-wide bus all instrumentation emits to.
BUS = EventBus()
