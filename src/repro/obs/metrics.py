"""Counters, gauges and histograms for the scheduling pipeline.

The registry is a flat namespace of dot-separated metric names
(``insertion.probes``, ``routing.relaxations``, ``optimal.deferral_amount``);
instruments are created on first use and memoized, so instrumentation sites
can hold a reference once and ``inc()`` in the hot loop.

Two snapshot operations support before/after accounting:

- :meth:`MetricsRegistry.snapshot` — a plain-dict copy of every instrument,
- :func:`diff_snapshots` — ``after - before`` for counters and histogram
  count/sum (gauges and histogram min/max take the *after* value, since they
  are level, not flow, quantities).

``Schedule.stats`` stores the diff across one ``schedule()`` call, so nested
or repeated runs don't bleed into each other even though the registry is
process-wide.
"""

from __future__ import annotations

import json
import math
from typing import Any

Snapshot = dict[str, dict[str, Any]]


class Counter:
    """Monotonically increasing count of discrete occurrences."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A level quantity: last value written wins."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming summary (count/sum/min/max/mean) of observed values."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Name -> instrument map with snapshot/diff and text/JSON rendering."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument accessors (memoized) --------------------------------------

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram()
        return h

    def reset(self) -> None:
        """Drop every instrument (tests and per-run isolation)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- snapshots -------------------------------------------------------------

    def snapshot(self) -> Snapshot:
        """Immutable plain-dict copy of all current values."""
        return {
            "counters": {k: c.value for k, c in self._counters.items()},
            "gauges": {k: g.value for k, g in self._gauges.items()},
            "histograms": {
                k: {"count": h.count, "sum": h.total, "min": h.min, "max": h.max}
                for k, h in self._histograms.items()
            },
        }

    # -- rendering -------------------------------------------------------------

    @staticmethod
    def render_text(snapshot: Snapshot) -> str:
        """Aligned ``name value`` lines, nonzero instruments only."""
        lines: list[str] = []
        for name in sorted(snapshot.get("counters", {})):
            value = snapshot["counters"][name]
            if value:
                lines.append(f"{name} = {value:g}")
        for name in sorted(snapshot.get("gauges", {})):
            lines.append(f"{name} = {snapshot['gauges'][name]:g}")
        for name in sorted(snapshot.get("histograms", {})):
            h = snapshot["histograms"][name]
            if h["count"]:
                mean = h["sum"] / h["count"]
                lines.append(
                    f"{name} = count {h['count']:g}, mean {mean:g}, "
                    f"min {h['min']:g}, max {h['max']:g}"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"

    @staticmethod
    def render_json(snapshot: Snapshot) -> str:
        def finite(v: Any) -> Any:
            if isinstance(v, float) and not math.isfinite(v):
                return None
            return v

        doc = {
            section: {
                name: (
                    {k: finite(x) for k, x in val.items()}
                    if isinstance(val, dict)
                    else finite(val)
                )
                for name, val in entries.items()
            }
            for section, entries in snapshot.items()
        }
        return json.dumps(doc, indent=1, sort_keys=True)

    def to_text(self) -> str:
        return self.render_text(self.snapshot())

    def to_json(self) -> str:
        return self.render_json(self.snapshot())


def diff_snapshots(before: Snapshot, after: Snapshot) -> Snapshot:
    """What happened *between* two snapshots.

    Counters and histogram count/sum subtract; gauges and histogram min/max
    are levels, so the ``after`` value is kept (gauges only when they were
    created or moved during the interval).  Instruments absent from
    ``before`` are treated as zero/fresh.
    """
    counters = {}
    for name, value in after.get("counters", {}).items():
        delta = value - before.get("counters", {}).get(name, 0.0)
        if delta:
            counters[name] = delta
    before_gauges = before.get("gauges", {})
    gauges = {
        name: value
        for name, value in after.get("gauges", {}).items()
        if name not in before_gauges or value != before_gauges[name]
    }
    histograms = {}
    for name, h in after.get("histograms", {}).items():
        h0 = before.get("histograms", {}).get(
            name, {"count": 0, "sum": 0.0, "min": math.inf, "max": -math.inf}
        )
        count = h["count"] - h0["count"]
        if count:
            histograms[name] = {
                "count": count,
                "sum": h["sum"] - h0["sum"],
                "min": h["min"],
                "max": h["max"],
            }
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


#: The process-wide registry all instrumentation writes to.
METRICS = MetricsRegistry()
