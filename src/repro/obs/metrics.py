"""Counters, gauges and histograms for the scheduling pipeline.

The registry is a flat namespace of dot-separated metric names
(``insertion.probes``, ``routing.relaxations``, ``optimal.deferral_amount``);
instruments are created on first use and memoized, so instrumentation sites
can hold a reference once and ``inc()`` in the hot loop.

Two snapshot operations support before/after accounting:

- :meth:`MetricsRegistry.snapshot` — a plain-dict copy of every instrument,
- :func:`diff_snapshots` — ``after - before`` for counters and histogram
  count/sum/buckets (gauges and histogram min/max take the *after* value,
  since they are level, not flow, quantities).

``Schedule.stats`` stores the diff across one ``schedule()`` call, so nested
or repeated runs don't bleed into each other even though the registry is
process-wide.

Histograms additionally keep **fixed-boundary bucket counts** (a 1-2-5
geometric ladder, :data:`BUCKET_BOUNDS`) so p50/p90/p99 estimates are
available deterministically — the boundaries never depend on the data, so
the same observations always produce the same buckets, the same snapshot
bytes, and the same percentile estimates, in any process.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left
from typing import Any, Mapping

Snapshot = dict[str, dict[str, Any]]

#: Fixed histogram bucket upper bounds: a 1-2-5 geometric ladder spanning
#: 1e-9 .. 5e9.  Bucket ``i`` counts observations in ``(BOUNDS[i-1],
#: BOUNDS[i]]`` (bucket 0 is ``(-inf, 1e-9]``); values beyond the ladder land
#: in an overflow bucket indexed ``len(BUCKET_BOUNDS)``.  Fixed boundaries
#: make percentile estimates deterministic and snapshot diffs subtractable.
BUCKET_BOUNDS: tuple[float, ...] = tuple(
    m * 10.0**e for e in range(-9, 10) for m in (1.0, 2.0, 5.0)
)

#: The percentiles rendered in reports.
RENDERED_QUANTILES: tuple[tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p90", 0.90),
    ("p99", 0.99),
)


def quantile_from_buckets(
    buckets: Mapping[int, int] | Mapping[str, int],
    count: int,
    lo: float,
    hi: float,
    q: float,
) -> float:
    """Deterministic quantile estimate from fixed-boundary bucket counts.

    The estimate is the upper bound of the bucket where the cumulative count
    first reaches ``ceil(q * count)``, clamped into the observed ``[lo, hi]``
    range (so estimates never stray outside the data).  ``buckets`` may have
    int or str keys — JSON round-trips stringify them.
    """
    if count <= 0:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    rank = max(1, math.ceil(q * count))
    by_index = {int(k): int(v) for k, v in buckets.items()}
    cumulative = 0
    n_bounds = len(BUCKET_BOUNDS)
    for index in sorted(by_index):
        cumulative += by_index[index]
        if cumulative >= rank:
            estimate = BUCKET_BOUNDS[index] if index < n_bounds else hi
            return min(max(estimate, lo), hi)
    return hi


class Counter:
    """Monotonically increasing count of discrete occurrences."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A level quantity: last value written wins."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming summary (count/sum/min/max/mean) plus fixed-boundary buckets.

    ``buckets`` is sparse — ``{bucket index: count}`` over
    :data:`BUCKET_BOUNDS` — so untouched ranges cost nothing and snapshot
    diffs subtract per index.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = bisect_left(BUCKET_BOUNDS, value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Deterministic percentile estimate (see :func:`quantile_from_buckets`)."""
        return quantile_from_buckets(self.buckets, self.count, self.min, self.max, q)


class MetricsRegistry:
    """Name -> instrument map with snapshot/diff and text/JSON rendering."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument accessors (memoized) --------------------------------------

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram()
        return h

    def reset(self) -> None:
        """Drop every instrument (tests and per-run isolation)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- snapshots -------------------------------------------------------------

    def snapshot(self) -> Snapshot:
        """Immutable plain-dict copy of all current values."""
        return {
            "counters": {k: c.value for k, c in self._counters.items()},
            "gauges": {k: g.value for k, g in self._gauges.items()},
            "histograms": {
                k: {
                    "count": h.count,
                    "sum": h.total,
                    "min": h.min,
                    "max": h.max,
                    "buckets": dict(h.buckets),
                }
                for k, h in self._histograms.items()
            },
        }

    # -- rendering -------------------------------------------------------------

    @staticmethod
    def render_text(snapshot: Snapshot) -> str:
        """Aligned ``name value`` lines, nonzero instruments only."""
        lines: list[str] = []
        for name in sorted(snapshot.get("counters", {})):
            value = snapshot["counters"][name]
            if value:
                lines.append(f"{name} = {value:g}")
        for name in sorted(snapshot.get("gauges", {})):
            lines.append(f"{name} = {snapshot['gauges'][name]:g}")
        for name in sorted(snapshot.get("histograms", {})):
            h = snapshot["histograms"][name]
            if h["count"]:
                mean = h["sum"] / h["count"]
                line = (
                    f"{name} = count {h['count']:g}, mean {mean:g}, "
                    f"min {h['min']:g}, max {h['max']:g}"
                )
                buckets = h.get("buckets")
                if buckets:
                    line += ", " + ", ".join(
                        f"{label} {quantile_from_buckets(buckets, h['count'], h['min'], h['max'], q):g}"
                        for label, q in RENDERED_QUANTILES
                    )
                lines.append(line)
        return "\n".join(lines) if lines else "(no metrics recorded)"

    @staticmethod
    def render_json(snapshot: Snapshot) -> str:
        def finite(v: Any) -> Any:
            if isinstance(v, float) and not math.isfinite(v):
                return None
            return v

        doc = {
            section: {
                name: (
                    {k: finite(x) for k, x in val.items()}
                    if isinstance(val, dict)
                    else finite(val)
                )
                for name, val in entries.items()
            }
            for section, entries in snapshot.items()
        }
        return json.dumps(doc, indent=1, sort_keys=True)

    def to_text(self) -> str:
        return self.render_text(self.snapshot())

    def to_json(self) -> str:
        return self.render_json(self.snapshot())


def diff_snapshots(before: Snapshot, after: Snapshot) -> Snapshot:
    """What happened *between* two snapshots.

    Counters and histogram count/sum subtract; gauges and histogram min/max
    are levels, so the ``after`` value is kept (gauges only when they were
    created or moved during the interval).  Instruments absent from
    ``before`` are treated as zero/fresh.
    """
    counters = {}
    for name, value in after.get("counters", {}).items():
        delta = value - before.get("counters", {}).get(name, 0.0)
        if delta:
            counters[name] = delta
    before_gauges = before.get("gauges", {})
    gauges = {
        name: value
        for name, value in after.get("gauges", {}).items()
        if name not in before_gauges or value != before_gauges[name]
    }
    histograms = {}
    for name, h in after.get("histograms", {}).items():
        h0 = before.get("histograms", {}).get(
            name, {"count": 0, "sum": 0.0, "min": math.inf, "max": -math.inf}
        )
        count = h["count"] - h0["count"]
        if count:
            buckets0 = h0.get("buckets", {})
            buckets = {
                index: delta
                for index, c in h.get("buckets", {}).items()
                if (delta := c - buckets0.get(index, 0))
            }
            histograms[name] = {
                "count": count,
                "sum": h["sum"] - h0["sum"],
                "min": h["min"],
                "max": h["max"],
                "buckets": buckets,
            }
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


#: The process-wide registry all instrumentation writes to.
METRICS = MetricsRegistry()
