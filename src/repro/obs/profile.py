"""Phase timers: where does a scheduler's wall time actually go?

``with span("routing"): ...`` accumulates ``perf_counter`` deltas into the
process-wide :data:`PROFILER` under the phase name.  When observability is
disabled ``span()`` returns a shared no-op context manager, so the cost on
the disabled path is one function call and one attribute test.

The canonical phases instrumented across the schedulers:

- ``routing``              — BFS / contention-aware Dijkstra route search,
- ``insertion``            — booking an edge's slots onto its route links,
- ``processor_selection``  — choosing the task's processor (MLS estimate,
  blind EFT, or BA's tentative probing — in tentative mode the routing and
  insertion done *inside* a probe nest under this phase and are counted in
  both, so phase totals are inclusive),
- ``task_placement``       — booking the task on the processor timeline.

Totals are inclusive wall time; :func:`diff_timings` gives per-run deltas
the same way metric snapshots do.
"""

from __future__ import annotations

from time import perf_counter

#: phase name -> {"total": seconds, "count": times entered}
Timings = dict[str, dict[str, float]]


class PhaseProfiler:
    """Accumulates per-phase inclusive wall time."""

    __slots__ = ("enabled", "_totals", "_counts")

    def __init__(self) -> None:
        self.enabled = False
        self._totals: dict[str, float] = {}
        self._counts: dict[str, int] = {}

    def add(self, phase: str, seconds: float) -> None:
        self._totals[phase] = self._totals.get(phase, 0.0) + seconds
        self._counts[phase] = self._counts.get(phase, 0) + 1

    def reset(self) -> None:
        self._totals.clear()
        self._counts.clear()

    def snapshot(self) -> Timings:
        return {
            phase: {"total": total, "count": self._counts[phase]}
            for phase, total in self._totals.items()
        }

    def to_text(self) -> str:
        snap = self.snapshot()
        if not snap:
            return "(no phases recorded)"
        width = max(len(p) for p in snap)
        return "\n".join(
            f"{phase:<{width}}  {rec['total'] * 1e3:9.3f} ms  x{int(rec['count'])}"
            for phase, rec in sorted(snap.items())
        )


def diff_timings(before: Timings, after: Timings) -> Timings:
    """Per-phase ``after - before`` (phases absent from ``before`` are fresh)."""
    out: Timings = {}
    for phase, rec in after.items():
        b = before.get(phase, {"total": 0.0, "count": 0})
        count = rec["count"] - b["count"]
        total = rec["total"] - b["total"]
        if count or total > 0:
            out[phase] = {"total": total, "count": count}
    return out


class _Span:
    __slots__ = ("_phase", "_t0")

    def __init__(self, phase: str) -> None:
        self._phase = phase
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        PROFILER.add(self._phase, perf_counter() - self._t0)


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


_NULL_SPAN = _NullSpan()

#: The process-wide profiler `span` accumulates into.
PROFILER = PhaseProfiler()


def span(phase: str) -> _Span | _NullSpan:
    """Time a phase: ``with span("routing"): route = ...``.

    No-op (shared null context) while profiling is disabled.
    """
    if not PROFILER.enabled:
        return _NULL_SPAN
    return _Span(phase)
