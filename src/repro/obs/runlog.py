"""The run ledger: a persistent record of every scheduling invocation.

PR 1's instrumentation explains one run while the process lives; the ledger
makes runs comparable *across* invocations.  Every ``schedule`` / sweep /
bench entry point appends one :class:`RunRecord` — a config fingerprint (the
same sha256-over-canonical-JSON scheme as the experiment result cache),
counter/gauge/histogram snapshot, phase timings, makespans, git revision and
environment — to a sharded JSONL ledger under ``.repro-runs/``, and the
``python -m repro runs`` CLI family (``list`` / ``show`` / ``diff`` /
``compare``) mines it: counter and timing deltas between any two runs, and a
tolerance-gated regression verdict against a committed ``BENCH_*.json``
baseline for CI.

Design rules:

- **Append-only.**  Records are never rewritten; each append is a single
  ``os.write`` on an ``O_APPEND`` descriptor, so concurrent writers (parallel
  CI jobs, sweep workers) interleave whole lines, never partial ones.
- **Sharded.**  A record lands in ``ledger-<run_id[:2]>.jsonl``, bounding any
  single file and letting concurrent appends usually hit different shards.
- **One write path.**  All writes go through :func:`append` (module level) or
  :meth:`RunLedger.append`; lint rule OBS002 flags any other code opening
  ledger files directly, because a hand-rolled write skips the atomic-append
  and schema discipline.
- **Wall clock is confined here.**  Scheduling code may not read wall time
  (DET003); the ledger timestamps live at the CLI boundary, outside every
  deterministic path, and never feed back into schedule bytes.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
from dataclasses import asdict, dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Iterator

from repro.exceptions import ObsError
from repro.obs.metrics import Snapshot
from repro.obs.profile import Timings

#: Bump when the record layout changes; readers skip newer-schema records
#: instead of misparsing them.
RUNLOG_SCHEMA = 1

#: The set of record kinds the CLI entry points produce.
RUN_KINDS = ("schedule", "sweep", "bench")


def fingerprint(doc: dict[str, Any]) -> str:
    """sha256 over canonical JSON — the experiment cache's keying scheme.

    Same digest discipline as ``repro.experiments.cache``: sorted keys,
    compact separators, so any field perturbation changes the fingerprint.
    (Not imported from there — the experiments layer depends on ``repro.obs``,
    and the digest must stay stable even if cache keys gain fields.)
    """
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def default_runs_dir() -> Path:
    """``$REPRO_RUNS_DIR`` if set, else ``.repro-runs`` in the working dir."""
    env = os.environ.get("REPRO_RUNS_DIR")
    if env:
        return Path(env).expanduser()
    return Path(".repro-runs")


def git_revision() -> str:
    """The working tree's HEAD commit, or ``""`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return ""
    return out.stdout.strip() if out.returncode == 0 else ""


def environment() -> dict[str, str]:
    """The environment fields stamped onto every record."""
    from repro import __version__

    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repro": __version__,
    }


@dataclass
class RunRecord:
    """One ledger entry: what ran, under which config, and what it measured.

    ``makespans`` maps algorithm name to makespan (one entry for a single
    ``schedule`` run); ``metrics`` / ``timings`` are the run's observability
    capture (snapshot-diff form, as on ``ScheduleStats``); ``meta`` carries
    kind-specific payload (workload parameters, sweep telemetry summary,
    cache statistics) that ``runs show`` prints verbatim.
    """

    run_id: str
    kind: str
    created_at: str
    fingerprint: str
    argv: list[str] = field(default_factory=list)
    git_rev: str = ""
    env: dict[str, str] = field(default_factory=dict)
    makespans: dict[str, float] = field(default_factory=dict)
    metrics: Snapshot = field(default_factory=dict)
    timings: Timings = field(default_factory=dict)
    wall_s: float | None = None
    meta: dict[str, Any] = field(default_factory=dict)
    schema: int = RUNLOG_SCHEMA

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "RunRecord":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in doc.items() if k in known})

    def counter(self, name: str) -> float:
        return float(self.metrics.get("counters", {}).get(name, 0.0))

    def to_text(self) -> str:
        """Multi-line human-readable form (``runs show``)."""
        from repro.obs.metrics import MetricsRegistry

        lines = [
            f"run {self.run_id}  [{self.kind}]  {self.created_at}",
            f"fingerprint {self.fingerprint}",
        ]
        if self.git_rev:
            lines.append(f"git {self.git_rev}")
        if self.env:
            lines.append(
                "env " + ", ".join(f"{k}={v}" for k, v in sorted(self.env.items()))
            )
        if self.argv:
            lines.append("argv " + " ".join(self.argv))
        if self.wall_s is not None:
            lines.append(f"wall {self.wall_s * 1e3:.1f} ms")
        for algo in sorted(self.makespans):
            lines.append(f"makespan[{algo}] = {self.makespans[algo]!r}")
        if self.meta:
            lines.append("meta " + json.dumps(self.meta, sort_keys=True))
        rendered = MetricsRegistry.render_text(self.metrics)
        if rendered != "(no metrics recorded)":
            lines.append(rendered)
        if self.timings:
            lines.extend(
                f"{phase}  {rec['total'] * 1e3:.3f} ms  x{int(rec['count'])}"
                for phase, rec in sorted(self.timings.items())
            )
        return "\n".join(lines)


def new_record(
    kind: str,
    *,
    fingerprint_doc: dict[str, Any] | None = None,
    config_fingerprint: str | None = None,
    argv: list[str] | None = None,
    makespans: dict[str, float] | None = None,
    metrics: Snapshot | None = None,
    timings: Timings | None = None,
    wall_s: float | None = None,
    meta: dict[str, Any] | None = None,
) -> RunRecord:
    """Assemble a :class:`RunRecord`, stamping id, time, git rev and env.

    Exactly one of ``fingerprint_doc`` (hashed here) or ``config_fingerprint``
    (a digest the caller already has, e.g. the experiment cache's) is
    required.  The run id is a 12-hex digest over the record content plus the
    timestamp and pid, so simultaneous identical runs still get distinct ids.
    """
    if kind not in RUN_KINDS:
        raise ObsError(f"unknown run kind {kind!r}; expected one of {RUN_KINDS}")
    if (fingerprint_doc is None) == (config_fingerprint is None):
        raise ObsError(
            "exactly one of fingerprint_doc / config_fingerprint is required"
        )
    fp = config_fingerprint if config_fingerprint is not None else fingerprint(
        fingerprint_doc or {}
    )
    created_at = datetime.now(timezone.utc).isoformat(timespec="microseconds")
    run_id = fingerprint(
        {"fp": fp, "at": created_at, "pid": os.getpid(), "kind": kind}
    )[:12]
    return RunRecord(
        run_id=run_id,
        kind=kind,
        created_at=created_at,
        fingerprint=fp,
        argv=list(argv or []),
        git_rev=git_revision(),
        env=environment(),
        makespans=dict(makespans or {}),
        metrics=metrics or {},
        timings=timings or {},
        wall_s=wall_s,
        meta=dict(meta or {}),
    )


class RunLedger:
    """Sharded append-only JSONL store of :class:`RunRecord` entries."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_runs_dir()

    def _shard_path(self, run_id: str) -> Path:
        return self.root / f"ledger-{run_id[:2]}.jsonl"

    def append(self, record: RunRecord) -> RunRecord:
        """Atomically append one record to its shard; returns the record.

        The sanctioned ledger write path (lint rule OBS002): a single
        ``os.write`` of the whole line on an ``O_APPEND`` descriptor, so
        concurrent appends from parallel jobs never interleave mid-line.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        line = record.to_json() + "\n"
        path = self._shard_path(record.run_id)
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
        return record

    def _iter_raw(self) -> Iterator[tuple[Path, int, dict[str, Any]]]:
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("ledger-*.jsonl")):
            with open(path) as fh:
                for lineno, line in enumerate(fh, start=1):
                    if not line.strip():
                        continue
                    try:
                        doc = json.loads(line)
                    except json.JSONDecodeError as exc:
                        raise ObsError(
                            f"{path}:{lineno}: malformed ledger line ({exc})"
                        ) from exc
                    yield path, lineno, doc

    def records(self, *, kind: str | None = None) -> list[RunRecord]:
        """All readable records, oldest first (stable on run id)."""
        out = []
        for _path, _lineno, doc in self._iter_raw():
            if doc.get("schema", 0) > RUNLOG_SCHEMA:
                continue  # written by a newer library; skip, don't misparse
            if kind is not None and doc.get("kind") != kind:
                continue
            out.append(RunRecord.from_dict(doc))
        out.sort(key=lambda r: (r.created_at, r.run_id))
        return out

    def get(self, run_id: str) -> RunRecord:
        """The record whose id equals or starts with ``run_id``."""
        matches = [r for r in self.records() if r.run_id.startswith(run_id)]
        if not matches:
            raise ObsError(f"no ledger record matches run id {run_id!r}")
        if len(matches) > 1:
            ids = ", ".join(r.run_id for r in matches)
            raise ObsError(f"run id {run_id!r} is ambiguous: {ids}")
        return matches[0]

    def latest(self, *, kind: str | None = None) -> RunRecord | None:
        records = self.records(kind=kind)
        return records[-1] if records else None


def append(record: RunRecord, root: str | Path | None = None) -> RunRecord:
    """Append ``record`` to the ledger at ``root`` (default ledger location).

    The module-level sanctioned write path; see :meth:`RunLedger.append`.
    """
    return RunLedger(root).append(record)


# -- regression comparison -----------------------------------------------------


@dataclass(frozen=True)
class RegressionFinding:
    """One out-of-tolerance deviation between a run and a baseline."""

    algorithm: str
    field: str  # "makespan" | "counter:<name>" | "wall_s" | "coverage"
    baseline: float | None
    current: float | None
    message: str


def compare_to_baseline(
    record: RunRecord,
    baseline: dict[str, Any],
    *,
    rel_tol: float = 0.0,
    counter_tol: float = 0.0,
    wall_tol: float | None = None,
) -> list[RegressionFinding]:
    """Regression verdict of a bench record against a ``BENCH_*.json`` doc.

    ``baseline`` is the committed scheduler-cost report shape:
    ``{"algorithms": {name: {"makespan": float, "counters": {...},
    "wall_s": float}}}``.  Makespans are gated at relative tolerance
    ``rel_tol`` (default exact — the engines are deterministic), counters at
    ``counter_tol``, and wall time at ``wall_tol`` (a slowdown ratio, e.g.
    ``1.5`` fails when 50% slower; ``None`` reports but never gates — CI
    runners are too noisy for hard timing assertions).
    """
    findings: list[RegressionFinding] = []
    algorithms = baseline.get("algorithms")
    if not isinstance(algorithms, dict):
        raise ObsError("baseline is not a BENCH_*.json report (no 'algorithms')")

    def rel_err(base: float, cur: float) -> float:
        if base == cur:  # repro-lint: disable=FLT001 (identical floats => zero rel err)
            return 0.0
        scale = max(abs(base), abs(cur))
        return abs(base - cur) / scale if scale else 0.0

    for algo in sorted(algorithms):
        base = algorithms[algo]
        cur_makespan = record.makespans.get(algo)
        if cur_makespan is None:
            findings.append(
                RegressionFinding(
                    algo, "coverage", base.get("makespan"), None,
                    f"{algo}: no makespan in run {record.run_id}",
                )
            )
            continue
        base_makespan = base["makespan"]
        if rel_err(base_makespan, cur_makespan) > rel_tol:
            findings.append(
                RegressionFinding(
                    algo, "makespan", base_makespan, cur_makespan,
                    f"{algo}: makespan {cur_makespan!r} deviates from "
                    f"baseline {base_makespan!r} (rel tol {rel_tol:g})",
                )
            )
        per_algo = record.meta.get("counters", {}).get(algo)
        base_counters = base.get("counters")
        if per_algo is not None and base_counters:
            for cname in sorted(base_counters):
                cur_v = float(per_algo.get(cname, 0.0))
                base_v = float(base_counters[cname])
                if rel_err(base_v, cur_v) > counter_tol:
                    findings.append(
                        RegressionFinding(
                            algo, f"counter:{cname}", base_v, cur_v,
                            f"{algo}: counter {cname} = {cur_v:g} deviates "
                            f"from baseline {base_v:g} (rel tol {counter_tol:g})",
                        )
                    )
        if wall_tol is not None:
            base_wall = base.get("wall_s")
            cur_wall = record.meta.get("wall_s", {}).get(algo)
            if base_wall and cur_wall and cur_wall / base_wall > wall_tol:
                findings.append(
                    RegressionFinding(
                        algo, "wall_s", base_wall, cur_wall,
                        f"{algo}: wall {cur_wall * 1e3:.1f} ms is "
                        f"{cur_wall / base_wall:.2f}x baseline "
                        f"{base_wall * 1e3:.1f} ms (tol {wall_tol:g}x)",
                    )
                )
    return findings
