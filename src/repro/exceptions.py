"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to discriminate between model errors (bad inputs) and scheduling errors
(internal invariant violations, which indicate bugs).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """A task graph is malformed (cycle, dangling edge, bad cost, ...)."""


class CycleError(GraphError):
    """The task graph contains a directed cycle."""


class TopologyError(ReproError):
    """A network topology is malformed (bad speed, unknown vertex, ...)."""


class RoutingError(TopologyError):
    """No route exists between the requested processors."""


class SchedulingError(ReproError):
    """A scheduler could not produce a valid schedule (internal error)."""


class ValidationError(ReproError):
    """A produced schedule violates a model invariant.

    Raised by the validators in :mod:`repro.core.validate`; if the library is
    correct this is only seen by tests that inject corrupted schedules.
    """


class SerializationError(ReproError):
    """A graph/topology/schedule document could not be parsed or written."""


class ObsError(ReproError):
    """An observability artifact (event log, run ledger) is malformed."""
