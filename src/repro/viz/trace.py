"""Chrome trace-event export (``chrome://tracing`` / Perfetto).

Emits the schedule as a JSON trace: processors are "processes" with tasks as
complete events; each used link is a process with communication slots (or
bandwidth segments) as events.  Metadata events pin the ordering — processors
sort first (by vertex id), links below them (by link id) — instead of
Perfetto's default pid interleaving.  Load the file in Perfetto or
``chrome://tracing`` to scrub through the schedule interactively.

When the schedule carries an observability capture (``schedule.stats`` from
an :mod:`repro.obs`-enabled run), timestamped decision events — slot
deferrals, rejected insertion probes, task placements — are rendered as
instant events on the lane they refer to, so the *why* of the schedule shows
up alongside the Gantt.
"""

from __future__ import annotations

import json

from repro.core.schedule import Schedule

#: Link "processes" start here so they never collide with processor vids.
LINK_PID_BASE = 10_000

#: The critical-path highlight track's process id; its negative sort index
#: pins it above every processor lane.
CRITICAL_PID = 9_999

#: Chrome-trace color names per explain segment kind: binding work in
#: green/blue, waits in the alarm palette, so contention pops visually.
_SEGMENT_CNAME = {
    "compute": "good",
    "transfer": "thread_state_running",
    "link_wait": "terrible",
    "proc_wait": "bad",
    "idle": "grey",
}


def _link_meta(events: list[dict], pid: int, name: str) -> None:
    """Name a link process and sort it below every processor lane."""
    events.append(
        {"name": "process_name", "ph": "M", "pid": pid,
         "args": {"name": f"link {name}"}}
    )
    events.append(
        {"name": "process_sort_index", "ph": "M", "pid": pid,
         "args": {"sort_index": pid}}
    )
    events.append(
        {"name": "thread_name", "ph": "M", "pid": pid, "tid": 0,
         "args": {"name": "transfer"}}
    )


def schedule_to_trace(
    schedule: Schedule, *, time_unit: float = 1.0, explanation=None
) -> str:
    """Serialize as Trace Event Format JSON.

    ``time_unit`` scales schedule time units into microseconds (trace
    timestamps are integers in us; the default treats one schedule time unit
    as one microsecond).  Zero-length slots are clamped to 1us — for tasks
    *and* link slots — so they don't vanish in Perfetto.

    Pass a :class:`~repro.core.explain.ScheduleExplanation` (from
    :func:`repro.core.explain.explain`) as ``explanation`` to add a
    **critical path** track above the processor lanes: the binding chain's
    segments as color-coded slices (compute green, transfers blue, contention
    waits red), each naming the resource it binds.
    """
    events: list[dict] = []

    def us(t: float) -> int:
        return int(round(t * time_unit))

    def dur(start: float, finish: float) -> int:
        return max(1, us(finish) - us(start))

    for vid in sorted(p.vid for p in schedule.net.processors()):
        name = schedule.net.vertex(vid).name or f"P{vid}"
        events.append(
            {"name": "process_name", "ph": "M", "pid": vid,
             "args": {"name": f"processor {name}"}}
        )
        events.append(
            {"name": "process_sort_index", "ph": "M", "pid": vid,
             "args": {"sort_index": vid}}
        )
        events.append(
            {"name": "thread_name", "ph": "M", "pid": vid, "tid": 0,
             "args": {"name": "exec"}}
        )
    for pl in schedule.placements.values():
        events.append(
            {
                "name": f"task {pl.task}",
                "ph": "X",
                "pid": pl.processor,
                "tid": 0,
                "ts": us(pl.start),
                "dur": dur(pl.start, pl.finish),
                "args": {"task": pl.task},
            }
        )

    if schedule.link_state is not None:
        for lid in sorted(schedule.link_state.used_links()):
            pid = LINK_PID_BASE + lid
            _link_meta(events, pid, schedule.net.link(lid).name or f"L{lid}")
            for slot in schedule.link_state.slots(lid):
                events.append(
                    {
                        "name": f"{slot.edge[0]}->{slot.edge[1]}",
                        "ph": "X",
                        "pid": pid,
                        "tid": 0,
                        "ts": us(slot.start),
                        "dur": dur(slot.start, slot.finish),
                        "args": {"edge": list(slot.edge)},
                    }
                )
    elif schedule.bandwidth_state is not None:
        lids = sorted(
            {lid for r in schedule.bandwidth_state.routes().values() for lid in r}
        )
        for lid in lids:
            pid = LINK_PID_BASE + lid
            _link_meta(events, pid, schedule.net.link(lid).name or f"L{lid}")
            # Counter events showing instantaneous used bandwidth.
            profile = schedule.bandwidth_state.profile(lid)
            for t0, t1, used in profile.segments:
                events.append(
                    {"name": "used bandwidth", "ph": "C", "pid": pid,
                     "ts": us(t0), "args": {"fraction": used}}
                )
                events.append(
                    {"name": "used bandwidth", "ph": "C", "pid": pid,
                     "ts": us(t1), "args": {"fraction": 0.0}}
                )

    if explanation is not None:
        events.extend(_critical_path_events(explanation, us, dur))

    if schedule.stats is not None:
        events.extend(_instant_events(schedule, us))

    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"}, indent=1)


def _critical_path_events(explanation, us, dur) -> list[dict]:
    """The binding chain as a dedicated color-coded track above the lanes."""
    out: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": CRITICAL_PID,
         "args": {"name": "critical path"}},
        {"name": "process_sort_index", "ph": "M", "pid": CRITICAL_PID,
         "args": {"sort_index": -1}},
        {"name": "thread_name", "ph": "M", "pid": CRITICAL_PID, "tid": 0,
         "args": {"name": "binding chain"}},
    ]
    for seg in explanation.segments:
        if seg.task is not None:
            label = f"{seg.kind} task {seg.task}"
        elif seg.edge is not None:
            label = f"{seg.kind} {seg.edge[0]}->{seg.edge[1]}"
        else:
            label = seg.kind
        if seg.resource:
            label += f" @{seg.resource}"
        out.append(
            {
                "name": label,
                "ph": "X",
                "pid": CRITICAL_PID,
                "tid": 0,
                "ts": us(seg.start),
                "dur": dur(seg.start, seg.finish),
                "cname": _SEGMENT_CNAME.get(seg.kind, "grey"),
                "args": {
                    "kind": seg.kind,
                    "resource": seg.resource,
                    "share": (
                        seg.duration / explanation.makespan
                        if explanation.makespan > 0
                        else 0.0
                    ),
                },
            }
        )
    return out


def _instant_events(schedule: Schedule, us) -> list[dict]:
    """Timestamped decision events as Perfetto instants on their lane."""
    out: list[dict] = []
    for ev in schedule.stats.events:
        if ev.t is None:
            continue
        if "lid" in ev.data:
            pid = LINK_PID_BASE + ev.data["lid"]
        elif "proc" in ev.data:
            pid = ev.data["proc"]
        else:
            continue
        out.append(
            {
                "name": ev.kind,
                "ph": "i",
                "s": "t",
                "pid": pid,
                "tid": 0,
                "ts": us(ev.t),
                "args": dict(ev.data),
            }
        )
    return out
