"""Chrome trace-event export (``chrome://tracing`` / Perfetto).

Emits the schedule as a JSON trace: processors are "processes" with tasks as
complete events; each used link is a process with communication slots (or
bandwidth segments) as events.  Load the file in Perfetto or
``chrome://tracing`` to scrub through the schedule interactively.
"""

from __future__ import annotations

import json

from repro.core.schedule import Schedule


def schedule_to_trace(schedule: Schedule, *, time_unit: float = 1.0) -> str:
    """Serialize as Trace Event Format JSON.

    ``time_unit`` scales schedule time units into microseconds (trace
    timestamps are integers in us; the default treats one schedule time unit
    as one microsecond).
    """
    events: list[dict] = []

    def us(t: float) -> int:
        return int(round(t * time_unit))

    for vid in sorted(p.vid for p in schedule.net.processors()):
        name = schedule.net.vertex(vid).name or f"P{vid}"
        events.append(
            {"name": "process_name", "ph": "M", "pid": vid,
             "args": {"name": f"processor {name}"}}
        )
    for pl in schedule.placements.values():
        events.append(
            {
                "name": f"task {pl.task}",
                "ph": "X",
                "pid": pl.processor,
                "tid": 0,
                "ts": us(pl.start),
                "dur": max(1, us(pl.finish) - us(pl.start)),
                "args": {"task": pl.task},
            }
        )

    link_pid_base = 10_000
    if schedule.link_state is not None:
        for lid in sorted(schedule.link_state.used_links()):
            pid = link_pid_base + lid
            name = schedule.net.link(lid).name or f"L{lid}"
            events.append(
                {"name": "process_name", "ph": "M", "pid": pid,
                 "args": {"name": f"link {name}"}}
            )
            for slot in schedule.link_state.slots(lid):
                events.append(
                    {
                        "name": f"{slot.edge[0]}->{slot.edge[1]}",
                        "ph": "X",
                        "pid": pid,
                        "tid": 0,
                        "ts": us(slot.start),
                        "dur": max(1, us(slot.finish) - us(slot.start)),
                        "args": {"edge": list(slot.edge)},
                    }
                )
    elif schedule.bandwidth_state is not None:
        lids = sorted(
            {lid for r in schedule.bandwidth_state.routes().values() for lid in r}
        )
        for lid in lids:
            pid = link_pid_base + lid
            name = schedule.net.link(lid).name or f"L{lid}"
            events.append(
                {"name": "process_name", "ph": "M", "pid": pid,
                 "args": {"name": f"link {name}"}}
            )
            # Counter events showing instantaneous used bandwidth.
            profile = schedule.bandwidth_state.profile(lid)
            for t0, t1, used in profile.segments:
                events.append(
                    {"name": "used bandwidth", "ph": "C", "pid": pid,
                     "ts": us(t0), "args": {"fraction": used}}
                )
                events.append(
                    {"name": "used bandwidth", "ph": "C", "pid": pid,
                     "ts": us(t1), "args": {"fraction": 0.0}}
                )

    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"}, indent=1)
