"""Dependency-free SVG Gantt rendering of schedules.

Produces a standalone ``.svg`` document with one lane per processor (and
optionally per used link), task rectangles labelled and colour-coded by
task id, communication slots drawn in the link lanes.  Useful when the
ASCII charts are too coarse.
"""

from __future__ import annotations

from repro.core.schedule import Schedule

_PALETTE = [
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
    "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
]

_LANE_H = 28
_LANE_GAP = 6
_LABEL_W = 90
_CHART_W = 900


def _color(i: int) -> str:
    return _PALETTE[i % len(_PALETTE)]


def _rect(x, y, w, h, fill, title) -> str:
    return (
        f'<rect x="{x:.1f}" y="{y:.1f}" width="{max(w, 1.0):.1f}" height="{h:.1f}" '
        f'fill="{fill}" stroke="#333" stroke-width="0.5"><title>{title}</title></rect>'
    )


def _text(x, y, s, size=11, anchor="start") -> str:
    return (
        f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
        f'font-family="sans-serif" text-anchor="{anchor}">{s}</text>'
    )


def schedule_to_svg(schedule: Schedule, *, include_links: bool = True) -> str:
    """Render the schedule as a standalone SVG document string."""
    makespan = max(schedule.makespan, 1e-9)
    scale = _CHART_W / makespan
    procs = sorted(p.vid for p in schedule.net.processors())
    link_ids: list[int] = []
    if include_links and schedule.link_state is not None:
        link_ids = sorted(schedule.link_state.used_links())
    elif include_links and schedule.bandwidth_state is not None:
        link_ids = sorted(
            {lid for r in schedule.bandwidth_state.routes().values() for lid in r}
        )

    lanes = len(procs) + len(link_ids)
    height = 40 + lanes * (_LANE_H + _LANE_GAP) + 30
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_LABEL_W + _CHART_W + 20}" '
        f'height="{height}">',
        _text(10, 20, f"{schedule.algorithm}: makespan {schedule.makespan:.1f}", size=14),
    ]

    y = 40
    for vid in procs:
        name = schedule.net.vertex(vid).name or f"P{vid}"
        parts.append(_text(10, y + _LANE_H / 2 + 4, name))
        parts.append(
            f'<line x1="{_LABEL_W}" y1="{y + _LANE_H}" x2="{_LABEL_W + _CHART_W}" '
            f'y2="{y + _LANE_H}" stroke="#ddd"/>'
        )
        for pl in schedule.placements.values():
            if pl.processor != vid:
                continue
            x = _LABEL_W + pl.start * scale
            w = (pl.finish - pl.start) * scale
            parts.append(
                _rect(x, y, w, _LANE_H, _color(pl.task),
                      f"task {pl.task}: [{pl.start:.1f}, {pl.finish:.1f})")
            )
            if w > 18:
                parts.append(_text(x + 3, y + _LANE_H / 2 + 4, f"t{pl.task}", size=10))
        y += _LANE_H + _LANE_GAP

    for lid in link_ids:
        name = schedule.net.link(lid).name or f"L{lid}"
        parts.append(_text(10, y + _LANE_H / 2 + 4, name))
        if schedule.link_state is not None:
            for slot in schedule.link_state.slots(lid):
                x = _LABEL_W + slot.start * scale
                w = slot.duration * scale
                parts.append(
                    _rect(x, y + 6, w, _LANE_H - 12, _color(slot.edge[0]),
                          f"edge {slot.edge[0]}->{slot.edge[1]}: "
                          f"[{slot.start:.1f}, {slot.finish:.1f})")
                )
        elif schedule.bandwidth_state is not None:
            for t0, t1, used in schedule.bandwidth_state.profile(lid).segments:
                x = _LABEL_W + t0 * scale
                w = (t1 - t0) * scale
                h = (_LANE_H - 12) * min(1.0, used)
                parts.append(
                    _rect(x, y + 6 + (_LANE_H - 12 - h), w, h, "#76b7b2",
                          f"{used:.0%} used over [{t0:.1f}, {t1:.1f})")
                )
        y += _LANE_H + _LANE_GAP

    # Time axis.
    parts.append(
        f'<line x1="{_LABEL_W}" y1="{y}" x2="{_LABEL_W + _CHART_W}" y2="{y}" '
        f'stroke="#333"/>'
    )
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        x = _LABEL_W + _CHART_W * frac
        parts.append(f'<line x1="{x}" y1="{y}" x2="{x}" y2="{y + 5}" stroke="#333"/>')
        parts.append(_text(x, y + 18, f"{makespan * frac:.0f}", size=10, anchor="middle"))
    parts.append("</svg>")
    return "\n".join(parts)
