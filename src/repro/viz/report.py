"""Composite text reports for schedules and algorithm comparisons."""

from __future__ import annotations

from repro.core.metrics import (
    comm_to_comp_time,
    efficiency,
    link_utilization,
    schedule_length_ratio,
    speedup,
)
from repro.core.schedule import Schedule
from repro.obs import ScheduleStats
from repro.utils.tables import format_table
from repro.viz.gantt import link_gantt, processor_gantt


def schedule_report(schedule: Schedule, *, gantt: bool = True, width: int = 78) -> str:
    """Summary + metrics + (optionally) Gantt charts for one schedule."""
    util = link_utilization(schedule)
    busiest = max(util.items(), key=lambda kv: kv[1], default=None)
    rows = [
        ("makespan", f"{schedule.makespan:.2f}"),
        ("speedup", f"{speedup(schedule):.2f}"),
        ("efficiency", f"{efficiency(schedule):.2%}"),
        ("SLR", f"{schedule_length_ratio(schedule):.2f}"),
        ("processors used", f"{len(schedule.processors_used())}/{len(schedule.net.processors())}"),
        ("links used", f"{len(util)}"),
    ]
    if busiest is not None:
        rows.append(("busiest link", f"L{busiest[0]} at {busiest[1]:.0%} of makespan"))
    if (
        schedule.link_state is not None
        or schedule.bandwidth_state is not None
        or schedule.packet_state is not None
    ):
        rows.append(("comm/comp time", f"{comm_to_comp_time(schedule):.2f}"))
    parts = [
        schedule.summary(),
        format_table(["metric", "value"], rows),
    ]
    if schedule.stats is not None:
        parts.append("instrumentation:")
        parts.append(stats_report(schedule.stats))
    if gantt:
        parts.append("processors:")
        parts.append(processor_gantt(schedule, width))
        parts.append("links:")
        parts.append(link_gantt(schedule, width))
    return "\n\n".join(parts)


def stats_report(stats: ScheduleStats) -> str:
    """Counter / histogram / phase-timing tables for one instrumented run."""
    parts: list[str] = []
    counters = stats.metrics.get("counters", {})
    gauges = stats.metrics.get("gauges", {})
    scalar_rows = [(name, f"{counters[name]:g}") for name in sorted(counters)]
    scalar_rows += [(name, f"{gauges[name]:g}") for name in sorted(gauges)]
    if scalar_rows:
        parts.append(format_table(["counter", "value"], scalar_rows))
    histograms = stats.metrics.get("histograms", {})
    if histograms:
        parts.append(
            format_table(
                ["histogram", "count", "mean", "min", "max"],
                [
                    (
                        name,
                        f"{h['count']:g}",
                        f"{h['sum'] / h['count']:g}" if h["count"] else "-",
                        f"{h['min']:g}",
                        f"{h['max']:g}",
                    )
                    for name, h in sorted(histograms.items())
                ],
            )
        )
    if stats.timings:
        parts.append(
            format_table(
                ["phase", "time (ms)", "calls"],
                [
                    (phase, f"{rec['total'] * 1e3:.3f}", f"{int(rec['count'])}")
                    for phase, rec in sorted(stats.timings.items())
                ],
            )
        )
    if stats.events:
        kinds = sorted({e.kind for e in stats.events})
        parts.append(
            format_table(
                ["event", "emitted"],
                [(k, str(len(stats.events_of(k)))) for k in kinds],
            )
        )
    return "\n\n".join(parts) if parts else "(nothing recorded)"


def comparison_report(schedules: list[Schedule]) -> str:
    """Side-by-side metric table for schedules of the same workload."""
    if not schedules:
        return "(no schedules)"
    base = schedules[0].makespan
    rows = []
    for s in schedules:
        rows.append(
            [
                s.algorithm,
                s.makespan,
                f"{100.0 * (base - s.makespan) / base:+.1f}%" if base > 0 else "n/a",
                speedup(s),
                len(s.processors_used()),
            ]
        )
    return format_table(
        ["algorithm", "makespan", f"vs {schedules[0].algorithm}", "speedup", "procs"],
        rows,
    )
