"""Composite text reports for schedules and algorithm comparisons."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.metrics import (
    comm_to_comp_time,
    efficiency,
    link_utilization,
    schedule_length_ratio,
    speedup,
)
from repro.core.schedule import Schedule
from repro.obs import ScheduleStats
from repro.utils.tables import format_table
from repro.viz.gantt import link_gantt, processor_gantt

if TYPE_CHECKING:
    from repro.core.explain import ScheduleExplanation


def schedule_report(schedule: Schedule, *, gantt: bool = True, width: int = 78) -> str:
    """Summary + metrics + (optionally) Gantt charts for one schedule."""
    util = link_utilization(schedule)
    busiest = max(util.items(), key=lambda kv: kv[1], default=None)
    rows = [
        ("makespan", f"{schedule.makespan:.2f}"),
        ("speedup", f"{speedup(schedule):.2f}"),
        ("efficiency", f"{efficiency(schedule):.2%}"),
        ("SLR", f"{schedule_length_ratio(schedule):.2f}"),
        ("processors used", f"{len(schedule.processors_used())}/{len(schedule.net.processors())}"),
        ("links used", f"{len(util)}"),
    ]
    if busiest is not None:
        rows.append(("busiest link", f"L{busiest[0]} at {busiest[1]:.0%} of makespan"))
    if (
        schedule.link_state is not None
        or schedule.bandwidth_state is not None
        or schedule.packet_state is not None
    ):
        rows.append(("comm/comp time", f"{comm_to_comp_time(schedule):.2f}"))
    parts = [
        schedule.summary(),
        format_table(["metric", "value"], rows),
    ]
    if schedule.stats is not None:
        parts.append("instrumentation:")
        parts.append(stats_report(schedule.stats))
    if gantt:
        parts.append("processors:")
        parts.append(processor_gantt(schedule, width))
        parts.append("links:")
        parts.append(link_gantt(schedule, width))
    return "\n\n".join(parts)


def stats_report(stats: ScheduleStats) -> str:
    """Counter / histogram / phase-timing tables for one instrumented run."""
    parts: list[str] = []
    counters = stats.metrics.get("counters", {})
    gauges = stats.metrics.get("gauges", {})
    scalar_rows = [(name, f"{counters[name]:g}") for name in sorted(counters)]
    scalar_rows += [(name, f"{gauges[name]:g}") for name in sorted(gauges)]
    if scalar_rows:
        parts.append(format_table(["counter", "value"], scalar_rows))
    histograms = stats.metrics.get("histograms", {})
    if histograms:
        from repro.obs.metrics import RENDERED_QUANTILES, quantile_from_buckets

        def _quantiles(h: dict) -> list[str]:
            buckets = h.get("buckets")
            if not buckets or not h["count"]:
                return ["-"] * len(RENDERED_QUANTILES)
            return [
                f"{quantile_from_buckets(buckets, h['count'], h['min'], h['max'], q):g}"
                for _label, q in RENDERED_QUANTILES
            ]

        parts.append(
            format_table(
                ["histogram", "count", "mean", "min", "max"]
                + [label for label, _q in RENDERED_QUANTILES],
                [
                    [
                        name,
                        f"{h['count']:g}",
                        f"{h['sum'] / h['count']:g}" if h["count"] else "-",
                        f"{h['min']:g}",
                        f"{h['max']:g}",
                    ]
                    + _quantiles(h)
                    for name, h in sorted(histograms.items())
                ],
            )
        )
    if stats.timings:
        parts.append(
            format_table(
                ["phase", "time (ms)", "calls"],
                [
                    (phase, f"{rec['total'] * 1e3:.3f}", f"{int(rec['count'])}")
                    for phase, rec in sorted(stats.timings.items())
                ],
            )
        )
    if stats.events:
        kinds = sorted({e.kind for e in stats.events})
        parts.append(
            format_table(
                ["event", "emitted"],
                [(k, str(len(stats.events_of(k)))) for k in kinds],
            )
        )
    return "\n\n".join(parts) if parts else "(nothing recorded)"


#: Human labels for the explain segment kinds (render order preserved).
_SEGMENT_LABELS = {
    "compute": "compute",
    "transfer": "data transfer",
    "link_wait": "link contention wait",
    "proc_wait": "processor queueing wait",
    "idle": "processor idle (ramp-up)",
}


def explain_report(explanation: "ScheduleExplanation", *, chain: bool = True) -> str:
    """Text rendering of a makespan attribution (``python -m repro explain``).

    Sections: attribution by category, by binding resource, per-resource
    utilization over the whole schedule, and (optionally) the binding chain
    itself, oldest segment first.
    """
    from repro.core.explain import SEGMENT_KINDS

    makespan = explanation.makespan
    if makespan <= 0 or not explanation.segments:
        return f"{explanation.algorithm}: empty schedule, nothing to explain"

    def pct(x: float) -> str:
        return f"{100.0 * x / makespan:.1f}%"

    parts = [
        f"{explanation.algorithm}: makespan {makespan:.2f} attributed along "
        f"the binding chain ({len(explanation.segments)} segments)"
    ]
    by_cat = explanation.by_category()
    parts.append(
        format_table(
            ["category", "time", "share"],
            [
                (_SEGMENT_LABELS[kind], f"{by_cat[kind]:.2f}", pct(by_cat[kind]))
                for kind in SEGMENT_KINDS
                if kind in by_cat
            ],
        )
    )
    parts.append("binding resources (where the makespan was spent):")
    parts.append(
        format_table(
            ["resource", "time", "share"],
            [
                (res, f"{t:.2f}", pct(t))
                for res, t in explanation.by_resource().items()
            ],
        )
    )
    util_rows = []
    for tl in explanation.timelines:
        util_rows.append(
            (
                tl.resource,
                f"{tl.busy_time:.2f}",
                f"{tl.utilization(makespan):.0%}",
                str(len(tl.busy)),
            )
        )
    if util_rows:
        parts.append("utilization over the whole schedule:")
        parts.append(
            format_table(["resource", "busy", "util", "intervals"], util_rows)
        )
    if chain:
        chain_rows = []
        for seg in explanation.segments:
            what = _SEGMENT_LABELS[seg.kind]
            detail = ""
            if seg.task is not None:
                detail = f"task {seg.task}"
            elif seg.edge is not None:
                detail = f"edge {seg.edge[0]}->{seg.edge[1]}"
            chain_rows.append(
                (
                    f"{seg.start:.2f}",
                    f"{seg.finish:.2f}",
                    f"{seg.duration:.2f}",
                    what,
                    seg.resource or "-",
                    detail,
                )
            )
        parts.append("binding chain (start -> finish):")
        parts.append(
            format_table(
                ["start", "finish", "dur", "category", "resource", "detail"],
                chain_rows,
            )
        )
    return "\n\n".join(parts)


def comparison_report(schedules: list[Schedule]) -> str:
    """Side-by-side metric table for schedules of the same workload."""
    if not schedules:
        return "(no schedules)"
    base = schedules[0].makespan
    rows = []
    for s in schedules:
        rows.append(
            [
                s.algorithm,
                s.makespan,
                f"{100.0 * (base - s.makespan) / base:+.1f}%" if base > 0 else "n/a",
                speedup(s),
                len(s.processors_used()),
            ]
        )
    return format_table(
        ["algorithm", "makespan", f"vs {schedules[0].algorithm}", "speedup", "procs"],
        rows,
    )
