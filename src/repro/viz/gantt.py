"""ASCII Gantt charts for processors and network links.

Headless-friendly: one row per resource, time flowing right, each busy span
labelled with the task id (processors) or the edge (links).  Intended for
eyeballing small schedules in examples and bug reports.
"""

from __future__ import annotations

from repro.core.schedule import Schedule


def _render_rows(
    rows: list[tuple[str, list[tuple[float, float, str]]]],
    horizon: float,
    width: int,
) -> str:
    """Rows of (label, [(start, finish, tag)]) onto a character grid."""
    if horizon <= 0:
        return "(empty schedule)"
    label_w = max((len(label) for label, _ in rows), default=0)
    scale = width / horizon
    lines = []
    for label, spans in rows:
        line = [" "] * width
        for start, finish, tag in spans:
            a = min(width - 1, int(start * scale))
            b = min(width, max(a + 1, int(round(finish * scale))))
            body = (tag + "=" * width)[: b - a]
            if b - a >= 2:
                body = body[:-1] + "|"
            line[a:b] = body
        lines.append(f"{label.rjust(label_w)} |{''.join(line)}")
    axis = f"{'':{label_w}} +{'-' * width}"
    ticks = f"{'':{label_w}}  0{'':{width - 12}}{horizon:10.1f}"
    return "\n".join([*lines, axis, ticks])


def processor_gantt(schedule: Schedule, width: int = 78) -> str:
    """One row per processor, spans labelled with task ids."""
    by_proc: dict[int, list[tuple[float, float, str]]] = {}
    for pl in schedule.placements.values():
        by_proc.setdefault(pl.processor, []).append((pl.start, pl.finish, f"t{pl.task}"))
    rows = []
    for proc in sorted(p.vid for p in schedule.net.processors()):
        spans = sorted(by_proc.get(proc, []))
        rows.append((schedule.net.vertex(proc).name or f"P{proc}", spans))
    return _render_rows(rows, schedule.makespan, width)


def link_gantt(schedule: Schedule, width: int = 78, max_links: int = 24) -> str:
    """One row per used link; slot spans for BA/OIHSA, usage spans for BBSA."""
    rows: list[tuple[str, list[tuple[float, float, str]]]] = []
    if schedule.link_state is not None:
        for lid in sorted(schedule.link_state.used_links())[:max_links]:
            spans = [
                (s.start, s.finish, f"{s.edge[0]}>{s.edge[1]}")
                for s in schedule.link_state.slots(lid)
            ]
            rows.append((schedule.net.link(lid).name or f"L{lid}", spans))
    elif schedule.bandwidth_state is not None:
        lids = sorted(
            {lid for r in schedule.bandwidth_state.routes().values() for lid in r}
        )[:max_links]
        for lid in lids:
            prof = schedule.bandwidth_state.profile(lid)
            spans = [
                (t0, t1, f"{int(round(used * 100))}%") for t0, t1, used in prof.segments
            ]
            rows.append((schedule.net.link(lid).name or f"L{lid}", spans))
    elif schedule.packet_state is not None:
        for lid in sorted(schedule.packet_state.used_links())[:max_links]:
            spans = [
                (s.start, s.finish, f"{s.edge[0]}>{s.edge[1]}.{s.packet}")
                for s in sorted(schedule.packet_state.slots(lid), key=lambda s: s.start)
            ]
            rows.append((schedule.net.link(lid).name or f"L{lid}", spans))
    else:
        return "(contention-free schedule: no link bookings)"
    if not rows:
        return "(no links used: all communication was processor-local)"
    return _render_rows(rows, schedule.makespan, width)
