"""Text rendering of schedules: Gantt charts and comparison reports."""

from repro.viz.gantt import processor_gantt, link_gantt
from repro.viz.report import schedule_report, comparison_report
from repro.viz.svg import schedule_to_svg
from repro.viz.trace import schedule_to_trace

__all__ = [
    "processor_gantt",
    "link_gantt",
    "schedule_report",
    "comparison_report",
    "schedule_to_svg",
    "schedule_to_trace",
]
