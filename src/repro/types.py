"""Shared scalar types and numeric tolerances.

Times and costs throughout the library are ``float`` seconds (or abstract
time units).  Scheduling arithmetic only composes ``max``/``min``/``+`` so it
does not accumulate drift the way long summations would; validators still
compare with the tolerance :data:`EPS` to be robust against the last-ulp
differences that are unavoidable with heterogeneous (ratio) link speeds.
"""

from __future__ import annotations

from typing import TypeAlias

#: Identifier of a task in a :class:`repro.taskgraph.TaskGraph`.
TaskId: TypeAlias = int

#: Identifier of a vertex (processor or switch) in a network topology.
VertexId: TypeAlias = int

#: Identifier of a communication link in a network topology.
LinkId: TypeAlias = int

#: Key of a DAG communication edge: ``(source task id, destination task id)``.
EdgeKey: TypeAlias = tuple[int, int]

#: Absolute tolerance used by validators when comparing times.
EPS: float = 1e-9


def feq(a: float, b: float, eps: float = EPS) -> bool:
    """Return True if ``a`` and ``b`` are equal within tolerance ``eps``."""
    return abs(a - b) <= eps


def fle(a: float, b: float, eps: float = EPS) -> bool:
    """Return True if ``a <= b`` within tolerance ``eps``."""
    return a <= b + eps


def flt(a: float, b: float, eps: float = EPS) -> bool:
    """Return True if ``a < b`` beyond tolerance ``eps``."""
    return a < b - eps
