"""Paired statistics for algorithm comparisons.

The per-instance variance of improvement ratios is large (EXPERIMENTS.md),
so point estimates alone mislead.  This module provides the paired analyses
a careful reader wants:

- :func:`paired_summary` — mean/median improvement, win/tie/loss counts,
  bootstrap confidence interval, and the sign-test p-value for "the
  candidate beats the baseline more often than not".
- :func:`bootstrap_ci` — percentile bootstrap CI of the mean of any sample.

All resampling is seeded and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb

import numpy as np

from repro.exceptions import ReproError
from repro.utils.rng import as_rng


def bootstrap_ci(
    values: list[float] | np.ndarray,
    *,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng: int | np.random.Generator | None = 0,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for the mean of ``values``."""
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise ReproError("cannot bootstrap an empty sample")
    if not 0 < confidence < 1:
        raise ReproError(f"confidence must be in (0, 1), got {confidence}")
    gen = as_rng(rng)
    idx = gen.integers(0, data.size, size=(n_resamples, data.size))
    means = data[idx].mean(axis=1)
    lo = float(np.percentile(means, 100 * (1 - confidence) / 2))
    hi = float(np.percentile(means, 100 * (1 + confidence) / 2))
    return lo, hi


def sign_test_p(wins: int, losses: int) -> float:
    """Two-sided sign-test p-value for ``wins`` vs ``losses`` (ties dropped)."""
    n = wins + losses
    if n == 0:
        return 1.0
    k = max(wins, losses)
    # P(X >= k) for X ~ Binomial(n, 1/2), doubled and clamped.
    tail = sum(comb(n, i) for i in range(k, n + 1)) / 2.0**n
    return min(1.0, 2.0 * tail)


@dataclass(frozen=True)
class PairedSummary:
    """Paired comparison of candidate vs baseline makespans."""

    n: int
    mean_improvement: float
    median_improvement: float
    ci_low: float
    ci_high: float
    wins: int
    ties: int
    losses: int
    p_value: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.n}: mean {self.mean_improvement:+.1f}% "
            f"[{self.ci_low:+.1f}, {self.ci_high:+.1f}] "
            f"(median {self.median_improvement:+.1f}%), "
            f"W/T/L {self.wins}/{self.ties}/{self.losses}, p={self.p_value:.3g}"
        )


def paired_summary(
    baseline: list[float],
    candidate: list[float],
    *,
    tie_eps: float = 1e-9,
    rng: int | np.random.Generator | None = 0,
) -> PairedSummary:
    """Summarize paired makespans (same instances, two algorithms).

    Improvements are per-instance ``100 * (base - cand) / base``; wins are
    instances where the candidate is strictly faster.
    """
    base = np.asarray(baseline, dtype=float)
    cand = np.asarray(candidate, dtype=float)
    if base.shape != cand.shape or base.size == 0:
        raise ReproError(
            f"need equal non-empty samples, got {base.size} vs {cand.size}"
        )
    if (base <= 0).any():
        raise ReproError("baseline makespans must be positive")
    improvements = 100.0 * (base - cand) / base
    wins = int((cand < base - tie_eps).sum())
    losses = int((cand > base + tie_eps).sum())
    ties = base.size - wins - losses
    lo, hi = bootstrap_ci(improvements, rng=rng)
    return PairedSummary(
        n=int(base.size),
        mean_improvement=float(improvements.mean()),
        median_improvement=float(np.median(improvements)),
        ci_low=lo,
        ci_high=hi,
        wins=wins,
        ties=ties,
        losses=losses,
        p_value=sign_test_p(wins, losses),
    )
