"""Experiment harness: the paper's Section 6 evaluation, reproducible.

- :mod:`repro.experiments.config` — experiment parameter dataclasses,
- :mod:`repro.experiments.workloads` — the paper's workload generator,
- :mod:`repro.experiments.runner` — run algorithm comparisons, aggregate
  improvement ratios,
- :mod:`repro.experiments.parallel` — deterministic process-pool fan-out of
  sweep work units (``improvement_series(..., jobs=N)``),
- :mod:`repro.experiments.cache` — on-disk per-(instance, algorithm) result
  cache keyed by config fingerprint + instance seed,
- :mod:`repro.experiments.figures` — one entry point per paper figure,
- :mod:`repro.experiments.ablations` — design-choice ablations.
"""

from repro.experiments.config import ExperimentConfig, PAPER_CCRS, PAPER_PROC_COUNTS
from repro.experiments.workloads import paper_workload, WorkloadInstance
from repro.experiments.runner import (
    ComparisonResult,
    compare_once,
    improvement_series,
)
from repro.experiments.cache import (
    CacheStats,
    ResultCache,
    comparison_from_json,
    comparison_to_json,
    config_fingerprint,
    default_cache_dir,
    unit_key,
)
from repro.experiments.parallel import (
    SweepUnit,
    UnitResult,
    execute_units,
    merge_unit_results,
    plan_sweep,
    run_unit,
)
from repro.experiments.stats import (
    PairedSummary,
    paired_summary,
    bootstrap_ci,
    sign_test_p,
)
from repro.experiments.figures import (
    FigureResult,
    figure1,
    figure2,
    figure3,
    figure4,
    ALL_FIGURES,
)

__all__ = [
    "ExperimentConfig",
    "PAPER_CCRS",
    "PAPER_PROC_COUNTS",
    "paper_workload",
    "WorkloadInstance",
    "ComparisonResult",
    "compare_once",
    "improvement_series",
    "CacheStats",
    "ResultCache",
    "comparison_from_json",
    "comparison_to_json",
    "config_fingerprint",
    "default_cache_dir",
    "unit_key",
    "SweepUnit",
    "UnitResult",
    "execute_units",
    "merge_unit_results",
    "plan_sweep",
    "run_unit",
    "PairedSummary",
    "paired_summary",
    "bootstrap_ci",
    "sign_test_p",
    "FigureResult",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "ALL_FIGURES",
]
