"""Deterministic parallel fan-out for experiment sweeps.

The paper's Section 6 sweeps (CCR x processor count x repetitions) are
embarrassingly parallel: every repetition is an independent ``(instance,
algorithms)`` work unit.  This module flattens a sweep into those units,
executes them — in process for ``jobs=1``, on a ``ProcessPoolExecutor``
otherwise — and merges the results in the serial order, so
``improvement_series(..., jobs=N)`` returns **exactly** what the serial path
returns for any ``N``.

The determinism contract (asserted by ``tests/test_parallel_equivalence.py``):

1. **Seeds are spawned up front** from the master RNG at plan time, in the
   serial iteration order (sweep point -> inner grid -> repetition).  Workers
   never touch the master RNG, so the instance stream cannot depend on
   worker count or completion order.  ``SeedSequence.spawn`` increments a
   counter on the parent sequence; batched spawning is therefore identical
   to the serial path's incremental spawning.
2. **Workers are pure**: a unit's outcome is a function of ``(config, unit
   seed, algorithms)`` only.  Float results are identical across processes
   because the same code runs the same IEEE-754 operations on the same
   inputs.
3. **Merging is order-fixed**: results are reassembled by unit index, and all
   aggregation (means, SEMs, counter averaging) consumes them in that order,
   so float summation order matches the serial path bit for bit.

Observability crosses the process boundary as plain data: each worker runs
its units with :mod:`repro.obs` enabled (``NullSink`` — counters and
timings, no event transport), extracts every ``ScheduleStats`` counter
capture via ``to_dict()``-style dicts, and the parent merges them into the
same ``"<algorithm>:<counter>"`` series the serial path emits.

When a :class:`~repro.experiments.cache.ResultCache` is supplied, cache
lookups happen in the parent before any fan-out; only the missing
``(instance, algorithm)`` pairs are scheduled, and fresh outcomes are
written back for the next sweep.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ReproError
from repro.experiments.cache import ResultCache, config_fingerprint, unit_key
from repro.experiments.config import ExperimentConfig
from repro.obs.profile import Timings
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class SweepUnit:
    """One independent repetition of the sweep: a workload seed at a grid cell."""

    index: int
    #: position along the swept axis (the figure's x grid)
    point_idx: int
    #: the swept value itself (CCR or processor count, as float)
    x: float
    ccr: float
    n_procs: int
    #: repetition number within the grid cell
    rep: int
    #: pre-spawned seed of this instance (workers build their RNG from it)
    seed_seq: np.random.SeedSequence

    @property
    def seed_key(self) -> tuple:
        """Stable cache identity of the instance seed."""
        return (self.seed_seq.entropy, tuple(self.seed_seq.spawn_key))


@dataclass(frozen=True)
class UnitResult:
    """Outcome of one unit: per-algorithm makespans and counter captures.

    ``counters`` is ``{algorithm: {counter_name: value}}`` when observability
    captures were taken (``with_metrics``), ``None`` otherwise — mirroring
    ``ComparisonResult.stats`` being ``None`` when obs is off.
    """

    index: int
    point_idx: int
    makespans: dict[str, float]
    counters: dict[str, dict[str, float]] | None = None
    cached: bool = False
    #: algorithms actually scheduled in this run (not served from cache)
    fresh_algorithms: tuple[str, ...] = ()
    #: per-algorithm phase spans of the fresh runs (``None`` when obs was off)
    timings: dict[str, Timings] | None = None
    #: wall-clock execution telemetry of the fresh work.  Nondeterministic —
    #: excluded from the deterministic telemetry subset and from caching.
    wall_s: float | None = None
    worker: int | None = None
    t_start: float | None = None
    t_end: float | None = None


def plan_sweep(
    config: ExperimentConfig, sweep: str
) -> tuple[list[float], list[SweepUnit]]:
    """Flatten a sweep into work units, spawning every instance seed up front.

    Returns ``(x_values, units)`` with units in the exact serial iteration
    order; ``unit.index`` is the position in that order.  Planning twice with
    the same config yields identical seeds (``SeedSequence`` spawning is a
    pure function of the master seed and spawn count).
    """
    if sweep not in ("ccr", "procs"):
        raise ReproError(f"sweep must be 'ccr' or 'procs', got {sweep!r}")
    master = as_rng(config.seed)
    x_values = config.ccrs if sweep == "ccr" else config.proc_counts
    units: list[SweepUnit] = []
    index = 0
    for point_idx, x in enumerate(x_values):
        inner = config.ccrs if sweep == "procs" else config.proc_counts
        for y in inner:
            ccr = x if sweep == "ccr" else float(y)
            n_procs = int(y) if sweep == "ccr" else int(x)
            seeds = master.bit_generator.seed_seq.spawn(config.repetitions)
            for rep, seed_seq in enumerate(seeds):
                units.append(
                    SweepUnit(
                        index=index,
                        point_idx=point_idx,
                        x=float(x),
                        ccr=ccr,
                        n_procs=n_procs,
                        rep=rep,
                        seed_seq=seed_seq,
                    )
                )
                index += 1
    return [float(x) for x in x_values], units


def run_unit(
    config: ExperimentConfig,
    unit: SweepUnit,
    algorithms: tuple[str, ...],
    *,
    validate: bool = False,
    with_metrics: bool = False,
) -> UnitResult:
    """Execute one unit: regenerate its instance and schedule ``algorithms``.

    Pure with respect to the unit seed — safe to run in any process, in any
    order.  ``algorithms`` may be a subset of ``config.algorithms`` when the
    rest of the unit was served from cache.
    """
    from repro import obs
    from repro.experiments.runner import compare_once
    from repro.experiments.workloads import paper_workload

    enabled_here = False
    if with_metrics and not obs.is_enabled():
        # Fresh worker process (spawn start method, or first unit): turn on
        # counter/timing capture without event transport.
        obs.enable(obs.NullSink())
        enabled_here = True
    t_start = time.time()
    clock_start = time.perf_counter()
    try:
        rng = np.random.default_rng(unit.seed_seq)
        instance = paper_workload(config, unit.ccr, unit.n_procs, rng)
        result = compare_once(instance, tuple(algorithms), validate=validate)
    finally:
        if enabled_here:
            obs.disable()
    wall = time.perf_counter() - clock_start
    counters: dict[str, dict[str, float]] | None = None
    timings: dict[str, Timings] | None = None
    if result.stats:
        counters = {
            name: dict(stats.metrics.get("counters", {}))
            for name, stats in result.stats.items()
        }
        timings = {
            name: {phase: dict(rec) for phase, rec in stats.timings.items()}
            for name, stats in result.stats.items()
        }
    return UnitResult(
        index=unit.index,
        point_idx=unit.point_idx,
        makespans=dict(result.makespans),
        counters=counters,
        fresh_algorithms=tuple(algorithms),
        timings=timings,
        wall_s=wall,
        worker=os.getpid(),
        t_start=t_start,
        t_end=time.time(),
    )


def _run_unit_star(args: tuple) -> UnitResult:
    """Module-level trampoline so work units pickle into pool workers."""
    config, unit, algorithms, validate, with_metrics = args
    return run_unit(
        config, unit, algorithms, validate=validate, with_metrics=with_metrics
    )


def execute_units(
    config: ExperimentConfig,
    units: list[SweepUnit],
    *,
    jobs: int = 1,
    validate: bool = False,
    with_metrics: bool = False,
    cache: ResultCache | None = None,
) -> list[UnitResult]:
    """Run every unit — cache first, then serial or pooled — in unit order.

    Cache lookups are per ``(instance, algorithm)``: a unit with some
    algorithms cached schedules only the missing ones and merges.  A cached
    record only satisfies a ``with_metrics`` request if it carries counters
    (records written by a metrics-off sweep don't).
    """
    if jobs < 1:
        raise ReproError(f"jobs must be >= 1, got {jobs}")
    results: list[UnitResult | None] = [None] * len(units)
    #: units still needing work: (unit, algorithms to schedule)
    pending: list[tuple[SweepUnit, tuple[str, ...]]] = []
    #: partially-cached makespans/counters to merge with fresh results
    partial: dict[int, tuple[dict, dict]] = {}
    fingerprint = config_fingerprint(config) if cache is not None else ""
    for unit in units:
        if cache is None:
            pending.append((unit, config.algorithms))
            continue
        makespans: dict[str, float] = {}
        counters: dict[str, dict[str, float]] = {}
        missing: list[str] = []
        for algorithm in config.algorithms:
            key = unit_key(
                fingerprint, unit.ccr, unit.n_procs, unit.seed_key, algorithm
            )
            record = cache.get(key)
            if record is not None and with_metrics and record.get("counters") is None:
                # Written by a metrics-off sweep: no counters to replay.
                cache.stats.hits -= 1
                cache.stats.misses += 1
                record = None
            if record is None:
                missing.append(algorithm)
                continue
            makespans[algorithm] = record["makespan"]
            if record.get("counters") is not None:
                counters[algorithm] = record["counters"]
        if missing:
            pending.append((unit, tuple(missing)))
            partial[unit.index] = (makespans, counters)
        else:
            results[unit.index] = UnitResult(
                index=unit.index,
                point_idx=unit.point_idx,
                makespans=makespans,
                counters=counters if with_metrics else (counters or None),
                cached=True,
            )
    if pending:
        if jobs == 1 or len(pending) == 1:
            fresh = [
                run_unit(
                    config, unit, algorithms,
                    validate=validate, with_metrics=with_metrics,
                )
                for unit, algorithms in pending
            ]
        else:
            work = [
                (config, unit, algorithms, validate, with_metrics)
                for unit, algorithms in pending
            ]
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(pending))
            ) as pool:
                fresh = list(pool.map(_run_unit_star, work))
        for (unit, algorithms), res in zip(pending, fresh):
            cached_makespans, cached_counters = partial.get(
                unit.index, ({}, {})
            )
            makespans = dict(cached_makespans)
            makespans.update(res.makespans)
            counters: dict[str, dict[str, float]] | None
            if res.counters is None and not cached_counters:
                counters = None
            else:
                counters = dict(cached_counters)
                counters.update(res.counters or {})
            if cache is not None:
                for algorithm in algorithms:
                    key = unit_key(
                        fingerprint,
                        unit.ccr,
                        unit.n_procs,
                        unit.seed_key,
                        algorithm,
                    )
                    cache.put(
                        key,
                        {
                            "makespan": res.makespans[algorithm],
                            "counters": (
                                res.counters[algorithm]
                                if res.counters is not None
                                else None
                            ),
                        },
                    )
            results[unit.index] = UnitResult(
                index=unit.index,
                point_idx=unit.point_idx,
                makespans=makespans,
                counters=counters,
                fresh_algorithms=res.fresh_algorithms,
                timings=res.timings,
                wall_s=res.wall_s,
                worker=res.worker,
                t_start=res.t_start,
                t_end=res.t_end,
            )
    return [r for r in results if r is not None]


@dataclass(frozen=True)
class SweepTelemetry:
    """Cross-process execution telemetry of one sweep, merged order-fixed.

    Built by :func:`collect_telemetry` from the unit results in **unit-index
    order** regardless of which worker produced them or when they completed,
    so the deterministic subset — counters, span counts, cache attribution —
    is byte-identical for any ``jobs`` count (asserted by
    ``tests/test_parallel_equivalence.py``).  Wall-clock quantities (unit
    wall time, worker pids, start/end stamps) ride along for the
    worker-utilization report but are excluded from the deterministic form.
    """

    #: per-unit entries, ascending unit index (see :func:`collect_telemetry`)
    units: tuple[dict, ...] = ()

    def to_dict(self, *, deterministic_only: bool = False) -> dict:
        """JSON-ready form.

        With ``deterministic_only=True``, wall-clock fields (``wall_s``,
        ``worker``, ``t_start``, ``t_end``) and span *totals* are dropped and
        only span **counts** are kept — everything left is a pure function of
        (config, seeds, algorithms), identical for any worker count.
        """
        if not deterministic_only:
            return {"units": [dict(u) for u in self.units]}
        units = []
        for u in self.units:
            entry = {
                k: u[k]
                for k in (
                    "index", "point_idx", "cached", "fresh_algorithms",
                    "cached_algorithms", "counters",
                )
            }
            timings = u.get("timings")
            if timings is not None:
                entry["span_counts"] = {
                    algo: {
                        phase: int(rec["count"]) for phase, rec in sorted(t.items())
                    }
                    for algo, t in sorted(timings.items())
                }
            units.append(entry)
        return {"units": units}

    # -- aggregate views -------------------------------------------------------

    def cache_attribution(self) -> dict[str, int]:
        """Unit and algorithm-run counts by where the work came from."""
        full = sum(1 for u in self.units if u["cached"])
        partial = sum(
            1 for u in self.units if not u["cached"] and u["cached_algorithms"]
        )
        cached_runs = sum(len(u["cached_algorithms"]) for u in self.units)
        fresh_runs = sum(len(u["fresh_algorithms"]) for u in self.units)
        return {
            "units": len(self.units),
            "units_cached": full,
            "units_partial": partial,
            "units_fresh": len(self.units) - full - partial,
            "algorithm_runs_cached": cached_runs,
            "algorithm_runs_fresh": fresh_runs,
        }

    def worker_utilization(self) -> list[dict]:
        """Per-worker busy time and span, ordered by first unit executed."""
        by_worker: dict[int, list[dict]] = {}
        for u in self.units:
            if u.get("worker") is not None:
                by_worker.setdefault(u["worker"], []).append(u)
        out = []
        for worker, worked in sorted(
            by_worker.items(), key=lambda kv: min(u["index"] for u in kv[1])
        ):
            stamps = [
                (u["t_start"], u["t_end"])
                for u in worked
                if u.get("t_start") is not None and u.get("t_end") is not None
            ]
            span = (
                max(t1 for _t0, t1 in stamps) - min(t0 for t0, _t1 in stamps)
                if stamps
                else 0.0
            )
            busy = sum(u.get("wall_s") or 0.0 for u in worked)
            out.append(
                {
                    "worker": worker,
                    "units": len(worked),
                    "busy_s": busy,
                    "span_s": span,
                    "utilization": busy / span if span > 0 else 1.0,
                }
            )
        return out

    def summary_dict(self) -> dict:
        """Compact aggregate for run-ledger records (deterministic fields
        plus coarse wall totals)."""
        workers = self.worker_utilization()
        return {
            **self.cache_attribution(),
            "workers": len(workers),
            "busy_s": round(sum(w["busy_s"] for w in workers), 6),
        }

    def to_text(self, *, prefix: str = "") -> str:
        """Cache attribution + worker-utilization lines for sweep reports."""
        attribution = self.cache_attribution()
        lines = [
            f"{attribution['units']} units: {attribution['units_fresh']} fresh"
            f", {attribution['units_partial']} partial"
            f", {attribution['units_cached']} cached"
            f"; cache served {attribution['algorithm_runs_cached']}/"
            f"{attribution['algorithm_runs_cached'] + attribution['algorithm_runs_fresh']}"
            " algorithm runs"
        ]
        for w in self.worker_utilization():
            lines.append(
                f"worker {w['worker']}: {w['units']} units, "
                f"busy {w['busy_s']:.2f}s over {w['span_s']:.2f}s span "
                f"({w['utilization']:.0%} utilized)"
            )
        return "\n".join(prefix + line for line in lines)


def collect_telemetry(results: list[UnitResult]) -> SweepTelemetry:
    """Merge per-unit telemetry in unit-index order (worker-count invariant)."""
    units = []
    for res in sorted(results, key=lambda r: r.index):
        all_algorithms = sorted(res.makespans)
        units.append(
            {
                "index": res.index,
                "point_idx": res.point_idx,
                "cached": res.cached,
                "fresh_algorithms": sorted(res.fresh_algorithms),
                "cached_algorithms": sorted(
                    set(all_algorithms) - set(res.fresh_algorithms)
                ),
                "counters": res.counters,
                "timings": res.timings,
                "wall_s": res.wall_s,
                "worker": res.worker,
                "t_start": res.t_start,
                "t_end": res.t_end,
            }
        )
    return SweepTelemetry(units=tuple(units))


def merge_unit_results(
    config: ExperimentConfig,
    x_values: list[float],
    results: list[UnitResult],
    *,
    with_sem: bool = False,
    with_metrics: bool = False,
) -> dict[str, list[float]]:
    """Aggregate unit results into the ``improvement_series`` output dict.

    Consumes ``results`` grouped by sweep point in unit-index order, so every
    float reduction (mean, SEM, counter sum) happens in exactly the order the
    serial loop used.  Counter series are zero-padded symmetrically: a counter
    first seen at a later point is back-filled with zeros, and a counter that
    stops appearing is forward-filled, so every ``"<algorithm>:<counter>"``
    series spans every sweep point regardless of where it was observed.
    """
    from repro.core.metrics import improvement_ratio

    candidates = [a for a in config.algorithms if a != config.baseline]
    series: dict[str, list[float]] = {name: [] for name in candidates}
    sems: dict[str, list[float]] = {name: [] for name in candidates}
    metric_series: dict[str, list[float]] = {}
    by_point: dict[int, list[UnitResult]] = {}
    for res in sorted(results, key=lambda r: r.index):
        by_point.setdefault(res.point_idx, []).append(res)
    for point_idx in range(len(x_values)):
        point_results = by_point.get(point_idx, [])
        if not point_results:
            raise ReproError(f"sweep point {point_idx} has no results")
        per_alg: dict[str, list[float]] = {name: [] for name in candidates}
        point_counters: dict[str, list[float]] = {}
        point_instances = 0
        for res in point_results:
            try:
                base = res.makespans[config.baseline]
            except KeyError:
                raise ReproError(
                    f"baseline {config.baseline!r} missing from unit {res.index}"
                ) from None
            for name in candidates:
                per_alg[name].append(
                    improvement_ratio(base, res.makespans[name])
                )
            if with_metrics and res.counters:
                point_instances += 1
                for name, counts in res.counters.items():
                    for cname, value in counts.items():
                        key = f"{name}:{cname}"
                        point_counters.setdefault(key, []).append(value)
        for name in candidates:
            values = np.asarray(per_alg[name])
            series[name].append(float(values.mean()))
            sems[name].append(
                float(values.std(ddof=1) / np.sqrt(len(values)))
                if len(values) > 1
                else 0.0
            )
        if with_metrics:
            # A counter an algorithm never touched at this point means 0,
            # not absent — pad both directions so every series spans every
            # sweep point: back-fill series first seen here, forward-fill
            # series that skipped this point.
            for key, values in point_counters.items():
                metric_series.setdefault(key, [0.0] * point_idx).append(
                    sum(values) / max(1, point_instances)
                )
            for values in metric_series.values():
                while len(values) < point_idx + 1:
                    values.append(0.0)
    out: dict[str, list[float]] = dict(series)
    out["_x"] = list(x_values)
    if with_sem:
        for name in candidates:
            out[f"{name}_sem"] = sems[name]
    out.update(metric_series)
    return out
