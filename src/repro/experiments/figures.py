"""Reproduction entry points for every figure in the paper (Figures 1-4).

Each ``figureN`` runs the corresponding sweep and returns a
:class:`FigureResult` holding the measured improvement series next to the
values read off the published plot (digitized by eye — the paper has no
tables, so +-3 percentage points of digitization noise is inherent), plus
qualitative shape checks.

The paper's figures:

- **Figure 1** homogeneous systems, % improvement vs CCR (avg over P),
- **Figure 2** homogeneous systems, % improvement vs processor count,
- **Figure 3** heterogeneous systems, % improvement vs CCR,
- **Figure 4** heterogeneous systems, % improvement vs processor count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ReproError
from repro.experiments.config import ExperimentConfig, PAPER_CCRS, PAPER_PROC_COUNTS
from repro.experiments.parallel import SweepTelemetry
from repro.experiments.runner import improvement_series
from repro.utils.tables import format_series

#: Values digitized from the published plots (x-grid = PAPER_CCRS or
#: PAPER_PROC_COUNTS).  Approximate by nature.
PAPER_FIGURE1 = {
    "oihsa": [5, 8, 10, 12, 14, 16, 17, 18, 19, 20, 25, 28, 30, 30, 29, 28, 27, 26, 25],
    "bbsa": [7, 10, 13, 15, 17, 19, 20, 21, 22, 24, 30, 33, 35, 36, 35, 34, 32, 31, 30],
}
PAPER_FIGURE2 = {
    "oihsa": [5, 10, 15, 20, 25, 28, 24],
    "bbsa": [6, 12, 17, 22, 27, 30, 26],
}
PAPER_FIGURE3 = {
    "oihsa": [10, 13, 16, 18, 20, 22, 24, 25, 26, 28, 35, 40, 43, 45, 44, 43, 42, 41, 40],
    "bbsa": [12, 16, 20, 23, 26, 28, 30, 32, 33, 35, 45, 52, 56, 58, 57, 56, 54, 52, 50],
}
PAPER_FIGURE4 = {
    "oihsa": [8, 15, 22, 28, 33, 36, 30],
    "bbsa": [10, 18, 26, 33, 38, 42, 35],
}


def _interp_reference(
    reference: dict[str, list[float]],
    paper_x: tuple[float, ...],
    x_values: list[float],
) -> dict[str, list[float]]:
    """Paper reference values interpolated onto the (possibly reduced) x-grid."""
    out = {}
    for name, ys in reference.items():
        out[name] = [
            float(np.interp(x, np.asarray(paper_x, dtype=float), np.asarray(ys, dtype=float)))
            for x in x_values
        ]
    return out


@dataclass
class FigureResult:
    """Measured vs published series for one paper figure."""

    figure_id: str
    title: str
    x_label: str
    x_values: list[float]
    measured: dict[str, list[float]]
    paper: dict[str, list[float]]
    shape_checks: dict[str, bool] = field(default_factory=dict)
    #: execution telemetry of the generating sweep (worker utilization,
    #: cache-hit attribution); rendered to stderr by the figures CLI and
    #: summarized into the run ledger — never part of ``to_text()`` stdout.
    telemetry: "SweepTelemetry | None" = None

    def run_shape_checks(self) -> dict[str, bool]:
        """Qualitative agreement criteria (see DESIGN.md Section 4)."""
        checks: dict[str, bool] = {}
        oihsa = np.asarray(self.measured["oihsa"])
        bbsa = np.asarray(self.measured["bbsa"])
        checks["oihsa beats BA on average"] = bool(np.mean(oihsa) > 0)
        checks["bbsa beats BA on average"] = bool(np.mean(bbsa) > 0)
        checks["bbsa >= oihsa on average"] = bool(np.mean(bbsa) >= np.mean(oihsa) - 1.0)
        if len(self.x_values) >= 3:
            if self.x_label == "CCR":
                # Paper Figures 1/3: the curve rises from the low-CCR end and
                # comes back down at very large CCR (interior peak).
                peak = int(np.argmax(oihsa))
                checks["improvement rises from the low end"] = peak > 0
                checks["improvement saturates at the high end"] = (
                    peak < len(oihsa) - 1
                )
            else:
                # Paper Figures 2/4: improvements grow with the processor
                # count (the dip appears only at the paper's extreme P=128).
                half = len(oihsa) // 2
                checks["improvement grows with processors"] = bool(
                    np.mean(oihsa[half:]) > np.mean(oihsa[:half]) - 2.0
                )
        self.shape_checks = checks
        return checks

    def to_text(self, *, plot: bool = False) -> str:
        """Human-readable report: series table, checks, optional ASCII plot."""
        columns = {}
        for name in self.measured:
            columns[f"{name} (measured %)"] = self.measured[name]
            if name in self.paper:
                columns[f"{name} (paper %)"] = self.paper[name]
        body = format_series(self.x_label, self.x_values, columns)
        if not self.shape_checks:
            self.run_shape_checks()
        checks = "\n".join(
            f"  [{'ok' if ok else 'DEVIATION'}] {name}"
            for name, ok in self.shape_checks.items()
        )
        parts = [f"{self.figure_id}: {self.title}", body, "shape checks:", checks]
        if plot:
            from repro.utils.tables import format_ascii_plot

            parts.append(format_ascii_plot(self.x_values, self.measured))
        return "\n".join(parts)


def _figure(
    figure_id: str,
    title: str,
    sweep: str,
    heterogeneous: bool,
    reference: dict[str, list[float]],
    config: ExperimentConfig | None,
    jobs: int = 1,
    cache=None,
) -> FigureResult:
    if config is None:
        config = ExperimentConfig.default(heterogeneous=heterogeneous)
    elif config.heterogeneous != heterogeneous:
        raise ReproError(
            f"{figure_id} needs heterogeneous={heterogeneous}, config says otherwise"
        )
    telemetry_out: list = []
    series = improvement_series(
        config, sweep=sweep, jobs=jobs, cache=cache, telemetry_out=telemetry_out
    )
    x_values = series.pop("_x")
    paper_x = PAPER_CCRS if sweep == "ccr" else tuple(float(p) for p in PAPER_PROC_COUNTS)
    result = FigureResult(
        figure_id=figure_id,
        title=title,
        x_label="CCR" if sweep == "ccr" else "processors",
        x_values=x_values,
        measured=series,
        paper=_interp_reference(reference, paper_x, x_values),
        telemetry=telemetry_out[0] if telemetry_out else None,
    )
    result.run_shape_checks()
    return result


def figure1(
    config: ExperimentConfig | None = None, *, jobs: int = 1, cache=None
) -> FigureResult:
    """Homogeneous systems: % improvement over BA vs CCR (paper Figure 1)."""
    return _figure(
        "figure1",
        "homogeneous: improvement over BA vs CCR",
        "ccr",
        False,
        PAPER_FIGURE1,
        config,
        jobs=jobs,
        cache=cache,
    )


def figure2(
    config: ExperimentConfig | None = None, *, jobs: int = 1, cache=None
) -> FigureResult:
    """Homogeneous systems: % improvement over BA vs #processors (Figure 2)."""
    return _figure(
        "figure2",
        "homogeneous: improvement over BA vs processor count",
        "procs",
        False,
        PAPER_FIGURE2,
        config,
        jobs=jobs,
        cache=cache,
    )


def figure3(
    config: ExperimentConfig | None = None, *, jobs: int = 1, cache=None
) -> FigureResult:
    """Heterogeneous systems: % improvement over BA vs CCR (Figure 3)."""
    return _figure(
        "figure3",
        "heterogeneous: improvement over BA vs CCR",
        "ccr",
        True,
        PAPER_FIGURE3,
        config,
        jobs=jobs,
        cache=cache,
    )


def figure4(
    config: ExperimentConfig | None = None, *, jobs: int = 1, cache=None
) -> FigureResult:
    """Heterogeneous systems: % improvement over BA vs #processors (Figure 4)."""
    return _figure(
        "figure4",
        "heterogeneous: improvement over BA vs processor count",
        "procs",
        True,
        PAPER_FIGURE4,
        config,
        jobs=jobs,
        cache=cache,
    )


ALL_FIGURES = {
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
    "figure4": figure4,
}
