"""Design-choice ablations (DESIGN.md Section 4).

Each ablation isolates one ingredient of OIHSA/BBSA by toggling it while
holding everything else fixed, answering "where does the win come from?":

- ``routing``      — modified (contention-aware Dijkstra) vs BFS routing,
- ``insertion``    — optimal (deferral) vs basic insertion,
- ``edge_order``   — descending-cost vs source-id edge priority,
- ``bandwidth``    — BBSA's fluid links vs OIHSA's exclusive slots,
- ``ba_variants``  — the two readings of the BA baseline (see core.ba).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.ba import BAScheduler
from repro.core.bbsa import BBSAScheduler
from repro.core.metrics import improvement_ratio
from repro.core.oihsa import OIHSAScheduler
from repro.exceptions import ReproError
from repro.experiments.config import ExperimentConfig
from repro.experiments.workloads import paper_workload
from repro.utils.rng import as_rng, spawn_rng


@dataclass(frozen=True)
class AblationResult:
    """Mean % improvement of each variant over the ablation's base variant."""

    name: str
    base: str
    improvements: dict[str, float]


#: variant name -> scheduler factory, first entry is the comparison base.
ABLATIONS: dict[str, dict[str, Callable[[], object]]] = {
    "routing": {
        "bfs-routing": lambda: OIHSAScheduler(
            modified_routing=False, optimal_insertion=False, edge_priority=False
        ),
        "modified-routing": lambda: OIHSAScheduler(
            modified_routing=True, optimal_insertion=False, edge_priority=False
        ),
    },
    "insertion": {
        "basic-insertion": lambda: OIHSAScheduler(
            modified_routing=True, optimal_insertion=False, edge_priority=True
        ),
        "optimal-insertion": lambda: OIHSAScheduler(
            modified_routing=True, optimal_insertion=True, edge_priority=True
        ),
    },
    "edge_order": {
        "source-id-order": lambda: OIHSAScheduler(edge_priority=False),
        "descending-cost": lambda: OIHSAScheduler(edge_priority=True),
    },
    "bandwidth": {
        "exclusive-slots": lambda: OIHSAScheduler(),
        "fluid-bandwidth": lambda: BBSAScheduler(),
    },
    "ba_variants": {
        "ba-as-described": lambda: BAScheduler(),
        "ba-sinnen": lambda: BAScheduler(
            processor_choice="tentative", shared_ready_time=False
        ),
    },
}


def run_ablation(
    name: str,
    config: ExperimentConfig | None = None,
    *,
    ccr: float = 2.0,
    n_procs: int = 16,
) -> AblationResult:
    """Run one named ablation over the config's repetitions."""
    try:
        variants = ABLATIONS[name]
    except KeyError:
        raise ReproError(f"unknown ablation {name!r}; known: {sorted(ABLATIONS)}") from None
    if config is None:
        config = ExperimentConfig.default()
    base_name = next(iter(variants))
    master = as_rng(config.seed)
    per_variant: dict[str, list[float]] = {v: [] for v in variants}
    for rep_rng in spawn_rng(master, config.repetitions):
        instance = paper_workload(config, ccr, n_procs, rep_rng)
        for variant, factory in variants.items():
            schedule = factory().schedule(instance.graph, instance.net)
            per_variant[variant].append(schedule.makespan)
    base_mean = float(np.mean(per_variant[base_name]))
    improvements = {
        variant: improvement_ratio(base_mean, float(np.mean(values)))
        for variant, values in per_variant.items()
        if variant != base_name
    }
    return AblationResult(name=name, base=base_name, improvements=improvements)
