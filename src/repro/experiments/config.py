"""Experiment parameterization.

The paper's Section 6 setup: processor counts {2..128}, task counts
U(40, 1000), costs U(1, 1000), CCR swept over {0.1..1.0, 2..10}, random WAN
topology (each switch hosts U(4, 16) processors), homogeneous (all speeds 1)
or heterogeneous (speeds U(1, 10)) systems.

Running the full sweep in pure Python takes hours, so :func:`ExperimentConfig.paper_scale`
gives the published parameters while :func:`ExperimentConfig.default` is a
scaled-down sweep (same construction, smaller graphs, fewer processor
counts) whose curve *shape* matches; EXPERIMENTS.md reports both knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.exceptions import ReproError

#: CCR grid of Figures 1 and 3.
PAPER_CCRS: tuple[float, ...] = (
    0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
    2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0,
)

#: Processor-count grid of Figures 2 and 4.
PAPER_PROC_COUNTS: tuple[int, ...] = (2, 4, 8, 16, 32, 64, 128)

#: Network families a sweep can run on: the paper's random WAN plus the
#: datacenter fabrics (see :mod:`repro.network.fabrics`), sized for each
#: sweep point's processor count via ``fabric_for_procs``.
SWEEP_TOPOLOGIES: tuple[str, ...] = (
    "random_wan", "fat_tree", "leaf_spine", "torus",
)


@dataclass(frozen=True)
class ExperimentConfig:
    """All knobs of one Section 6 style experiment."""

    ccrs: tuple[float, ...] = PAPER_CCRS
    proc_counts: tuple[int, ...] = PAPER_PROC_COUNTS
    task_range: tuple[int, int] = (40, 1000)
    cost_range: tuple[float, float] = (1, 1000)
    #: edge density of the layered random DAGs (see generators.random_layered_dag)
    density: float = 0.05
    heterogeneous: bool = False
    #: processor/link speeds for heterogeneous systems (the paper's U(1, 10))
    speed_range: tuple[float, float] = (1, 10)
    repetitions: int = 5
    seed: int = 20060814  # ICPP 2006 started 2006-08-14
    algorithms: tuple[str, ...] = ("ba", "oihsa", "bbsa")
    baseline: str = "ba"
    #: network family per sweep point (see :data:`SWEEP_TOPOLOGIES`)
    topology: str = "random_wan"

    def __post_init__(self) -> None:
        if self.topology not in SWEEP_TOPOLOGIES:
            raise ReproError(
                f"unknown sweep topology {self.topology!r}; "
                f"known: {', '.join(SWEEP_TOPOLOGIES)}"
            )
        if self.baseline not in self.algorithms:
            raise ReproError(
                f"baseline {self.baseline!r} missing from algorithms {self.algorithms}"
            )
        if self.repetitions < 1:
            raise ReproError(f"need at least one repetition, got {self.repetitions}")
        if self.task_range[0] < 1 or self.task_range[1] < self.task_range[0]:
            raise ReproError(f"invalid task range {self.task_range}")

    @classmethod
    def paper_scale(cls, *, heterogeneous: bool = False) -> "ExperimentConfig":
        """The published parameters (slow in pure Python: hours per figure)."""
        return cls(heterogeneous=heterogeneous)

    @classmethod
    def default(cls, *, heterogeneous: bool = False) -> "ExperimentConfig":
        """Scaled-down sweep preserving curve shape; minutes per figure."""
        return cls(
            ccrs=(0.1, 0.5, 1.0, 2.0, 5.0, 10.0),
            proc_counts=(4, 8, 16, 32, 64),
            task_range=(40, 120),
            repetitions=10,
            heterogeneous=heterogeneous,
        )

    @classmethod
    def smoke(cls, *, heterogeneous: bool = False) -> "ExperimentConfig":
        """Tiny sweep for tests and CI (seconds)."""
        return cls(
            ccrs=(0.5, 5.0),
            proc_counts=(4, 8),
            task_range=(20, 40),
            repetitions=2,
            heterogeneous=heterogeneous,
        )

    def with_(self, **kwargs) -> "ExperimentConfig":
        """Functional update (frozen dataclass)."""
        return replace(self, **kwargs)
