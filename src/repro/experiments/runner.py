"""Comparison runner: schedule one workload with several algorithms and
aggregate the paper's improvement-ratio metric across repetitions.

``improvement_series`` is the sweep entry point; the heavy lifting —
deterministic fan-out, per-instance result caching, order-fixed merging —
lives in :mod:`repro.experiments.parallel` and
:mod:`repro.experiments.cache`, shared by the serial (``jobs=1``) and
process-pool (``jobs>1``) paths so they are bit-for-bit equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import SCHEDULERS
from repro.core.metrics import improvement_ratio
from repro.core.validate import validate_schedule
from repro.exceptions import ReproError
from repro.experiments.config import ExperimentConfig
from repro.experiments.workloads import WorkloadInstance
from repro.obs import OBS, ScheduleStats


@dataclass(frozen=True)
class ComparisonResult:
    """Makespans of all algorithms on one workload instance.

    ``stats`` carries each algorithm's observability capture (decision
    counters, phase timings) when :mod:`repro.obs` was enabled during the
    run, so figure points can be explained, not just plotted.
    """

    instance: WorkloadInstance
    makespans: dict[str, float]
    stats: dict[str, ScheduleStats] | None = None

    def improvement_over(self, baseline: str, algorithm: str) -> float:
        """Percent makespan improvement of ``algorithm`` over ``baseline``."""
        try:
            base = self.makespans[baseline]
            cand = self.makespans[algorithm]
        except KeyError as exc:
            raise ReproError(f"algorithm {exc} was not run on this instance") from exc
        return improvement_ratio(base, cand)


def compare_once(
    instance: WorkloadInstance,
    algorithms: tuple[str, ...],
    *,
    validate: bool = True,
) -> ComparisonResult:
    """Schedule ``instance`` with each named algorithm.

    With observability enabled, each schedule's ``stats`` capture is kept in
    the result so callers can aggregate per-decision metrics alongside the
    makespans.
    """
    makespans: dict[str, float] = {}
    stats: dict[str, ScheduleStats] = {}
    for name in algorithms:
        try:
            scheduler_cls = SCHEDULERS[name]
        except KeyError:
            raise ReproError(
                f"unknown algorithm {name!r}; known: {sorted(SCHEDULERS)}"
            ) from None
        schedule = scheduler_cls().schedule(instance.graph, instance.net)
        if validate:
            validate_schedule(schedule)
        makespans[name] = schedule.makespan
        if schedule.stats is not None:
            stats[name] = schedule.stats
    return ComparisonResult(
        instance=instance, makespans=makespans, stats=stats or None
    )


def improvement_series(
    config: ExperimentConfig,
    *,
    sweep: str,
    validate: bool = False,
    with_sem: bool = False,
    with_metrics: bool = False,
    jobs: int = 1,
    cache=None,
    telemetry_out: list | None = None,
) -> dict[str, list[float]]:
    """Mean improvement over the baseline along one swept axis.

    ``sweep`` is ``"ccr"`` (averaging over all processor counts — the paper's
    Figures 1/3) or ``"procs"`` (averaging over all CCRs — Figures 2/4).
    Returns ``{algorithm: [mean % improvement per sweep point]}`` for every
    non-baseline algorithm, plus ``"_x"`` holding the sweep values; with
    ``with_sem=True`` also ``"<algorithm>_sem"`` series holding the standard
    error of each mean (the per-instance spread is large — see
    EXPERIMENTS.md — so the error bars matter when reading the curves).

    ``with_metrics=True`` additionally records an observability snapshot per
    figure point: every decision counter each algorithm incremented (route
    probes, insertion probes, deferrals, ...) is averaged across the point's
    instances and returned as a ``"<algorithm>:<counter>"`` series, so the
    *why* behind an improvement curve (e.g. OIHSA deferring slots where BA
    queues) comes out of the same sweep.  Enables :mod:`repro.obs` for the
    duration when it isn't already on.

    ``jobs`` fans the sweep's independent repetitions out over a process
    pool; every instance seed is spawned up front from the master RNG and
    results merge in serial order, so the output is **identical for any
    jobs count** (see :mod:`repro.experiments.parallel` for the contract).
    ``cache`` (a directory path or :class:`~repro.experiments.cache.ResultCache`)
    persists per-(instance, algorithm) outcomes so repeated sweeps and
    figure regeneration skip already-scheduled instances.

    ``telemetry_out``, if given a list, receives one
    :class:`~repro.experiments.parallel.SweepTelemetry` describing the
    execution: per-unit counters and phase spans shipped back from the
    workers, worker-utilization stamps, and cache-hit attribution.
    """
    from repro.experiments.cache import as_cache
    from repro.experiments.parallel import (
        collect_telemetry,
        execute_units,
        merge_unit_results,
        plan_sweep,
    )

    x_values, units = plan_sweep(config, sweep)
    obs_was_on = OBS.on
    if with_metrics and not obs_was_on:
        from repro import obs as _obs

        _obs.enable(_obs.NullSink())
    try:
        results = execute_units(
            config,
            units,
            jobs=jobs,
            validate=validate,
            with_metrics=with_metrics,
            cache=as_cache(cache),
        )
    finally:
        if with_metrics and not obs_was_on:
            from repro import obs as _obs

            _obs.disable()
    if telemetry_out is not None:
        telemetry_out.append(collect_telemetry(results))
    return merge_unit_results(
        config,
        x_values,
        results,
        with_sem=with_sem,
        with_metrics=with_metrics,
    )
