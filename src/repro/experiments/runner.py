"""Comparison runner: schedule one workload with several algorithms and
aggregate the paper's improvement-ratio metric across repetitions."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import SCHEDULERS
from repro.core.metrics import improvement_ratio
from repro.core.validate import validate_schedule
from repro.exceptions import ReproError
from repro.experiments.config import ExperimentConfig
from repro.experiments.workloads import WorkloadInstance, paper_workload
from repro.utils.rng import as_rng, spawn_rng


@dataclass(frozen=True)
class ComparisonResult:
    """Makespans of all algorithms on one workload instance."""

    instance: WorkloadInstance
    makespans: dict[str, float]

    def improvement_over(self, baseline: str, algorithm: str) -> float:
        """Percent makespan improvement of ``algorithm`` over ``baseline``."""
        try:
            base = self.makespans[baseline]
            cand = self.makespans[algorithm]
        except KeyError as exc:
            raise ReproError(f"algorithm {exc} was not run on this instance") from exc
        return improvement_ratio(base, cand)


def compare_once(
    instance: WorkloadInstance,
    algorithms: tuple[str, ...],
    *,
    validate: bool = True,
) -> ComparisonResult:
    """Schedule ``instance`` with each named algorithm."""
    makespans: dict[str, float] = {}
    for name in algorithms:
        try:
            scheduler_cls = SCHEDULERS[name]
        except KeyError:
            raise ReproError(
                f"unknown algorithm {name!r}; known: {sorted(SCHEDULERS)}"
            ) from None
        schedule = scheduler_cls().schedule(instance.graph, instance.net)
        if validate:
            validate_schedule(schedule)
        makespans[name] = schedule.makespan
    return ComparisonResult(instance=instance, makespans=makespans)


def improvement_series(
    config: ExperimentConfig,
    *,
    sweep: str,
    validate: bool = False,
    with_sem: bool = False,
) -> dict[str, list[float]]:
    """Mean improvement over the baseline along one swept axis.

    ``sweep`` is ``"ccr"`` (averaging over all processor counts — the paper's
    Figures 1/3) or ``"procs"`` (averaging over all CCRs — Figures 2/4).
    Returns ``{algorithm: [mean % improvement per sweep point]}`` for every
    non-baseline algorithm, plus ``"_x"`` holding the sweep values; with
    ``with_sem=True`` also ``"<algorithm>_sem"`` series holding the standard
    error of each mean (the per-instance spread is large — see
    EXPERIMENTS.md — so the error bars matter when reading the curves).
    """
    if sweep not in ("ccr", "procs"):
        raise ReproError(f"sweep must be 'ccr' or 'procs', got {sweep!r}")
    master = as_rng(config.seed)
    candidates = [a for a in config.algorithms if a != config.baseline]
    x_values = config.ccrs if sweep == "ccr" else config.proc_counts
    series: dict[str, list[float]] = {name: [] for name in candidates}
    sems: dict[str, list[float]] = {name: [] for name in candidates}
    for x in x_values:
        inner = config.ccrs if sweep == "procs" else config.proc_counts
        per_alg: dict[str, list[float]] = {name: [] for name in candidates}
        for y in inner:
            ccr = x if sweep == "ccr" else float(y)
            n_procs = int(y) if sweep == "ccr" else int(x)
            for rep_rng in spawn_rng(master, config.repetitions):
                instance = paper_workload(config, ccr, n_procs, rep_rng)
                result = compare_once(instance, config.algorithms, validate=validate)
                for name in candidates:
                    per_alg[name].append(
                        result.improvement_over(config.baseline, name)
                    )
        for name in candidates:
            values = np.asarray(per_alg[name])
            series[name].append(float(values.mean()))
            sems[name].append(
                float(values.std(ddof=1) / np.sqrt(len(values))) if len(values) > 1 else 0.0
            )
    series["_x"] = [float(x) for x in x_values]
    if with_sem:
        for name in candidates:
            series[f"{name}_sem"] = sems[name]
    return series
