"""Comparison runner: schedule one workload with several algorithms and
aggregate the paper's improvement-ratio metric across repetitions."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import SCHEDULERS
from repro.core.metrics import improvement_ratio
from repro.core.validate import validate_schedule
from repro.exceptions import ReproError
from repro.experiments.config import ExperimentConfig
from repro.experiments.workloads import WorkloadInstance, paper_workload
from repro.obs import OBS, ScheduleStats
from repro.utils.rng import as_rng, spawn_rng


@dataclass(frozen=True)
class ComparisonResult:
    """Makespans of all algorithms on one workload instance.

    ``stats`` carries each algorithm's observability capture (decision
    counters, phase timings) when :mod:`repro.obs` was enabled during the
    run, so figure points can be explained, not just plotted.
    """

    instance: WorkloadInstance
    makespans: dict[str, float]
    stats: dict[str, ScheduleStats] | None = None

    def improvement_over(self, baseline: str, algorithm: str) -> float:
        """Percent makespan improvement of ``algorithm`` over ``baseline``."""
        try:
            base = self.makespans[baseline]
            cand = self.makespans[algorithm]
        except KeyError as exc:
            raise ReproError(f"algorithm {exc} was not run on this instance") from exc
        return improvement_ratio(base, cand)


def compare_once(
    instance: WorkloadInstance,
    algorithms: tuple[str, ...],
    *,
    validate: bool = True,
) -> ComparisonResult:
    """Schedule ``instance`` with each named algorithm.

    With observability enabled, each schedule's ``stats`` capture is kept in
    the result so callers can aggregate per-decision metrics alongside the
    makespans.
    """
    makespans: dict[str, float] = {}
    stats: dict[str, ScheduleStats] = {}
    for name in algorithms:
        try:
            scheduler_cls = SCHEDULERS[name]
        except KeyError:
            raise ReproError(
                f"unknown algorithm {name!r}; known: {sorted(SCHEDULERS)}"
            ) from None
        schedule = scheduler_cls().schedule(instance.graph, instance.net)
        if validate:
            validate_schedule(schedule)
        makespans[name] = schedule.makespan
        if schedule.stats is not None:
            stats[name] = schedule.stats
    return ComparisonResult(
        instance=instance, makespans=makespans, stats=stats or None
    )


def improvement_series(
    config: ExperimentConfig,
    *,
    sweep: str,
    validate: bool = False,
    with_sem: bool = False,
    with_metrics: bool = False,
) -> dict[str, list[float]]:
    """Mean improvement over the baseline along one swept axis.

    ``sweep`` is ``"ccr"`` (averaging over all processor counts — the paper's
    Figures 1/3) or ``"procs"`` (averaging over all CCRs — Figures 2/4).
    Returns ``{algorithm: [mean % improvement per sweep point]}`` for every
    non-baseline algorithm, plus ``"_x"`` holding the sweep values; with
    ``with_sem=True`` also ``"<algorithm>_sem"`` series holding the standard
    error of each mean (the per-instance spread is large — see
    EXPERIMENTS.md — so the error bars matter when reading the curves).

    ``with_metrics=True`` additionally records an observability snapshot per
    figure point: every decision counter each algorithm incremented (route
    probes, insertion probes, deferrals, ...) is averaged across the point's
    instances and returned as a ``"<algorithm>:<counter>"`` series, so the
    *why* behind an improvement curve (e.g. OIHSA deferring slots where BA
    queues) comes out of the same sweep.  Enables :mod:`repro.obs` for the
    duration when it isn't already on.
    """
    if sweep not in ("ccr", "procs"):
        raise ReproError(f"sweep must be 'ccr' or 'procs', got {sweep!r}")
    master = as_rng(config.seed)
    candidates = [a for a in config.algorithms if a != config.baseline]
    x_values = config.ccrs if sweep == "ccr" else config.proc_counts
    series: dict[str, list[float]] = {name: [] for name in candidates}
    sems: dict[str, list[float]] = {name: [] for name in candidates}
    metric_series: dict[str, list[float]] = {}
    obs_was_on = OBS.on
    if with_metrics and not obs_was_on:
        from repro import obs as _obs

        _obs.enable(_obs.NullSink())
    try:
        for point_idx, x in enumerate(x_values):
            inner = config.ccrs if sweep == "procs" else config.proc_counts
            per_alg: dict[str, list[float]] = {name: [] for name in candidates}
            point_counters: dict[str, list[float]] = {}
            point_instances = 0
            for y in inner:
                ccr = x if sweep == "ccr" else float(y)
                n_procs = int(y) if sweep == "ccr" else int(x)
                for rep_rng in spawn_rng(master, config.repetitions):
                    instance = paper_workload(config, ccr, n_procs, rep_rng)
                    result = compare_once(
                        instance, config.algorithms, validate=validate
                    )
                    for name in candidates:
                        per_alg[name].append(
                            result.improvement_over(config.baseline, name)
                        )
                    if with_metrics and result.stats:
                        point_instances += 1
                        for name, stats in result.stats.items():
                            for cname, value in (
                                stats.metrics.get("counters", {}).items()
                            ):
                                key = f"{name}:{cname}"
                                point_counters.setdefault(key, []).append(value)
            for name in candidates:
                values = np.asarray(per_alg[name])
                series[name].append(float(values.mean()))
                sems[name].append(
                    float(values.std(ddof=1) / np.sqrt(len(values)))
                    if len(values) > 1
                    else 0.0
                )
            if with_metrics:
                # A counter an algorithm never touched at this point means 0,
                # not absent — pad so every series spans every sweep point.
                for key, values in point_counters.items():
                    metric_series.setdefault(key, [0.0] * point_idx).append(
                        sum(values) / max(1, point_instances)
                    )
                for values in metric_series.values():
                    if len(values) < point_idx + 1:
                        values.append(0.0)
    finally:
        if with_metrics and not obs_was_on:
            from repro import obs as _obs

            _obs.disable()
    series["_x"] = [float(x) for x in x_values]
    if with_sem:
        for name in candidates:
            series[f"{name}_sem"] = sems[name]
    series.update(metric_series)
    return series
