"""Workload generation for the paper's experiments.

One :class:`WorkloadInstance` is a (task graph, network topology) pair built
with the Section 6 parameters: layered random DAG with U(40, 1000) tasks and
U(1, 1000) costs rescaled to the requested CCR, plus a random WAN whose
switches each host U(4, 16) processors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.network.builders import random_wan
from repro.network.fabrics import fabric_for_procs
from repro.network.topology import NetworkTopology
from repro.taskgraph.ccr import scale_to_ccr
from repro.taskgraph.generators import random_layered_dag
from repro.taskgraph.graph import TaskGraph
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class WorkloadInstance:
    """One generated experiment instance."""

    graph: TaskGraph
    net: NetworkTopology
    ccr: float
    n_procs: int
    heterogeneous: bool


#: The fixed scheduler-cost benchmark instance parameters.  One definition,
#: two consumers — ``benchmarks/bench_scheduler_cost.py`` (writes the
#: ``BENCH_scheduler_cost.json`` baseline) and ``repro runs compare`` (checks
#: a fresh run against it) — so the workloads can never drift apart.
SCHEDULER_COST_PARAMS = {"ccr": 2.0, "n_procs": 16, "rng": 12345}


def scheduler_cost_workload() -> WorkloadInstance:
    """The fixed workload the scheduler-cost benchmark baseline is built on."""
    return paper_workload(ExperimentConfig.default(), **SCHEDULER_COST_PARAMS)


def paper_workload(
    config: ExperimentConfig,
    ccr: float,
    n_procs: int,
    rng: int | np.random.Generator | None = None,
) -> WorkloadInstance:
    """Build one Section 6 instance for the given CCR and processor count."""
    gen = as_rng(rng)
    n_tasks = int(gen.integers(config.task_range[0], config.task_range[1] + 1))
    graph = random_layered_dag(
        n_tasks,
        gen,
        weight_range=config.cost_range,
        cost_range=config.cost_range,
        density=config.density,
        name=f"paper-{n_tasks}t",
    )
    graph = scale_to_ccr(graph, ccr)
    if config.heterogeneous:
        proc_speed = config.speed_range
        link_speed = config.speed_range
    else:
        proc_speed = 1.0
        link_speed = 1.0
    if config.topology == "random_wan":
        net = random_wan(
            n_procs,
            gen,
            proc_speed=proc_speed,
            link_speed=link_speed,
        )
    else:
        # Datacenter fabric sized for the sweep point's exact processor
        # count; routes come from the attached hierarchical router (lazy,
        # sharded) and are bit-identical to flat BFS on the same topology.
        net = fabric_for_procs(
            config.topology,
            n_procs,
            gen,
            proc_speed=proc_speed,
            link_speed=link_speed,
        )
    return WorkloadInstance(
        graph=graph,
        net=net,
        ccr=ccr,
        n_procs=n_procs,
        heterogeneous=config.heterogeneous,
    )
