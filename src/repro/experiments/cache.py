"""On-disk result cache for experiment sweeps.

A Section 6 sweep schedules hundreds of independent ``(instance, algorithm)``
pairs, and regenerating a figure — or rerunning a sweep with one extra
algorithm — repeats work whose outcome is a pure function of the experiment
parameters.  This module caches those outcomes on disk so repeated sweeps and
figure regeneration skip already-scheduled instances.

Keying
------

Every cached record is addressed by a SHA-256 over

- a **config fingerprint**: every :class:`~repro.experiments.config.ExperimentConfig`
  field (so *any* perturbation — seed, density, CCR grid, algorithm order —
  invalidates the cache), the library version, and a cache schema number
  (bumped whenever record semantics change), plus
- the **instance seed**: the ``(entropy, spawn_key)`` of the ``SeedSequence``
  spawned for the repetition, which identifies the workload instance exactly,
- the swept ``(ccr, n_procs)`` point and the **algorithm** name.

Records are small JSON documents, ``{"makespan": float, "counters": {...}}``,
sharded two hex characters deep (``<root>/ab/<key>.json``).  Python's JSON
codec round-trips finite floats exactly (``repr`` shortest form), so replaying
a sweep from cache is bit-for-bit identical to recomputing it — the
equivalence tests assert this.

Invalidation is purely key-based: nothing is ever rewritten in place, stale
records are simply never addressed again.  ``python -m repro figures`` exposes
``--cache-dir`` / ``--no-cache``; the default location honours
``$REPRO_CACHE_DIR`` and falls back to ``~/.cache/repro/experiments``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from repro import __version__
from repro.exceptions import ReproError
from repro.obs import ScheduleStats

#: Bump when the cached record layout or semantics change: a bump orphans
#: every existing record (keys stop matching) without touching files.
CACHE_SCHEMA = 1


def _jsonable(value: Any) -> Any:
    """Dataclass-field value -> deterministic JSON-encodable form."""
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return value


def _digest(doc: dict) -> str:
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def config_fingerprint(config) -> str:
    """Stable hash of every ``ExperimentConfig`` field plus code version.

    Field *order and values* both count: reordering ``algorithms`` or
    ``ccrs`` produces a different fingerprint, because sweep output depends
    on iteration order (seed spawning follows the grid order).
    """
    doc = {
        "schema": CACHE_SCHEMA,
        "version": __version__,
        "config": _jsonable(asdict(config)),
    }
    return _digest(doc)


def unit_key(
    fingerprint: str,
    ccr: float,
    n_procs: int,
    seed_key: tuple,
    algorithm: str,
) -> str:
    """Cache key of one ``(instance, algorithm)`` outcome.

    ``seed_key`` is ``(entropy, spawn_key)`` of the instance's spawned
    ``SeedSequence`` — the exact identity of the generated workload.
    """
    doc = {
        "fp": fingerprint,
        "ccr": float(ccr),
        "procs": int(n_procs),
        "seed": _jsonable(seed_key),
        "algorithm": algorithm,
    }
    return _digest(doc)


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro/experiments``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro" / "experiments"


@dataclass
class CacheStats:
    """Hit/miss/write accounting for one :class:`ResultCache` lifetime."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    def to_text(self) -> str:
        return f"{self.hits} hits, {self.misses} misses, {self.writes} writes"


@dataclass
class ResultCache:
    """Content-addressed JSON store of per-(instance, algorithm) outcomes.

    Writes are atomic (temp file + rename) so a crashed or parallel sweep
    never leaves a truncated record; concurrent writers of the same key are
    idempotent because the payload is a pure function of the key.
    """

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root).expanduser()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The cached record for ``key``, or ``None`` on miss/corruption."""
        path = self._path(key)
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return record

    def put(self, key: str, record: dict) -> None:
        """Atomically persist ``record`` under ``key``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(record, fh, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.writes += 1


def as_cache(cache) -> ResultCache | None:
    """Normalize a cache argument: ``None`` | path-like | ``ResultCache``."""
    if cache is None or isinstance(cache, ResultCache):
        return cache
    if isinstance(cache, (str, Path)):
        return ResultCache(Path(cache))
    raise ReproError(f"cache must be None, a directory path or a ResultCache, got {cache!r}")


# -- ComparisonResult serialization -------------------------------------------
#
# The cache stores per-algorithm records, but a full ComparisonResult (all
# algorithms of one instance, with observability captures) also round-trips,
# so cached sweeps can be mined for per-instance analysis.  The workload
# itself is *not* embedded — it is regenerable from the instance seed — only
# its identifying descriptor is kept.


def comparison_to_doc(result) -> dict:
    """JSON-ready form of a :class:`~repro.experiments.runner.ComparisonResult`.

    Lossless in ``makespans`` and ``stats`` (counters, timings, events);
    the instance is summarized by its descriptor, not embedded.
    """
    instance = result.instance
    doc: dict = {
        "instance": {
            "ccr": instance.ccr,
            "n_procs": instance.n_procs,
            "heterogeneous": instance.heterogeneous,
        }
        if instance is not None
        else None,
        "makespans": dict(result.makespans),
        "stats": (
            {name: stats.to_dict() for name, stats in result.stats.items()}
            if result.stats is not None
            else None
        ),
    }
    return doc


def comparison_from_doc(doc: dict, instance=None):
    """Rebuild a ``ComparisonResult`` serialized by :func:`comparison_to_doc`.

    ``instance`` (regenerated from the unit seed, or ``None``) is attached
    as-is; makespans and stats come back exactly as stored.
    """
    from repro.experiments.runner import ComparisonResult

    stats_doc = doc.get("stats")
    stats = (
        {name: ScheduleStats.from_dict(d) for name, d in stats_doc.items()}
        if stats_doc is not None
        else None
    )
    return ComparisonResult(
        instance=instance, makespans=dict(doc["makespans"]), stats=stats
    )


def comparison_to_json(result) -> str:
    return json.dumps(comparison_to_doc(result), sort_keys=True)


def comparison_from_json(payload: str, instance=None):
    return comparison_from_doc(json.loads(payload), instance=instance)
