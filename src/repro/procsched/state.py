"""Processor-side schedule state with copy-on-write transactions.

Mirrors :class:`repro.linksched.state.LinkScheduleState` so a scheduler can
open one transaction spanning both link and processor bookings while probing
a candidate processor.

Like the link state, a :class:`ProcessorState` can instead run in **journal
mode** (:meth:`ProcessorState.enable_journal`): every placement records its
inverse in a lifetime undo log, and :meth:`journal_mark` /
:meth:`rollback_to` rewind to earlier checkpoints in O(placements undone).
The incremental mapping evaluator uses this for its per-position prefix
checkpoints.  Journal mode and copy-on-write transactions are mutually
exclusive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import SchedulingError
from repro.obs import OBS
from repro.procsched.timeline import TaskSlot, find_task_gap, insert_task_slot
from repro.types import TaskId, VertexId


@dataclass(frozen=True, slots=True)
class TaskPlacement:
    """Where and when a task executes."""

    task: TaskId
    processor: VertexId
    start: float
    finish: float


@dataclass
class ProcessorState:
    """Per-processor timelines plus the task -> placement map."""

    _timelines: dict[VertexId, list[TaskSlot]] = field(default_factory=dict)
    _placements: dict[TaskId, TaskPlacement] = field(default_factory=dict)
    _txn_timelines: dict[VertexId, list[TaskSlot]] | None = None
    _txn_tasks: list[TaskId] | None = None
    #: lifetime undo log of ``(task, vid, index)`` placements (journal mode)
    _journal: list[tuple[TaskId, VertexId, int]] | None = None

    # -- transactions --------------------------------------------------------

    def begin(self) -> None:
        if self._journal is not None:
            raise SchedulingError("state is in journal mode; transactions unavailable")
        if self._txn_timelines is not None:
            raise SchedulingError("processor transaction already open")
        self._txn_timelines = {}
        self._txn_tasks = []

    def commit(self) -> None:
        if self._txn_timelines is None:
            raise SchedulingError("no open processor transaction")
        self._txn_timelines = None
        self._txn_tasks = None

    def rollback(self) -> None:
        if self._txn_timelines is None or self._txn_tasks is None:
            raise SchedulingError("no open processor transaction")
        for vid, original in self._txn_timelines.items():
            self._timelines[vid] = original
        for task in self._txn_tasks:
            del self._placements[task]
        self._txn_timelines = None
        self._txn_tasks = None

    # -- journal mode ---------------------------------------------------------

    @property
    def journaling(self) -> bool:
        return self._journal is not None

    def enable_journal(self) -> None:
        """Log an inverse for every placement for the state's lifetime.

        Once enabled, :meth:`journal_mark` captures restorable checkpoints
        and :meth:`rollback_to` rewinds placements made after a mark.
        Copy-on-write transactions (:meth:`begin`) become unavailable.
        """
        if self._txn_timelines is not None:
            raise SchedulingError("cannot enable journal: processor transaction open")
        if self._journal is not None:
            raise SchedulingError("processor journal already enabled")
        self._journal = []

    def journal_mark(self) -> int:
        """The current journal position; pass to :meth:`rollback_to`."""
        if self._journal is None:
            raise SchedulingError("processor journal mode is not enabled")
        return len(self._journal)

    def rollback_to(self, mark: int) -> None:
        """Rewind to an earlier :meth:`journal_mark` (O(placements undone))."""
        journal = self._journal
        if journal is None:
            raise SchedulingError("processor journal mode is not enabled")
        if not 0 <= mark <= len(journal):
            raise SchedulingError(
                f"processor journal mark {mark} out of range [0, {len(journal)}]"
            )
        while len(journal) > mark:
            task, vid, index = journal.pop()
            del self._timelines[vid][index]
            del self._placements[task]

    def _writable(self, vid: VertexId) -> list[TaskSlot]:
        slots = self._timelines.get(vid)
        if slots is None:
            slots = []
            self._timelines[vid] = slots
            if self._txn_timelines is not None and vid not in self._txn_timelines:
                self._txn_timelines[vid] = []
            return slots
        if self._txn_timelines is not None and vid not in self._txn_timelines:
            self._txn_timelines[vid] = slots
            slots = list(slots)
            self._timelines[vid] = slots
        return slots

    # -- reads ----------------------------------------------------------------

    def timeline(self, vid: VertexId) -> list[TaskSlot]:
        """The processor's execution queue (treat as read-only)."""
        return self._timelines.get(vid, [])

    def finish_time(self, vid: VertexId) -> float:
        """The paper's ``t_f(P)``: when the processor's last task completes."""
        slots = self._timelines.get(vid)
        return slots[-1].finish if slots else 0.0

    def placement(self, task: TaskId) -> TaskPlacement:
        try:
            return self._placements[task]
        except KeyError:
            raise SchedulingError(f"task {task} has not been placed") from None

    def is_placed(self, task: TaskId) -> bool:
        return task in self._placements

    def placements(self) -> dict[TaskId, TaskPlacement]:
        return dict(self._placements)

    # -- writes ---------------------------------------------------------------

    def probe(
        self, vid: VertexId, duration: float, est: float, *, insertion: bool = True
    ) -> tuple[int, float, float]:
        """Placement a task would get on ``vid`` without committing."""
        if OBS.on:
            OBS.metrics.counter("procsched.probes").inc()
        return find_task_gap(self.timeline(vid), duration, est, insertion=insertion)

    def place(
        self,
        task: TaskId,
        vid: VertexId,
        duration: float,
        est: float,
        *,
        insertion: bool = True,
    ) -> TaskPlacement:
        """Book ``task`` on processor ``vid`` at its earliest start >= ``est``."""
        if task in self._placements:
            raise SchedulingError(f"task {task} already placed")
        slots = self._writable(vid)
        index, start, finish = find_task_gap(slots, duration, est, insertion=insertion)
        insert_task_slot(slots, index, TaskSlot(task, start, finish))
        placement = TaskPlacement(task, vid, start, finish)
        self._placements[task] = placement
        if self._txn_tasks is not None:
            self._txn_tasks.append(task)
        if self._journal is not None:
            self._journal.append((task, vid, index))
        if OBS.on:
            OBS.metrics.counter("procsched.tasks_placed").inc()
            if not OBS.bus.quieted:
                OBS.emit(
                    "task_placed",
                    t=start,
                    task=task,
                    proc=vid,
                    start=start,
                    finish=finish,
                )
        return placement

    def place_append(
        self, task: TaskId, vid: VertexId, duration: float, est: float
    ) -> TaskPlacement:
        """Fused append-mode booking: :meth:`place` with ``insertion=False``.

        Bit-identical placements and counters; the timeline-gap search and
        overlap assertions are skipped because an append at
        ``max(last finish, est)`` provably cannot overlap, and the negative
        duration/est validations are the caller's contract (task weights and
        arrival times are non-negative by construction).  Built for the
        incremental mapping evaluator's hot loop.
        """
        if task in self._placements:
            raise SchedulingError(f"task {task} already placed")
        slots = self._writable(vid)
        start = slots[-1].finish if slots else 0.0
        if start < est:
            start = est
        finish = start + duration
        index = len(slots)
        slots.append(TaskSlot(task, start, finish))
        placement = TaskPlacement(task, vid, start, finish)
        self._placements[task] = placement
        if self._txn_tasks is not None:
            self._txn_tasks.append(task)
        if self._journal is not None:
            self._journal.append((task, vid, index))
        if OBS.on:
            OBS.metrics.counter("procsched.tasks_placed").inc()
            if not OBS.bus.quieted:
                OBS.emit(
                    "task_placed",
                    t=start,
                    task=task,
                    proc=vid,
                    start=start,
                    finish=finish,
                )
        return placement
