"""Per-processor task timelines (non-preemptive execution slots)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import SchedulingError
from repro.types import TaskId


@dataclass(frozen=True, slots=True)
class TaskSlot:
    """Execution of ``task`` over ``[start, finish)`` on one processor."""

    task: TaskId
    start: float
    finish: float

    def __post_init__(self) -> None:
        if not (self.finish >= self.start >= 0):
            raise SchedulingError(
                f"invalid task slot for {self.task}: [{self.start}, {self.finish})"
            )

    @property
    def duration(self) -> float:
        return self.finish - self.start


def find_task_gap(
    slots: Sequence[TaskSlot],
    duration: float,
    est: float,
    *,
    insertion: bool = True,
) -> tuple[int, float, float]:
    """Earliest placement of a ``duration``-long task starting at or after ``est``.

    With ``insertion=True`` (the insertion technique) idle gaps between
    existing tasks are considered; with ``insertion=False`` (end technique)
    the task is appended after the last slot.  Returns
    ``(index, start, finish)``.
    """
    if duration < 0:
        raise SchedulingError(f"negative task duration {duration}")
    if est < 0:
        raise SchedulingError(f"negative earliest start time {est}")
    if not insertion:
        start = max(slots[-1].finish if slots else 0.0, est)
        return len(slots), start, start + duration
    prev_finish = 0.0
    for i, slot in enumerate(slots):
        start = max(prev_finish, est)
        if start + duration <= slot.start:
            return i, start, start + duration
        prev_finish = slot.finish
    start = max(prev_finish, est)
    return len(slots), start, start + duration


def insert_task_slot(slots: list[TaskSlot], index: int, slot: TaskSlot) -> None:
    """Insert ``slot`` at ``index``, asserting no overlap (non-preemption)."""
    if index > 0 and slots[index - 1].finish > slot.start:
        raise SchedulingError(f"task slot {slot} overlaps {slots[index - 1]}")
    if index < len(slots) and slot.finish > slots[index].start:
        raise SchedulingError(f"task slot {slot} overlaps {slots[index]}")
    slots.insert(index, slot)
