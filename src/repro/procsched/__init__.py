"""Processor-side scheduling: per-processor task timelines."""

from repro.procsched.timeline import TaskSlot, find_task_gap
from repro.procsched.state import ProcessorState, TaskPlacement

__all__ = ["TaskSlot", "find_task_gap", "ProcessorState", "TaskPlacement"]
