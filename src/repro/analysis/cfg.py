"""Per-function control-flow graphs for the flow-sensitive lint rules.

The per-line rules of PR 4 see one statement at a time; the invariants that
matter most to this repo — "every ``begin()`` reaches a ``commit()`` or
``rollback()`` on *every* path", "this emission only runs when ``OBS.on``
held" — are properties of *paths*, not lines.  This module lowers one
function (or the module body) into a statement-level CFG that the dataflow
engine (:mod:`repro.analysis.dataflow`) runs fixpoints over.

Design notes:

- **Statement granularity.**  One node per simple statement, plus explicit
  nodes for every control evaluation point (an ``if``/``while`` test, a
  ``for`` header, a ``with`` context expression, an ``except`` head).  The
  files under analysis are a few hundred statements; basic-block compression
  would buy nothing and cost every rule a block-offset bookkeeping layer.
- **Branch arms are synthetic nodes.**  Every conditional edge is routed
  through an ``arm`` node (``kind="arm"``) recording which test it leaves
  and on which outcome.  Arm nodes are the *edge splitting* that makes
  dominance-based queries exact: "is this emission dominated by the true
  arm of an ``OBS.on`` test" is a plain node-dominance question, immune to
  the join-point aliasing a test-node-only encoding suffers.
- **Exception edges.**  Any statement that can plausibly raise (calls,
  attribute/subscript access, arithmetic, ``raise``/``assert``) gets an
  edge to the innermost enclosing handler — the first ``except`` head, a
  ``finally`` entry, or the function exit.  This is deliberately
  conservative: the transaction rules exist precisely because mid-probe
  exceptions are how transactions leak.
- **``finally`` is single-copy.**  A ``finally`` body appears once, with a
  synthetic ``finexit`` dispatch node fanning out to every continuation
  that can run it (normal fall-through, exception re-raise, routed
  ``return``/``break``/``continue``).  This conflates the paths *through*
  the finally region — strictly more paths than the program has, so
  all-path ("must") queries stay sound; they can only get more demanding.

``try``/``except`` matching is also conservative: an exception may enter
any handler head, and handler heads chain (no match falls through to the
next head, then out of the statement).  The CFG has no opinion on exception
*types*.
"""

from __future__ import annotations

import ast
from typing import Iterator

#: AST scopes a CFG can be built for.
Scope = ast.Module | ast.FunctionDef | ast.AsyncFunctionDef

#: Statement types that never raise by themselves (their expressions might).
_NO_RAISE_STMTS = (ast.Pass, ast.Break, ast.Continue, ast.Global, ast.Nonlocal)

#: Expression node types that can plausibly raise at evaluation time.
_RAISING_EXPRS = (
    ast.Call,
    ast.Attribute,
    ast.Subscript,
    ast.BinOp,
    ast.UnaryOp,
    ast.Compare,
    ast.Await,
    ast.Yield,
    ast.YieldFrom,
    ast.Starred,
)


class CFGNode:
    """One evaluation point in the graph.

    ``kind`` is one of ``entry``/``exit``/``stmt``/``test``/``for``/
    ``with``/``except``/``arm``/``finally``/``finexit``.  ``ast_node`` is
    the statement (or handler/withitem) the node represents — ``None`` for
    synthetic nodes.  ``exprs`` are the expressions *evaluated at* this
    node (an ``if`` node evaluates its test, not its body), which is what
    call-matching predicates should search.
    """

    __slots__ = (
        "index",
        "kind",
        "ast_node",
        "exprs",
        "succ",
        "pred",
        "exc",
        "branch",
        "test",
    )

    def __init__(
        self,
        index: int,
        kind: str,
        ast_node: ast.AST | None = None,
        exprs: tuple[ast.expr, ...] = (),
        branch: str = "",
        test: int = -1,
    ) -> None:
        self.index = index
        self.kind = kind
        self.ast_node = ast_node
        self.exprs = exprs
        self.succ: list[int] = []
        self.pred: list[int] = []
        #: subset of ``succ`` entered only when *this node's own* evaluation
        #: raises.  ``normal_succ`` filters them out — the distinction rules
        #: need for effects that only happen on successful evaluation (a
        #: ``begin()`` that raises opened nothing, so its exception edge is
        #: not a leak path).
        self.exc: list[int] = []
        #: for ``arm`` nodes: which outcome of ``test`` this arm is
        #: (``"true"``/``"false"``/``"iter"``/``"exhaust"``/``"break"``)
        self.branch = branch
        #: for ``arm`` nodes: index of the test/header node they leave
        self.test = test

    @property
    def lineno(self) -> int:
        return getattr(self.ast_node, "lineno", 0)

    @property
    def normal_succ(self) -> list[int]:
        """Successors reached when this node evaluates without raising."""
        if not self.exc:
            return self.succ
        exc = set(self.exc)
        return [s for s in self.succ if s not in exc]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = type(self.ast_node).__name__ if self.ast_node is not None else ""
        extra = f" {self.branch}@{self.test}" if self.kind == "arm" else ""
        return f"<CFGNode {self.index} {self.kind} {tag}{extra} -> {self.succ}>"


class CFG:
    """Control-flow graph of one function body (or the module top level)."""

    def __init__(self, scope: Scope) -> None:
        self.scope = scope
        self.nodes: list[CFGNode] = []
        #: id(ast stmt) -> node index, for every non-synthetic node
        self._by_stmt: dict[int, int] = {}
        self.entry = self._new("entry").index
        self.exit = self._new("exit").index

    # -- construction (used by _Builder) --------------------------------------

    def _new(
        self,
        kind: str,
        ast_node: ast.AST | None = None,
        exprs: tuple[ast.expr, ...] = (),
        branch: str = "",
        test: int = -1,
    ) -> CFGNode:
        node = CFGNode(len(self.nodes), kind, ast_node, exprs, branch, test)
        self.nodes.append(node)
        if ast_node is not None and id(ast_node) not in self._by_stmt:
            self._by_stmt[id(ast_node)] = node.index
        return node

    def _edge(self, src: int, dst: int) -> None:
        """Add a *normal* edge.  If ``dst`` was previously reachable from
        ``src`` only by raising (e.g. a ``return`` whose expression may
        raise, routed into the same ``finally`` its exception would enter),
        the normal edge wins: the target is no longer exception-only."""
        node = self.nodes[src]
        if dst not in node.succ:
            node.succ.append(dst)
            self.nodes[dst].pred.append(src)
        if dst in node.exc:
            node.exc.remove(dst)

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def node_of(self, stmt: ast.AST) -> CFGNode | None:
        """The node representing ``stmt``, if the statement is in this scope."""
        index = self._by_stmt.get(id(stmt))
        return self.nodes[index] if index is not None else None

    def calls_at(self, index: int) -> Iterator[ast.Call]:
        """Every call evaluated *at* node ``index`` (lambda bodies excluded)."""
        for expr in self.nodes[index].exprs:
            yield from _calls_in(expr)

    def arms_of(self, test_index: int) -> list[CFGNode]:
        """The synthetic arm nodes leaving test/header node ``test_index``."""
        return [
            self.nodes[i]
            for i in self.nodes[test_index].succ
            if self.nodes[i].kind == "arm"
        ]


def _calls_in(expr: ast.expr) -> Iterator[ast.Call]:
    """Calls evaluated when ``expr`` is — skips deferred lambda bodies."""
    stack: list[ast.AST] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Lambda):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def may_raise(stmt: ast.AST, exprs: tuple[ast.expr, ...]) -> bool:
    """Whether evaluating ``stmt`` (with expressions ``exprs``) can raise.

    Conservative by design: calls, attribute and subscript access,
    arithmetic and comparisons may all raise, and those cover every way the
    scheduling code exits a probe early.  Plain constant/name moves,
    ``pass``-likes and scope declarations cannot.
    """
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    if isinstance(stmt, _NO_RAISE_STMTS):
        return False
    if isinstance(stmt, (ast.Import, ast.ImportFrom, ast.Delete)):
        return True
    for expr in exprs:
        for node in ast.walk(expr):
            if isinstance(node, _RAISING_EXPRS):
                return True
    return False


def _stmt_exprs(stmt: ast.stmt) -> tuple[ast.expr, ...]:
    """The expressions a simple statement evaluates (targets included)."""
    out: list[ast.expr] = []
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.expr):
            out.append(child)
    return tuple(out)


class _FinallyCtx:
    """One open ``finally`` region, targetable before its body is lowered."""

    __slots__ = ("entry", "finexit", "pending")

    def __init__(self, entry: int, finexit: int) -> None:
        self.entry = entry
        self.finexit = finexit
        #: extra continuations the dispatch node must fan out to (routed
        #: return/break/continue and exception propagation)
        self.pending: set[int] = set()


class _LoopCtx:
    """Targets for ``break``/``continue``, plus the finally depth at entry."""

    __slots__ = ("continue_target", "break_arm", "fin_depth")

    def __init__(self, continue_target: int, break_arm: int, fin_depth: int) -> None:
        self.continue_target = continue_target
        self.break_arm = break_arm
        self.fin_depth = fin_depth


class _Builder:
    """Lowers one scope's statement list into a :class:`CFG`."""

    def __init__(self, scope: Scope) -> None:
        self.cfg = CFG(scope)
        self._loops: list[_LoopCtx] = []
        self._finallies: list[_FinallyCtx] = []
        #: innermost exception continuation (handler head / finally / exit)
        self._raise_targets: list[int] = [self.cfg.exit]

    def build(self) -> CFG:
        body = self.cfg.scope.body
        frontier = self._lower_block(body, [self.cfg.entry])
        for index in frontier:
            self.cfg._edge(index, self.cfg.exit)
        return self.cfg

    # -- plumbing --------------------------------------------------------------

    def _raise_edge(self, index: int) -> None:
        """Add an exception edge; a pre-existing normal edge to the same
        target subsumes it (the target is then not exception-only)."""
        target = self._raise_targets[-1]
        node = self.cfg.nodes[index]
        if target in node.succ:
            return
        node.succ.append(target)
        self.cfg.nodes[target].pred.append(index)
        node.exc.append(target)

    def _route_jump(self, src: int, target: int, fin_depth: int) -> None:
        """Edge ``src`` to ``target`` through every finally opened past
        ``fin_depth`` (innermost first), registering dispatch continuations."""
        chain = self._finallies[fin_depth:]
        if not chain:
            self.cfg._edge(src, target)
            return
        self.cfg._edge(src, chain[-1].entry)
        for outer, inner in zip(chain, chain[1:]):
            inner.pending.add(outer.entry)
        chain[0].pending.add(target)

    # -- statement lowering ----------------------------------------------------

    def _lower_block(self, stmts: list[ast.stmt], preds: list[int]) -> list[int]:
        """Lower a statement list; returns the fall-through frontier."""
        frontier = preds
        for stmt in stmts:
            if not frontier:
                break  # unreachable code after return/raise/break
            frontier = self._lower_stmt(stmt, frontier)
        return frontier

    def _lower_stmt(self, stmt: ast.stmt, preds: list[int]) -> list[int]:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            return self._lower_if(stmt, preds)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._lower_loop(stmt, preds)
        if isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            return self._lower_try(stmt, preds)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._lower_with(stmt, preds)
        if isinstance(stmt, ast.Match):
            return self._lower_match(stmt, preds)

        exprs = _stmt_exprs(stmt)
        node = cfg._new("stmt", stmt, exprs)
        for p in preds:
            cfg._edge(p, node.index)
        if may_raise(stmt, exprs):
            self._raise_edge(node.index)

        if isinstance(stmt, ast.Return):
            self._route_jump(node.index, cfg.exit, 0)
            return []
        if isinstance(stmt, ast.Raise):
            return []
        if isinstance(stmt, ast.Break):
            loop = self._loops[-1]
            self._route_jump(node.index, loop.break_arm, loop.fin_depth)
            return []
        if isinstance(stmt, ast.Continue):
            loop = self._loops[-1]
            self._route_jump(node.index, loop.continue_target, loop.fin_depth)
            return []
        return [node.index]

    def _lower_if(self, stmt: ast.If, preds: list[int]) -> list[int]:
        cfg = self.cfg
        test = cfg._new("test", stmt, (stmt.test,))
        for p in preds:
            cfg._edge(p, test.index)
        if may_raise(stmt, (stmt.test,)):
            self._raise_edge(test.index)
        true_arm = cfg._new("arm", branch="true", test=test.index)
        false_arm = cfg._new("arm", branch="false", test=test.index)
        cfg._edge(test.index, true_arm.index)
        cfg._edge(test.index, false_arm.index)
        frontier = self._lower_block(stmt.body, [true_arm.index])
        frontier += self._lower_block(stmt.orelse, [false_arm.index])
        return frontier

    def _lower_loop(
        self, stmt: ast.While | ast.For | ast.AsyncFor, preds: list[int]
    ) -> list[int]:
        cfg = self.cfg
        if isinstance(stmt, ast.While):
            header = cfg._new("test", stmt, (stmt.test,))
            body_branch = "true"
            exit_branch = "false"
        else:
            header = cfg._new("for", stmt, (stmt.iter, stmt.target))
            body_branch = "iter"
            exit_branch = "exhaust"
        for p in preds:
            cfg._edge(p, header.index)
        if may_raise(stmt, header.exprs):
            self._raise_edge(header.index)
        body_arm = cfg._new("arm", branch=body_branch, test=header.index)
        exit_arm = cfg._new("arm", branch=exit_branch, test=header.index)
        break_arm = cfg._new("arm", branch="break", test=header.index)
        cfg._edge(header.index, body_arm.index)
        cfg._edge(header.index, exit_arm.index)
        self._loops.append(
            _LoopCtx(header.index, break_arm.index, len(self._finallies))
        )
        body_frontier = self._lower_block(stmt.body, [body_arm.index])
        self._loops.pop()
        for index in body_frontier:
            cfg._edge(index, header.index)  # back edge
        # while/for ``else`` runs only on normal exhaustion; break skips it.
        else_frontier = self._lower_block(stmt.orelse, [exit_arm.index])
        frontier = else_frontier + [break_arm.index]
        return frontier

    def _lower_with(self, stmt: ast.With | ast.AsyncWith, preds: list[int]) -> list[int]:
        cfg = self.cfg
        frontier = preds
        for item in stmt.items:
            exprs: tuple[ast.expr, ...] = (item.context_expr,)
            if item.optional_vars is not None:
                exprs += (item.optional_vars,)
            node = cfg._new("with", item, exprs)
            for p in frontier:
                cfg._edge(p, node.index)
            self._raise_edge(node.index)  # __enter__ may raise
            frontier = [node.index]
        return self._lower_block(stmt.body, frontier)

    def _lower_match(self, stmt: ast.Match, preds: list[int]) -> list[int]:
        cfg = self.cfg
        header = cfg._new("test", stmt, (stmt.subject,))
        for p in preds:
            cfg._edge(p, header.index)
        if may_raise(stmt, (stmt.subject,)):
            self._raise_edge(header.index)
        frontier: list[int] = []
        for case in stmt.cases:
            arm = cfg._new("arm", branch="case", test=header.index)
            cfg._edge(header.index, arm.index)
            start = [arm.index]
            if case.guard is not None:
                guard = cfg._new("test", case, (case.guard,))
                cfg._edge(arm.index, guard.index)
                if may_raise(stmt, (case.guard,)):
                    self._raise_edge(guard.index)
                start = [guard.index]
            frontier += self._lower_block(case.body, start)
        # conservative: the subject may match no case at all
        fall_arm = cfg._new("arm", branch="nomatch", test=header.index)
        cfg._edge(header.index, fall_arm.index)
        frontier.append(fall_arm.index)
        return frontier

    def _lower_try(self, stmt: ast.Try, preds: list[int]) -> list[int]:
        cfg = self.cfg
        fin_ctx: _FinallyCtx | None = None
        if stmt.finalbody:
            fin_entry = cfg._new("finally", stmt)
            finexit = cfg._new("finexit", stmt)
            fin_ctx = _FinallyCtx(fin_entry.index, finexit.index)
            self._finallies.append(fin_ctx)

        # Exceptions in the body go to the first handler head; with no
        # handlers they run the finally, then propagate outward.
        handler_heads: list[CFGNode] = []
        for handler in stmt.handlers:
            exprs = (handler.type,) if handler.type is not None else ()
            handler_heads.append(cfg._new("except", handler, exprs))
        if handler_heads:
            body_raise_target = handler_heads[0].index
        elif fin_ctx is not None:
            body_raise_target = fin_ctx.entry
            fin_ctx.pending.add(self._raise_targets[-1])
        else:  # pragma: no cover - ``try:`` needs a handler or finally
            body_raise_target = self._raise_targets[-1]

        self._raise_targets.append(body_raise_target)
        body_frontier = self._lower_block(stmt.body, preds)
        self._raise_targets.pop()

        # ``else`` runs after a no-exception body; its exceptions skip the
        # handlers of this try.
        body_frontier = self._lower_block(stmt.orelse, body_frontier)

        # Handler bodies: exceptions inside them propagate outward (through
        # the finally when present); an unmatched exception falls to the
        # next head, and past the last head out of the statement.
        outer_target = self._raise_targets[-1]
        handler_raise_target = fin_ctx.entry if fin_ctx is not None else outer_target
        if fin_ctx is not None:
            fin_ctx.pending.add(outer_target)
        handler_frontier: list[int] = []
        self._raise_targets.append(handler_raise_target)
        for head, handler in zip(handler_heads, stmt.handlers):
            handler_frontier += self._lower_block(handler.body, [head.index])
        self._raise_targets.pop()
        for head, next_head in zip(handler_heads, handler_heads[1:]):
            cfg._edge(head.index, next_head.index)
        if handler_heads:
            cfg._edge(handler_heads[-1].index, handler_raise_target)

        frontier = body_frontier + handler_frontier
        if fin_ctx is None:
            return frontier

        # Normal continuations run the finally body, then fall through the
        # dispatch node; routed jumps and propagation fan out from it too.
        self._finallies.pop()
        for index in frontier:
            cfg._edge(index, fin_ctx.entry)
        fin_frontier = self._lower_block(stmt.finalbody, [fin_ctx.entry])
        for index in fin_frontier:
            cfg._edge(index, fin_ctx.finexit)
        for target in sorted(fin_ctx.pending):
            cfg._edge(fin_ctx.finexit, target)
        return [fin_ctx.finexit]


def build_cfg(scope: Scope) -> CFG:
    """The statement-level CFG of ``scope`` (nested scopes are not entered)."""
    return _Builder(scope).build()
