"""Tracked-suppression baseline: ``.repro-lint-baseline.json``.

Inline ``# repro-lint: disable=...`` comments fit one-line justifications;
findings that are *intentional policy* (e.g. the hoisted state internals in
the Lemma-2 slack scan) deserve a reviewable, documented record instead of
scattered comments.  The baseline file holds those: each entry names the
file, rule, offending line content, and a required human reason.

Matching is content-based — ``(path, rule, stripped line text)`` — so
entries survive unrelated line-number drift but go **stale** the moment the
line itself changes, forcing a re-decision.  Stale entries are classified
by *why* they matched nothing:

- **changed** — the file was linted but the recorded line no longer fires
  (edited, or the finding is simply gone).  Fails the run: re-decide.
- **orphaned** — the file was neither linted nor found on disk: it was
  renamed or deleted, leaving a content-keyed entry pointing nowhere.
  Fails the run; ``--update-baseline`` prunes these (and the residual
  budget of changed entries) in place.
- **unchecked** — the entry's file or rule was simply outside this run
  (a subset lint like ``repro lint tests`` or ``--select TXN101``).  Not
  a failure: a partial run proves nothing about entries it never checked.

``repro lint`` fails on changed/orphaned entries so the file can never
rot.  ``--fail-on-baseline`` additionally fails on matched entries, for
burn-down runs.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.analysis.findings import Finding

#: Default baseline location, resolved relative to the working directory.
DEFAULT_BASELINE = ".repro-lint-baseline.json"

_FORMAT_VERSION = 1


@dataclass(frozen=True, slots=True)
class BaselineEntry:
    """One documented suppression: where, which rule, what line, and why."""

    path: str
    rule: str
    content: str
    reason: str = ""
    count: int = 1

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.path, self.rule, self.content)

    def to_dict(self) -> dict[str, object]:
        doc: dict[str, object] = {
            "path": self.path,
            "rule": self.rule,
            "content": self.content,
            "reason": self.reason,
        }
        if self.count != 1:
            doc["count"] = self.count
        return doc


@dataclass(slots=True)
class BaselineMatch:
    """Partition of a lint run against a baseline."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    #: linted, but the recorded line no longer fires — re-decide
    changed: list[BaselineEntry] = field(default_factory=list)
    #: file renamed/deleted out from under the entry — prunable
    orphaned: list[BaselineEntry] = field(default_factory=list)
    #: file or rule outside this run's scope — no verdict either way
    unchecked: list[BaselineEntry] = field(default_factory=list)

    @property
    def stale(self) -> list[BaselineEntry]:
        """Entries (with residual counts) that fail the run."""
        return self.changed + self.orphaned


class Baseline:
    """A set of documented suppressions with occurrence budgets."""

    def __init__(self, entries: list[BaselineEntry] | None = None) -> None:
        merged: dict[tuple[str, str, str], BaselineEntry] = {}
        for entry in entries or []:
            prior = merged.get(entry.key)
            if prior is not None:
                entry = BaselineEntry(
                    path=entry.path,
                    rule=entry.rule,
                    content=entry.content,
                    reason=prior.reason or entry.reason,
                    count=prior.count + entry.count,
                )
            merged[entry.key] = entry
        self.entries: list[BaselineEntry] = sorted(
            merged.values(), key=lambda e: (e.path, e.rule, e.content)
        )

    def __len__(self) -> int:
        return len(self.entries)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        if not isinstance(doc, dict) or doc.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported baseline format "
                f"(want version {_FORMAT_VERSION})"
            )
        entries = [
            BaselineEntry(
                path=str(e["path"]),
                rule=str(e["rule"]),
                content=str(e["content"]),
                reason=str(e.get("reason", "")),
                count=int(e.get("count", 1)),
            )
            for e in doc.get("entries", [])
        ]
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: list[Finding], reason: str = "") -> "Baseline":
        return cls(
            [
                BaselineEntry(
                    path=f.path, rule=f.rule, content=f.snippet, reason=reason
                )
                for f in findings
            ]
        )

    def save(self, path: str) -> None:
        doc = {
            "version": _FORMAT_VERSION,
            "entries": [e.to_dict() for e in self.entries],
        }
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)

    def apply(
        self,
        findings: list[Finding],
        *,
        linted_paths: set[str] | None = None,
        active_rules: set[str] | None = None,
    ) -> BaselineMatch:
        """Split ``findings`` into new vs. baselined; classify stale entries.

        ``linted_paths`` and ``active_rules`` describe the run's scope; when
        provided, residual entries outside that scope land in ``unchecked``
        instead of failing the run.  Without them every residual entry is
        reported as ``changed`` (the conservative default).
        """
        budget: dict[tuple[str, str, str], int] = {
            e.key: e.count for e in self.entries
        }
        match = BaselineMatch()
        for finding in findings:
            key = finding.fingerprint
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                match.baselined.append(finding)
            else:
                match.new.append(finding)
        for entry in self.entries:
            residual = budget.get(entry.key, 0)
            if residual <= 0:
                continue
            leftover = BaselineEntry(
                path=entry.path,
                rule=entry.rule,
                content=entry.content,
                reason=entry.reason,
                count=residual,
            )
            if active_rules is not None and entry.rule not in active_rules:
                match.unchecked.append(leftover)
            elif linted_paths is not None and entry.path not in linted_paths:
                if os.path.exists(entry.path):
                    match.unchecked.append(leftover)
                else:
                    match.orphaned.append(leftover)
            else:
                match.changed.append(leftover)
        return match

    def pruned(self, match: BaselineMatch) -> "Baseline":
        """A copy with ``match``'s stale residuals removed.

        Orphaned entries drop entirely (their residual is the full count);
        changed entries keep whatever budget the run still consumed.
        Unchecked entries are untouched — a partial run has no authority
        over them.
        """
        residual: dict[tuple[str, str, str], int] = {}
        for entry in match.stale:
            residual[entry.key] = residual.get(entry.key, 0) + entry.count
        kept = []
        for entry in self.entries:
            count = entry.count - residual.get(entry.key, 0)
            if count <= 0:
                continue
            if count != entry.count:
                entry = BaselineEntry(
                    path=entry.path,
                    rule=entry.rule,
                    content=entry.content,
                    reason=entry.reason,
                    count=count,
                )
            kept.append(entry)
        return Baseline(kept)
