"""TXN1xx: flow-sensitive transaction balance on the undo-log states.

PR 4's TXN002/TXN003 approximated transaction balance *syntactically*: "a
``begin()`` needs a ``commit()``/``rollback()`` somewhere in the function"
and "``rollback()`` belongs in a ``finally``/``except``".  Both rules are
blind to paths — a rollback sitting in a branch that an early ``return``
skips satisfied them, and a perfectly exception-safe idiom they did not
anticipate (commit on the straight line of a function whose tail cannot
raise) failed them.  This module replaces them with the real property,
checked on the CFG (:mod:`repro.analysis.cfg`) with must-reach dataflow
(:mod:`repro.analysis.dataflow`):

- **TXN101** — from every successful ``X.begin()``, *every* path to the
  function exit — normal, early-return, ``break``, and the exception edges
  of everything that can raise mid-probe — passes a ``X.commit()`` or
  ``X.rollback()``.  The exception edge of the ``begin()`` itself is
  exempt: a ``begin()`` that raises opened nothing.
- **TXN102** — a journal mark captured into a local (``m = X.snapshot()``
  / ``m = X.journal_mark()``) must reach a ``X.restore(m)`` /
  ``X.rollback_to(m)`` on every path, *unless the mark escapes* (stored in
  a container or attribute, passed to another call, returned): escaped
  marks are checkpoint book-keeping — the incremental evaluators' ``lmarks``
  lists — whose balance is a cross-call protocol the baseline documents,
  not a per-function property.
- **TXN103** — a ``X.commit()``/``X.rollback()`` must be *dominated* by a
  ``X.begin()`` on the same receiver: on every path that reaches the
  closer, the transaction it closes was actually opened.  Closing an
  unopened transaction raises ``SchedulingError`` at runtime — in the
  middle of a probe loop, long after the real bug.

Receivers are matched by dotted expression text (``self._lstate``,
``state``), the same approximation the syntactic rules used: transaction
state objects are held in locals or attributes, not computed.
"""

from __future__ import annotations

import ast

from repro.analysis.cfg import CFG
from repro.analysis.dataflow import (
    all_paths_reach,
    dominators,
    reaching_definitions,
)
from repro.analysis.engine import LintContext, Rule, dotted, register, scopes

#: transaction openers -> their closers
_TXN_CLOSERS = frozenset({"commit", "rollback"})
#: journal-mark producers -> their consumers
_MARK_PRODUCERS = frozenset({"snapshot", "journal_mark"})
_MARK_CONSUMERS = frozenset({"restore", "rollback_to"})


def _method_call(call: ast.Call, names: frozenset[str]) -> tuple[str, str] | None:
    """``(receiver, method)`` when ``call`` is ``<receiver>.<name>(...)``."""
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in names:
        return dotted(func.value), func.attr
    return None


def _call_sites(
    cfg: CFG, names: frozenset[str]
) -> list[tuple[int, ast.Call, str, str]]:
    """Every ``<recv>.<name>()`` call: (node index, call, receiver, method)."""
    sites = []
    for node in cfg.nodes:
        for call in cfg.calls_at(node.index):
            hit = _method_call(call, names)
            if hit is not None:
                sites.append((node.index, call, hit[0], hit[1]))
    return sites


@register
class TransactionBalanceRule(Rule):
    """Every ``begin()`` reaches ``commit()``/``rollback()`` on all paths."""

    rule_id = "TXN101"
    name = "transaction-leak-path"
    summary = ".begin() with a path (incl. exception edges) that exits uncommitted"
    rationale = (
        "Transactions do not nest: one leaked begin() makes every later "
        "probe's begin() raise, and the tentative slots it booked stay in "
        "the committed schedule.  The flow check walks every CFG path — "
        "early returns, breaks, and the exception edge of each statement "
        "that can raise mid-probe — so the begin/try/finally-rollback probe "
        "idiom passes and everything weaker does not."
    )
    include = ("repro",)

    def check(self, tree: ast.Module, ctx: LintContext) -> None:
        for scope in scopes(tree):
            cfg = ctx.cfg(scope)
            begins = _call_sites(cfg, frozenset({"begin"}))
            begins = [
                (i, c, recv, m)
                for i, c, recv, m in begins
                if not c.args and not c.keywords
            ]
            if not begins:
                continue
            closers = _call_sites(cfg, _TXN_CLOSERS)
            for index, call, receiver, _method in begins:
                targets = {i for i, _c, recv, _m in closers if recv == receiver}
                ok = all_paths_reach(cfg, targets)
                node = cfg.nodes[index]
                balanced = node.normal_succ and all(
                    ok[s] for s in node.normal_succ
                )
                if not balanced:
                    ctx.report(
                        self,
                        call,
                        f"`{receiver}.begin()` can exit the function without "
                        f"`{receiver}.commit()`/`{receiver}.rollback()` on "
                        "some path (exception edges count); wrap the "
                        "tentative work in try/finally",
                    )


@register
class JournalMarkBalanceRule(Rule):
    """Local journal marks must reach their ``restore``/``rollback_to``."""

    rule_id = "TXN102"
    name = "journal-mark-leak-path"
    summary = "a local snapshot()/journal_mark() with a path that never restores it"
    rationale = (
        "A mark captured for a trial placement and then dropped on some "
        "path leaves the journal (and the columns it guards) holding the "
        "trial's writes — the next evaluation scores a corrupted prefix.  "
        "Marks that escape into containers/attributes (the evaluators' "
        "lmarks checkpoints) are cross-call protocol, not per-function "
        "balance, and are exempt."
    )
    include = ("repro",)

    def check(self, tree: ast.Module, ctx: LintContext) -> None:
        for scope in scopes(tree):
            if isinstance(scope, ast.Module):
                continue
            cfg = ctx.cfg(scope)
            marks = self._local_marks(cfg)
            if not marks:
                continue
            consumers = _call_sites(cfg, _MARK_CONSUMERS)
            reaching = None
            for index, call, receiver, var in marks:
                if self._escapes(scope, call, var):
                    continue
                if reaching is None:
                    reaching = reaching_definitions(cfg)
                targets = {
                    i
                    for i, c, recv, _m in consumers
                    if recv == receiver
                    and len(c.args) == 1
                    and isinstance(c.args[0], ast.Name)
                    and c.args[0].id == var
                    and (var, index) in reaching[i]
                }
                ok = all_paths_reach(cfg, targets)
                node = cfg.nodes[index]
                balanced = node.normal_succ and all(
                    ok[s] for s in node.normal_succ
                )
                if not balanced:
                    ctx.report(
                        self,
                        call,
                        f"journal mark `{var}` from `{receiver}."
                        f"{call.func.attr}()` is not restored on every path "  # type: ignore[union-attr]
                        f"(`{receiver}.restore/rollback_to({var})` missing "
                        "or unreachable); rewind in a finally",
                    )

    @staticmethod
    def _local_marks(cfg: CFG) -> list[tuple[int, ast.Call, str, str]]:
        """``var = X.snapshot()`` sites: (node, call, receiver, var name)."""
        out = []
        for node in cfg.nodes:
            stmt = node.ast_node
            if not (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)
            ):
                continue
            hit = _method_call(stmt.value, _MARK_PRODUCERS)
            if hit is not None and not stmt.value.args:
                out.append((node.index, stmt.value, hit[0], stmt.targets[0].id))
        return out

    @staticmethod
    def _escapes(scope: ast.AST, mark_call: ast.Call, var: str) -> bool:
        """Whether ``var`` is used anywhere except as a restore argument."""
        for node in ast.walk(scope):
            if not (isinstance(node, ast.Name) and node.id == var):
                continue
            if isinstance(node.ctx, ast.Store):
                continue
            parent_ok = False
            # The only sanctioned load is `recv.restore(var)`/`rollback_to`;
            # any other load — append argument, return value, arithmetic —
            # means the mark's lifetime leaves this function's control flow.
            # (Parent lookup via a local walk keeps this scope-independent.)
            for candidate in ast.walk(scope):
                if (
                    isinstance(candidate, ast.Call)
                    and node in candidate.args
                    and _method_call(candidate, _MARK_CONSUMERS) is not None
                ):
                    parent_ok = True
                    break
            if not parent_ok:
                return True
        return False


@register
class CloserWithoutBeginRule(Rule):
    """``commit()``/``rollback()`` must be dominated by its ``begin()``."""

    rule_id = "TXN103"
    name = "closer-without-begin"
    summary = ".commit()/.rollback() not dominated by a begin() on the receiver"
    rationale = (
        "A closer on a path where no begin() ran raises SchedulingError "
        "('no open transaction') at runtime, typically deep in a probe "
        "loop.  Dominance is the right check: the begin must precede the "
        "closer on every path that reaches it, not merely somewhere in "
        "the same function."
    )
    include = ("repro",)

    def check(self, tree: ast.Module, ctx: LintContext) -> None:
        for scope in scopes(tree):
            cfg = ctx.cfg(scope)
            closers = _call_sites(cfg, _TXN_CLOSERS)
            closers = [
                (i, c, recv, m)
                for i, c, recv, m in closers
                if not c.args and not c.keywords
            ]
            if not closers:
                continue
            begins = _call_sites(cfg, frozenset({"begin"}))
            doms = None
            for index, call, receiver, method in closers:
                openers = {i for i, _c, recv, _m in begins if recv == receiver}
                if not openers:
                    ctx.report(
                        self,
                        call,
                        f"`{receiver}.{method}()` closes a transaction this "
                        "function never opens; either open it here or pass "
                        "the closing responsibility to the opener",
                    )
                    continue
                if doms is None:
                    doms = dominators(cfg)
                if not openers & doms[index]:
                    ctx.report(
                        self,
                        call,
                        f"`{receiver}.{method}()` is reachable on a path "
                        f"where no `{receiver}.begin()` ran; a closer must "
                        "be dominated by its opener",
                    )
