"""PUR00x: worker purity for the deterministic parallel fan-out.

``experiments/parallel.py`` promises (and ``tests/test_parallel_equivalence``
asserts) that ``improvement_series(..., jobs=N)`` is bit-identical to the
serial path for any ``N``.  The contract rests on workers being *pure*: a
unit's outcome is a function of ``(config, unit seed, algorithms)`` only.
These rules enforce the three ways Python code quietly breaks that:

- **PUR001** — a worker (``run_unit`` or anything submitted to a process
  pool, plus every module-local helper transitively reachable from one)
  declares ``global``/``nonlocal``: writes to surviving state make the
  result depend on what ran before in the same worker process — i.e. on
  the scheduler's unit-to-worker assignment.
- **PUR002** — a worker *reads* mutable module-level state (a module list/
  dict/set).  Under the spawn start method each pool process re-imports the
  module, so the worker sees the *import-time* value, not the parent's —
  two different answers for ``jobs=1`` vs ``jobs=N`` the moment the parent
  mutates it.
- **PUR003** — the callable handed to ``pool.map``/``submit`` is a lambda
  or a nested function: those pickle by qualified name and fail (or worse,
  resolve to something else) in the worker.  Module-level functions — the
  ``_run_unit_star`` trampoline idiom — pickle by reference and are the
  only locally-defined callables that survive the trip.

Worker roots are found per module: any ``def run_unit`` plus every
module-local function submitted to a pool; reachability runs on the
module-local call graph (:mod:`repro.analysis.callgraph`), so helpers a
worker calls inherit its obligations.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.callgraph import CallGraph, FunctionNode
from repro.analysis.engine import LintContext, Rule, register, scopes, walk_scope

#: Functions that are worker entry points by convention, wherever defined.
_WORKER_NAMES = frozenset({"run_unit"})

#: Constructors whose instances hand work to other processes.
_POOL_FACTORIES = frozenset({"ProcessPoolExecutor", "Pool"})

#: Pool methods whose first argument is the callable shipped to workers.
_SUBMIT_METHODS = frozenset(
    {"map", "submit", "apply", "apply_async", "starmap", "imap", "imap_unordered"}
)

#: Module-level value expressions that create mutable containers.
_MUTABLE_DISPLAYS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter", "OrderedDict"}
)


def _is_pool_factory(func: ast.expr) -> bool:
    if isinstance(func, ast.Name):
        return func.id in _POOL_FACTORIES
    if isinstance(func, ast.Attribute):
        return func.attr in _POOL_FACTORIES
    return False


def _pool_names(scope: ast.AST) -> set[str]:
    """Names bound to a process pool inside ``scope`` (with-as or assignment)."""
    names: set[str] = set()
    for node in walk_scope(scope):
        if isinstance(node, ast.withitem):
            if (
                isinstance(node.context_expr, ast.Call)
                and _is_pool_factory(node.context_expr.func)
                and isinstance(node.optional_vars, ast.Name)
            ):
                names.add(node.optional_vars.id)
        elif isinstance(node, ast.Assign):
            if (
                isinstance(node.value, ast.Call)
                and _is_pool_factory(node.value.func)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                names.add(node.targets[0].id)
    return names


def _submissions(
    tree: ast.Module, cg: CallGraph
) -> Iterator[tuple[str | None, ast.Call, ast.expr]]:
    """Every pool submission: (enclosing function qualname, call, callable arg)."""
    for scope in scopes(tree):
        pools = _pool_names(scope)
        if not pools:
            continue
        caller = None if isinstance(scope, ast.Module) else cg.qualname_of(scope)
        for node in walk_scope(scope):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SUBMIT_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in pools
                and node.args
            ):
                yield caller, node, node.args[0]


def _worker_roots(tree: ast.Module, cg: CallGraph) -> list[str]:
    """Qualnames of the module's worker entry points (conventional + submitted)."""
    roots: set[str] = set()
    for name in _WORKER_NAMES:
        roots.update(cg.named(name))
    for caller, _call, target in _submissions(tree, cg):
        if isinstance(target, ast.Name):
            resolved = cg.resolve_name(caller, target.id)
            if resolved is not None:
                roots.add(resolved)
    return sorted(roots)


def _worker_functions(
    tree: ast.Module, cg: CallGraph
) -> list[tuple[str, FunctionNode]]:
    roots = _worker_roots(tree, cg)
    return [(q, cg.functions[q]) for q in sorted(cg.reachable_from(roots))]


@register
class WorkerGlobalWriteRule(Rule):
    """Workers and their helpers may not declare ``global``/``nonlocal``."""

    rule_id = "PUR001"
    name = "worker-global-write"
    summary = "global/nonlocal declaration in a process-pool worker"
    rationale = (
        "A worker that writes surviving state makes a unit's result depend "
        "on which units ran before it in the same process — exactly the "
        "unit-to-worker assignment the jobs=N bit-identity contract says "
        "must be unobservable.  Thread state through arguments and returns."
    )
    include = ("repro",)

    def check(self, tree: ast.Module, ctx: LintContext) -> None:
        cg = ctx.callgraph()
        for qualname, func in _worker_functions(tree, cg):
            for node in walk_scope(func):
                if isinstance(node, (ast.Global, ast.Nonlocal)):
                    kind = "global" if isinstance(node, ast.Global) else "nonlocal"
                    ctx.report(
                        self,
                        node,
                        f"worker `{qualname}` declares `{kind} "
                        f"{', '.join(node.names)}`; workers must be pure "
                        "functions of their arguments",
                    )


@register
class WorkerModuleStateRule(Rule):
    """Workers may not read mutable module-level state."""

    rule_id = "PUR002"
    name = "worker-module-state"
    summary = "process-pool worker reads a mutable module-level container"
    rationale = (
        "Spawned workers re-import the module, so a module-level list/dict/"
        "set holds its import-time value there — any parent-side mutation "
        "is invisible, and jobs=1 vs jobs=N diverge silently.  Pass the "
        "data as an argument (it then pickles with the work unit)."
    )
    include = ("repro",)

    def check(self, tree: ast.Module, ctx: LintContext) -> None:
        mutable = self._mutable_module_names(tree)
        if not mutable:
            return
        cg = ctx.callgraph()
        for qualname, func in _worker_functions(tree, cg):
            local = self._local_names(func)
            for node in walk_scope(func):
                if (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in mutable
                    and node.id not in local
                ):
                    ctx.report(
                        self,
                        node,
                        f"worker `{qualname}` reads mutable module state "
                        f"`{node.id}`; spawned workers see the import-time "
                        "value — pass it as an argument instead",
                    )

    @staticmethod
    def _mutable_module_names(tree: ast.Module) -> set[str]:
        names: set[str] = set()
        for stmt in tree.body:
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
            if not (isinstance(target, ast.Name) and value is not None):
                continue
            if isinstance(value, _MUTABLE_DISPLAYS) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in _MUTABLE_FACTORIES
            ):
                names.add(target.id)
        return names

    @staticmethod
    def _local_names(func: FunctionNode) -> set[str]:
        args = func.args
        names = {
            a.arg
            for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        }
        for special in (args.vararg, args.kwarg):
            if special is not None:
                names.add(special.arg)
        declared_global: set[str] = set()
        for node in walk_scope(func):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                declared_global.update(node.names)
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                names.add(node.id)
        return names - declared_global


@register
class UnpicklableSubmissionRule(Rule):
    """Pool submissions must be module-level callables."""

    rule_id = "PUR003"
    name = "unpicklable-submission"
    summary = "lambda or nested function submitted to a process pool"
    rationale = (
        "Process pools pickle the callable by qualified name; lambdas and "
        "nested functions have no importable name and fail at submission "
        "time — or only on the pool path, which jobs=1 test runs never "
        "exercise.  Use a module-level trampoline like _run_unit_star."
    )
    include = ("repro",)

    def check(self, tree: ast.Module, ctx: LintContext) -> None:
        cg = ctx.callgraph()
        for caller, call, target in _submissions(tree, cg):
            if isinstance(target, ast.Lambda):
                ctx.report(
                    self,
                    target,
                    "lambda submitted to a process pool cannot pickle; "
                    "define a module-level function",
                )
            elif isinstance(target, ast.Name):
                resolved = cg.resolve_name(caller, target.id)
                if resolved is not None and "." in resolved:
                    ctx.report(
                        self,
                        target,
                        f"`{target.id}` resolves to nested function "
                        f"`{resolved}`, which cannot pickle into pool "
                        "workers; hoist it to module level",
                    )
