"""Float-discipline rule: no exact ``==``/``!=`` on float-typed expressions.

Schedule instants accumulate an EPS fuzz per OIHSA deferral (see
``repro/linksched/optimal_insertion.py``), so exact float equality in
decision or validation logic is a latent correctness bug: two runs that are
semantically identical can diverge on the last ulp.  Tolerance comparison
lives in two audited places — :mod:`repro.linksched.causality`
(``CAUSALITY_EPS`` band checks) and :mod:`repro.utils.intervals` — which are
exempt from this rule.  The few intentional exact comparisons elsewhere
(e.g. the ``room == 0.0`` fast path, exact because ``accum`` and
``gap_after`` are clamped) carry inline suppressions explaining why.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import LintContext, Rule, register, scopes, walk_scope

#: Attribute names that are float-typed throughout the model layer (schedule
#: instants, durations, costs, rates).  Kept curated, not inferred: adding a
#: name here widens the rule everywhere.
FLOAT_ATTRS = frozenset(
    {
        "start",
        "finish",
        "duration",
        "cost",
        "weight",
        "speed",
        "makespan",
        "arrival",
        "slack",
        "ready_time",
        "hop_delay",
    }
)

_FLOATISH_FUNCS = {"abs", "min", "max", "sum"}


def _float_annotated_names(scope: ast.AST) -> set[str]:
    """Names annotated ``: float`` among ``scope``'s params and assignments."""
    names: set[str] = set()
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            ann = arg.annotation
            if isinstance(ann, ast.Name) and ann.id == "float":
                names.add(arg.arg)
    for node in walk_scope(scope):
        if (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and isinstance(node.annotation, ast.Name)
            and node.annotation.id == "float"
        ):
            names.add(node.target.id)
    return names


def _is_floatish(node: ast.expr, float_names: set[str]) -> bool:
    """Whether ``node`` is statically recognizable as float-valued."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Name):
        return node.id in float_names
    if isinstance(node, ast.Attribute):
        if node.attr in FLOAT_ATTRS:
            return True
        return (
            isinstance(node.value, ast.Name)
            and node.value.id == "math"
            and node.attr in {"inf", "nan", "pi", "e", "tau"}
        )
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "float":
                return True
            if func.id in _FLOATISH_FUNCS:
                return any(_is_floatish(a, float_names) for a in node.args)
        return False
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _is_floatish(node.left, float_names) or _is_floatish(
            node.right, float_names
        )
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand, float_names)
    return False


@register
class FloatEqualityRule(Rule):
    """Exact equality between floats is fragile under EPS-fuzzed arithmetic."""

    rule_id = "FLT001"
    name = "float-equality"
    summary = "==/!= between float-typed expressions outside the tolerance helpers"
    rationale = (
        "Deferral arithmetic carries an EPS fuzz (Lemma 2 slack cascades), so "
        "exact float equality can flip on the last ulp; compare with the "
        "CAUSALITY_EPS band (linksched.causality) or interval helpers "
        "(utils.intervals) instead."
    )
    include = ("repro",)
    exclude = ("repro/linksched/causality.py", "repro/utils/intervals.py")

    def check(self, tree: ast.Module, ctx: LintContext) -> None:
        for scope in scopes(tree):
            float_names = _float_annotated_names(scope)
            for node in walk_scope(scope):
                if not isinstance(node, ast.Compare):
                    continue
                if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                    continue
                operands = [node.left, *node.comparators]
                if any(_is_floatish(o, float_names) for o in operands):
                    ctx.report(
                        self,
                        node,
                        "exact float equality; use an epsilon band "
                        "(CAUSALITY_EPS) or math.isclose, or suppress with a "
                        "reason if exactness is guaranteed",
                    )
