"""Determinism rules: unordered iteration, unseeded RNGs, wall-clock reads.

The reproduction's headline guarantee (PR 2) is that schedules and figures
are **bit-identical** across runs, machines, and serial/parallel execution.
Three things silently break that in Python: iterating a ``set`` (hash order
varies between processes when ``PYTHONHASHSEED`` differs or when ids do),
touching a process-global or unseeded RNG instead of the seed plumbing in
:mod:`repro.utils.rng`, and reading the wall clock inside a scheduling
decision.  Each rule here turns one of those hazards into a machine-checked
finding.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import (
    LintContext,
    Rule,
    attr_chain,
    register,
    scopes,
    walk_scope,
)

#: Directories whose iteration order / clock reads decide schedule bytes.
SCHEDULING_DIRS = (
    "repro/core",
    "repro/linksched",
    "repro/network",
    "repro/procsched",
    "repro/taskgraph",
)

# -- DET001: set iteration -----------------------------------------------------

_SET_CALLS = {"set", "frozenset"}
_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference", "copy"}
_SET_ANNOTATIONS = {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
#: Consumers whose result does not depend on element order.
_ORDER_SAFE_CALLS = {"sorted", "min", "max", "sum", "any", "all", "len", "set", "frozenset"}
#: Consumers that materialize iteration order into an ordered container.
_ORDER_LEAKING_CALLS = {"list", "tuple", "enumerate", "iter", "reversed"}


def _is_set_annotation(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _SET_ANNOTATIONS
    if isinstance(node, ast.Subscript):
        return _is_set_annotation(node.value)
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_ANNOTATIONS
    return False


def _is_set_expr(node: ast.expr, set_names: set[str]) -> bool:
    """Whether ``node`` is syntactically known to evaluate to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _SET_CALLS:
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SET_METHODS
            and _is_set_expr(func.value, set_names)
        ):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_names) and _is_set_expr(
            node.right, set_names
        )
    if isinstance(node, ast.IfExp):
        return _is_set_expr(node.body, set_names) and _is_set_expr(
            node.orelse, set_names
        )
    return False


def _set_names(scope: ast.AST) -> set[str]:
    """Names bound to set-typed values in ``scope`` (local flow inference).

    Sources: parameters and variables annotated ``set[...]`` / ``Set[...]``,
    and plain assignments whose right-hand side is a known set expression.
    Runs to a fixpoint so ``b = a`` chains resolve.  Over-approximate on
    purpose: a rebinding to a non-set later in the function does not clear
    the name (suppress the finding if that ever matters).
    """
    names: set[str] = set()
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if arg.annotation is not None and _is_set_annotation(arg.annotation):
                names.add(arg.arg)
    changed = True
    while changed:
        changed = False
        for node in walk_scope(scope):
            target: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                is_set = node.value is not None and _is_set_expr(node.value, names)
            elif isinstance(node, ast.AnnAssign):
                target = node.target
                is_set = _is_set_annotation(node.annotation)
            else:
                continue
            if is_set and isinstance(target, ast.Name) and target.id not in names:
                names.add(target.id)
                changed = True
    return names


@register
class SetIterationRule(Rule):
    """Iterating a set leaks hash order into whatever consumes the loop."""

    rule_id = "DET001"
    name = "set-iteration"
    summary = "iteration over an unordered set/frozenset without sorted(...)"
    rationale = (
        "Set iteration order depends on element hashes and insertion history, "
        "which vary across processes; any schedule decision or serialized "
        "output derived from it breaks the bit-identical guarantee (PR 2)."
    )
    include = SCHEDULING_DIRS

    def check(self, tree: ast.Module, ctx: LintContext) -> None:
        for scope in scopes(tree):
            names = _set_names(scope)
            for node in walk_scope(scope):
                self._check_node(node, names, ctx)

    def _check_node(self, node: ast.AST, names: set[str], ctx: LintContext) -> None:
        if isinstance(node, ast.For) and _is_set_expr(node.iter, names):
            ctx.report(
                self,
                node,
                "iteration over an unordered set; wrap the iterable in sorted(...)",
            )
        elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
            # SetComp over a set is order-insensitive (set in, set out) and
            # exempt; list/dict comprehensions materialize the order, and a
            # generator leaks it unless it feeds an order-safe consumer.
            for gen in node.generators:
                if not _is_set_expr(gen.iter, names):
                    continue
                if isinstance(node, ast.GeneratorExp) and self._feeds_order_safe(
                    node, ctx
                ):
                    continue
                ctx.report(
                    self,
                    node,
                    "comprehension over an unordered set; iterate sorted(...) "
                    "or produce a set",
                )
        elif isinstance(node, ast.Call):
            func = node.func
            fname = ""
            if isinstance(func, ast.Name):
                fname = func.id
            elif isinstance(func, ast.Attribute) and func.attr == "join":
                fname = "join"
            if (
                fname
                and (fname in _ORDER_LEAKING_CALLS or fname == "join")
                and node.args
                and _is_set_expr(node.args[0], names)
            ):
                ctx.report(
                    self,
                    node,
                    f"{fname}(...) materializes unordered set iteration; "
                    "use sorted(...)",
                )

    @staticmethod
    def _feeds_order_safe(node: ast.GeneratorExp, ctx: LintContext) -> bool:
        parent = ctx.parent(node)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in _ORDER_SAFE_CALLS
            and node in parent.args
        )


# -- DET002: unseeded / process-global RNG -------------------------------------

#: numpy.random attributes that construct explicit generators (allowed when
#: given a seed; ``default_rng``/``RandomState`` without one are flagged).
_NP_CONSTRUCTORS = {"default_rng", "RandomState"}
_NP_SEED_TYPES = {"Generator", "SeedSequence", "BitGenerator", "PCG64", "MT19937", "Philox", "SFC64"}


def _is_unseeded_call(call: ast.Call) -> bool:
    if not call.args and not call.keywords:
        return True
    return bool(
        call.args
        and isinstance(call.args[0], ast.Constant)
        and call.args[0].value is None
    )


@register
class UnseededRngRule(Rule):
    """Randomness must flow through the ``repro.utils.rng`` seed plumbing."""

    rule_id = "DET002"
    name = "unseeded-rng"
    summary = "process-global random module, legacy np.random.*, or unseeded default_rng()"
    rationale = (
        "Every stochastic entry point takes `rng: int | Generator | None` and "
        "normalizes it via repro.utils.rng.as_rng; a stray random.* call or "
        "np.random.default_rng() with no seed makes experiments "
        "unreproducible from their recorded config (PR 2 result cache keys)."
    )
    include = ("repro",)
    exclude = ("repro/utils/rng.py",)

    def check(self, tree: ast.Module, ctx: LintContext) -> None:
        random_modules: set[str] = set()
        numpy_modules: set[str] = set()
        np_random_modules: set[str] = set()
        random_functions: set[str] = set()
        np_constructor_aliases: dict[str, str] = {}
        np_global_aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    asname = alias.asname or alias.name.split(".", 1)[0]
                    if alias.name == "random":
                        random_modules.add(asname)
                    elif alias.name == "numpy":
                        numpy_modules.add(asname)
                    elif alias.name == "numpy.random" and alias.asname:
                        np_random_modules.add(alias.asname)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    random_functions.update(a.asname or a.name for a in node.names)
                elif node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            np_random_modules.add(alias.asname or "random")
                elif node.module == "numpy.random":
                    for alias in node.names:
                        bound = alias.asname or alias.name
                        if alias.name in _NP_CONSTRUCTORS:
                            np_constructor_aliases[bound] = alias.name
                        elif alias.name not in _NP_SEED_TYPES:
                            np_global_aliases[bound] = alias.name
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in random_functions:
                    ctx.report(
                        self,
                        node,
                        f"{func.id}() uses the process-global random module; "
                        "thread a seeded Generator from repro.utils.rng",
                    )
                elif func.id in np_constructor_aliases and _is_unseeded_call(node):
                    ctx.report(
                        self,
                        node,
                        f"unseeded {np_constructor_aliases[func.id]}(); pass the "
                        "experiment seed (see repro.utils.rng.as_rng)",
                    )
                elif func.id in np_global_aliases:
                    ctx.report(
                        self,
                        node,
                        f"np.random.{np_global_aliases[func.id]} mutates the "
                        "process-global legacy RNG; use a seeded Generator",
                    )
                continue
            chain = attr_chain(func)
            if not chain:
                continue
            tail: str | None = None
            if chain[0] in random_modules and len(chain) == 2:
                if chain[1] == "Random" and (node.args or node.keywords):
                    continue  # random.Random(seed) is an explicit local stream
                ctx.report(
                    self,
                    node,
                    f"random.{chain[1]}() uses the process-global random "
                    "module; thread a seeded Generator from repro.utils.rng",
                )
                continue
            if chain[0] in numpy_modules and len(chain) == 3 and chain[1] == "random":
                tail = chain[2]
            elif chain[0] in np_random_modules and len(chain) == 2:
                tail = chain[1]
            if tail is None:
                continue
            if tail in _NP_CONSTRUCTORS:
                if _is_unseeded_call(node):
                    ctx.report(
                        self,
                        node,
                        f"unseeded np.random.{tail}(); pass the experiment "
                        "seed (see repro.utils.rng.as_rng)",
                    )
            elif tail not in _NP_SEED_TYPES:
                ctx.report(
                    self,
                    node,
                    f"np.random.{tail} mutates the process-global legacy RNG; "
                    "use a seeded Generator",
                )


# -- DET003: wall-clock reads in scheduling code -------------------------------

_WALL_TIME_FUNCS = {"time", "time_ns", "localtime", "gmtime", "ctime", "asctime"}
_WALL_DATETIME_FUNCS = {"now", "utcnow", "today"}
_DATETIME_NAMES = {"datetime", "date"}


@register
class WallClockRule(Rule):
    """Scheduling decisions must be functions of their inputs, not the clock."""

    rule_id = "DET003"
    name = "wall-clock"
    summary = "time.time()/datetime.now()-style wall-clock read in scheduling code"
    rationale = (
        "Schedule instants are model time (paper Section 2); reading host "
        "wall-clock time inside core/linksched/network/procsched makes runs "
        "machine-dependent.  Duration profiling belongs in repro.obs "
        "(perf_counter spans), which is exempt."
    )
    include = SCHEDULING_DIRS

    def check(self, tree: ast.Module, ctx: LintContext) -> None:
        time_modules: set[str] = set()
        time_functions: set[str] = set()
        datetime_roots: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    asname = alias.asname or alias.name.split(".", 1)[0]
                    if alias.name == "time":
                        time_modules.add(asname)
                    elif alias.name == "datetime":
                        datetime_roots.add(asname)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    time_functions.update(
                        a.asname or a.name
                        for a in node.names
                        if a.name in _WALL_TIME_FUNCS
                    )
                elif node.module == "datetime":
                    datetime_roots.update(
                        a.asname or a.name
                        for a in node.names
                        if a.name in _DATETIME_NAMES
                    )
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in time_functions:
                ctx.report(
                    self,
                    node,
                    f"wall-clock call {func.id}(); scheduling code must not "
                    "read host time",
                )
                continue
            chain = attr_chain(func)
            if not chain or len(chain) < 2:
                continue
            if chain[0] in time_modules and chain[-1] in _WALL_TIME_FUNCS:
                ctx.report(
                    self,
                    node,
                    f"wall-clock call time.{chain[-1]}(); scheduling code "
                    "must not read host time",
                )
            elif chain[0] in datetime_roots and chain[-1] in _WALL_DATETIME_FUNCS:
                ctx.report(
                    self,
                    node,
                    f"wall-clock call {'.'.join(chain)}(); scheduling code "
                    "must not read host time",
                )
