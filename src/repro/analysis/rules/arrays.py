"""Array-discipline rule: no per-element Python loops over the flat columns.

The batched evaluation kernel (:mod:`repro.core.batch` driving
:mod:`repro.core._kernel`) gets its speed from treating link and
processor state as flat parallel columns manipulated by *bulk* primitives:
``bisect`` for positioning, point ``insert``/``del`` for bookings, slicing
for journal truncation, ``max`` for reductions.  A hand-rolled ``for`` loop
over one of those columns reintroduces exactly the per-element interpreter
overhead the kernel exists to remove — and, history shows, is how "just one
small scan" regressions land in hot paths.

ARR001 flags any ``for`` statement, comprehension, or
``enumerate``/``zip``/``reversed``/``iter``/``range(len(...))`` consumer
that walks a recognized column name inside the kernel files.  Deliberate
exceptions (a cold-path diagnostic, a differential-test helper) must carry
a ``# repro-lint: disable=ARR001`` justification on the reported line.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import LintContext, Rule, register

#: The files holding the array-native hot paths.  ``_kernel.py`` is the
#: extracted hot loop (the module the optional AOT build compiles);
#: ``arraystate.py`` stays listed as its re-export shim and ``batch.py``
#: as the driving evaluator.
ARRAY_KERNEL_FILES = (
    "repro/linksched/arraystate.py",
    "repro/core/_kernel.py",
    "repro/core/batch.py",
)

#: Names (locals or attributes) bound to flat column arrays in the kernel.
#: Kept in sync with ``ArrayLinkState`` / ``ArrayProcState`` / the evaluator's
#: per-position tables.
COLUMN_NAMES = frozenset(
    {
        "starts",
        "finishes",
        "journal_starts",
        "journal_finishes",
        "journal_index",
        "journal_proc",
        "journal_finish",
        "task_finish",
        "proc_finish",
        "exec_flat",
        "applied",
        "lmarks",
    }
)

#: Callables that turn a column into a per-element iteration stream.
_ITERATING_CALLS = {"enumerate", "reversed", "iter", "zip"}


def _column_name(node: ast.expr) -> str | None:
    """The column a (possibly attribute-qualified) expression names, if any."""
    if isinstance(node, ast.Name) and node.id in COLUMN_NAMES:
        return node.id
    if isinstance(node, ast.Attribute) and node.attr in COLUMN_NAMES:
        return node.attr
    return None


def _iterated_column(node: ast.expr) -> str | None:
    """The column ``node`` walks per-element when used as an iterable."""
    direct = _column_name(node)
    if direct is not None:
        return direct
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
        return None
    fname = node.func.id
    if fname in _ITERATING_CALLS:
        for arg in node.args:
            col = _column_name(arg)
            if col is not None:
                return col
        return None
    if fname == "range":
        # range(len(col)) / range(start, len(col)): an index walk in disguise.
        for arg in node.args:
            if (
                isinstance(arg, ast.Call)
                and isinstance(arg.func, ast.Name)
                and arg.func.id == "len"
                and arg.args
            ):
                col = _column_name(arg.args[0])
                if col is not None:
                    return col
    return None


@register
class ColumnLoopRule(Rule):
    """Per-element loops over the batch kernel's columns defeat its design."""

    rule_id = "ARR001"
    name = "column-loop"
    summary = "per-element Python loop over a flat column array in the batch kernel"
    rationale = (
        "The array backend's contract is bulk column manipulation (bisect, "
        "point inserts, slicing, max); an element-wise Python loop over a "
        "column reintroduces the per-slot interpreter overhead the kernel "
        "removes.  Cold-path exceptions need a disable justification."
    )
    include = ARRAY_KERNEL_FILES

    def check(self, tree: ast.Module, ctx: LintContext) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.For):
                col = _iterated_column(node.iter)
                if col is not None:
                    ctx.report(
                        self,
                        node,
                        f"for-loop walks column array {col!r} per element; "
                        "use bisect/slice/bulk operations or justify with "
                        "# repro-lint: disable=ARR001",
                    )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for gen in node.generators:
                    col = _iterated_column(gen.iter)
                    if col is not None:
                        ctx.report(
                            self,
                            node,
                            f"comprehension walks column array {col!r} per "
                            "element; use bisect/slice/bulk operations or "
                            "justify with # repro-lint: disable=ARR001",
                        )
