"""OBS001: observability emissions on hot paths must be ``OBS.on``-guarded.

PR 1 made instrumentation free when disabled by guarding every emission site
with a single attribute test, and PR 3's fused fast paths rely on that
discipline: an unguarded ``OBS.emit`` or counter bump builds its payload
(string formatting, dict allocation) on every probe even when observability
is off, quietly costing the >2x speedups back.

"Guarded" is a *dominance* question, answered on the function's CFG
(:mod:`repro.analysis.cfg`): an emission is guarded when its node is
dominated by the guarding arm of an ``OBS.on`` test — the true arm of
``if OBS.on:`` / ``if observing and ...:``, or the false arm of
``if not OBS.on: ...``.  Dominance subsumes the idiom catalogue the
original line scanner special-cased: the early-exit form ``if not OBS.on:
return`` guards the rest of the function *because* every later node is
dominated by the test's fall-through arm, not because the rule pattern-
matches a ``return``; the same holds for ``continue``/``break``/``raise``
early exits and for guard tests sitting inside loops or ``try`` bodies.

Recognized guard spellings (the test expression, not the shape around it):

- ``OBS.on`` itself, possibly inside a larger boolean test,
- a local alias — ``observing = OBS.on`` / ``obs_on = OBS.on`` — tested
  later (``if observing: ...``),
- a private helper whose every call site *within the module* is guarded
  (e.g. ``_attach_stats`` in ``core/base.py``) is treated as guarded.

Cheap control calls (``OBS.bus.quiet()/mark()/since()``, snapshots) are
exempt; ``span()`` is exempt because the profiler checks its own flag.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.cfg import CFG
from repro.analysis.dataflow import dominators
from repro.analysis.engine import LintContext, Rule, attr_chain, register, scopes

_METRIC_FACTORIES = {"counter", "gauge", "histogram"}


def _emission_label(call: ast.Call, metric_aliases: set[str]) -> str | None:
    """A display label when ``call`` is an observability emission, else None."""
    chain = attr_chain(call.func)
    if not chain:
        return None
    if chain[0] == "OBS":
        rest = chain[1:]
        if rest == ["emit"]:
            return "OBS.emit"
        if rest == ["bus", "emit"]:
            return "OBS.bus.emit"
        if len(rest) == 2 and rest[0] == "metrics" and rest[1] in _METRIC_FACTORIES:
            return f"OBS.metrics.{rest[1]}"
        return None
    if chain[0] in metric_aliases and len(chain) == 2 and chain[1] in _METRIC_FACTORIES:
        return f"{chain[0]}.{chain[1]}"
    return None


def _mentions_guard(expr: ast.expr, guard_names: set[str]) -> bool:
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.Attribute)
            and node.attr == "on"
            and isinstance(node.value, ast.Name)
            and node.value.id == "OBS"
        ):
            return True
        if isinstance(node, ast.Name) and node.id in guard_names:
            return True
    return False


def _is_negated(test: ast.expr) -> bool:
    return isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not)


@dataclass
class _ScopeScan:
    """Emission and call sites found in one function (or the module body)."""

    emissions: list[tuple[ast.Call, str, bool]] = field(default_factory=list)
    #: bare callee name -> call-site guarded flags (module-local resolution)
    calls: list[tuple[str, bool]] = field(default_factory=list)


def _guard_arms(cfg: CFG, guard_names: set[str]) -> set[int]:
    """Arm nodes whose traversal implies ``OBS.on`` held.

    The true arm of a test mentioning the guard, or the false arm of a
    top-level-negated one (``if not OBS.on: ...`` — its fall-through side
    is the guarded side).  ``or``-combined guards are over-trusted, like
    the line scanner before; the repo idiom is ``and``-composition.
    """
    arms: set[int] = set()
    for node in cfg.nodes:
        if node.kind != "test" or not node.exprs:
            continue
        if not isinstance(node.ast_node, (ast.If, ast.While)):
            continue
        test = node.exprs[0]
        if not _mentions_guard(test, guard_names):
            continue
        want = "false" if _is_negated(test) else "true"
        for arm in cfg.arms_of(node.index):
            if arm.branch == want:
                arms.add(arm.index)
    return arms


def _bare_callee(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _scan_scope(cfg: CFG, guard_names: set[str], metric_aliases: set[str]) -> _ScopeScan:
    """Classify every call in one scope's CFG by guard dominance."""
    scan = _ScopeScan()
    arms = _guard_arms(cfg, guard_names)
    doms = dominators(cfg) if arms else None
    for node in cfg.nodes:
        guarded = doms is not None and bool(arms & doms[node.index])
        for call in cfg.calls_at(node.index):
            label = _emission_label(call, metric_aliases)
            if label is not None:
                scan.emissions.append((call, label, guarded))
                continue
            callee = _bare_callee(call.func)
            if callee is not None:
                scan.calls.append((callee, guarded))
    return scan


def _collect_aliases(body: list[ast.stmt]) -> tuple[set[str], set[str]]:
    """``(guard aliases, OBS.metrics aliases)`` assigned anywhere in a scope."""
    guard_names: set[str] = set()
    metric_aliases: set[str] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                continue
            target = node.targets[0].id
            if _mentions_guard(node.value, set()):
                guard_names.add(target)
            chain = attr_chain(node.value)
            if chain == ["OBS", "metrics"]:
                metric_aliases.add(target)
    return guard_names, metric_aliases


#: Writable open modes (``open(path, MODE)``) that OBS002 treats as a write.
_WRITE_MODES = {"w", "a", "x"}

#: Callables that put bytes on disk.
_WRITE_CALLEES = {"open", "write_text", "write_bytes"}

#: Substrings that mark a string literal as naming a ledger artifact.
_LEDGER_LITERALS = (".repro-runs", "ledger-")

#: Identifier fragments that mark a variable as holding a ledger path.
_LEDGER_NAME_FRAGMENTS = ("ledger", "runs_dir", "runs_path")


def _mentions_ledger(node: ast.AST) -> bool:
    """Whether an expression subtree names a run-ledger file or directory."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            if any(lit in sub.value for lit in _LEDGER_LITERALS):
                return True
        if isinstance(sub, (ast.Name, ast.Attribute)):
            ident = sub.id if isinstance(sub, ast.Name) else sub.attr
            lowered = ident.lower()
            if any(frag in lowered for frag in _LEDGER_NAME_FRAGMENTS):
                return True
    return False


def _is_write_call(call: ast.Call) -> bool:
    """Whether ``call`` opens a file writably or writes content directly."""
    func = call.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    if name not in _WRITE_CALLEES:
        return False
    if name == "open":
        # ``os.open`` flags or builtin ``open`` mode: writable unless the
        # call is positively read-only (bare ``open(path)`` or mode "r...").
        chain = attr_chain(func)
        if chain == ["os", "open"]:
            return True  # os.open with any flags — O_APPEND etc.
        mode = None
        if len(call.args) >= 2:
            mode = call.args[1]
        for kw in call.keywords:
            if kw.arg == "mode":
                mode = kw.value
        if mode is None:
            return False  # open(path) defaults to "r"
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return any(m in mode.value for m in _WRITE_MODES)
        return True  # dynamic mode: assume writable
    return True  # write_text / write_bytes


@register
class LedgerWriteRule(Rule):
    """Run-ledger writes must go through ``repro.obs.runlog.append``."""

    rule_id = "OBS002"
    name = "direct-ledger-write"
    summary = "run-ledger file written without going through runlog.append"
    rationale = (
        "The ledger's guarantees — atomic single-write appends, sharding, "
        "one schema — hold only on the sanctioned write path.  A hand-rolled "
        "open()/write() can interleave partial lines under concurrency and "
        "silently fork the record format."
    )
    include = ("repro",)
    exclude = ("repro/obs/runlog.py",)

    def check(self, tree: ast.Module, ctx: LintContext) -> None:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if not _is_write_call(node):
                continue
            arg_nodes: list[ast.AST] = list(node.args) + [
                kw.value for kw in node.keywords
            ]
            # For method receivers (path.write_text(...)), the receiver names
            # the file being written.
            if isinstance(node.func, ast.Attribute):
                arg_nodes.append(node.func.value)
            if any(_mentions_ledger(a) for a in arg_nodes):
                ctx.report(
                    self,
                    node,
                    "direct write to a run-ledger file; append records via "
                    "repro.obs.runlog.append (atomic, sharded, schema-checked)",
                )


@register
class ObsGuardRule(Rule):
    """Hot-path instrumentation must test ``OBS.on`` before building payloads."""

    rule_id = "OBS001"
    name = "unguarded-obs-emission"
    summary = "observability emission on a hot path without an OBS.on guard"
    rationale = (
        "The obs-off discipline (PR 1/PR 3): disabled instrumentation must "
        "cost one attribute test.  An unguarded emit/counter call allocates "
        "its payload on every probe, regressing the fused fast paths.  "
        "Guardedness is dominance by the guarding arm of an OBS.on test on "
        "the function's CFG."
    )
    include = ("repro/core", "repro/linksched", "repro/network", "repro/procsched")

    def check(self, tree: ast.Module, ctx: LintContext) -> None:
        scans: dict[ast.AST, _ScopeScan] = {}
        names: dict[ast.AST, str] = {}
        for scope in scopes(tree):
            body = scope.body
            guard_names, metric_aliases = _collect_aliases(body)
            scans[scope] = _scan_scope(ctx.cfg(scope), guard_names, metric_aliases)
            names[scope] = (
                "<module>" if isinstance(scope, ast.Module) else scope.name
            )

        # Module-local escape: a function whose every call site in this file
        # is guarded inherits the guard (e.g. a private _attach_stats helper).
        call_sites: dict[str, list[bool]] = {}
        for scan in scans.values():
            for callee, guarded in scan.calls:
                call_sites.setdefault(callee, []).append(guarded)
        for scope, scan in scans.items():
            sites = call_sites.get(names[scope], [])
            if sites and all(sites):
                continue
            for node, label, guarded in scan.emissions:
                if guarded:
                    continue
                ctx.report(
                    self,
                    node,
                    f"unguarded observability emission {label}(...); test "
                    "`if OBS.on:` (or an `observing = OBS.on` alias) first",
                )
