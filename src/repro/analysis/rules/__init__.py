"""Built-in lint rules; importing this package populates the registry.

Rule families (ids are ``FAMILY###``):

- ``ARR`` — array discipline: no per-element Python loops over the batch
  kernel's flat column arrays,
- ``DET`` — determinism: no unordered iteration, unseeded RNGs, or
  wall-clock reads where schedule bytes are decided,
- ``FLT`` — float discipline: no exact ``==``/``!=`` on float expressions
  outside the audited tolerance helpers,
- ``KER`` — compilable-kernel subset: the batch-evaluation hot loops stay
  inside the feature set a tracing compiler can lower,
- ``OBS`` — obs-off discipline: hot-path emissions behind ``OBS.on``,
- ``PUR`` — worker purity: ProcessPool entry points stay deterministic
  and picklable,
- ``TXN`` — transaction safety for the link-schedule undo log
  (``TXN1xx`` are flow-sensitive, built on the CFG/dataflow framework).

See ``docs/static_analysis.md`` for each rule's paper/PR rationale and how
to add a new one.
"""

from __future__ import annotations

from repro.analysis.rules import (  # noqa: F401  (import registers the rules)
    arrays,
    determinism,
    floats,
    kernel,
    obsguard,
    purity,
    transactions,
    txnflow,
)

#: Family prefix -> human name, for ``repro lint --list-rules`` grouping.
FAMILIES: dict[str, str] = {
    "ARR": "array discipline",
    "DET": "determinism",
    "FLT": "float discipline",
    "KER": "compilable kernel subset",
    "OBS": "observability guards",
    "PUR": "worker purity",
    "TXN": "transaction safety",
}
