"""Built-in lint rules; importing this package populates the registry.

Rule families (ids are ``FAMILY###``):

- ``ARR`` — array discipline: no per-element Python loops over the batch
  kernel's flat column arrays,
- ``DET`` — determinism: no unordered iteration, unseeded RNGs, or
  wall-clock reads where schedule bytes are decided,
- ``FLT`` — float discipline: no exact ``==``/``!=`` on float expressions
  outside the audited tolerance helpers,
- ``OBS`` — obs-off discipline: hot-path emissions behind ``OBS.on``,
- ``TXN`` — transaction safety for the link-schedule undo log.

See ``docs/static_analysis.md`` for each rule's paper/PR rationale and how
to add a new one.
"""

from __future__ import annotations

from repro.analysis.rules import (  # noqa: F401  (import registers the rules)
    arrays,
    determinism,
    floats,
    obsguard,
    transactions,
)

#: Family prefix -> human name, for ``repro lint --list-rules`` grouping.
FAMILIES: dict[str, str] = {
    "ARR": "array discipline",
    "DET": "determinism",
    "FLT": "float discipline",
    "OBS": "observability guards",
    "TXN": "transaction safety",
}
