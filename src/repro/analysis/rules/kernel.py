"""KER00x: compilable-subset enforcement for the batch-evaluation hot loops.

ROADMAP item 4 keeps open the option of lowering the array backend's inner
loops (``BatchMappingEvaluator._resimulate`` and the arraystate journal
paths) through a tracing compiler — Numba/Cython-style, operating on plain
ints, floats and homogeneous lists.  Whether or not that lands, the hot
loops must stay inside the subset such a compiler can take: every dynamic
feature that creeps in now is a rewrite later, and most of them are also
plain interpreter overhead on exactly the lines profiled as hot.

The *hot set* is computed, not annotated: conventional roots
(``_resimulate``, ``restore``, ``snapshot``, ``makespan``) plus everything
they transitively call module-locally, via
:mod:`repro.analysis.callgraph`.  Scope is pinned to the kernel files
(``repro/core/_kernel.py`` — the module the optional AOT build compiles —
plus its driver and re-export shim) — these rules are deliberately too
strict for ordinary code.

- **KER001** — static signatures and call shapes only: no ``*args`` /
  ``**kwargs`` parameters, no ``*``/``**`` splats at call sites.
- **KER002** — no dynamic attribute or namespace access (``getattr`` /
  ``setattr`` / ``vars`` / ``__dict__`` / ``eval`` …): field accesses must
  be resolvable at trace time.
- **KER003** — no closures: nested ``def``/``lambda`` in hot code allocates
  cell objects per call and defeats function-boundary tracing.
- **KER004** — no generators or coroutine machinery: ``yield`` /
  ``yield from`` / ``await`` and generator expressions suspend frames,
  which tracing compilers cannot lower; the hot loops iterate eagerly.
"""

from __future__ import annotations

import ast

from repro.analysis.callgraph import CallGraph, FunctionNode
from repro.analysis.engine import LintContext, Rule, register, walk_scope
from repro.analysis.rules.arrays import ARRAY_KERNEL_FILES

#: Conventional hot-loop entry points within the kernel files.
HOT_ROOTS = frozenset({"_resimulate", "restore", "snapshot", "makespan"})

#: Builtins that reach into namespaces dynamically.
_DYNAMIC_BUILTINS = frozenset(
    {"getattr", "setattr", "delattr", "vars", "globals", "locals", "eval", "exec", "compile"}
)


def hot_functions(ctx: LintContext) -> list[tuple[str, FunctionNode]]:
    """The kernel file's hot set: conventional roots + module-local callees."""
    cg: CallGraph = ctx.callgraph()
    roots = [q for name in sorted(HOT_ROOTS) for q in cg.named(name)]
    return [(q, cg.functions[q]) for q in sorted(cg.reachable_from(roots))]


class _KernelRule(Rule):
    """Base: iterate hot functions of the kernel files."""

    include = ARRAY_KERNEL_FILES

    def check(self, tree: ast.Module, ctx: LintContext) -> None:
        for qualname, func in hot_functions(ctx):
            self.check_hot(qualname, func, ctx)

    def check_hot(self, qualname: str, func: FunctionNode, ctx: LintContext) -> None:
        raise NotImplementedError


@register
class StaticSignatureRule(_KernelRule):
    """Hot code keeps static signatures and call shapes."""

    rule_id = "KER001"
    name = "kernel-static-signature"
    summary = "*args/**kwargs or call-site splat in a kernel hot function"
    rationale = (
        "Variadic packing allocates a tuple/dict per call and makes the "
        "callee's frame shape dynamic — untraceable for a compiler and "
        "measurable interpreter overhead on the booking path.  Hot-loop "
        "helpers take a fixed positional signature."
    )

    def check_hot(self, qualname: str, func: FunctionNode, ctx: LintContext) -> None:
        if func.args.vararg is not None or func.args.kwarg is not None:
            star = "*" + func.args.vararg.arg if func.args.vararg else "**" + func.args.kwarg.arg  # type: ignore[union-attr]
            ctx.report(
                self,
                func,
                f"hot function `{qualname}` takes `{star}`; kernel "
                "signatures must be fixed and positional",
            )
        for node in walk_scope(func):
            if not isinstance(node, ast.Call):
                continue
            if any(isinstance(a, ast.Starred) for a in node.args):
                ctx.report(
                    self,
                    node,
                    f"`*` argument splat in hot function `{qualname}`; "
                    "pass arguments positionally",
                )
            if any(kw.arg is None for kw in node.keywords):
                ctx.report(
                    self,
                    node,
                    f"`**` keyword splat in hot function `{qualname}`; "
                    "pass arguments explicitly",
                )


@register
class DynamicAttributeRule(_KernelRule):
    """Hot code resolves every attribute statically."""

    rule_id = "KER002"
    name = "kernel-dynamic-attribute"
    summary = "dynamic attribute/namespace access in a kernel hot function"
    rationale = (
        "getattr/setattr/vars/__dict__ (and eval/exec) defer name "
        "resolution to run time, so a tracing compiler cannot type the "
        "access — and the dict probes they imply are exactly the overhead "
        "the column-store rewrite removed."
    )

    def check_hot(self, qualname: str, func: FunctionNode, ctx: LintContext) -> None:
        for node in walk_scope(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _DYNAMIC_BUILTINS
            ):
                ctx.report(
                    self,
                    node,
                    f"`{node.func.id}(...)` in hot function `{qualname}`; "
                    "kernel attribute access must be static",
                )
            elif isinstance(node, ast.Attribute) and node.attr == "__dict__":
                ctx.report(
                    self,
                    node,
                    f"`__dict__` access in hot function `{qualname}`; "
                    "kernel state lives in typed columns, not object dicts",
                )


@register
class NoClosureRule(_KernelRule):
    """Hot code defines no nested functions or lambdas."""

    rule_id = "KER003"
    name = "kernel-no-closures"
    summary = "nested def/lambda inside a kernel hot function"
    rationale = (
        "A def/lambda in the hot path allocates a function (and cells for "
        "captured variables) per enclosing call and hides control flow "
        "behind an indirect call a tracer cannot follow.  Hoist helpers to "
        "module level and pass state explicitly."
    )

    def check_hot(self, qualname: str, func: FunctionNode, ctx: LintContext) -> None:
        for node in walk_scope(func):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                label = getattr(node, "name", "<lambda>")
                ctx.report(
                    self,
                    node,
                    f"nested callable `{label}` defined inside hot function "
                    f"`{qualname}`; hoist it to module level",
                )


@register
class NoGeneratorRule(_KernelRule):
    """Hot code iterates eagerly — no suspended frames."""

    rule_id = "KER004"
    name = "kernel-no-generators"
    summary = "yield/await or generator expression in a kernel hot function"
    rationale = (
        "Generators and coroutines suspend and resume frames; a tracing "
        "compiler sees an opaque state machine, and the interpreter pays a "
        "frame switch per item.  The booking loops write their results "
        "into preallocated columns instead."
    )

    def check_hot(self, qualname: str, func: FunctionNode, ctx: LintContext) -> None:
        for node in walk_scope(func):
            if isinstance(node, (ast.Yield, ast.YieldFrom, ast.Await)):
                kind = {
                    ast.Yield: "yield",
                    ast.YieldFrom: "yield from",
                    ast.Await: "await",
                }[type(node)]
                ctx.report(
                    self,
                    node,
                    f"`{kind}` in hot function `{qualname}`; kernel loops "
                    "must run to completion in one frame",
                )
            elif isinstance(node, ast.GeneratorExp):
                ctx.report(
                    self,
                    node,
                    f"generator expression in hot function `{qualname}`; "
                    "build the list eagerly or loop explicitly",
                )
