"""Transaction-safety rules for the link-schedule undo log (PR 3).

``LinkScheduleState`` keeps rollback correct by recording an inverse for
every write *inside its public write methods*.  The representation rule
lives here: touching the private containers (``_queues``/``_routes``/
``_next_link``/``_undo``) from outside ``state.py`` bypasses the undo log
and corrupts any open transaction (reads are also flagged: they couple
callers to the representation and must be justified in the baseline, as
the Lemma-2 slack scan in ``optimal_insertion.py`` is).

Transaction *balance* — every ``begin()`` reaching a ``commit()`` or
``rollback()`` on every path — used to be approximated syntactically here
as TXN002/TXN003.  Those were retired for the flow-sensitive TXN101–103 in
:mod:`repro.analysis.rules.txnflow`, which check the property on the CFG,
exception edges included.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import LintContext, Rule, dotted, register

#: Private containers of LinkScheduleState; writes outside state.py bypass
#: the undo log, reads freeze the representation.
PRIVATE_STATE_ATTRS = frozenset({"_queues", "_routes", "_next_link", "_undo"})


@register
class StateInternalsRule(Rule):
    """Only ``linksched/state.py`` may touch the undo-logged containers."""

    rule_id = "TXN001"
    name = "link-state-internals"
    summary = "access to LinkScheduleState private containers outside state.py"
    rationale = (
        "Public write methods append undo-log inverses; a direct write to "
        "_queues/_routes/_next_link corrupts rollback of any open "
        "transaction.  Deliberate hot-path reads (the hoisted Lemma-2 scan) "
        "are tracked in .repro-lint-baseline.json with their justification."
    )
    include = ("repro",)
    exclude = ("repro/linksched/state.py",)

    def check(self, tree: ast.Module, ctx: LintContext) -> None:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in PRIVATE_STATE_ATTRS
                and not (
                    isinstance(node.value, ast.Name)
                    and node.value.id in ("self", "cls")
                )
            ):
                ctx.report(
                    self,
                    node,
                    f"access to LinkScheduleState internals "
                    f"`{dotted(node.value)}.{node.attr}` bypasses the "
                    "undo-log API; use the public methods",
                )
            elif isinstance(node, ast.Name) and node.id == "_LinkQueue":
                ctx.report(
                    self,
                    node,
                    "_LinkQueue is private to linksched/state.py; construct "
                    "queues through LinkScheduleState",
                )
            elif isinstance(node, ast.ImportFrom) and any(
                a.name == "_LinkQueue" for a in node.names
            ):
                ctx.report(
                    self,
                    node,
                    "_LinkQueue is private to linksched/state.py; import the "
                    "public LinkScheduleState API instead",
                )
