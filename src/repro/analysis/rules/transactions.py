"""Transaction-safety rules for the link-schedule undo log (PR 3).

``LinkScheduleState`` keeps rollback correct by recording an inverse for
every write *inside its public write methods*.  Three things can silently
break that contract:

- touching the private containers (``_queues``/``_routes``/``_next_link``/
  ``_undo``) from outside ``state.py`` — a write there bypasses the undo log
  and corrupts any open transaction (reads are also flagged: they couple
  callers to the representation and must be justified in the baseline, as
  the Lemma-2 slack scan in ``optimal_insertion.py`` is);
- opening a transaction (``.begin()``) in a function that can exit without
  ``commit()`` or ``rollback()`` — the state then rejects the next
  ``begin()`` and every later probe fails;
- calling ``rollback()`` outside a ``finally`` (or ``except``) block — an
  exception between ``begin()`` and the rollback leaks the transaction.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import (
    LintContext,
    Rule,
    dotted,
    register,
    scopes,
    walk_scope,
)

#: Private containers of LinkScheduleState; writes outside state.py bypass
#: the undo log, reads freeze the representation.
PRIVATE_STATE_ATTRS = frozenset({"_queues", "_routes", "_next_link", "_undo"})


@register
class StateInternalsRule(Rule):
    """Only ``linksched/state.py`` may touch the undo-logged containers."""

    rule_id = "TXN001"
    name = "link-state-internals"
    summary = "access to LinkScheduleState private containers outside state.py"
    rationale = (
        "Public write methods append undo-log inverses; a direct write to "
        "_queues/_routes/_next_link corrupts rollback of any open "
        "transaction.  Deliberate hot-path reads (the hoisted Lemma-2 scan) "
        "are tracked in .repro-lint-baseline.json with their justification."
    )
    include = ("repro",)
    exclude = ("repro/linksched/state.py",)

    def check(self, tree: ast.Module, ctx: LintContext) -> None:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in PRIVATE_STATE_ATTRS
                and not (
                    isinstance(node.value, ast.Name)
                    and node.value.id in ("self", "cls")
                )
            ):
                ctx.report(
                    self,
                    node,
                    f"access to LinkScheduleState internals "
                    f"`{dotted(node.value)}.{node.attr}` bypasses the "
                    "undo-log API; use the public methods",
                )
            elif isinstance(node, ast.Name) and node.id == "_LinkQueue":
                ctx.report(
                    self,
                    node,
                    "_LinkQueue is private to linksched/state.py; construct "
                    "queues through LinkScheduleState",
                )
            elif isinstance(node, ast.ImportFrom) and any(
                a.name == "_LinkQueue" for a in node.names
            ):
                ctx.report(
                    self,
                    node,
                    "_LinkQueue is private to linksched/state.py; import the "
                    "public LinkScheduleState API instead",
                )


@register
class UnbalancedTransactionRule(Rule):
    """Every ``begin()`` needs a lexical ``commit()`` or ``rollback()``."""

    rule_id = "TXN002"
    name = "unbalanced-transaction"
    summary = ".begin() with no commit()/rollback() on the same receiver in the function"
    rationale = (
        "Transactions do not nest: a begin() that can leak makes the next "
        "probe's begin() raise and leaves tentative slots booked.  The probe "
        "idiom is begin / try / finally rollback (see BAScheduler)."
    )
    include = ("repro",)

    def check(self, tree: ast.Module, ctx: LintContext) -> None:
        for scope in scopes(tree):
            if isinstance(scope, ast.Module):
                continue
            begins: list[tuple[ast.Call, str]] = []
            closers: set[str] = set()
            for node in walk_scope(scope):
                if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                    continue
                receiver = dotted(node.func.value)
                if node.func.attr == "begin" and not node.args and not node.keywords:
                    begins.append((node, receiver))
                elif node.func.attr in ("commit", "rollback"):
                    closers.add(receiver)
            for call, receiver in begins:
                if receiver not in closers:
                    ctx.report(
                        self,
                        call,
                        f"`{receiver}.begin()` opens a transaction but this "
                        "function has no matching commit()/rollback(); wrap "
                        "the tentative work in try/finally",
                    )


@register
class RollbackInFinallyRule(Rule):
    """``rollback()`` must be exception-safe: ``finally`` or ``except`` only."""

    rule_id = "TXN003"
    name = "rollback-not-exception-safe"
    summary = ".rollback() outside a finally/except block"
    rationale = (
        "A rollback on the straight-line path is skipped when the tentative "
        "booking raises (e.g. a SchedulingError mid-probe), leaking the "
        "transaction and the probe's slots into the committed schedule."
    )
    include = ("repro",)

    def check(self, tree: ast.Module, ctx: LintContext) -> None:
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "rollback"
            ):
                continue
            if not self._exception_safe(node, ctx):
                ctx.report(
                    self,
                    node,
                    f"`{dotted(node.func.value)}.rollback()` is not in a "
                    "finally/except block; an exception mid-probe leaks the "
                    "open transaction",
                )

    @staticmethod
    def _exception_safe(node: ast.AST, ctx: LintContext) -> bool:
        child: ast.AST = node
        parent = ctx.parent(child)
        while parent is not None and not isinstance(
            parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
        ):
            if isinstance(parent, ast.ExceptHandler):
                return True
            if isinstance(parent, ast.Try) and child in parent.finalbody:
                return True
            child, parent = parent, ctx.parent(parent)
        return False
