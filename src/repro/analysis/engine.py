"""AST lint engine: rule base class, registry, suppression, file walking.

The engine parses each file once, hands the tree to every rule whose path
scope matches, and collects :class:`~repro.analysis.findings.Finding`
records.  Rules are small stateless visitors (see ``repro/analysis/rules/``)
registered with :func:`register`; everything repo-specific — which modules
count as scheduling code, what the obs-guard idiom looks like — lives in the
rules, not here.

Suppression syntax (checked against the *reported* line):

- ``# repro-lint: disable=RULE1,RULE2`` — silence those rules on this line,
- ``# repro-lint: disable-file=RULE1`` — silence a rule for the whole file,
- ``all`` is accepted in place of a rule id.

Intentional findings that deserve a paragraph of justification belong in
``.repro-lint-baseline.json`` instead (see :mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.analysis.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.analysis.callgraph import CallGraph
    from repro.analysis.cfg import CFG

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+)"
)


# -- path scoping --------------------------------------------------------------


def normalize_path(path: str) -> str:
    """Repo-relative POSIX form of ``path``, for display and rule scoping."""
    norm = os.path.normpath(path)
    if os.path.isabs(norm):
        try:
            rel = os.path.relpath(norm)
        except ValueError:  # different drive on Windows
            rel = norm
        if not rel.startswith(".."):
            norm = rel
    return norm.replace(os.sep, "/")


def path_matches(rel_path: str, patterns: Iterable[str]) -> bool:
    """Whether any pattern matches ``rel_path`` on whole path segments.

    ``"repro/core"`` matches ``src/repro/core/ba.py`` (directory scope) and
    ``"repro/utils/rng.py"`` matches exactly that file, wherever the tree is
    rooted.  Matching is segment-aligned, so ``repro/core`` does not match
    ``repro/core_utils.py``.
    """
    haystack = "/" + rel_path.strip("/")
    for pattern in patterns:
        p = pattern.strip("/")
        if not p:
            continue
        if haystack.endswith("/" + p) or ("/" + p + "/") in haystack:
            return True
    return False


# -- shared AST helpers (used by the rule modules) -----------------------------


def attr_chain(node: ast.expr) -> list[str] | None:
    """``a.b.c`` -> ``["a", "b", "c"]``; ``None`` unless rooted at a Name."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def dotted(node: ast.expr) -> str:
    """Best-effort dotted-name rendering of a call receiver expression."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return f"{dotted(node.value)}.{node.attr}"
    if isinstance(node, ast.Call):
        return f"{dotted(node.func)}()"
    if isinstance(node, ast.Subscript):
        return f"{dotted(node.value)}[...]"
    return f"<{type(node).__name__}>"


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def scopes(tree: ast.Module) -> Iterator[ast.Module | ast.FunctionDef | ast.AsyncFunctionDef]:
    """The module plus every (possibly nested) function definition."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, _SCOPE_NODES):
            yield node


def walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` without descending into nested function/class scopes."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (*_SCOPE_NODES, ast.ClassDef, ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


# -- rules ---------------------------------------------------------------------


class Rule:
    """Base class for lint rules.

    Subclasses set the metadata attributes, may narrow ``include`` /
    ``exclude`` (segment-aligned path patterns, see :func:`path_matches`),
    and implement :meth:`check`.  Rules must be stateless: one instance is
    reused across files.
    """

    rule_id: str = ""
    name: str = ""
    summary: str = ""
    rationale: str = ""
    include: tuple[str, ...] = ("repro",)
    exclude: tuple[str, ...] = ()

    def applies_to(self, rel_path: str) -> bool:
        return path_matches(rel_path, self.include) and not path_matches(
            rel_path, self.exclude
        )

    def check(self, tree: ast.Module, ctx: "LintContext") -> None:
        raise NotImplementedError


#: Registry of built-in rules, populated by :func:`register` at import time
#: of :mod:`repro.analysis.rules`.
RULES: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (ids must be unique)."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in RULES:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    RULES[cls.rule_id] = cls
    return cls


def all_rules() -> list[Rule]:
    """One instance of every registered rule, ordered by id."""
    import repro.analysis.rules  # noqa: F401  (importing registers the rules)

    return [RULES[rule_id]() for rule_id in sorted(RULES)]


def select_rules(
    select: Iterable[str] | None = None, ignore: Iterable[str] | None = None
) -> list[Rule]:
    """Filter the registry by ``--select`` / ``--ignore`` id lists.

    Ids are case-insensitive; unknown ids raise ``ValueError`` so typos fail
    loudly instead of silently linting nothing.
    """
    rules = all_rules()
    known = {r.rule_id for r in rules}

    def _norm(ids: Iterable[str]) -> set[str]:
        out = {i.strip().upper() for i in ids if i.strip()}
        unknown = out - known
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(known))}"
            )
        return out

    if select is not None:
        chosen = _norm(select)
        rules = [r for r in rules if r.rule_id in chosen]
    if ignore is not None:
        dropped = _norm(ignore)
        rules = [r for r in rules if r.rule_id not in dropped]
    return rules


# -- per-file context ----------------------------------------------------------


class LintContext:
    """Everything a rule may consult about the file under analysis."""

    def __init__(self, rel_path: str, source: str, tree: ast.Module) -> None:
        self.rel_path = rel_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.findings: list[Finding] = []
        self.suppressed: list[Finding] = []
        self._line_disables: dict[int, set[str]] = {}
        self._file_disables: set[str] = set()
        self._parents: dict[int, ast.AST] | None = None
        self._cfgs: dict[int, "CFG"] = {}
        self._callgraph: "CallGraph | None" = None
        for lineno, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            ids = {t.strip().upper() for t in match.group(2).split(",") if t.strip()}
            if match.group(1) == "disable-file":
                self._file_disables |= ids
            else:
                self._line_disables.setdefault(lineno, set()).update(ids)

    def line_text(self, lineno: int) -> str:
        if 0 < lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def is_suppressed(self, rule_id: str, lineno: int) -> bool:
        ids = self._line_disables.get(lineno, set()) | self._file_disables
        return rule_id.upper() in ids or "ALL" in ids

    def cfg(self, scope: ast.AST) -> "CFG":
        """The (memoized) control-flow graph of a function or module scope.

        Rules running flow queries share one CFG per scope per file; the
        fixpoint analyses themselves are cheap relative to building the
        graph, so they are not cached here.
        """
        from repro.analysis.cfg import build_cfg

        cached = self._cfgs.get(id(scope))
        if cached is None:
            cached = build_cfg(scope)  # type: ignore[arg-type]
            self._cfgs[id(scope)] = cached
        return cached

    def callgraph(self) -> "CallGraph":
        """The (memoized) module-local call graph of the file."""
        from repro.analysis.callgraph import CallGraph

        if self._callgraph is None:
            self._callgraph = CallGraph(self.tree)
        return self._callgraph

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The AST parent of ``node`` (parent map built lazily, once)."""
        if self._parents is None:
            self._parents = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    self._parents[id(child)] = parent
        return self._parents.get(id(node))

    def report(self, rule: Rule, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        finding = Finding(
            path=self.rel_path,
            line=lineno,
            col=col,
            rule=rule.rule_id,
            message=message,
            snippet=self.line_text(lineno).strip(),
        )
        if self.is_suppressed(rule.rule_id, lineno):
            self.suppressed.append(finding)
        else:
            self.findings.append(finding)


# -- entry points --------------------------------------------------------------


@dataclass(slots=True)
class LintResult:
    """Outcome of one lint run: what fired, what comments silenced, coverage."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files: int = 0
    #: normalized repo-relative paths of every file this run actually linted
    paths: list[str] = field(default_factory=list)


def lint_source(
    source: str, rel_path: str, rules: list[Rule] | None = None
) -> LintResult:
    """Lint one in-memory source blob under the virtual path ``rel_path``."""
    active = all_rules() if rules is None else rules
    rel = normalize_path(rel_path)
    try:
        tree = ast.parse(source, filename=rel)
    except SyntaxError as exc:
        finding = Finding(
            path=rel,
            line=exc.lineno or 1,
            col=exc.offset or 1,
            rule="PARSE",
            message=f"syntax error: {exc.msg}",
        )
        return LintResult(findings=[finding], files=1, paths=[rel])
    ctx = LintContext(rel, source, tree)
    for rule in active:
        if rule.applies_to(rel):
            rule.check(tree, ctx)
    ctx.findings.sort(key=lambda f: f.sort_key)
    ctx.suppressed.sort(key=lambda f: f.sort_key)
    return LintResult(
        findings=ctx.findings, suppressed=ctx.suppressed, files=1, paths=[rel]
    )


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Yield ``.py`` files under ``paths`` in a deterministic order."""
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames if not d.startswith(".") and d != "__pycache__"
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def lint_paths(
    paths: Iterable[str], rules: list[Rule] | None = None
) -> LintResult:
    """Lint every Python file under ``paths``; results are order-stable."""
    active = all_rules() if rules is None else rules
    result = LintResult()
    for filepath in iter_python_files(paths):
        with open(filepath, "r", encoding="utf-8") as fh:
            source = fh.read()
        file_result = lint_source(source, filepath, active)
        result.findings.extend(file_result.findings)
        result.suppressed.extend(file_result.suppressed)
        result.files += 1
        result.paths.extend(file_result.paths)
    result.findings.sort(key=lambda f: f.sort_key)
    result.suppressed.sort(key=lambda f: f.sort_key)
    return result
