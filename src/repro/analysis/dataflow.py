"""Worklist dataflow over :mod:`repro.analysis.cfg` graphs.

One generic fixpoint engine (:func:`fixpoint`) and the three analyses the
flow rules are built from:

- :func:`dominators` — forward, meet = intersection.  "Every path from
  entry to N passes through D" is how OBS001 proves an emission can only
  run under an ``OBS.on`` test, and how TXN103 proves a ``rollback()`` is
  always preceded by its ``begin()``.
- :func:`reaching_definitions` — forward, meet = union.  Ties a
  ``restore(mark)`` argument back to the ``mark = state.snapshot()`` that
  produced it (TXN102).
- :func:`all_paths_reach` — backward, meet = conjunction.  The
  "must-reach" query behind TXN101: from this ``begin()``, does *every*
  path — including the exception edges — hit a ``commit()``/``rollback()``
  before leaving the function?

All three iterate to a fixpoint with a FIFO worklist.  Termination is by
the usual finite-lattice argument: node facts only move one way (sets only
shrink under intersection / grow under union, booleans only fall), so each
node re-enters the worklist a bounded number of times.  The CI budget on
lint wall-time (see ``.github/workflows/ci.yml``) backstops the constant.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Callable, Iterator, TypeVar

from repro.analysis.cfg import CFG

T = TypeVar("T")

#: One definition: (variable name, CFG node index that binds it).
Definition = tuple[str, int]


def reachable(cfg: CFG) -> set[int]:
    """Node indices reachable from the entry node."""
    seen = {cfg.entry}
    stack = [cfg.entry]
    while stack:
        for succ in cfg.nodes[stack.pop()].succ:
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return seen


def fixpoint(
    cfg: CFG,
    *,
    direction: str,
    init: Callable[[int], T],
    transfer: Callable[[int, T], T],
    meet: Callable[[list[T]], T],
    boundary: T,
    live: set[int] | None = None,
) -> list[T]:
    """Generic worklist fixpoint; returns the *out*-fact of every node.

    ``direction`` is ``"forward"`` (facts flow entry -> exit along ``succ``)
    or ``"backward"`` (exit -> entry along ``pred``).  For each node the
    engine meets the out-facts of its CFG predecessors (forward) or
    successors (backward) — ``boundary`` when there are none — and applies
    ``transfer(index, in_fact)``.  ``init`` seeds every node's out-fact;
    seeding with the top element makes the engine compute a greatest
    fixpoint (dominators, must-reach), seeding with bottom a least one
    (reaching definitions).

    ``live`` restricts the analysis to a node subset: excluded nodes are
    never transferred and never contribute to a meet.  Must-analyses (meet
    = intersection) need this to keep dead edges — a ``break`` arm no
    ``break`` ever jumps to — from poisoning real join points.
    """
    if direction not in ("forward", "backward"):
        raise ValueError(f"direction must be forward|backward, got {direction!r}")
    forward = direction == "forward"
    n = len(cfg.nodes)
    out: list[T] = [init(i) for i in range(n)]
    members = sorted(live) if live is not None else range(n)
    work: deque[int] = deque(members)
    queued = [False] * n
    for i in work:
        queued[i] = True
    while work:
        index = work.popleft()
        queued[index] = False
        node = cfg.nodes[index]
        edges_in = node.pred if forward else node.succ
        edges_out = node.succ if forward else node.pred
        if live is not None:
            edges_in = [e for e in edges_in if e in live]
            edges_out = [e for e in edges_out if e in live]
        fact_in = meet([out[p] for p in edges_in]) if edges_in else boundary
        fact_out = transfer(index, fact_in)
        if fact_out != out[index]:
            out[index] = fact_out
            for nxt in edges_out:
                if not queued[nxt]:
                    queued[nxt] = True
                    work.append(nxt)
    return out


# -- dominance -----------------------------------------------------------------


def dominators(cfg: CFG) -> list[set[int]]:
    """``doms[n]`` = nodes on *every* entry->n path (``n`` included).

    Unreachable nodes get the empty set, so "D dominates N" is simply
    ``D in doms[N]`` and is never vacuously true for dead code.
    """
    live = reachable(cfg)
    everything = frozenset(live)
    entry_fact = frozenset({cfg.entry})

    def init(index: int) -> frozenset[int]:
        return entry_fact if index == cfg.entry else everything

    def meet(facts: list[frozenset[int]]) -> frozenset[int]:
        fact = facts[0]
        for other in facts[1:]:
            fact &= other
        return fact

    def transfer(index: int, fact_in: frozenset[int]) -> frozenset[int]:
        if index == cfg.entry:
            return entry_fact
        return fact_in | {index}

    out = fixpoint(
        cfg,
        direction="forward",
        init=init,
        transfer=transfer,
        meet=meet,
        boundary=everything,
        live=live,
    )
    return [set(out[i]) if i in live else set() for i in range(len(cfg.nodes))]


# -- reaching definitions ------------------------------------------------------


def _assigned_names(expr: ast.expr) -> Iterator[str]:
    """Names bound by an assignment-target expression."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            yield node.id


def definitions_at(cfg: CFG, index: int) -> list[str]:
    """Variable names bound when node ``index`` executes."""
    node = cfg.nodes[index]
    stmt = node.ast_node
    names: list[str] = []
    if stmt is None:
        return names
    if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        for target in targets:
            names.extend(_assigned_names(target))
    elif isinstance(stmt, (ast.For, ast.AsyncFor)) and node.kind == "for":
        names.extend(_assigned_names(stmt.target))
    elif isinstance(stmt, ast.withitem) and stmt.optional_vars is not None:
        names.extend(_assigned_names(stmt.optional_vars))
    elif isinstance(stmt, ast.ExceptHandler) and stmt.name:
        names.append(stmt.name)
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            names.append(alias.asname or alias.name.split(".")[0])
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        names.append(stmt.name)
    return names


def reaching_definitions(cfg: CFG) -> list[frozenset[Definition]]:
    """``defs[n]`` = definitions live *on entry to* node ``n``.

    Function parameters (for function scopes) are seeded as definitions at
    the entry node.  The analysis is a may-analysis (meet = union): a
    definition reaches a node if it does along *some* path.
    """
    entry_names: list[str] = []
    scope = cfg.scope
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            entry_names.append(arg.arg)
    entry_defs = frozenset((name, cfg.entry) for name in entry_names)
    empty: frozenset[Definition] = frozenset()

    gens: list[frozenset[Definition]] = []
    kills: list[frozenset[str]] = []
    for node in cfg.nodes:
        names = definitions_at(cfg, node.index)
        gens.append(frozenset((name, node.index) for name in names))
        kills.append(frozenset(names))

    def meet(facts: list[frozenset[Definition]]) -> frozenset[Definition]:
        fact = facts[0]
        for other in facts[1:]:
            fact |= other
        return fact

    def transfer(index: int, fact_in: frozenset[Definition]) -> frozenset[Definition]:
        if index == cfg.entry:
            return entry_defs
        kill = kills[index]
        if not kill:
            return fact_in
        return frozenset(d for d in fact_in if d[0] not in kill) | gens[index]

    out = fixpoint(
        cfg,
        direction="forward",
        init=lambda i: empty,
        transfer=transfer,
        meet=meet,
        boundary=empty,
    )
    # In-facts: union over predecessors' out-facts.
    result: list[frozenset[Definition]] = []
    for node in cfg.nodes:
        fact = empty
        for p in node.pred:
            fact |= out[p]
        result.append(fact)
    return result


# -- must-reach ----------------------------------------------------------------


def all_paths_reach(cfg: CFG, targets: set[int]) -> list[bool]:
    """``ok[n]``: every maximal path starting at ``n`` visits a target.

    Counted inclusively — a node that *is* a target satisfies the query
    itself.  Computed as a greatest fixpoint, so a path trapped forever in
    a target-free cycle still satisfies the query (it never *leaves* the
    function, which is what the transaction rules care about: only an exit
    can leak).  Dead arms are excluded via ``live`` so they cannot veto a
    join they can never actually feed.
    """
    live = reachable(cfg)

    def transfer(index: int, fact_in: bool) -> bool:
        if index in targets:
            return True
        if not cfg.nodes[index].succ:
            return False  # exits the function without meeting a target
        return fact_in

    return fixpoint(
        cfg,
        direction="backward",
        init=lambda i: True,
        transfer=transfer,
        meet=lambda facts: all(facts),
        boundary=False,
        live=live,
    )
