"""``repro lint`` — the static-analysis CLI surface.

Editor-friendly by construction: findings go to stdout as stable
``file:line:col RULE_ID message`` lines (flake8-shaped, so error-matchers
work), summaries and diagnostics go to stderr, and the exit code is 0 only
when the tree is clean.  ``--format json`` emits the full machine report.

Exit codes: 0 clean · 1 findings (or stale baseline entries, or matched
baseline entries under ``--fail-on-baseline``) · 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.baseline import DEFAULT_BASELINE, Baseline, BaselineMatch
from repro.analysis.engine import LintResult, lint_paths, select_rules
from repro.analysis.findings import Finding


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``lint`` arguments to a (sub)parser."""
    parser.add_argument(
        "paths", nargs="*", default=["src"], metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select", action="append", default=None, metavar="IDS",
        help="comma-separated rule ids to run exclusively (repeatable)",
    )
    parser.add_argument(
        "--ignore", action="append", default=None, metavar="IDS",
        help="comma-separated rule ids to skip (repeatable)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (text: file:line:col RULE message)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"baseline of documented suppressions (default: {DEFAULT_BASELINE} "
        "when present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write current findings to the baseline file and exit 0 "
        "(fill in each entry's `reason` before committing)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="prune stale baseline entries (orphaned files, shrunk budgets) "
        "in place instead of failing on them",
    )
    parser.add_argument(
        "--fail-on-baseline", action="store_true",
        help="exit non-zero even when findings are covered by the baseline "
        "(burn-down mode)",
    )
    parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="also write the JSON report to FILE (independent of --format)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="describe the registered rules and exit",
    )


def _split_ids(values: list[str] | None) -> list[str] | None:
    if values is None:
        return None
    out: list[str] = []
    for value in values:
        out.extend(part for part in value.split(",") if part.strip())
    return out


def _print_rules() -> None:
    from repro.analysis.engine import all_rules
    from repro.analysis.rules import FAMILIES

    for rule in all_rules():
        family = FAMILIES.get(rule.rule_id[:3], "other")
        print(f"{rule.rule_id}  {rule.name}  [{family}]")
        print(f"    scope: {', '.join(rule.include)}"
              + (f"  (except {', '.join(rule.exclude)})" if rule.exclude else ""))
        print(f"    {rule.summary}")


#: JSON report layout version.  2 added ``schema_version`` itself, the
#: active ``rules`` list, per-entry ``status`` on stale baseline entries,
#: and the ``unchecked_baseline`` section.
_SCHEMA_VERSION = 2


def _json_report(
    result: LintResult,
    match: BaselineMatch,
    new: list[Finding],
    rule_ids: list[str],
) -> dict[str, object]:
    stale = [
        dict(e.to_dict(), status=status)
        for status, entries in (("changed", match.changed), ("orphaned", match.orphaned))
        for e in entries
    ]
    return {
        "schema_version": _SCHEMA_VERSION,
        "rules": rule_ids,
        "findings": [f.to_dict() for f in new],
        "baselined": [f.to_dict() for f in match.baselined],
        "suppressed": [f.to_dict() for f in result.suppressed],
        "stale_baseline": stale,
        "unchecked_baseline": [e.to_dict() for e in match.unchecked],
        "summary": {
            "files": result.files,
            "findings": len(new),
            "baselined": len(match.baselined),
            "suppressed": len(result.suppressed),
            "stale_baseline": len(stale),
            "unchecked_baseline": len(match.unchecked),
        },
    }


def run(args: argparse.Namespace) -> int:
    if args.list_rules:
        _print_rules()
        return 0
    try:
        rules = select_rules(_split_ids(args.select), _split_ids(args.ignore))
    except ValueError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if not rules:
        print("repro lint: no rules selected", file=sys.stderr)
        return 2
    try:
        result = lint_paths(args.paths, rules)
    except OSError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    import os

    baseline_path = args.baseline or DEFAULT_BASELINE
    if args.write_baseline:
        Baseline.from_findings(result.findings).save(baseline_path)
        print(
            f"wrote {len(result.findings)} finding(s) to {baseline_path}; "
            "add a `reason` to each entry before committing",
            file=sys.stderr,
        )
        return 0
    baseline = Baseline()
    if not args.no_baseline and (args.baseline or os.path.exists(baseline_path)):
        try:
            baseline = Baseline.load(baseline_path)
        except (OSError, ValueError, KeyError) as exc:
            print(f"repro lint: bad baseline {baseline_path}: {exc}", file=sys.stderr)
            return 2
    match = baseline.apply(
        result.findings,
        linted_paths=set(result.paths),
        active_rules={r.rule_id for r in rules},
    )
    new = match.new

    pruned = 0
    if args.update_baseline and match.stale:
        pruned = len(match.stale)
        baseline.pruned(match).save(baseline_path)
        print(
            f"repro lint: pruned {pruned} stale entr"
            f"{'y' if pruned == 1 else 'ies'} from {baseline_path}",
            file=sys.stderr,
        )
        match.changed.clear()
        match.orphaned.clear()

    report = _json_report(result, match, new, [r.rule_id for r in rules])
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for finding in new:
            print(finding.format())
        for entry in match.changed:
            print(
                f"repro lint: stale baseline entry ({entry.rule} in {entry.path}: "
                f"{entry.content!r} x{entry.count}) — the line changed or the "
                "finding is gone; update the baseline",
                file=sys.stderr,
            )
        for entry in match.orphaned:
            print(
                f"repro lint: stale baseline entry ({entry.rule} in {entry.path}: "
                f"{entry.content!r} x{entry.count}) — the file no longer exists; "
                "run with --update-baseline to prune",
                file=sys.stderr,
            )
        print(
            f"{len(new)} finding(s), {len(match.baselined)} baselined, "
            f"{len(result.suppressed)} suppressed in {result.files} file(s)",
            file=sys.stderr,
        )
    if new or match.stale:
        return 1
    if args.fail_on_baseline and match.baselined:
        print(
            f"repro lint: --fail-on-baseline: {len(match.baselined)} "
            "baselined finding(s) remain",
            file=sys.stderr,
        )
        return 1
    return 0
