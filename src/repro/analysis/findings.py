"""Finding records produced by the lint engine.

A :class:`Finding` is one rule violation at one source location.  Findings
are value objects: hashable, ordered by location, and serializable to the
JSON report format and the ``file:line:col RULE message`` editor format
(the same shape flake8/ruff emit, so editor error-matchers work unchanged).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location.

    ``line`` and ``col`` are 1-based (editor convention).  ``snippet`` is the
    stripped text of the offending source line; the baseline mechanism keys
    on it so entries survive unrelated line-number drift.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    snippet: str = ""

    @property
    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        """Location-independent identity used for baseline matching."""
        return (self.path, self.rule, self.snippet)

    def format(self) -> str:
        """Stable ``file:line:col RULE_ID message`` editor line."""
        return f"{self.path}:{self.line}:{self.col} {self.rule} {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "snippet": self.snippet,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, object]) -> "Finding":
        return cls(
            path=str(doc["path"]),
            line=int(doc["line"]),  # type: ignore[arg-type]
            col=int(doc["col"]),  # type: ignore[arg-type]
            rule=str(doc["rule"]),
            message=str(doc["message"]),
            snippet=str(doc.get("snippet", "")),
        )
