"""Repo-specific static analysis: the ``repro lint`` engine.

A small AST-based linter that turns this reproduction's correctness
conventions — determinism (PR 2), the obs-off discipline (PR 1/3), the
undo-log transaction contract (PR 3), and float tolerance hygiene around
the paper's causality condition — into machine-checked rules.  Stdlib-only
and import-light so ``repro lint`` starts fast in editors and CI.

Public API::

    from repro.analysis import lint_paths, lint_source, all_rules

    result = lint_paths(["src"])        # LintResult(findings, suppressed, files)
    for finding in result.findings:
        print(finding.format())         # file:line:col RULE_ID message

CLI: ``python -m repro lint [paths ...]`` — see ``docs/static_analysis.md``.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline, BaselineEntry, BaselineMatch
from repro.analysis.engine import (
    RULES,
    LintContext,
    LintResult,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    register,
    select_rules,
)
from repro.analysis.findings import Finding

__all__ = [
    "Baseline",
    "BaselineEntry",
    "BaselineMatch",
    "Finding",
    "LintContext",
    "LintResult",
    "Rule",
    "RULES",
    "all_rules",
    "lint_paths",
    "lint_source",
    "register",
    "select_rules",
]
