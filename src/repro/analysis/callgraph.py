"""Module-local call graph so flow rules can reason across helper boundaries.

The flow rules care about *transitive* properties: a worker entry point is
only pure if every helper it calls is, and a compilable kernel loop stays
compilable only if the module-local functions it dispatches into do.  This
module builds the conservative call graph of one parsed file:

- **Nodes** are the module's function definitions, keyed by dotted
  qualname (``run_unit``, ``BatchMappingEvaluator._resimulate``,
  ``outer.inner`` for nested defs).
- **Edges** resolve three call shapes, all module-local: a bare name call
  resolved through the lexical *function* chain (sibling nested defs, then
  enclosing functions, then module level — class scopes are skipped, as
  Python itself skips them), and a ``self.m(...)``/``cls.m(...)`` call to
  *any* method named ``m`` defined in the file (no type inference — over-
  approximating the receiver keeps reachability sound).

Anything else (imported callables, attribute calls on other objects) is
outside the module and outside the graph; rules that need cross-module
facts encode them as rule knowledge (e.g. PUR003's pickle whitelist)
rather than pretending the graph sees them.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef

_SELF_RECEIVERS = ("self", "cls")


class CallGraph:
    """Conservative caller->callee edges between one module's functions."""

    def __init__(self, tree: ast.Module) -> None:
        #: qualname -> def node
        self.functions: dict[str, FunctionNode] = {}
        #: bare method/function name -> qualnames sharing it
        self._by_name: dict[str, list[str]] = {}
        #: qualname -> nearest *enclosing function* qualname (None = module);
        #: class scopes are skipped, matching Python's name resolution.
        self._parent_fn: dict[str, str | None] = {}
        #: qualname -> resolved module-local callee qualnames
        self.calls: dict[str, set[str]] = {}
        self._collect(tree.body, prefix="", parent_fn=None)
        for qualname, func in self.functions.items():
            self.calls[qualname] = self._resolve_calls(qualname, func)

    # -- construction ----------------------------------------------------------

    def _collect(
        self, body: list[ast.stmt], prefix: str, parent_fn: str | None
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = prefix + stmt.name
                self.functions[qualname] = stmt
                self._by_name.setdefault(stmt.name, []).append(qualname)
                self._parent_fn[qualname] = parent_fn
                self._collect(stmt.body, qualname + ".", parent_fn=qualname)
            elif isinstance(stmt, ast.ClassDef):
                self._collect(stmt.body, prefix + stmt.name + ".", parent_fn)

    def _resolve_calls(self, qualname: str, func: FunctionNode) -> set[str]:
        callees: set[str] = set()
        for call in _own_calls(func):
            target = call.func
            if isinstance(target, ast.Name):
                resolved = self._resolve_bare(qualname, target.id)
                if resolved is not None:
                    callees.add(resolved)
            elif (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id in _SELF_RECEIVERS
            ):
                # self.m() — any method of that name in the file may run.
                callees.update(self._by_name.get(target.attr, ()))
        return callees

    def _resolve_bare(self, caller: str, name: str) -> str | None:
        """Resolve a bare-name call through the lexical function chain."""
        level: str | None = caller
        while level is not None:
            candidate = f"{level}.{name}"
            if candidate in self.functions:
                return candidate
            level = self._parent_fn[level]
        return name if name in self.functions else None

    # -- queries ---------------------------------------------------------------

    def resolve_name(self, caller: str | None, name: str) -> str | None:
        """What a bare-name call to ``name`` from ``caller`` would run.

        ``caller`` is the qualname of the enclosing function (``None`` for
        module level); resolution walks the lexical function chain exactly
        like :meth:`_resolve_bare`.  ``None`` means the name is not a
        function defined in this module (imported, builtin, or a variable).
        """
        if caller is None or caller not in self.functions:
            return name if name in self.functions else None
        return self._resolve_bare(caller, name)

    def qualname_of(self, func: FunctionNode) -> str | None:
        """The qualname of a def node collected from this module."""
        for qualname, node in self.functions.items():
            if node is func:
                return qualname
        return None

    def named(self, name: str) -> list[str]:
        """Qualnames of every function with bare name ``name``, sorted."""
        return sorted(self._by_name.get(name, ()))

    def reachable_from(self, roots: Iterable[str]) -> set[str]:
        """Qualnames reachable from ``roots`` through module-local calls."""
        seen: set[str] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            qualname = stack.pop()
            if qualname in seen:
                continue
            seen.add(qualname)
            stack.extend(self.calls.get(qualname, ()))
        return seen


def _own_calls(func: FunctionNode) -> Iterator[ast.Call]:
    """Calls in ``func``'s own body, not descending into nested functions."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))
