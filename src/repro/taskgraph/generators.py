"""Random task-graph generators.

The paper builds its workloads "subject to literature [3]" (Bajaj & Agrawal),
i.e. layered random DAGs: tasks are partitioned into levels, every non-entry
task depends on at least one task of an earlier level, and extra edges are
sprinkled with a density parameter.  Costs default to the paper's U(1, 1000).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.taskgraph.graph import TaskGraph
from repro.utils.rng import as_rng


def _uniform_cost(rng: np.random.Generator, lo: float, hi: float) -> float:
    """The paper's U(i, j): a uniformly distributed integer in [i, j]."""
    return float(rng.integers(int(lo), int(hi) + 1))


def random_layered_dag(
    n_tasks: int,
    rng: int | np.random.Generator | None = None,
    *,
    weight_range: tuple[float, float] = (1, 1000),
    cost_range: tuple[float, float] = (1, 1000),
    shape: float = 1.0,
    density: float = 0.25,
    max_fan_in: int | None = None,
    name: str | None = None,
) -> TaskGraph:
    """Generate a layered random DAG of ``n_tasks`` tasks.

    Parameters
    ----------
    shape:
        Controls width vs depth: the number of layers is drawn around
        ``sqrt(n_tasks) / shape`` — ``shape > 1`` gives wider/shallower
        graphs (more parallelism), ``shape < 1`` deeper chains.
    density:
        Probability of adding each optional extra edge between a task and a
        task in a strictly later layer (a mandatory edge from some earlier
        layer always exists, so the graph is connected downward).
    max_fan_in:
        Optional cap on the number of predecessors per task.
    """
    if n_tasks < 1:
        raise GraphError(f"need at least one task, got {n_tasks}")
    if not 0.0 <= density <= 1.0:
        raise GraphError(f"density must be in [0, 1], got {density}")
    if shape <= 0:
        raise GraphError(f"shape must be positive, got {shape}")
    gen = as_rng(rng)
    graph = TaskGraph(name=name or f"layered-{n_tasks}")

    mean_layers = max(1.0, np.sqrt(n_tasks) / shape)
    n_layers = int(np.clip(gen.normal(mean_layers, mean_layers / 4), 1, n_tasks))

    # Partition task ids into layers: every layer gets >= 1 task.
    cuts = np.sort(gen.choice(np.arange(1, n_tasks), size=n_layers - 1, replace=False)) if n_layers > 1 else np.array([], dtype=int)
    bounds = [0, *cuts.tolist(), n_tasks]
    layers: list[list[int]] = [list(range(bounds[i], bounds[i + 1])) for i in range(n_layers)]

    layer_of: dict[int, int] = {}
    for li, layer in enumerate(layers):
        for tid in layer:
            graph.add_task(tid, _uniform_cost(gen, *weight_range))
            layer_of[tid] = li

    for li in range(1, n_layers):
        for tid in layers[li]:
            # Mandatory parent from a strictly earlier layer keeps the DAG
            # connected top-down, as in the layered constructions of [3].
            pl = int(gen.integers(0, li))
            parent = int(gen.choice(layers[pl]))
            graph.add_edge(parent, tid, _uniform_cost(gen, *cost_range))
            if max_fan_in is not None and max_fan_in <= 1:
                continue
            # Optional extra parents.
            candidates = [t for l in layers[:li] for t in l if t != parent]
            if not candidates:
                continue
            n_extra = int(gen.binomial(len(candidates), density))
            if max_fan_in is not None:
                n_extra = min(n_extra, max_fan_in - 1)
            if n_extra > 0:
                for parent2 in gen.choice(candidates, size=min(n_extra, len(candidates)), replace=False):
                    graph.add_edge(int(parent2), tid, _uniform_cost(gen, *cost_range))
    return graph


def random_fan_dag(
    n_tasks: int,
    rng: int | np.random.Generator | None = None,
    *,
    weight_range: tuple[float, float] = (1, 1000),
    cost_range: tuple[float, float] = (1, 1000),
    max_out_degree: int = 4,
    name: str | None = None,
) -> TaskGraph:
    """Generate a random out-tree-with-shortcuts DAG.

    Each task ``i > 0`` picks a random parent among lower-numbered tasks with
    spare out-degree; useful as a second, structurally different random family
    for robustness tests.
    """
    if n_tasks < 1:
        raise GraphError(f"need at least one task, got {n_tasks}")
    if max_out_degree < 1:
        raise GraphError(f"max_out_degree must be >= 1, got {max_out_degree}")
    gen = as_rng(rng)
    graph = TaskGraph(name=name or f"fan-{n_tasks}")
    out_deg = [0] * n_tasks
    graph.add_task(0, _uniform_cost(gen, *weight_range))
    for tid in range(1, n_tasks):
        graph.add_task(tid, _uniform_cost(gen, *weight_range))
        candidates = [p for p in range(tid) if out_deg[p] < max_out_degree]
        parent = int(gen.choice(candidates)) if candidates else int(gen.integers(0, tid))
        graph.add_edge(parent, tid, _uniform_cost(gen, *cost_range))
        out_deg[parent] += 1
    return graph
