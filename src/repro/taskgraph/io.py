"""JSON and DOT serialization of task graphs."""

from __future__ import annotations

import json
from typing import Any

from repro.exceptions import SerializationError
from repro.taskgraph.graph import TaskGraph

_FORMAT = "repro.taskgraph/v1"


def graph_to_json(graph: TaskGraph) -> str:
    """Serialize to a stable, human-diffable JSON document."""
    doc = {
        "format": _FORMAT,
        "name": graph.name,
        "tasks": [
            {"id": t.tid, "weight": t.weight, "name": t.name} for t in graph.tasks()
        ],
        "edges": [
            {"src": e.src, "dst": e.dst, "cost": e.cost} for e in graph.edges()
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def graph_from_json(text: str) -> TaskGraph:
    """Parse a document produced by :func:`graph_to_json`."""
    try:
        doc: dict[str, Any] = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != _FORMAT:
        raise SerializationError(
            f"not a {_FORMAT} document (format={doc.get('format') if isinstance(doc, dict) else None!r})"
        )
    graph = TaskGraph(name=str(doc.get("name", "taskgraph")))
    try:
        for t in doc["tasks"]:
            graph.add_task(int(t["id"]), float(t["weight"]), str(t.get("name", "")))
        for e in doc["edges"]:
            graph.add_edge(int(e["src"]), int(e["dst"]), float(e["cost"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed task/edge record: {exc}") from exc
    return graph


def graph_to_dot(graph: TaskGraph) -> str:
    """Render as Graphviz DOT (node label = id:weight, edge label = cost)."""
    lines = [f'digraph "{graph.name}" {{', "  rankdir=TB;"]
    for t in graph.tasks():
        label = f"{t.name or t.tid}\\nw={t.weight:g}"
        lines.append(f'  n{t.tid} [label="{label}"];')
    for e in graph.edges():
        lines.append(f'  n{e.src} -> n{e.dst} [label="{e.cost:g}"];')
    lines.append("}")
    return "\n".join(lines)
