"""Communication-to-computation ratio (CCR) measurement and rescaling.

The paper sweeps CCR over 0.1–10.  We use the standard definition: the mean
communication cost over all edges divided by the mean computation cost over
all tasks.  :func:`scale_to_ccr` rescales *edge* costs uniformly so workload
structure and computation costs are untouched — exactly how CCR sweeps are
constructed in the list-scheduling literature.
"""

from __future__ import annotations

from repro.exceptions import GraphError
from repro.taskgraph.graph import TaskGraph


def ccr_of(graph: TaskGraph) -> float:
    """Mean edge cost / mean task weight; 0.0 for a graph with no edges."""
    if graph.num_tasks == 0:
        raise GraphError("CCR of an empty graph is undefined")
    if graph.num_edges == 0:
        return 0.0
    mean_comm = graph.total_comm() / graph.num_edges
    mean_comp = graph.total_work() / graph.num_tasks
    if mean_comp == 0:
        raise GraphError("CCR undefined: graph has zero total computation")
    return mean_comm / mean_comp


def scale_to_ccr(graph: TaskGraph, target_ccr: float, name: str | None = None) -> TaskGraph:
    """Return a copy of ``graph`` whose edge costs are scaled to ``target_ccr``."""
    if target_ccr < 0:
        raise GraphError(f"target CCR must be non-negative, got {target_ccr}")
    if graph.num_edges == 0:
        if target_ccr <= 0:
            return graph.copy()
        raise GraphError("cannot scale a graph with no edges to a positive CCR")
    current = ccr_of(graph)
    if current == 0:
        raise GraphError("cannot rescale a graph whose edges all have zero cost")
    factor = target_ccr / current
    out = TaskGraph(name=name if name is not None else f"{graph.name}@ccr={target_ccr:g}")
    for t in graph.tasks():
        out.add_task(t.tid, t.weight, t.name)
    for e in graph.edges():
        out.add_edge(e.src, e.dst, e.cost * factor)
    return out
