"""Structured task-graph kernels from the scheduling literature.

These are the classic shapes used to stress schedulers: trees, fork-join,
pipelines, wavefronts (Gaussian elimination / LU / Cholesky), butterflies
(FFT), stencils and map-reduce.  All generators take either fixed unit costs
or a seeded RNG drawing the paper's U(1, 1000) costs.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.taskgraph.graph import TaskGraph
from repro.utils.rng import as_rng


def _cost_fn(
    rng: int | np.random.Generator | None,
    weight_range: tuple[float, float],
    cost_range: tuple[float, float],
):
    if rng is None:
        return (lambda: float(weight_range[0])), (lambda: float(cost_range[0]))
    gen = as_rng(rng)

    def w() -> float:
        return float(gen.integers(int(weight_range[0]), int(weight_range[1]) + 1))

    def c() -> float:
        return float(gen.integers(int(cost_range[0]), int(cost_range[1]) + 1))

    return w, c


def fork_join(
    width: int,
    rng: int | np.random.Generator | None = None,
    *,
    weight_range: tuple[float, float] = (1, 1000),
    cost_range: tuple[float, float] = (1, 1000),
) -> TaskGraph:
    """One fork task, ``width`` parallel tasks, one join task."""
    if width < 1:
        raise GraphError(f"fork_join width must be >= 1, got {width}")
    w, c = _cost_fn(rng, weight_range, cost_range)
    g = TaskGraph(name=f"fork_join-{width}")
    g.add_task(0, w(), "fork")
    join = width + 1
    g.add_task(join, w(), "join")
    for i in range(1, width + 1):
        g.add_task(i, w())
        g.add_edge(0, i, c())
        g.add_edge(i, join, c())
    return g


def pipeline(
    length: int,
    rng: int | np.random.Generator | None = None,
    *,
    weight_range: tuple[float, float] = (1, 1000),
    cost_range: tuple[float, float] = (1, 1000),
) -> TaskGraph:
    """A linear chain of ``length`` tasks (zero parallelism)."""
    if length < 1:
        raise GraphError(f"pipeline length must be >= 1, got {length}")
    w, c = _cost_fn(rng, weight_range, cost_range)
    g = TaskGraph(name=f"pipeline-{length}")
    for i in range(length):
        g.add_task(i, w())
        if i:
            g.add_edge(i - 1, i, c())
    return g


def out_tree(
    depth: int,
    branching: int = 2,
    rng: int | np.random.Generator | None = None,
    *,
    weight_range: tuple[float, float] = (1, 1000),
    cost_range: tuple[float, float] = (1, 1000),
) -> TaskGraph:
    """A complete out-tree (data distribution) of the given depth."""
    if depth < 1 or branching < 1:
        raise GraphError("out_tree needs depth >= 1 and branching >= 1")
    w, c = _cost_fn(rng, weight_range, cost_range)
    g = TaskGraph(name=f"out_tree-d{depth}b{branching}")
    g.add_task(0, w())
    frontier = [0]
    nid = 1
    for _ in range(depth - 1):
        nxt = []
        for parent in frontier:
            for _ in range(branching):
                g.add_task(nid, w())
                g.add_edge(parent, nid, c())
                nxt.append(nid)
                nid += 1
        frontier = nxt
    return g


def in_tree(
    depth: int,
    branching: int = 2,
    rng: int | np.random.Generator | None = None,
    *,
    weight_range: tuple[float, float] = (1, 1000),
    cost_range: tuple[float, float] = (1, 1000),
) -> TaskGraph:
    """A complete in-tree (reduction) of the given depth."""
    tree = out_tree(depth, branching, rng, weight_range=weight_range, cost_range=cost_range)
    g = TaskGraph(name=f"in_tree-d{depth}b{branching}")
    for t in tree.tasks():
        g.add_task(t.tid, t.weight, t.name)
    for e in tree.edges():
        g.add_edge(e.dst, e.src, e.cost)
    return g


def divide_and_conquer(
    depth: int,
    rng: int | np.random.Generator | None = None,
    *,
    weight_range: tuple[float, float] = (1, 1000),
    cost_range: tuple[float, float] = (1, 1000),
) -> TaskGraph:
    """Binary divide phase followed by a mirrored conquer phase."""
    if depth < 1:
        raise GraphError(f"divide_and_conquer depth must be >= 1, got {depth}")
    w, c = _cost_fn(rng, weight_range, cost_range)
    g = TaskGraph(name=f"dac-{depth}")
    # Divide: complete binary out-tree of `depth` levels, ids level-ordered.
    levels: list[list[int]] = []
    nid = 0
    for d in range(depth):
        level = []
        for _ in range(2**d):
            g.add_task(nid, w())
            level.append(nid)
            nid += 1
        levels.append(level)
        if d:
            for i, t in enumerate(level):
                g.add_edge(levels[d - 1][i // 2], t, c())
    # Conquer: mirrored in-tree.
    prev = levels[-1]
    for d in range(depth - 2, -1, -1):
        level = []
        for _ in range(2**d):
            g.add_task(nid, w())
            level.append(nid)
            nid += 1
        for i, t in enumerate(prev):
            g.add_edge(t, level[i // 2], c())
        prev = level
    return g


def gaussian_elimination(
    n: int,
    rng: int | np.random.Generator | None = None,
    *,
    weight_range: tuple[float, float] = (1, 1000),
    cost_range: tuple[float, float] = (1, 1000),
) -> TaskGraph:
    """The classic Gaussian-elimination DAG on an ``n x n`` matrix.

    For each elimination step ``k`` there is a pivot task ``T(k,k)`` and
    update tasks ``T(k,j)`` for ``j > k``; ``T(k,k) -> T(k,j)`` and
    ``T(k,j) -> T(k+1,j)`` (plus ``T(k,k+1) -> T(k+1,k+1)``).
    """
    if n < 2:
        raise GraphError(f"gaussian_elimination needs n >= 2, got {n}")
    w, c = _cost_fn(rng, weight_range, cost_range)
    g = TaskGraph(name=f"gauss-{n}")
    ids: dict[tuple[int, int], int] = {}
    nid = 0
    for k in range(n - 1):
        for j in range(k, n):
            ids[(k, j)] = nid
            g.add_task(nid, w(), f"T{k},{j}")
            nid += 1
    for k in range(n - 1):
        for j in range(k + 1, n):
            g.add_edge(ids[(k, k)], ids[(k, j)], c())
            if k + 1 <= n - 2 and j >= k + 1:
                g.add_edge(ids[(k, j)], ids[(k + 1, j)], c())
    return g


def cholesky(
    n: int,
    rng: int | np.random.Generator | None = None,
    *,
    weight_range: tuple[float, float] = (1, 1000),
    cost_range: tuple[float, float] = (1, 1000),
) -> TaskGraph:
    """Tiled Cholesky factorization DAG (POTRF/TRSM/SYRK dependencies)."""
    if n < 1:
        raise GraphError(f"cholesky needs n >= 1, got {n}")
    w, c = _cost_fn(rng, weight_range, cost_range)
    g = TaskGraph(name=f"cholesky-{n}")
    nid = 0

    def new(label: str) -> int:
        nonlocal nid
        g.add_task(nid, w(), label)
        nid += 1
        return nid - 1

    potrf: dict[int, int] = {}
    trsm: dict[tuple[int, int], int] = {}
    syrk: dict[tuple[int, int], int] = {}
    for k in range(n):
        potrf[k] = new(f"potrf{k}")
        if k > 0:
            g.add_edge(syrk[(k, k - 1)], potrf[k], c())
        for i in range(k + 1, n):
            trsm[(i, k)] = new(f"trsm{i},{k}")
            g.add_edge(potrf[k], trsm[(i, k)], c())
            if k > 0:
                g.add_edge(syrk[(i, k - 1)], trsm[(i, k)], c())
        for i in range(k + 1, n):
            syrk[(i, k)] = new(f"syrk{i},{k}")
            g.add_edge(trsm[(i, k)], syrk[(i, k)], c())
    return g


def fft(
    n_points: int,
    rng: int | np.random.Generator | None = None,
    *,
    weight_range: tuple[float, float] = (1, 1000),
    cost_range: tuple[float, float] = (1, 1000),
) -> TaskGraph:
    """Butterfly FFT DAG over ``n_points`` (power of two) points.

    ``log2(n) + 1`` ranks of ``n`` tasks; task ``(r+1, i)`` depends on
    ``(r, i)`` and ``(r, i ^ 2^r)``.
    """
    if n_points < 2 or n_points & (n_points - 1):
        raise GraphError(f"fft needs a power-of-two point count >= 2, got {n_points}")
    w, c = _cost_fn(rng, weight_range, cost_range)
    g = TaskGraph(name=f"fft-{n_points}")
    ranks = n_points.bit_length() - 1
    ids = {}
    nid = 0
    for r in range(ranks + 1):
        for i in range(n_points):
            ids[(r, i)] = nid
            g.add_task(nid, w(), f"F{r},{i}")
            nid += 1
    for r in range(ranks):
        stride = 1 << r
        for i in range(n_points):
            g.add_edge(ids[(r, i)], ids[(r + 1, i)], c())
            g.add_edge(ids[(r, i ^ stride)], ids[(r + 1, i)], c())
    return g


def stencil(
    width: int,
    steps: int,
    rng: int | np.random.Generator | None = None,
    *,
    weight_range: tuple[float, float] = (1, 1000),
    cost_range: tuple[float, float] = (1, 1000),
) -> TaskGraph:
    """1-D three-point stencil iterated ``steps`` times (wavefront DAG)."""
    if width < 1 or steps < 1:
        raise GraphError("stencil needs width >= 1 and steps >= 1")
    w, c = _cost_fn(rng, weight_range, cost_range)
    g = TaskGraph(name=f"stencil-{width}x{steps}")
    ids = {}
    nid = 0
    for s in range(steps):
        for x in range(width):
            ids[(s, x)] = nid
            g.add_task(nid, w(), f"S{s},{x}")
            nid += 1
    for s in range(1, steps):
        for x in range(width):
            for dx in (-1, 0, 1):
                if 0 <= x + dx < width:
                    g.add_edge(ids[(s - 1, x + dx)], ids[(s, x)], c())
    return g


def map_reduce(
    mappers: int,
    reducers: int,
    rng: int | np.random.Generator | None = None,
    *,
    weight_range: tuple[float, float] = (1, 1000),
    cost_range: tuple[float, float] = (1, 1000),
) -> TaskGraph:
    """Split -> mappers -> all-to-all shuffle -> reducers -> merge."""
    if mappers < 1 or reducers < 1:
        raise GraphError("map_reduce needs mappers >= 1 and reducers >= 1")
    w, c = _cost_fn(rng, weight_range, cost_range)
    g = TaskGraph(name=f"mapreduce-{mappers}x{reducers}")
    g.add_task(0, w(), "split")
    maps = []
    for i in range(mappers):
        tid = 1 + i
        g.add_task(tid, w(), f"map{i}")
        g.add_edge(0, tid, c())
        maps.append(tid)
    reds = []
    for j in range(reducers):
        tid = 1 + mappers + j
        g.add_task(tid, w(), f"reduce{j}")
        reds.append(tid)
        for m in maps:
            g.add_edge(m, tid, c())
    merge = 1 + mappers + reducers
    g.add_task(merge, w(), "merge")
    for r in reds:
        g.add_edge(r, merge, c())
    return g


def diamond(
    size: int,
    rng: int | np.random.Generator | None = None,
    *,
    weight_range: tuple[float, float] = (1, 1000),
    cost_range: tuple[float, float] = (1, 1000),
) -> TaskGraph:
    """A ``size x size`` grid DAG (down and right dependencies)."""
    if size < 1:
        raise GraphError(f"diamond needs size >= 1, got {size}")
    w, c = _cost_fn(rng, weight_range, cost_range)
    g = TaskGraph(name=f"diamond-{size}")
    def tid(i: int, j: int) -> int:
        return i * size + j
    for i in range(size):
        for j in range(size):
            g.add_task(tid(i, j), w())
    for i in range(size):
        for j in range(size):
            if i + 1 < size:
                g.add_edge(tid(i, j), tid(i + 1, j), c())
            if j + 1 < size:
                g.add_edge(tid(i, j), tid(i, j + 1), c())
    return g


#: Registry of kernels usable by name in experiment configs.
KERNELS = {
    "fork_join": fork_join,
    "pipeline": pipeline,
    "out_tree": out_tree,
    "in_tree": in_tree,
    "divide_and_conquer": divide_and_conquer,
    "gaussian_elimination": gaussian_elimination,
    "cholesky": cholesky,
    "fft": fft,
    "stencil": stencil,
    "map_reduce": map_reduce,
    "diamond": diamond,
}
