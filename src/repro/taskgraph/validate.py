"""Structural validation of task graphs."""

from __future__ import annotations

import math

from repro.exceptions import GraphError
from repro.taskgraph.graph import TaskGraph


def validate_graph(graph: TaskGraph, *, require_connected: bool = False) -> None:
    """Check structural invariants; raise :class:`GraphError` on violation.

    Checked: at least one task, acyclicity, non-negative finite costs,
    adjacency consistency, and (optionally) weak connectivity.
    """
    if graph.num_tasks == 0:
        raise GraphError("task graph has no tasks")

    for t in graph.tasks():
        if not (t.weight >= 0) or math.isnan(t.weight) or math.isinf(t.weight):
            raise GraphError(f"task {t.tid} has invalid weight {t.weight}")
    for e in graph.edges():
        if not (e.cost >= 0) or math.isnan(e.cost) or math.isinf(e.cost):
            raise GraphError(f"edge {e.src}->{e.dst} has invalid cost {e.cost}")

    # Adjacency consistency (defensive: only violable by touching privates).
    for tid in graph.task_ids():
        for s in graph.successors(tid):
            if not graph.has_edge(tid, s):
                raise GraphError(f"successor list of {tid} references missing edge {tid}->{s}")
        for p in graph.predecessors(tid):
            if not graph.has_edge(p, tid):
                raise GraphError(f"predecessor list of {tid} references missing edge {p}->{tid}")

    graph.topological_order()  # raises CycleError on cycles

    if require_connected and graph.num_tasks > 1:
        import networkx as nx

        if not nx.is_weakly_connected(graph.to_networkx()):
            raise GraphError(f"task graph {graph.name!r} is not weakly connected")
