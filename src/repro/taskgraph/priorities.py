"""Static task priorities: bottom level, top level, critical path.

The paper orders tasks by *bottom level* ``bl(n) = w(n) + max_succ(c(e) +
bl(succ))`` (Section 2.1).  Because ``bl(parent) >= w(parent) + bl(child)``
with ``w > 0``, a descending-``bl`` order is a topological order for strictly
positive weights; the tie-break in :func:`priority_list` makes it one even
with zero-weight tasks.
"""

from __future__ import annotations

from repro.taskgraph.graph import TaskGraph
from repro.types import TaskId


def bottom_levels(graph: TaskGraph) -> dict[TaskId, float]:
    """Length of the longest path (computation + communication) leaving each task."""
    bl: dict[TaskId, float] = {}
    for tid in reversed(graph.topological_order()):
        w = graph.task(tid).weight
        best = 0.0
        for succ in graph.successors(tid):
            cand = graph.edge(tid, succ).cost + bl[succ]
            if cand > best:
                best = cand
        bl[tid] = w + best
    return bl


def top_levels(graph: TaskGraph) -> dict[TaskId, float]:
    """Length of the longest path arriving at each task (excluding its own weight)."""
    tl: dict[TaskId, float] = {}
    for tid in graph.topological_order():
        best = 0.0
        for pred in graph.predecessors(tid):
            cand = tl[pred] + graph.task(pred).weight + graph.edge(pred, tid).cost
            if cand > best:
                best = cand
        tl[tid] = best
    return tl


def critical_path(graph: TaskGraph) -> list[TaskId]:
    """One longest (computation + communication) source-to-sink path."""
    bl = bottom_levels(graph)
    sources = graph.sources()
    if not sources:
        return []
    cur = max(sources, key=lambda t: (bl[t], -t))
    path = [cur]
    while graph.successors(cur):
        cur = max(
            graph.successors(cur),
            key=lambda s: (graph.edge(path[-1], s).cost + bl[s], -s),
        )
        path.append(cur)
    return path


def critical_path_length(graph: TaskGraph) -> float:
    """Length of the critical path; 0 for an empty graph."""
    bl = bottom_levels(graph)
    return max(bl.values(), default=0.0)


def priority_list(graph: TaskGraph) -> list[TaskId]:
    """Schedule order: descending bottom level, precedence-safe.

    Implemented as a Kahn sweep that always releases the ready task with the
    highest bottom level, so the result is simultaneously a topological order
    and (for positive weights) the descending-``bl`` order the paper uses.
    Ties break on ascending task id for determinism.
    """
    import heapq

    bl = bottom_levels(graph)
    indeg = {t: len(graph.predecessors(t)) for t in graph.task_ids()}
    ready = [(-bl[t], t) for t, d in indeg.items() if d == 0]
    heapq.heapify(ready)
    order: list[TaskId] = []
    while ready:
        _, t = heapq.heappop(ready)
        order.append(t)
        for s in graph.successors(t):
            indeg[s] -= 1
            if indeg[s] == 0:
                heapq.heappush(ready, (-bl[s], s))
    if len(order) != graph.num_tasks:
        from repro.exceptions import CycleError

        raise CycleError(f"task graph {graph.name!r} contains a cycle")
    return order
