"""Scientific-workflow-shaped task graphs.

Structural miniatures of the workflow families used across the scheduling
literature (Pegasus workflow gallery shapes), complementing the regular
kernels in :mod:`repro.taskgraph.kernels`:

- :func:`montage_like` — astronomy mosaicking: wide projection fan, pairwise
  difference stage, global fit, wide background-correction fan, gather/add.
- :func:`epigenomics_like` — genome pipelines: several independent lanes of
  deep per-chunk chains merged at the end.
- :func:`ligo_like` — gravitational-wave inspiral: parallel template banks,
  two-level reduction, second analysis wave.
- :func:`cybershake_like` — seismic hazard: two generator tasks feeding many
  extract/seismogram pairs, gathered twice.

The shapes (fan widths, stage counts) follow the published workflow
topologies; costs are drawn from the same U(1, 1000) family as the rest of
the library so CCR rescaling works uniformly.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.kernels import _cost_fn


def montage_like(
    width: int = 8,
    rng: int | np.random.Generator | None = None,
    *,
    weight_range: tuple[float, float] = (1, 1000),
    cost_range: tuple[float, float] = (1, 1000),
) -> TaskGraph:
    """Montage-shaped mosaicking workflow over ``width`` input images."""
    if width < 2:
        raise GraphError(f"montage needs width >= 2, got {width}")
    w, c = _cost_fn(rng, weight_range, cost_range)
    g = TaskGraph(name=f"montage-{width}")
    nid = 0

    def new(label: str) -> int:
        nonlocal nid
        g.add_task(nid, w(), label)
        nid += 1
        return nid - 1

    projects = [new(f"mProject{i}") for i in range(width)]
    # Pairwise overlaps between neighbouring projections.
    diffs = []
    for i in range(width - 1):
        d = new(f"mDiffFit{i}")
        g.add_edge(projects[i], d, c())
        g.add_edge(projects[i + 1], d, c())
        diffs.append(d)
    concat = new("mConcatFit")
    for d in diffs:
        g.add_edge(d, concat, c())
    model = new("mBgModel")
    g.add_edge(concat, model, c())
    backgrounds = []
    for i in range(width):
        b = new(f"mBackground{i}")
        g.add_edge(model, b, c())
        g.add_edge(projects[i], b, c())
        backgrounds.append(b)
    imgtbl = new("mImgtbl")
    for b in backgrounds:
        g.add_edge(b, imgtbl, c())
    add = new("mAdd")
    g.add_edge(imgtbl, add, c())
    shrink = new("mShrink")
    g.add_edge(add, shrink, c())
    new_jpeg = new("mJPEG")
    g.add_edge(shrink, new_jpeg, c())
    return g


def epigenomics_like(
    lanes: int = 4,
    chain: int = 5,
    rng: int | np.random.Generator | None = None,
    *,
    weight_range: tuple[float, float] = (1, 1000),
    cost_range: tuple[float, float] = (1, 1000),
) -> TaskGraph:
    """Epigenomics-shaped pipeline: ``lanes`` parallel ``chain``-deep lanes."""
    if lanes < 1 or chain < 1:
        raise GraphError("epigenomics needs lanes >= 1 and chain >= 1")
    w, c = _cost_fn(rng, weight_range, cost_range)
    g = TaskGraph(name=f"epigenomics-{lanes}x{chain}")
    nid = 0

    def new(label: str) -> int:
        nonlocal nid
        g.add_task(nid, w(), label)
        nid += 1
        return nid - 1

    split = new("fastqSplit")
    lane_tails = []
    for lane in range(lanes):
        prev = split
        for step in range(chain):
            t = new(f"lane{lane}.step{step}")
            g.add_edge(prev, t, c())
            prev = t
        lane_tails.append(prev)
    merge = new("mapMerge")
    for t in lane_tails:
        g.add_edge(t, merge, c())
    index = new("maqIndex")
    g.add_edge(merge, index, c())
    pileup = new("pileup")
    g.add_edge(index, pileup, c())
    return g


def ligo_like(
    banks: int = 6,
    rng: int | np.random.Generator | None = None,
    *,
    weight_range: tuple[float, float] = (1, 1000),
    cost_range: tuple[float, float] = (1, 1000),
) -> TaskGraph:
    """LIGO-inspiral-shaped: two waves of parallel banks with reductions."""
    if banks < 2:
        raise GraphError(f"ligo needs banks >= 2, got {banks}")
    w, c = _cost_fn(rng, weight_range, cost_range)
    g = TaskGraph(name=f"ligo-{banks}")
    nid = 0

    def new(label: str) -> int:
        nonlocal nid
        g.add_task(nid, w(), label)
        nid += 1
        return nid - 1

    tmplt = [new(f"tmpltBank{i}") for i in range(banks)]
    inspiral1 = []
    for i, t in enumerate(tmplt):
        a = new(f"inspiral1.{i}")
        g.add_edge(t, a, c())
        inspiral1.append(a)
    thinca1 = new("thinca1")
    for a in inspiral1:
        g.add_edge(a, thinca1, c())
    trig = [new(f"trigBank{i}") for i in range(banks)]
    inspiral2 = []
    for i, t in enumerate(trig):
        g.add_edge(thinca1, t, c())
        a = new(f"inspiral2.{i}")
        g.add_edge(t, a, c())
        inspiral2.append(a)
    thinca2 = new("thinca2")
    for a in inspiral2:
        g.add_edge(a, thinca2, c())
    return g


def cybershake_like(
    sites: int = 5,
    rng: int | np.random.Generator | None = None,
    *,
    weight_range: tuple[float, float] = (1, 1000),
    cost_range: tuple[float, float] = (1, 1000),
) -> TaskGraph:
    """CyberShake-shaped: two generators feed ``sites`` extract+seismogram pairs."""
    if sites < 1:
        raise GraphError(f"cybershake needs sites >= 1, got {sites}")
    w, c = _cost_fn(rng, weight_range, cost_range)
    g = TaskGraph(name=f"cybershake-{sites}")
    nid = 0

    def new(label: str) -> int:
        nonlocal nid
        g.add_task(nid, w(), label)
        nid += 1
        return nid - 1

    sgt_x = new("preSGTx")
    sgt_y = new("preSGTy")
    peaks = []
    for i in range(sites):
        extract = new(f"extract{i}")
        g.add_edge(sgt_x, extract, c())
        g.add_edge(sgt_y, extract, c())
        seis = new(f"seismogram{i}")
        g.add_edge(extract, seis, c())
        peak = new(f"peakVal{i}")
        g.add_edge(seis, peak, c())
        peaks.append(peak)
    zip_seis = new("zipSeis")
    zip_peak = new("zipPeak")
    for i, p in enumerate(peaks):
        g.add_edge(p, zip_peak, c())
        # seismogram output also archived
        g.add_edge(p - 1, zip_seis, c())
    return g


#: Registry of workflow shapes usable by name in experiment configs.
WORKFLOWS = {
    "montage": montage_like,
    "epigenomics": epigenomics_like,
    "ligo": ligo_like,
    "cybershake": cybershake_like,
}
