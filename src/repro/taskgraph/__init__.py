"""Task-graph (DAG) model: the workload side of edge scheduling.

A :class:`TaskGraph` is a directed acyclic graph whose nodes carry computation
costs and whose edges carry communication costs, exactly the ``G = (V, E, w,
c)`` of the paper's Section 2.1.
"""

from repro.taskgraph.graph import Task, CommEdge, TaskGraph
from repro.taskgraph.priorities import (
    bottom_levels,
    top_levels,
    critical_path,
    critical_path_length,
    priority_list,
)
from repro.taskgraph.ccr import ccr_of, scale_to_ccr
from repro.taskgraph.generators import random_layered_dag, random_fan_dag
from repro.taskgraph import kernels
from repro.taskgraph import workflows
from repro.taskgraph.io import graph_to_json, graph_from_json, graph_to_dot
from repro.taskgraph.validate import validate_graph

__all__ = [
    "Task",
    "CommEdge",
    "TaskGraph",
    "bottom_levels",
    "top_levels",
    "critical_path",
    "critical_path_length",
    "priority_list",
    "ccr_of",
    "scale_to_ccr",
    "random_layered_dag",
    "random_fan_dag",
    "kernels",
    "workflows",
    "graph_to_json",
    "graph_from_json",
    "graph_to_dot",
    "validate_graph",
]
