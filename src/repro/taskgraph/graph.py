"""Core DAG data structure for dependent task sets.

The representation is deliberately plain (dicts of ids) rather than a wrapped
:mod:`networkx` graph: schedulers traverse predecessor/successor lists in hot
loops, and attribute-dict indirection there costs ~3x.  Conversion helpers to
and from networkx live on the class for interoperability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import networkx as nx

from repro.exceptions import GraphError
from repro.types import EdgeKey, TaskId


@dataclass(frozen=True, slots=True)
class Task:
    """A task node: id, computation cost ``w`` and an optional label."""

    tid: TaskId
    weight: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise GraphError(f"task {self.tid} has negative weight {self.weight}")


@dataclass(frozen=True, slots=True)
class CommEdge:
    """A dependence edge ``src -> dst`` carrying ``cost`` units of data."""

    src: TaskId
    dst: TaskId
    cost: float

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise GraphError(
                f"edge {self.src}->{self.dst} has negative cost {self.cost}"
            )
        if self.src == self.dst:
            raise GraphError(f"self-loop on task {self.src}")

    @property
    def key(self) -> EdgeKey:
        return (self.src, self.dst)


@dataclass
class TaskGraph:
    """A directed acyclic graph of tasks with communication costs.

    Mutation is append-only (``add_task`` / ``add_edge``); schedulers treat the
    graph as immutable.  ``name`` is free-form metadata used in reports.
    """

    name: str = "taskgraph"
    _tasks: dict[TaskId, Task] = field(default_factory=dict)
    _edges: dict[EdgeKey, CommEdge] = field(default_factory=dict)
    _succs: dict[TaskId, list[TaskId]] = field(default_factory=dict)
    _preds: dict[TaskId, list[TaskId]] = field(default_factory=dict)

    # -- construction -------------------------------------------------------

    def add_task(self, tid: TaskId, weight: float, name: str = "") -> Task:
        """Add a task; ids must be unique."""
        if tid in self._tasks:
            raise GraphError(f"duplicate task id {tid}")
        task = Task(tid, float(weight), name)
        self._tasks[tid] = task
        self._succs[tid] = []
        self._preds[tid] = []
        return task

    def add_edge(self, src: TaskId, dst: TaskId, cost: float) -> CommEdge:
        """Add a dependence edge; both endpoints must already exist."""
        if src not in self._tasks:
            raise GraphError(f"edge references unknown source task {src}")
        if dst not in self._tasks:
            raise GraphError(f"edge references unknown destination task {dst}")
        key = (src, dst)
        if key in self._edges:
            raise GraphError(f"duplicate edge {src}->{dst}")
        edge = CommEdge(src, dst, float(cost))
        self._edges[key] = edge
        self._succs[src].append(dst)
        self._preds[dst].append(src)
        return edge

    # -- queries ------------------------------------------------------------

    @property
    def num_tasks(self) -> int:
        return len(self._tasks)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def task(self, tid: TaskId) -> Task:
        try:
            return self._tasks[tid]
        except KeyError:
            raise GraphError(f"unknown task id {tid}") from None

    def edge(self, src: TaskId, dst: TaskId) -> CommEdge:
        try:
            return self._edges[(src, dst)]
        except KeyError:
            raise GraphError(f"unknown edge {src}->{dst}") from None

    def has_task(self, tid: TaskId) -> bool:
        return tid in self._tasks

    def has_edge(self, src: TaskId, dst: TaskId) -> bool:
        return (src, dst) in self._edges

    def tasks(self) -> Iterator[Task]:
        return iter(self._tasks.values())

    def task_ids(self) -> Iterator[TaskId]:
        return iter(self._tasks.keys())

    def edges(self) -> Iterator[CommEdge]:
        return iter(self._edges.values())

    def successors(self, tid: TaskId) -> list[TaskId]:
        try:
            return self._succs[tid]
        except KeyError:
            raise GraphError(f"unknown task id {tid}") from None

    def predecessors(self, tid: TaskId) -> list[TaskId]:
        try:
            return self._preds[tid]
        except KeyError:
            raise GraphError(f"unknown task id {tid}") from None

    def in_edges(self, tid: TaskId) -> list[CommEdge]:
        return [self._edges[(p, tid)] for p in self.predecessors(tid)]

    def out_edges(self, tid: TaskId) -> list[CommEdge]:
        return [self._edges[(tid, s)] for s in self.successors(tid)]

    def sources(self) -> list[TaskId]:
        """Tasks with no predecessors (entry tasks)."""
        return [t for t in self._tasks if not self._preds[t]]

    def sinks(self) -> list[TaskId]:
        """Tasks with no successors (exit tasks)."""
        return [t for t in self._tasks if not self._succs[t]]

    def total_work(self) -> float:
        return sum(t.weight for t in self._tasks.values())

    def total_comm(self) -> float:
        return sum(e.cost for e in self._edges.values())

    # -- orderings ----------------------------------------------------------

    def topological_order(self) -> list[TaskId]:
        """Kahn topological sort; raises :class:`CycleError` on cycles.

        Ties are broken by ascending task id so the order is deterministic.
        """
        from repro.exceptions import CycleError
        import heapq

        indeg = {t: len(ps) for t, ps in self._preds.items()}
        ready = [t for t, d in indeg.items() if d == 0]
        heapq.heapify(ready)
        order: list[TaskId] = []
        while ready:
            t = heapq.heappop(ready)
            order.append(t)
            for s in self._succs[t]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    heapq.heappush(ready, s)
        if len(order) != len(self._tasks):
            raise CycleError(
                f"task graph {self.name!r} contains a cycle "
                f"({len(self._tasks) - len(order)} tasks unreachable in Kahn order)"
            )
        return order

    # -- interoperability ---------------------------------------------------

    def to_networkx(self) -> nx.DiGraph:
        """Export as a :class:`networkx.DiGraph` with ``weight``/``cost`` attrs."""
        g = nx.DiGraph(name=self.name)
        for t in self._tasks.values():
            g.add_node(t.tid, weight=t.weight, label=t.name)
        for e in self._edges.values():
            g.add_edge(e.src, e.dst, cost=e.cost)
        return g

    @classmethod
    def from_networkx(cls, g: nx.DiGraph, name: str | None = None) -> "TaskGraph":
        """Build from a DiGraph carrying ``weight`` node and ``cost`` edge attrs."""
        tg = cls(name=name if name is not None else (g.name or "taskgraph"))
        for n, data in g.nodes(data=True):
            tg.add_task(int(n), float(data.get("weight", 1.0)), str(data.get("label", "")))
        for u, v, data in g.edges(data=True):
            tg.add_edge(int(u), int(v), float(data.get("cost", 0.0)))
        return tg

    def copy(self) -> "TaskGraph":
        other = TaskGraph(name=self.name)
        other._tasks = dict(self._tasks)
        other._edges = dict(self._edges)
        other._succs = {k: list(v) for k, v in self._succs.items()}
        other._preds = {k: list(v) for k, v in self._preds.items()}
        return other

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TaskGraph(name={self.name!r}, tasks={self.num_tasks}, "
            f"edges={self.num_edges})"
        )
