"""Network topology: vertices (processors/switches) and schedulable links.

Modeling choices, mirroring Sinnen & Sousa's topology graph:

- A **full-duplex** cable between two vertices becomes *two* directed
  :class:`Link` resources, one per direction, each independently schedulable.
- A **half-duplex** cable becomes *one* :class:`Link` used by both directions
  (contention between the directions falls out naturally).
- A **bus** (hyperedge ``H``) is one :class:`Link` shared by all pairs of its
  member vertices.

A :class:`Route` is the ordered list of links a communication traverses; the
edge-scheduling engine books time slots on each of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Literal, Protocol, Sequence, TypeAlias

import networkx as nx

from repro.exceptions import TopologyError
from repro.types import LinkId, VertexId

VertexKind = Literal["processor", "switch"]
LinkKind = Literal["ptp", "bus"]


@dataclass(frozen=True, slots=True)
class Vertex:
    """A network vertex: a processor (with processing speed) or a switch."""

    vid: VertexId
    kind: VertexKind
    speed: float = 1.0  # processing speed; meaningful for processors only
    name: str = ""

    def __post_init__(self) -> None:
        if self.kind == "processor" and self.speed <= 0:
            raise TopologyError(f"processor {self.vid} has non-positive speed {self.speed}")

    @property
    def is_processor(self) -> bool:
        return self.kind == "processor"


@dataclass(frozen=True, slots=True)
class Link:
    """A schedulable communication resource with a transfer speed.

    ``src``/``dst`` identify the direction for point-to-point links; for
    half-duplex and bus links the same :class:`Link` object is reachable from
    several (ordered) vertex pairs and ``src``/``dst`` record the canonical
    pair used when the link was created.
    """

    lid: LinkId
    speed: float
    src: VertexId
    dst: VertexId
    kind: LinkKind = "ptp"
    members: tuple[VertexId, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise TopologyError(f"link {self.lid} has non-positive speed {self.speed}")


#: An ordered sequence of links traversed by one communication.
Route: TypeAlias = list[Link]


class MinimalRouter(Protocol):
    """A topology-attached minimal-routing provider.

    Regular fabrics (see :mod:`repro.network.fabrics`) attach a
    :class:`repro.network.routing.HierarchicalRouter` so
    :func:`repro.network.routing.bfs_route` can serve routes from sharded,
    lazily materialized per-pod tables instead of the flat
    :meth:`NetworkTopology.route_table`.  The contract mirrors
    ``bfs_route``: same endpoints-are-processors precondition, same
    deterministic BFS tie-break, read-only returned routes.
    """

    def minimal_route(self, src: VertexId, dst: VertexId) -> Route:
        """The canonical minimal route from processor ``src`` to ``dst``."""
        ...

    def materialized_entries(self) -> int:
        """How many ``(src, dst)`` routes have been materialized so far."""
        ...


@dataclass
class NetworkTopology:
    """Mutable-by-construction network graph; schedulers treat it as frozen."""

    name: str = "network"
    _vertices: dict[VertexId, Vertex] = field(default_factory=dict)
    _links: dict[LinkId, Link] = field(default_factory=dict)
    #: vertex -> list of (link, neighbour vertex) choices for routing
    _adj: dict[VertexId, list[tuple[Link, VertexId]]] = field(default_factory=dict)
    #: lazily built ``_adj`` with every choice list sorted by link id
    #: (deterministic routing order); invalidated by any topology mutation
    _sorted_adj: dict[VertexId, list[tuple[Link, VertexId]]] | None = field(
        default=None, repr=False
    )
    #: ``(src, dst) -> Route`` memo filled by :func:`repro.network.routing
    #: .bfs_route`; purely topological, so it shares one entry per processor
    #: pair across every engine and is invalidated by any topology mutation
    #: (same lifetime as ``_sorted_adj``)
    _route_table: dict[tuple[VertexId, VertexId], Route] | None = field(
        default=None, repr=False
    )
    #: optional fabric-aware router (see :class:`MinimalRouter`); detached —
    #: not merely invalidated — by any mutation, because a structural change
    #: voids the regularity assumptions the router's analytic paths rely on
    _router: MinimalRouter | None = field(default=None, repr=False)
    _next_vid: int = 0
    _next_lid: int = 0

    # -- construction -------------------------------------------------------

    def _invalidate_routing(self) -> None:
        """Drop every route-derived cache after a topology mutation.

        This is the single seam all mutators go through: the sorted
        adjacency, the flat ``(src, dst)`` route table, *and* any attached
        hierarchical router (whose sharded, lazily materialized tables would
        otherwise keep serving routes for the pre-mutation structure).
        """
        self._sorted_adj = None
        self._route_table = None
        self._router = None

    def add_processor(self, speed: float = 1.0, name: str = "") -> Vertex:
        v = Vertex(self._next_vid, "processor", float(speed), name or f"P{self._next_vid}")
        self._vertices[v.vid] = v
        self._adj[v.vid] = []
        self._invalidate_routing()
        self._next_vid += 1
        return v

    def add_switch(self, name: str = "") -> Vertex:
        v = Vertex(self._next_vid, "switch", 1.0, name or f"S{self._next_vid}")
        self._vertices[v.vid] = v
        self._adj[v.vid] = []
        self._invalidate_routing()
        self._next_vid += 1
        return v

    def _require_vertex(self, vid: VertexId) -> Vertex:
        try:
            return self._vertices[vid]
        except KeyError:
            raise TopologyError(f"unknown vertex id {vid}") from None

    def connect(
        self,
        u: VertexId | Vertex,
        v: VertexId | Vertex,
        speed: float = 1.0,
        *,
        duplex: Literal["full", "half"] = "full",
        name: str = "",
    ) -> tuple[Link, ...]:
        """Create a cable between ``u`` and ``v``.

        Full duplex returns ``(link u->v, link v->u)``; half duplex returns a
        single shared link.
        """
        uid = u.vid if isinstance(u, Vertex) else u
        vid = v.vid if isinstance(v, Vertex) else v
        self._require_vertex(uid)
        self._require_vertex(vid)
        if uid == vid:
            raise TopologyError(f"cannot connect vertex {uid} to itself")
        self._invalidate_routing()
        if duplex == "full":
            fwd = Link(self._next_lid, float(speed), uid, vid, "ptp", name=name or f"L{self._next_lid}")
            self._next_lid += 1
            bwd = Link(self._next_lid, float(speed), vid, uid, "ptp", name=name or f"L{self._next_lid}")
            self._next_lid += 1
            self._links[fwd.lid] = fwd
            self._links[bwd.lid] = bwd
            self._adj[uid].append((fwd, vid))
            self._adj[vid].append((bwd, uid))
            return (fwd, bwd)
        if duplex == "half":
            link = Link(self._next_lid, float(speed), uid, vid, "ptp", name=name or f"L{self._next_lid}")
            self._next_lid += 1
            self._links[link.lid] = link
            self._adj[uid].append((link, vid))
            self._adj[vid].append((link, uid))
            return (link,)
        raise TopologyError(f"unknown duplex mode {duplex!r}")

    def add_bus(self, members: Sequence[VertexId | Vertex], speed: float = 1.0, name: str = "") -> Link:
        """Create a bus (hyperedge): one shared link among all ``members``."""
        ids = tuple(m.vid if isinstance(m, Vertex) else m for m in members)
        if len(ids) < 2:
            raise TopologyError(f"a bus needs at least two members, got {len(ids)}")
        if len(set(ids)) != len(ids):
            raise TopologyError("bus member list contains duplicates")
        for vid in ids:
            self._require_vertex(vid)
        self._invalidate_routing()
        link = Link(
            self._next_lid, float(speed), ids[0], ids[1], "bus", members=ids,
            name=name or f"BUS{self._next_lid}",
        )
        self._next_lid += 1
        self._links[link.lid] = link
        for vid in ids:
            for other in ids:
                if other != vid:
                    self._adj[vid].append((link, other))
        return link

    # -- queries ------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_links(self) -> int:
        return len(self._links)

    def vertex(self, vid: VertexId) -> Vertex:
        return self._require_vertex(vid)

    def link(self, lid: LinkId) -> Link:
        try:
            return self._links[lid]
        except KeyError:
            raise TopologyError(f"unknown link id {lid}") from None

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._vertices.values())

    def links(self) -> Iterator[Link]:
        return iter(self._links.values())

    def processors(self) -> list[Vertex]:
        return [v for v in self._vertices.values() if v.kind == "processor"]

    def switches(self) -> list[Vertex]:
        return [v for v in self._vertices.values() if v.kind == "switch"]

    def out_links(self, vid: VertexId) -> list[tuple[Link, VertexId]]:
        """Routing choices from ``vid``: (link, neighbour) pairs."""
        self._require_vertex(vid)
        return self._adj[vid]

    def sorted_out_links(self, vid: VertexId) -> list[tuple[Link, VertexId]]:
        """:meth:`out_links` sorted by link id (the routing tie-break order).

        Built once for the whole topology on first use and invalidated by any
        mutation, so route searches stop re-sorting adjacency lists on every
        frontier pop / relaxation.
        """
        cache = self._sorted_adj
        if cache is None:
            cache = {
                v: sorted(choices, key=lambda lv: lv[0].lid)
                for v, choices in self._adj.items()
            }
            self._sorted_adj = cache
        try:
            return cache[vid]
        except KeyError:
            raise TopologyError(f"unknown vertex id {vid}") from None

    def route_table(self) -> dict[tuple[VertexId, VertexId], Route]:
        """The shared ``(src, dst) -> Route`` memo for minimal routing.

        Lazily created on first use and dropped (like :meth:`sorted_out_links`'
        cache) by any topology mutation.  :func:`repro.network.routing
        .bfs_route` fills it, so every engine scheduling on this topology —
        BA, mapping simulation, BBSA fallback paths — computes each processor
        pair's minimal route at most once per topology lifetime.
        """
        table = self._route_table
        if table is None:
            table = {}
            self._route_table = table
        return table

    def attach_router(self, router: MinimalRouter) -> None:
        """Install a fabric-aware minimal router (see :class:`MinimalRouter`).

        :func:`repro.network.routing.bfs_route` prefers the attached router
        over the flat route table.  Any subsequent topology mutation detaches
        it again — the fabric's structural guarantees no longer hold.
        """
        self._router = router

    def detach_router(self) -> MinimalRouter | None:
        """Remove and return the attached router (flat routing resumes)."""
        router = self._router
        self._router = None
        return router

    @property
    def attached_router(self) -> MinimalRouter | None:
        return self._router

    def mean_link_speed(self) -> float:
        """The paper's ``MLS``: average transfer speed over all links."""
        if not self._links:
            raise TopologyError(f"topology {self.name!r} has no links")
        return sum(l.speed for l in self._links.values()) / len(self._links)

    def mean_processor_speed(self) -> float:
        procs = self.processors()
        if not procs:
            raise TopologyError(f"topology {self.name!r} has no processors")
        return sum(p.speed for p in procs) / len(procs)

    # -- interoperability ---------------------------------------------------

    def to_networkx(self) -> nx.MultiDiGraph:
        """Routing-graph view: one directed arc per (link, direction) choice."""
        g = nx.MultiDiGraph(name=self.name)
        for v in self._vertices.values():
            g.add_node(v.vid, kind=v.kind, speed=v.speed, label=v.name)
        for vid, choices in self._adj.items():
            for link, nbr in choices:
                g.add_edge(vid, nbr, key=link.lid, speed=link.speed, kind=link.kind)
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NetworkTopology(name={self.name!r}, processors={len(self.processors())}, "
            f"switches={len(self.switches())}, links={self.num_links})"
        )
